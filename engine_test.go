package privascope_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"privascope"
	"privascope/internal/accesscontrol"
	"privascope/internal/casestudy"
	"privascope/internal/synth"
	"privascope/internal/testutil"
)

func newTestEngine(t *testing.T) *privascope.Engine {
	t.Helper()
	engine, err := privascope.NewEngine(privascope.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestEngineAssessCachedSkipsGeneration: the generate-once guarantee for
// sequential callers — the instrumented generation counter stays at 1 across
// repeated Assess calls, including calls with a *different* Model pointer of
// identical content (fingerprint keying, not pointer keying).
func TestEngineAssessCachedSkipsGeneration(t *testing.T) {
	engine := newTestEngine(t)
	profile := casestudy.PatientProfile()

	first, err := engine.Assess(context.Background(), casestudy.Surgery(), profile)
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Generations(); got != 1 {
		t.Fatalf("generations after first Assess = %d, want 1", got)
	}

	// A fresh build of the same model: different pointer, same content.
	second, err := engine.Assess(context.Background(), casestudy.Surgery(), profile)
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Generations(); got != 1 {
		t.Fatalf("generations after cached Assess = %d, want 1 (generation not skipped)", got)
	}
	if first.PrivacyModel != second.PrivacyModel {
		t.Error("cached Assess did not share the generated privacy model")
	}
	if first.Assessment.OverallRisk != second.Assessment.OverallRisk {
		t.Error("cached Assess changed the assessment outcome")
	}
	if hits, misses := engine.ModelCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("model cache hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// Same profile shape twice => one risk analysis.
	if hits, misses := engine.AssessmentCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("assessment cache hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestEngineConcurrentAssessSingleGeneration: concurrent first requests for
// the same model block on exactly one generation (singleflight), and all of
// them receive the same generated model.
func TestEngineConcurrentAssessSingleGeneration(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	engine := newTestEngine(t)
	profile := casestudy.PatientProfile()

	const callers = 16
	results := make([]*privascope.AssessResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every caller builds its own Model value: only content, not
			// pointer identity, may drive the cache.
			results[i], errs[i] = engine.Assess(context.Background(), casestudy.Surgery(), profile)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := engine.Generations(); got != 1 {
		t.Fatalf("concurrent Assess ran %d generations, want exactly 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i].PrivacyModel != results[0].PrivacyModel {
			t.Fatalf("caller %d received a different generated model", i)
		}
	}
}

// TestEngineDistinctModelsDistinctEntries: different models neither share a
// cache entry nor block each other's generation.
func TestEngineDistinctModelsDistinctEntries(t *testing.T) {
	engine := newTestEngine(t)
	ctx := context.Background()

	surgery, err := engine.Model(ctx, casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := engine.Model(ctx, casestudy.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if surgery == metrics {
		t.Fatal("distinct models shared one cache entry")
	}
	if got := engine.Generations(); got != 2 {
		t.Fatalf("generations = %d, want 2", got)
	}
	if got := engine.CachedModels(); got != 2 {
		t.Fatalf("cached models = %d, want 2", got)
	}
	// The mitigated surgery variant differs only in its ACL — it must still
	// get its own entry.
	if _, err := engine.Model(ctx, casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL())); err != nil {
		t.Fatal(err)
	}
	if got := engine.CachedModels(); got != 3 {
		t.Fatalf("cached models after policy-only variant = %d, want 3", got)
	}
}

// TestModelFingerprintDistinguishesSemanticDifferences: every pair of
// semantically different models must fingerprint differently, while
// identical content always fingerprints identically.
func TestModelFingerprintDistinguishesSemanticDifferences(t *testing.T) {
	base := casestudy.Surgery()

	fp := func(m *privascope.Model) string {
		t.Helper()
		s, err := privascope.ModelFingerprint(m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Determinism: two independent builds of the same content agree.
	if fp(base) != fp(casestudy.Surgery()) {
		t.Fatal("identical models fingerprint differently")
	}

	variants := map[string]*privascope.Model{
		"policy-change": casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL()),
		"no-policy":     casestudy.SurgeryWithPolicy(nil),
		"other-model":   casestudy.Metrics(),
		"renamed": func() *privascope.Model {
			m := *base
			m.Name = "renamed-clinic"
			return &m
		}(),
		"extra-actor": func() *privascope.Model {
			m := *base
			m.Actors = append(append([]privascope.Actor(nil), base.Actors...),
				privascope.Actor{ID: "auditor", Name: "Auditor"})
			return &m
		}(),
		"flow-order": func() *privascope.Model {
			m := *base
			flows := append([]privascope.Flow(nil), base.Flows...)
			flows[0], flows[1] = flows[1], flows[0]
			m.Flows = flows
			return &m
		}(),
		"synthetic": synth.Model(synth.ModelSpec{Services: 2, FieldsPerService: 2}),
	}
	seen := map[string]string{fp(base): "base"}
	for name, m := range variants {
		f := fp(m)
		if prev, dup := seen[f]; dup {
			t.Errorf("fingerprint collision between %q and %q", name, prev)
		}
		seen[f] = name
	}
}

// TestModelFingerprintRBACAndComposite: non-ACL policies contribute to the
// fingerprint instead of being silently ignored (the JSON codec omits them,
// so the fingerprint must encode them separately).
func TestModelFingerprintRBACAndComposite(t *testing.T) {
	rbacWith := func(assign bool) *accesscontrol.RBAC {
		rbac := accesscontrol.NewRBAC()
		if err := rbac.AddRole(accesscontrol.Role{Name: "clinician", Grants: []accesscontrol.Grant{{
			Actor:       "clinician",
			Datastore:   casestudy.StoreAppointments,
			Fields:      []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead},
		}}}); err != nil {
			t.Fatal(err)
		}
		if assign {
			if err := rbac.Assign(casestudy.ActorDoctor, "clinician"); err != nil {
				t.Fatal(err)
			}
		}
		return rbac
	}

	fp := func(m *privascope.Model) string {
		t.Helper()
		s, err := privascope.ModelFingerprint(m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	unassigned := fp(casestudy.SurgeryWithPolicy(rbacWith(false)))
	assigned := fp(casestudy.SurgeryWithPolicy(rbacWith(true)))
	if unassigned == assigned {
		t.Error("RBAC role assignment did not change the fingerprint")
	}
	composite := fp(casestudy.SurgeryWithPolicy(accesscontrol.NewComposite(rbacWith(true))))
	if composite == assigned {
		t.Error("composite wrapping did not change the fingerprint")
	}

	// Unknown policy implementations cannot be canonically encoded.
	if _, err := privascope.ModelFingerprint(casestudy.SurgeryWithPolicy(unknownPolicy{})); err == nil {
		t.Error("unknown policy type fingerprinted without error")
	}
}

// unknownPolicy is a custom Policy implementation the fingerprint cannot
// canonically encode.
type unknownPolicy struct{}

func (unknownPolicy) Allows(string, string, string, accesscontrol.Permission) bool { return false }
func (unknownPolicy) Explain(string, string, string, accesscontrol.Permission) accesscontrol.Decision {
	return accesscontrol.Decision{}
}
func (unknownPolicy) ActorsWith(string, string, accesscontrol.Permission) []string { return nil }

// TestEngineUnfingerprintableModelStillWorks: a model with a custom policy
// is generated per call (uncached) but everything else functions — and no
// engine-lifetime state accumulates for it (each call's LTS is a fresh
// pointer, so caching assessments under it would leak one entry per call).
func TestEngineUnfingerprintableModelStillWorks(t *testing.T) {
	engine := newTestEngine(t)
	model := casestudy.SurgeryWithPolicy(unknownPolicy{})
	ctx := context.Background()
	if _, err := engine.Model(ctx, model); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Model(ctx, model); err != nil {
		t.Fatal(err)
	}
	if got := engine.Generations(); got != 2 {
		t.Fatalf("generations = %d, want 2 (unfingerprintable models are uncached)", got)
	}
	if got := engine.CachedModels(); got != 0 {
		t.Fatalf("cached models = %d, want 0", got)
	}
	profile := casestudy.PatientProfile()
	if _, err := engine.Assess(ctx, model, profile); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.AssessPopulation(ctx, model, []privascope.UserProfile{profile}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := engine.AssessmentCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("assessment cache hits/misses = %d/%d, want 0/0 (uncacheable models must bypass engine-lifetime caches)", hits, misses)
	}
}

// TestEngineAssessCancelledNotCached: a cancelled generation returns
// ctx.Err(), is not cached, and does not prevent a later caller from
// generating successfully.
func TestEngineAssessCancelledNotCached(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	engine, err := privascope.NewEngine(privascope.EngineOptions{
		Generate: privascope.GenerateOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	model := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	profile := privascope.UserProfile{ID: "u", DefaultSensitivity: 0.5}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := engine.Assess(ctx, model, profile); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := engine.CachedModels(); got != 0 {
		t.Fatalf("cancelled generation left %d cache entries, want 0", got)
	}

	// A later caller with a live context generates for real.
	if _, err := engine.Assess(context.Background(), model, profile); err != nil {
		t.Fatalf("Assess after cancelled generation: %v", err)
	}
	if got := engine.Generations(); got < 2 {
		t.Fatalf("generations = %d, want at least 2 (cancelled + successful)", got)
	}
}

// TestEngineMonitor: the engine wires its cached model and shared analyzer
// into runtime monitors.
func TestEngineMonitor(t *testing.T) {
	engine := newTestEngine(t)
	monitor, err := engine.Monitor(context.Background(), casestudy.Surgery(), privascope.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := monitor.RegisterUser(casestudy.PatientProfile()); err != nil {
		t.Fatal(err)
	}
	if got := engine.Generations(); got != 1 {
		t.Fatalf("generations = %d, want 1", got)
	}
	// A second monitor for the same model reuses the cached LTS.
	if _, err := engine.Monitor(context.Background(), casestudy.Surgery(), privascope.MonitorConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := engine.Generations(); got != 1 {
		t.Fatalf("generations after second monitor = %d, want 1", got)
	}
}

// TestEngineAssessPopulation: population scans share the engine's assessment
// cache with single-user calls.
func TestEngineAssessPopulation(t *testing.T) {
	engine := newTestEngine(t)
	model := casestudy.Surgery()
	profiles := []privascope.UserProfile{
		casestudy.PatientProfile(),
		func() privascope.UserProfile {
			p := casestudy.PatientProfile()
			p.ID = "patient-2" // same shape, different user
			return p
		}(),
	}
	pop, err := engine.AssessPopulation(context.Background(), model, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Users) != 2 {
		t.Fatalf("population users = %d, want 2", len(pop.Users))
	}
	if pop.DistinctShapes != 1 {
		t.Fatalf("distinct shapes = %d, want 1 (same-shaped users share one analysis)", pop.DistinctShapes)
	}
	// The shared cache means a follow-up single-user Assess of the same
	// shape is a pure cache hit.
	if _, err := engine.Assess(context.Background(), model, profiles[0]); err != nil {
		t.Fatal(err)
	}
	if _, misses := engine.AssessmentCacheStats(); misses != 1 {
		t.Fatalf("assessment cache misses = %d, want 1", misses)
	}
}

// TestAssessContextSourceCompatibility: the context-free facade keeps
// working exactly as before, proving source compatibility of existing code.
func TestAssessContextSourceCompatibility(t *testing.T) {
	result, err := privascope.Assess(casestudy.Surgery(), casestudy.PatientProfile(), privascope.AssessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(result.Report.Render(), "Privacy risk assessment") {
		t.Error("report missing title")
	}
}
