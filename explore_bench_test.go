// Benchmarks and acceptance tests for the internal/explore subsystem: the
// arena-backed frontier allocator, symmetry-reduced exploration, and
// incremental regeneration from a previous exploration trace.

package privascope_test

import (
	"context"
	"testing"

	"privascope"
	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/synth"
)

// TestExploreAllocReduction pins the headline win of the arena/slab frontier
// allocator: generating the BenchmarkLTSGenerationParallel model (5 services,
// 15625 states) must allocate at least 5x less than the pre-explore engine.
// BENCH_6.json records 705,864 allocs/op for workers=1 on this exact model;
// the arena-backed driver has to stay under a fifth of that.
func TestExploreAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement generates a 15625-state model")
	}
	model := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	const baselineAllocs = 705864 // BENCH_6.json, BenchmarkLTSGenerationParallel/workers=1
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if max := float64(baselineAllocs) / 5; allocs > max {
		t.Fatalf("generation allocated %.0f objects, want <= %.0f (5x below the %d pre-arena baseline)",
			allocs, max, baselineAllocs)
	}
	t.Logf("allocs/generation = %.0f (baseline %d, reduction %.1fx)",
		allocs, baselineAllocs, float64(baselineAllocs)/allocs)
}

// BenchmarkExploreSymmetry compares plain exploration against the
// symmetry-reduced strategy on a model with four interchangeable replicas.
// Both produce byte-identical output; the symmetry run explores only the
// canonical quotient (reported as canonical_states) before expanding it back.
func BenchmarkExploreSymmetry(b *testing.B) {
	model := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 4, Fields: 2})
	for _, sym := range []struct {
		name string
		on   bool
	}{{"full", false}, {"symmetry", true}} {
		b.Run(sym.name, func(b *testing.B) {
			gen := core.NewGenerator(core.Options{Workers: 1,
				Explore: core.ExploreOptions{Symmetry: sym.on}})
			p, _, report, err := gen.GenerateTracedContext(context.Background(), model)
			if err != nil {
				b.Fatal(err)
			}
			states := p.Stats().States
			b.ReportMetric(float64(states), "states")
			if sym.on {
				b.ReportMetric(float64(report.CanonicalStates), "canonical_states")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := gen.GenerateTracedContext(context.Background(), model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreIncremental compares a cold regeneration against the two
// incremental tiers on a 15625-state model. A metadata edit (flow purpose
// relabel) leaves the state space, edge set and vectors provably unchanged,
// so regeneration reuses the previous trace wholesale and only remaps labels;
// a read-policy edit (one reader revoked) forces a driver replay that serves
// every expansion from the trace but still re-resolves each successor.
func BenchmarkExploreIncremental(b *testing.B) {
	before := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	afterMeta := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	afterMeta.Flows[0].Purpose = "relabelled"
	afterPolicy := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	afterPolicy.Policy = afterPolicy.Policy.(*accesscontrol.ACL).WithoutActor("maintenance", "store0")

	gen := core.NewGenerator(core.Options{Workers: 1})
	ctx := context.Background()
	prev, trace, _, err := gen.GenerateTracedContext(ctx, before)
	if err != nil {
		b.Fatal(err)
	}

	run := func(after *dataflow.Model, incremental bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var report *core.ExploreReport
				var err error
				if incremental {
					_, _, report, err = gen.RegenerateContext(ctx, prev, trace, after)
				} else {
					_, _, report, err = gen.GenerateTracedContext(ctx, after)
				}
				if err != nil {
					b.Fatal(err)
				}
				if incremental && report.Fallback {
					b.Fatalf("replay fell back: %s", report.FallbackReason)
				}
			}
		}
	}
	b.Run("cold", run(afterPolicy, false))
	b.Run("replay-metadata", run(afterMeta, true))
	b.Run("replay-policy", run(afterPolicy, true))
}
