# Development entry points. The bench target records the repository's
# performance trajectory: every run emits BENCH_$(N).json (benchmark ->
# iterations + ns/op, B/op, allocs/op and custom metrics) via cmd/benchjson,
# so successive PRs leave comparable perf snapshots behind.

GO ?= go
# N tags the benchmark snapshot; defaults to the commit count so successive
# snapshots sort naturally.
N ?= $(shell git rev-list --count HEAD 2>/dev/null || echo 0)
BENCH ?= .
BENCHTIME ?= 2s
# The benchmarks CI smokes on every push: the headline number of each
# subsystem plus the compiled-vs-reference pairs this PR introduced.
SMOKE_BENCH = LTSGeneration|MonitorThroughput|ValueRiskPipeline|EngineAssessCached|AnalyzeCompiled|AnalyzeReference|MinimizeCompiled|MinimizeReference|ModelStoreLoad|ClusterIngest|ExploreSymmetry|ExploreIncremental
# BASELINE is the perf-gate reference. It must be a like-for-like snapshot:
# per-op numbers from a 1-iteration smoke run include un-amortised setup, so
# they can only be compared against another 1-iteration run — never against
# the full-benchtime BENCH_<n>.json trajectory records. The committed smoke
# baseline is BENCH_smoke.json (re-record with `make bench-smoke N=smoke`
# when benchmark behaviour changes deliberately); if it is absent the newest
# BENCH_<n>.json is used as a best effort.
BASELINE ?= $(shell test -f BENCH_smoke.json && echo BENCH_smoke.json \
	|| ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_ci\.json$$' | sort -t_ -k2 -n | tail -n 1)
# Gated metrics for bench-compare: allocation counts are deterministic and
# gate tightly; ns/op from a 1-iteration smoke run is noisy, so it only
# catches order-of-magnitude blowups.
COMPARE_METRICS ?= allocs/op,ns/op=300
THRESHOLD_PCT ?= 25
# Packages holding property tests; only their test binaries register the
# -proptest.* flags, so soak runs must enumerate them instead of using ./...
PROP_PACKAGES = . ./internal/proptest ./internal/proptest/scenario ./internal/synth \
	./internal/core ./internal/lts ./internal/risk ./internal/anonymize \
	./internal/pseudorisk ./internal/runtime ./internal/modelstore ./internal/cluster \
	./internal/explore
ROUNDS ?= 64
FUZZTIME ?= 30s

.PHONY: build test vet bench bench-smoke bench-compare explore-bench test-props fuzz cache-clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the selected benchmarks (-benchmem) across every package and
# writes BENCH_$(N).json. Override BENCH / BENCHTIME / N as needed, e.g.:
#   make bench BENCH='Analyze' BENCHTIME=5s N=pr5
# The go-test run and the JSON conversion are separate steps (not a pipe) so
# a failing or non-compiling benchmark fails the target instead of being
# masked by benchjson's exit status.
bench:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem -benchtime=$(BENCHTIME) ./... > .bench_$(N).txt \
		|| (rm -f .bench_$(N).txt; exit 1)
	$(GO) run ./cmd/benchjson < .bench_$(N).txt > BENCH_$(N).json
	@rm -f .bench_$(N).txt
	@echo "wrote BENCH_$(N).json"

# bench-smoke is the CI variant: one iteration of the headline benchmarks,
# still recorded as BENCH_$(N).json so every CI run leaves a perf record.
bench-smoke:
	$(MAKE) bench BENCH='$(SMOKE_BENCH)' BENCHTIME=1x

# bench-compare is the perf-regression gate: re-run the smoke benchmarks as
# BENCH_ci.json and diff them against the newest committed snapshot with
# cmd/benchjson -compare; a gated metric regressing past its threshold exits
# nonzero and fails the build. Tune with e.g.:
#   make bench-compare THRESHOLD_PCT=10 COMPARE_METRICS='allocs/op,B/op,ns/op=300'
bench-compare:
	@test -n "$(BASELINE)" || { echo "bench-compare: no committed BENCH_*.json baseline found"; exit 1; }
	$(MAKE) bench-smoke N=ci
	@echo "comparing against $(BASELINE)"
	$(GO) run ./cmd/benchjson -compare -threshold-pct $(THRESHOLD_PCT) -metrics '$(COMPARE_METRICS)' $(BASELINE) BENCH_ci.json

# explore-bench runs just the exploration-strategy benchmarks (symmetry
# quotient vs full, cold vs incremental regeneration) with allocation stats —
# the quick loop for tuning the internal/explore subsystem.
explore-bench:
	$(GO) test -run='^$$' -bench='ExploreSymmetry|ExploreIncremental' -benchmem -benchtime=$(BENCHTIME) .

# test-props soaks the property suites with more rounds per property than the
# bounded default that plain `go test ./...` runs (ROUNDS=64, override at
# will). A failure prints the exact `-proptest.seed=N` one-liner to replay it.
test-props:
	$(GO) test -count=1 $(PROP_PACKAGES) -proptest.rounds=$(ROUNDS)

# fuzz runs every native fuzz target for FUZZTIME each (go test accepts one
# -fuzz pattern per package invocation, hence the separate lines). New
# crashers land in the package's testdata/fuzz/<Target>/ corpus; commit them.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzObserve -fuzztime=$(FUZZTIME) ./internal/runtime
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/anonymize
	$(GO) test -run='^$$' -fuzz=FuzzModelUnmarshal -fuzztime=$(FUZZTIME) ./internal/dataflow
	$(GO) test -run='^$$' -fuzz=FuzzPolicyConstruction -fuzztime=$(FUZZTIME) ./internal/accesscontrol
	$(GO) test -run='^$$' -fuzz=FuzzStoreDecode -fuzztime=$(FUZZTIME) ./internal/modelstore
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzHandoffDecode -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzModelDelta -fuzztime=$(FUZZTIME) ./internal/explore

# cache-clean removes local persistent model-cache directories (the -model-cache
# registries the CLIs and examples write next to the repo).
cache-clean:
	rm -rf .model-cache
	find . -name '*.psm' -not -path './.git/*' -delete
