# Development entry points. The bench target records the repository's
# performance trajectory: every run emits BENCH_$(N).json (benchmark ->
# iterations + ns/op, B/op, allocs/op and custom metrics) via cmd/benchjson,
# so successive PRs leave comparable perf snapshots behind.

GO ?= go
# N tags the benchmark snapshot; defaults to the commit count so successive
# snapshots sort naturally.
N ?= $(shell git rev-list --count HEAD 2>/dev/null || echo 0)
BENCH ?= .
BENCHTIME ?= 2s
# The benchmarks CI smokes on every push: the headline number of each
# subsystem plus the compiled-vs-reference pairs this PR introduced.
SMOKE_BENCH = LTSGeneration|MonitorThroughput|ValueRiskPipeline|EngineAssessCached|AnalyzeCompiled|AnalyzeReference|MinimizeCompiled|MinimizeReference

.PHONY: build test vet bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the selected benchmarks (-benchmem) across every package and
# writes BENCH_$(N).json. Override BENCH / BENCHTIME / N as needed, e.g.:
#   make bench BENCH='Analyze' BENCHTIME=5s N=pr5
# The go-test run and the JSON conversion are separate steps (not a pipe) so
# a failing or non-compiling benchmark fails the target instead of being
# masked by benchjson's exit status.
bench:
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchmem -benchtime=$(BENCHTIME) ./... > .bench_$(N).txt \
		|| (rm -f .bench_$(N).txt; exit 1)
	$(GO) run ./cmd/benchjson < .bench_$(N).txt > BENCH_$(N).json
	@rm -f .bench_$(N).txt
	@echo "wrote BENCH_$(N).json"

# bench-smoke is the CI variant: one iteration of the headline benchmarks,
# still recorded as BENCH_$(N).json so every CI run leaves a perf record.
bench-smoke:
	$(MAKE) bench BENCH='$(SMOKE_BENCH)' BENCHTIME=1x
