package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/dataflow"
)

func TestRunServesAndExitsAfterDuration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := dataflow.Save(casestudy.Surgery(), path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{"-model", path, "-duration", "300ms"}, &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("privaserve did not exit after the configured duration")
	}
	text := out.String()
	for _, want := range []string{"serving 3 datastores", casestudy.StoreEHR, "duration elapsed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run(context.Background(), []string{"-model", "missing.json"}, &out); err == nil {
		t.Error("missing model file accepted")
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := dataflow.Save(casestudy.Surgery(), path); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-model", path, "-profile", "missing.json", "-duration", "10ms"}, &out); err == nil {
		t.Error("missing profile accepted")
	}
}
