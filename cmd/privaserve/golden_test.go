package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/service"
)

// replayFixture writes the healthcare model, the patient profile and a
// recorded event trace to dir: one full consented medical-service run, the
// administrator's risky EHR read, unmodelled researcher behaviour, a denied
// operation, and one event for a different user (skipped by the replay).
func replayFixture(t *testing.T, dir string) (modelPath, profilePath, eventsPath string) {
	t.Helper()
	modelPath = filepath.Join(dir, "model.json")
	if err := dataflow.Save(casestudy.Surgery(), modelPath); err != nil {
		t.Fatal(err)
	}
	profile := casestudy.PatientProfile()
	profilePath = filepath.Join(dir, "profile.json")
	profileJSON, err := json.Marshal(profile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(profilePath, profileJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	userID := profile.ID
	events := append(casestudy.MedicalServiceEvents(userID),
		service.Event{Actor: casestudy.ActorAdministrator, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorResearcher, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorNurse, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}, Denied: true},
		service.Event{Actor: casestudy.ActorReceptionist, Action: core.ActionCollect, UserID: "someone-else",
			Fields: []string{casestudy.FieldName}},
	)
	eventsPath = filepath.Join(dir, "events.json")
	eventsJSON, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(eventsPath, eventsJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, profilePath, eventsPath
}

// replaySection extracts the deterministic replay block of privaserve's
// output (the per-event lines, their alerts and the completion summary),
// dropping the lines that legitimately vary between runs, such as server
// ports.
func replaySection(output string) string {
	var lines []string
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "replay") || strings.HasPrefix(line, "ALERT") {
			lines = append(lines, line)
		}
	}
	return strings.Join(lines, "\n")
}

// goldenReplay is the expected replay block for the healthcare fixture. The
// state IDs are stable because LTS generation is deterministic for every
// worker count, and the monitor is deterministic for every shard count.
const goldenReplay = `replay 1: collect([name date_of_birth]) by receptionist on  -> state s1
replay 2: create([name date_of_birth appointment]) by receptionist on appointments -> state s2
replay 3: read([name date_of_birth appointment]) by doctor on appointments -> state s3
replay 4: collect([medical_issues]) by doctor on  -> state s6
replay 5: create([name date_of_birth medical_issues diagnosis treatment]) by doctor on ehr -> state s8
replay 6: read([name treatment]) by nurse on ehr -> state s11
replay 7: read([diagnosis]) by administrator on ehr -> state s21
ALERT [risk]: medium-risk disclosure event for user "patient-1": non-allowed actor "administrator" may read date_of_birth, diagnosis, medical_issues, name, treatment from datastore "ehr" although no declared flow requires it; most sensitive field "diagnosis" (impact 0.90/high, likelihood 0.15/low) => risk medium
replay 8: read([diagnosis]) by researcher on ehr -> state s21
ALERT [unmodelled-behaviour]: observed read of [diagnosis] by "researcher" on "ehr" has no matching transition from state s21; the design model and the running system disagree
replay 9: read([diagnosis]) by nurse on ehr -> state s21
ALERT [denied-operation]: access-control denied read by "nurse" on ehr.[diagnosis]
replay complete: 9 events (1 skipped), 3 alerts`

// TestRunReplayGoldenAcrossShardCounts runs privaserve end-to-end against
// the healthcare example model — generation, monitor construction, event
// replay through the sharded batch path, then live serving until the
// duration elapses — and requires byte-identical replay output for 1, 4 and
// 16 monitor shards, matching the golden transcript.
func TestRunReplayGoldenAcrossShardCounts(t *testing.T) {
	modelPath, profilePath, eventsPath := replayFixture(t, t.TempDir())
	outputs := make(map[int]string)
	for _, shards := range []int{1, 4, 16} {
		var out strings.Builder
		err := run(context.Background(), []string{
			"-model", modelPath,
			"-profile", profilePath,
			"-events", eventsPath,
			"-monitor-shards", fmt.Sprint(shards),
			"-duration", "100ms",
		}, &out)
		if err != nil {
			t.Fatalf("shards=%d: run: %v", shards, err)
		}
		text := out.String()
		if want := fmt.Sprintf("monitor: %d shards", shards); !strings.Contains(text, want) {
			t.Errorf("shards=%d: output missing %q", shards, want)
		}
		if !strings.Contains(text, "duration elapsed; 3 alerts recorded") {
			t.Errorf("shards=%d: output missing the final alert count:\n%s", shards, text)
		}
		outputs[shards] = replaySection(text)
	}
	for _, shards := range []int{4, 16} {
		if outputs[shards] != outputs[1] {
			t.Errorf("replay output differs between 1 and %d shards:\n--- shards=1\n%s\n--- shards=%d\n%s",
				shards, outputs[1], shards, outputs[shards])
		}
	}
	if outputs[1] != goldenReplay {
		t.Errorf("replay output does not match the golden transcript:\n--- got\n%s\n--- want\n%s",
			outputs[1], goldenReplay)
	}
}
