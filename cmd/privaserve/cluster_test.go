package main

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// clusterAlertSection extracts the sorted ALERT lines and the replay summary
// of cluster-mode output.
func clusterAlertSection(output string) string {
	var lines []string
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "ALERT") || strings.HasPrefix(line, "cluster replay complete") {
			lines = append(lines, line)
		}
	}
	return strings.Join(lines, "\n")
}

// goldenClusterReplay is the expected alert block for the healthcare fixture
// in cluster mode: the same three alerts as the single-monitor golden
// transcript (sorted, because the cross-node merge has no global order),
// with the unregistered user's event counted instead of skipped.
const goldenClusterReplay = `ALERT [denied-operation]: access-control denied read by "nurse" on ehr.[diagnosis]
ALERT [risk]: medium-risk disclosure event for user "patient-1": non-allowed actor "administrator" may read date_of_birth, diagnosis, medical_issues, name, treatment from datastore "ehr" although no declared flow requires it; most sensitive field "diagnosis" (impact 0.90/high, likelihood 0.15/low) => risk medium
ALERT [unmodelled-behaviour]: observed read of [diagnosis] by "researcher" on "ehr" has no matching transition from state s21; the design model and the running system disagree
cluster replay complete: 10 events (1 unregistered), 3 alerts`

// TestRunClusterReplayGoldenAcrossNodeCounts runs privaserve -cluster N
// end-to-end — model generation, N ingest nodes, the router replaying the
// recorded trace over HTTP/2 binary frames, then live serving until the
// duration elapses — and requires the identical alert block for 1, 2 and 4
// nodes, matching the single-monitor golden alerts.
func TestRunClusterReplayGoldenAcrossNodeCounts(t *testing.T) {
	modelPath, profilePath, eventsPath := replayFixture(t, t.TempDir())
	outputs := make(map[int]string)
	for _, nodes := range []int{1, 2, 4} {
		var out strings.Builder
		err := run(context.Background(), []string{
			"-model", modelPath,
			"-profile", profilePath,
			"-events", eventsPath,
			"-cluster", fmt.Sprint(nodes),
			"-duration", "100ms",
		}, &out)
		if err != nil {
			t.Fatalf("cluster=%d: run: %v", nodes, err)
		}
		text := out.String()
		if want := fmt.Sprintf("cluster: %d ingest nodes", nodes); !strings.Contains(text, want) {
			t.Errorf("cluster=%d: output missing %q", nodes, want)
		}
		if !strings.Contains(text, "duration elapsed; 3 alerts recorded") {
			t.Errorf("cluster=%d: output missing the final alert count:\n%s", nodes, text)
		}
		outputs[nodes] = clusterAlertSection(text)
	}
	for _, nodes := range []int{2, 4} {
		if outputs[nodes] != outputs[1] {
			t.Errorf("alert block differs between 1 and %d nodes:\n--- nodes=1\n%s\n--- nodes=%d\n%s",
				nodes, outputs[1], nodes, outputs[nodes])
		}
	}
	if outputs[1] != goldenClusterReplay {
		t.Errorf("alert block does not match the golden transcript:\n--- got\n%s\n--- want\n%s",
			outputs[1], goldenClusterReplay)
	}
}
