package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"privascope"
	"privascope/internal/cluster"
	"privascope/internal/runtime"
)

// runClusterMode is privaserve with -cluster N: instead of one in-process
// monitor, it spawns N ingest nodes (each with its own monitor and HTTP
// server), routes all traffic through the consistent-hash Router, and merges
// the fleet's alerts. The datastore servers and the live event stream work
// exactly as in single-monitor mode; only the observation plane is
// distributed.
func runClusterMode(ctx context.Context, nodes int, generated *privascope.PrivacyModel,
	model *privascope.Model, profile privascope.UserProfile, shards int,
	eventsPath string, duration time.Duration, out io.Writer) error {

	c, err := cluster.StartLocal(generated, nodes,
		cluster.NodeConfig{Monitor: privascope.MonitorConfig{Shards: shards}},
		cluster.RouterConfig{})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Stop(ctx)
	}()
	fmt.Fprintf(out, "cluster: %d ingest nodes\n", nodes)
	for i, srv := range c.Servers {
		fmt.Fprintf(out, "  %-8s %s\n", c.Nodes[i].Name(), srv.URL())
	}
	// Failure detection: a node that misses consecutive liveness probes is
	// evicted, its users fail over to ring successors from their last
	// snapshot, and undelivered frames are re-routed.
	prober := c.StartProber(cluster.ProberConfig{
		OnEvict: func(name string, err error) {
			if err != nil {
				fmt.Fprintf(out, "cluster: evicting dead node %q failed: %v\n", name, err)
				return
			}
			fmt.Fprintf(out, "cluster: node %q evicted after failed liveness probes; users failed over (ring epoch %d)\n",
				name, c.Router.Epoch())
		},
	})
	defer prober.Stop()
	if err := c.Router.Register(ctx, []privascope.UserProfile{profile}); err != nil {
		return err
	}
	fmt.Fprintf(out, "monitoring user %q on node %q\n", profile.ID, c.Router.Ring().Owner(profile.ID))

	if eventsPath != "" {
		if err := replayEventsCluster(ctx, eventsPath, c, out); err != nil {
			return err
		}
	}

	datastores, err := privascope.StartCluster(model)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = datastores.Stop(ctx)
	}()
	stores := datastores.Datastores()
	sort.Strings(stores)
	fmt.Fprintf(out, "privaserve: serving %d datastores for model %q\n", len(stores), model.Name)
	for _, id := range stores {
		url, err := datastores.URL(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-20s %s\n", id, url)
	}

	events, cancel := datastores.Log().Subscribe(256)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	batches := make(chan []privascope.Event)
	go func() {
		defer close(batches)
		for {
			batch := privascope.NextEventBatch(events, 256)
			if batch == nil {
				return
			}
			select {
			case batches <- batch:
			case <-done:
				return
			}
		}
	}()

	var deadline <-chan time.Time
	if duration > 0 {
		timer := time.NewTimer(duration)
		defer timer.Stop()
		deadline = timer.C
	}
	finish := func() error {
		quiesce, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := c.Quiesce(quiesce); err != nil {
			return err
		}
		fmt.Fprintf(out, "privaserve: duration elapsed; %d alerts recorded\n", len(c.Alerts()))
		printMembershipStats(c, out)
		return nil
	}
	for {
		select {
		case batch, ok := <-batches:
			if !ok {
				return nil
			}
			// Unlike single-monitor mode, the whole stream is routed: the
			// ring partitions every user, registered or not (unregistered
			// users are counted at their node, not observed).
			if err := c.Router.SendBatch(ctx, batch); err != nil {
				fmt.Fprintf(out, "batch not routed: %v\n", err)
			}
		case <-ctx.Done():
			fmt.Fprintln(out, "privaserve: interrupted")
			return nil
		case <-deadline:
			return finish()
		}
	}
}

// replayEventsCluster streams a recorded JSON event trace through the
// Router, waits for the fleet to quiesce, and prints the merged alerts in a
// canonical (sorted) order — the cluster-mode analogue of replayEvents. No
// events are skipped: the ring owns every user ID.
func replayEventsCluster(ctx context.Context, path string, c *cluster.Local, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading events: %w", err)
	}
	var events []privascope.Event
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("parsing events: %w", err)
	}
	if err := c.Router.SendBatch(ctx, events); err != nil {
		return fmt.Errorf("routing events: %w", err)
	}
	if err := c.Quiesce(ctx); err != nil {
		return fmt.Errorf("quiescing cluster: %w", err)
	}
	var stats runtime.IngestStats
	for _, n := range c.Nodes {
		stats.Merge(n.Stats().Ingest)
	}
	alerts := c.Alerts()
	lines := make([]string, len(alerts))
	for i, alert := range alerts {
		lines[i] = fmt.Sprintf("ALERT [%s]: %s", alert.Kind, alert.Message)
	}
	sort.Strings(lines)
	for _, line := range lines {
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "cluster replay complete: %d events (%d unregistered), %d alerts\n",
		stats.Events, stats.Unregistered, len(alerts))
	printMembershipStats(c, out)
	return nil
}

// printMembershipStats summarizes the fault-tolerance counters after a run:
// the ring epoch (how many membership changes happened), retry/dedup volume,
// and how many user snapshots moved between nodes — split into planned
// rebalances and failovers from a dead node's last snapshot.
func printMembershipStats(c *cluster.Local, out io.Writer) {
	rs := c.Router.Stats()
	var deduped, handoffIn, handoffOut, failoverIn int64
	for _, n := range c.Nodes {
		ns := n.Stats()
		deduped += ns.DedupedFrames
		handoffIn += ns.HandoffInUsers
		handoffOut += ns.HandoffOutUsers
		failoverIn += ns.FailoverInUsers
	}
	fmt.Fprintf(out, "cluster: ring epoch %d; %d frames sent, %d retries, %d deduped, %d dropped\n",
		rs.Epoch, rs.FramesSent, rs.Retries, deduped, rs.Dropped)
	if handoffIn+handoffOut+failoverIn+rs.ReroutedEvents > 0 {
		fmt.Fprintf(out, "cluster: handoff %d users out / %d in (%d via failover); %d events re-routed\n",
			handoffOut, handoffIn, failoverIn, rs.ReroutedEvents)
	}
}
