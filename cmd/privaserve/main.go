// Command privaserve runs a data-flow model as a set of live HTTP datastore
// services with a runtime privacy monitor attached: every datastore of the
// model gets its own server, every operation is logged, and the monitor
// replays the event stream onto the generated privacy LTS, printing an alert
// whenever risky or unmodelled behaviour is observed.
//
// Usage:
//
//	privaserve -model model.json [-profile profile.json] [-duration 30s]
//
// The server addresses are printed on startup; drive them with any HTTP
// client (the X-Privascope-Actor header selects the acting actor). The
// process exits after -duration (0 means run until interrupted).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"time"

	"privascope"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "privaserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("privaserve", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the model document (JSON)")
	profilePath := fs.String("profile", "", "path to the monitored user's profile (JSON)")
	duration := fs.Duration("duration", 0, "how long to serve before exiting (0 = until interrupted)")
	workers := fs.Int("workers", 0, "parallel LTS-generation workers (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("the -model flag is required")
	}
	model, err := privascope.LoadModel(*modelPath)
	if err != nil {
		return err
	}

	generated, err := privascope.GenerateWithOptions(model, privascope.GenerateOptions{Workers: *workers})
	if err != nil {
		return err
	}
	monitor, err := privascope.NewMonitor(generated, privascope.MonitorConfig{})
	if err != nil {
		return err
	}
	profile, err := loadProfile(*profilePath, model)
	if err != nil {
		return err
	}
	if err := monitor.RegisterUser(profile); err != nil {
		return err
	}

	cluster, err := privascope.StartCluster(model)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = cluster.Stop(ctx)
	}()

	stores := cluster.Datastores()
	sort.Strings(stores)
	fmt.Fprintf(out, "privaserve: serving %d datastores for model %q\n", len(stores), model.Name)
	for _, id := range stores {
		url, err := cluster.URL(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-20s %s\n", id, url)
	}
	fmt.Fprintf(out, "monitoring user %q (consented services: %v)\n", profile.ID, profile.ConsentedServices)

	events, cancel := cluster.Log().Subscribe(256)
	defer cancel()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var deadline <-chan time.Time
	if *duration > 0 {
		timer := time.NewTimer(*duration)
		defer timer.Stop()
		deadline = timer.C
	}

	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return nil
			}
			if ev.UserID != profile.ID {
				continue
			}
			obs, err := monitor.Observe(ev)
			if err != nil {
				fmt.Fprintf(out, "event %d ignored: %v\n", ev.Seq, err)
				continue
			}
			fmt.Fprintf(out, "event %d: %s(%v) by %s on %s -> state %s\n",
				ev.Seq, ev.Action, ev.Fields, ev.Actor, ev.Datastore, obs.To)
			for _, alert := range obs.Alerts {
				fmt.Fprintf(out, "ALERT [%s]: %s\n", alert.Kind, alert.Message)
			}
		case <-stop:
			fmt.Fprintln(out, "privaserve: interrupted")
			return nil
		case <-deadline:
			fmt.Fprintf(out, "privaserve: duration elapsed; %d alerts recorded\n", len(monitor.Alerts()))
			return nil
		}
	}
}

func loadProfile(path string, model *privascope.Model) (privascope.UserProfile, error) {
	if path == "" {
		return privascope.UserProfile{
			ID:                 "monitored-user",
			ConsentedServices:  model.ServiceIDs(),
			DefaultSensitivity: 0.5,
		}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return privascope.UserProfile{}, fmt.Errorf("reading profile: %w", err)
	}
	var profile privascope.UserProfile
	if err := json.Unmarshal(data, &profile); err != nil {
		return privascope.UserProfile{}, fmt.Errorf("parsing profile: %w", err)
	}
	if err := profile.Validate(); err != nil {
		return privascope.UserProfile{}, err
	}
	return profile, nil
}
