// Command privaserve runs a data-flow model as a set of live HTTP datastore
// services with a runtime privacy monitor attached: every datastore of the
// model gets its own server, every operation is logged, and the monitor
// replays the event stream onto the generated privacy LTS, printing an alert
// whenever risky or unmodelled behaviour is observed.
//
// Usage:
//
//	privaserve -model model.json [-profile profile.json] [-duration 30s]
//	           [-monitor-shards 16] [-events replay.json] [-model-cache dir]
//	           [-cluster N]
//
// The server addresses are printed on startup; drive them with any HTTP
// client (the X-Privascope-Actor header selects the acting actor). The
// process exits after -duration (0 means run until interrupted).
//
// -monitor-shards spreads the monitor's per-user state over the given
// number of lock stripes (0 = one per CPU); alerts and observations are
// identical for every value. -events replays a JSON array of events through
// the monitor's batch-ingestion path before live serving starts, which is
// useful for smoke-testing a model against a recorded trace.
//
// -cluster N distributes the observation plane: N in-process ingest nodes
// (internal/cluster), each with its own monitor and HTTP server, fronted by
// a consistent-hash router that streams binary event frames to each user's
// owner node. The alert set is identical to single-monitor mode for every N;
// each node also exposes /metrics and /debug/pprof.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"time"

	"privascope"
)

func main() {
	// Ctrl-C during startup (generation, replay) cancels the in-flight work
	// and exits non-zero; once the servers are up, the same signal triggers
	// the graceful "interrupted" shutdown path inside run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "privaserve: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "privaserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("privaserve", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the model document (JSON)")
	profilePath := fs.String("profile", "", "path to the monitored user's profile (JSON)")
	duration := fs.Duration("duration", 0, "how long to serve before exiting (0 = until interrupted)")
	workers := fs.Int("workers", 0, "parallel LTS-generation workers (0 = one per CPU)")
	symmetry := fs.Bool("symmetry", false, "symmetry-reduced LTS generation (identical output, fewer explored states)")
	incremental := fs.Bool("incremental", false, "regenerate incrementally from the engine's previous exploration when models differ only in metadata or policy")
	monitorShards := fs.Int("monitor-shards", 0, "monitor lock stripes for per-user state (0 = one per CPU)")
	eventsPath := fs.String("events", "", "path to a JSON array of events to replay through the monitor at startup")
	modelCache := fs.String("model-cache", "", "directory of the persistent compiled-model cache (empty = off)")
	clusterNodes := fs.Int("cluster", 0, "spawn N in-process ingest nodes behind a consistent-hash router (0 = single monitor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("the -model flag is required")
	}
	model, err := privascope.LoadModel(*modelPath)
	if err != nil {
		return err
	}

	// With -model-cache, a warm cache entry makes startup skip LTS generation
	// and load the compiled model straight from disk.
	engine, err := privascope.NewEngine(privascope.EngineOptions{
		Generate: privascope.GenerateOptions{Workers: *workers,
			Explore: privascope.ExploreOptions{Symmetry: *symmetry}},
		CacheDir:    *modelCache,
		Incremental: *incremental,
	})
	if err != nil {
		return err
	}
	generated, err := engine.Model(ctx, model)
	if err != nil {
		return err
	}
	profile, err := loadProfile(*profilePath, model)
	if err != nil {
		return err
	}
	if *clusterNodes > 0 {
		return runClusterMode(ctx, *clusterNodes, generated, model, profile,
			*monitorShards, *eventsPath, *duration, out)
	}
	monitor, err := privascope.NewMonitor(generated, privascope.MonitorConfig{Shards: *monitorShards})
	if err != nil {
		return err
	}
	if err := monitor.RegisterUserContext(ctx, profile); err != nil {
		return err
	}
	fmt.Fprintf(out, "monitor: %d shards\n", monitor.Shards())

	if *eventsPath != "" {
		if err := replayEvents(ctx, *eventsPath, monitor, profile.ID, out); err != nil {
			return err
		}
	}

	cluster, err := privascope.StartCluster(model)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = cluster.Stop(ctx)
	}()

	stores := cluster.Datastores()
	sort.Strings(stores)
	fmt.Fprintf(out, "privaserve: serving %d datastores for model %q\n", len(stores), model.Name)
	for _, id := range stores {
		url, err := cluster.URL(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-20s %s\n", id, url)
	}
	fmt.Fprintf(out, "monitoring user %q (consented services: %v)\n", profile.ID, profile.ConsentedServices)

	events, cancel := cluster.Log().Subscribe(256)
	defer cancel()

	// Batch the live stream: one goroutine drains the subscription in bursts
	// (privascope.NextEventBatch) and the monitor ingests each burst through
	// its sharded batch path. The done channel unblocks a pending send when
	// run returns before the subscription closes (deadline or interrupt), so
	// in-process callers (tests) do not leak the goroutine.
	done := make(chan struct{})
	defer close(done)
	batches := make(chan []privascope.Event)
	go func() {
		defer close(batches)
		for {
			batch := privascope.NextEventBatch(events, 256)
			if batch == nil {
				return
			}
			select {
			case batches <- batch:
			case <-done:
				return
			}
		}
	}()

	var deadline <-chan time.Time
	if *duration > 0 {
		timer := time.NewTimer(*duration)
		defer timer.Stop()
		deadline = timer.C
	}

	for {
		select {
		case batch, ok := <-batches:
			if !ok {
				return nil
			}
			mine := batch[:0:0]
			for _, ev := range batch {
				if ev.UserID == profile.ID {
					mine = append(mine, ev)
				}
			}
			if len(mine) == 0 {
				continue
			}
			observations, err := monitor.ObserveBatch(mine)
			if err != nil {
				fmt.Fprintf(out, "batch partially ignored: %v\n", err)
			}
			for i, obs := range observations {
				ev := mine[i]
				if obs.From == "" {
					// Zero observation: the event errored (see the joined
					// error above) and was never applied.
					fmt.Fprintf(out, "event %d ignored\n", ev.Seq)
					continue
				}
				fmt.Fprintf(out, "event %d: %s(%v) by %s on %s -> state %s\n",
					ev.Seq, ev.Action, ev.Fields, ev.Actor, ev.Datastore, obs.To)
				for _, alert := range obs.Alerts {
					fmt.Fprintf(out, "ALERT [%s]: %s\n", alert.Kind, alert.Message)
				}
			}
		case <-ctx.Done():
			// Graceful shutdown: the deferred cluster stop and subscription
			// cancel run on the way out.
			fmt.Fprintln(out, "privaserve: interrupted")
			return nil
		case <-deadline:
			fmt.Fprintf(out, "privaserve: duration elapsed; %d alerts recorded\n", len(monitor.Alerts()))
			return nil
		}
	}
}

// replayEvents feeds a recorded JSON event trace through the monitor's batch
// path, printing one line per event plus any alerts. Events for users other
// than the monitored one are skipped. Cancelling ctx aborts the replay
// mid-batch.
func replayEvents(ctx context.Context, path string, monitor *privascope.Monitor, userID string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading events: %w", err)
	}
	var events []privascope.Event
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("parsing events: %w", err)
	}
	replay := make([]privascope.Event, 0, len(events))
	skipped := 0
	for _, ev := range events {
		if ev.UserID != userID {
			skipped++
			continue
		}
		replay = append(replay, ev)
	}
	observations, err := monitor.ObserveBatchContext(ctx, replay)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("replaying events: %w", err)
	}
	for i, obs := range observations {
		ev := replay[i]
		fmt.Fprintf(out, "replay %d: %s(%v) by %s on %s -> state %s\n",
			i+1, ev.Action, ev.Fields, ev.Actor, ev.Datastore, obs.To)
		for _, alert := range obs.Alerts {
			fmt.Fprintf(out, "ALERT [%s]: %s\n", alert.Kind, alert.Message)
		}
	}
	fmt.Fprintf(out, "replay complete: %d events (%d skipped), %d alerts\n",
		len(replay), skipped, len(monitor.Alerts()))
	return nil
}

func loadProfile(path string, model *privascope.Model) (privascope.UserProfile, error) {
	if path == "" {
		return privascope.UserProfile{
			ID:                 "monitored-user",
			ConsentedServices:  model.ServiceIDs(),
			DefaultSensitivity: 0.5,
		}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return privascope.UserProfile{}, fmt.Errorf("reading profile: %w", err)
	}
	var profile privascope.UserProfile
	if err := json.Unmarshal(data, &profile); err != nil {
		return privascope.UserProfile{}, fmt.Errorf("parsing profile: %w", err)
	}
	if err := profile.Validate(); err != nil {
		return privascope.UserProfile{}, err
	}
	return profile, nil
}
