package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/dataflow"
)

// writeFixtures saves the surgery model, its mitigated variant and the
// patient profile into a temporary directory.
func writeFixtures(t *testing.T) (modelPath, mitigatedPath, profilePath string) {
	t.Helper()
	dir := t.TempDir()
	modelPath = filepath.Join(dir, "model.json")
	if err := dataflow.Save(casestudy.Surgery(), modelPath); err != nil {
		t.Fatal(err)
	}
	mitigatedPath = filepath.Join(dir, "mitigated.json")
	if err := dataflow.Save(casestudy.SurgeryWithPolicy(casestudy.MitigatedSurgeryACL()), mitigatedPath); err != nil {
		t.Fatal(err)
	}
	profilePath = filepath.Join(dir, "profile.json")
	data, err := json.Marshal(casestudy.PatientProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(profilePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, mitigatedPath, profilePath
}

func TestRunFullPipeline(t *testing.T) {
	modelPath, mitigatedPath, profilePath := writeFixtures(t)
	dir := t.TempDir()
	ltsPath := filepath.Join(dir, "lts.dot")
	jsonPath := filepath.Join(dir, "lts.json")

	var out strings.Builder
	err := run(context.Background(), []string{
		"-model", modelPath,
		"-profile", profilePath,
		"-mitigated", mitigatedPath,
		"-lts", ltsPath,
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"doctors-surgery", "Findings", "administrator", "medium", "Risk change after mitigation"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if data, err := os.ReadFile(ltsPath); err != nil || !strings.HasPrefix(string(data), "digraph") {
		t.Errorf("LTS DOT not written correctly: %v", err)
	}
	if data, err := os.ReadFile(jsonPath); err != nil || !json.Valid(data) {
		t.Errorf("LTS JSON not written correctly: %v", err)
	}
}

func TestRunMarkdownAndDefaults(t *testing.T) {
	modelPath, _, _ := writeFixtures(t)
	var out strings.Builder
	if err := run(context.Background(), []string{"-model", modelPath, "-markdown", "-ordering", "data-driven"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "# Privacy risk analysis") {
		t.Error("markdown header missing")
	}
}

func TestRunErrors(t *testing.T) {
	modelPath, _, profilePath := writeFixtures(t)
	var out strings.Builder
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run(context.Background(), []string{"-model", "does-not-exist.json"}, &out); err == nil {
		t.Error("missing model file accepted")
	}
	if err := run(context.Background(), []string{"-model", modelPath, "-ordering", "chaotic"}, &out); err == nil {
		t.Error("unknown ordering accepted")
	}
	if err := run(context.Background(), []string{"-model", modelPath, "-profile", "missing.json"}, &out); err == nil {
		t.Error("missing profile accepted")
	}
	if err := run(context.Background(), []string{"-model", modelPath, "-profile", profilePath, "-mitigated", "missing.json"}, &out); err == nil {
		t.Error("missing mitigated model accepted")
	}
}
