// Command privarisk runs the model-driven privacy risk pipeline over a
// data-flow model document: it generates the formal privacy model (LTS),
// analyses the risk of unwanted disclosure for a user profile, and prints a
// report. Optionally it repeats the analysis with a mitigated model and
// prints the before/after risk comparison of case study IV-A.
//
// Usage:
//
//	privarisk -model model.json -profile profile.json [flags]
//
// Flags:
//
//	-model string      path to the model document (JSON, with ACL)
//	-profile string    path to the user profile (JSON); when omitted, a
//	                   profile that consents to every service is used
//	-mitigated string  path to a second model document to compare against
//	-lts string        write the generated LTS to this DOT file
//	-json string       write the generated LTS to this JSON file
//	-markdown          render the report as Markdown instead of plain text
//	-ordering string   flow ordering: sequential (default) or data-driven
//	-model-cache string directory of the persistent compiled-model cache;
//	                   warm entries skip LTS generation entirely
//
// The examples/healthcare program produces the same analysis for the paper's
// doctors'-surgery case study without needing input files.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"privascope"
	"privascope/internal/core"
	"privascope/internal/report"
	"privascope/internal/risk"
)

func main() {
	// Ctrl-C cancels in-flight generation/analysis; the run aborts with
	// context.Canceled and the process exits non-zero instead of being
	// hard-killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "privarisk: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "privarisk:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("privarisk", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the model document (JSON)")
	profilePath := fs.String("profile", "", "path to the user profile (JSON)")
	mitigatedPath := fs.String("mitigated", "", "path to a mitigated model document to compare against")
	ltsPath := fs.String("lts", "", "write the generated LTS to this DOT file")
	jsonPath := fs.String("json", "", "write the generated LTS to this JSON file")
	markdown := fs.Bool("markdown", false, "render the report as Markdown")
	ordering := fs.String("ordering", "sequential", "flow ordering: sequential or data-driven")
	modelCache := fs.String("model-cache", "", "directory of the persistent compiled-model cache (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("the -model flag is required")
	}

	model, err := privascope.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	opts := core.Options{}
	switch *ordering {
	case "sequential", "":
		opts.FlowOrdering = core.OrderSequential
	case "data-driven":
		opts.FlowOrdering = core.OrderDataDriven
	default:
		return fmt.Errorf("unknown ordering %q (want sequential or data-driven)", *ordering)
	}

	profile, err := loadProfile(*profilePath, model)
	if err != nil {
		return err
	}

	// One Engine drives both the base and the mitigated analysis: models are
	// cached by content fingerprint and the profile's risk analysis is shared
	// per shape, so re-running with the same inputs never regenerates.
	engine, err := privascope.NewEngine(privascope.EngineOptions{Generate: opts, Risk: risk.Config{}, CacheDir: *modelCache})
	if err != nil {
		return err
	}
	generated, err := engine.Model(ctx, model)
	if err != nil {
		return err
	}
	assessment, err := engine.Analyze(ctx, model, profile)
	if err != nil {
		return err
	}

	doc := report.NewReport("Privacy risk analysis: " + model.Name)
	for _, s := range report.ModelSummary(generated).Sections() {
		doc.AddTable(s.Title, s.Body, s.Table)
	}
	for _, s := range report.DisclosureAssessment(assessment).Sections() {
		doc.AddTable(s.Title, s.Body, s.Table)
	}

	if *mitigatedPath != "" {
		mitigated, err := privascope.LoadModel(*mitigatedPath)
		if err != nil {
			return fmt.Errorf("loading mitigated model: %w", err)
		}
		if _, err := engine.Model(ctx, mitigated); err != nil {
			return fmt.Errorf("generating mitigated model: %w", err)
		}
		mitigatedAssessment, err := engine.Analyze(ctx, mitigated, profile)
		if err != nil {
			return err
		}
		changes := privascope.CompareAssessments(assessment, mitigatedAssessment)
		doc.AddTable("Risk change after mitigation",
			fmt.Sprintf("Overall risk: %s -> %s", assessment.OverallRisk, mitigatedAssessment.OverallRisk),
			report.RiskComparison(changes))
	}

	if *ltsPath != "" {
		if err := os.WriteFile(*ltsPath, []byte(generated.DOT(core.DOTOptions{Name: "privacy_lts"})), 0o644); err != nil {
			return fmt.Errorf("writing LTS DOT: %w", err)
		}
	}
	if *jsonPath != "" {
		data, err := json.Marshal(generated)
		if err != nil {
			return fmt.Errorf("encoding LTS: %w", err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("writing LTS JSON: %w", err)
		}
	}

	if *markdown {
		fmt.Fprint(out, doc.RenderMarkdown())
	} else {
		fmt.Fprint(out, doc.Render())
	}
	return nil
}

// loadProfile reads the user profile, or builds a consent-to-everything
// profile when no path is given.
func loadProfile(path string, model *privascope.Model) (privascope.UserProfile, error) {
	if path == "" {
		return privascope.UserProfile{
			ID:                 "default-user",
			ConsentedServices:  model.ServiceIDs(),
			DefaultSensitivity: 0.5,
		}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return privascope.UserProfile{}, fmt.Errorf("reading profile: %w", err)
	}
	var profile privascope.UserProfile
	if err := json.Unmarshal(data, &profile); err != nil {
		return privascope.UserProfile{}, fmt.Errorf("parsing profile: %w", err)
	}
	if err := profile.Validate(); err != nil {
		return privascope.UserProfile{}, err
	}
	return profile, nil
}
