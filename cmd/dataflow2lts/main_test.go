package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/dataflow"
)

func modelFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := dataflow.Save(casestudy.Surgery(), path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := modelFixture(t)
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{"dataflow", []string{"-model", path, "-mode", "dataflow"},
			[]string{"digraph", "receptionist", "anon_ehr"}},
		{"dataflow single service", []string{"-model", path, "-mode", "dataflow", "-service", casestudy.ServiceMedical},
			[]string{"digraph", "nurse"}},
		{"lts", []string{"-model", path, "-mode", "lts", "-verbose-states"},
			[]string{"digraph privacy_lts", "has("}},
		{"stats", []string{"-model", path, "-mode", "stats", "-ordering", "data-driven"},
			[]string{"states", "transitions"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(context.Background(), tt.args, &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range tt.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}

func TestRunLTSJSON(t *testing.T) {
	path := modelFixture(t)
	var out strings.Builder
	if err := run(context.Background(), []string{"-model", path, "-mode", "lts-json"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if _, ok := doc["states"]; !ok {
		t.Error("JSON missing states")
	}
}

func TestRunErrors(t *testing.T) {
	path := modelFixture(t)
	var out strings.Builder
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run(context.Background(), []string{"-model", "missing.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), []string{"-model", path, "-mode", "hologram"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(context.Background(), []string{"-model", path, "-mode", "dataflow", "-service", "ghost"}, &out); err == nil {
		t.Error("unknown service accepted")
	}
}

// TestRunWorkersDeterministic: the -workers flag must not change the emitted
// LTS — the JSON document is byte-identical for any worker count.
func TestRunWorkersDeterministic(t *testing.T) {
	path := modelFixture(t)
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "4", "8"} {
		var out strings.Builder
		if err := run(context.Background(), []string{"-model", path, "-mode", "lts-json", "-workers", workers}, &out); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		outputs = append(outputs, out.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("output with workers=%d differs from workers=1", []int{1, 4, 8}[i])
		}
	}
}

// TestRunModelCache: with -model-cache, the first run persists the compiled
// model and the second run (a fresh process in real use) loads it instead of
// regenerating — and emits byte-identical output either way.
func TestRunModelCache(t *testing.T) {
	path := modelFixture(t)
	cache := filepath.Join(t.TempDir(), "cache")
	outputs := make([]string, 2)
	for i := range outputs {
		var out strings.Builder
		if err := run(context.Background(), []string{"-model", path, "-mode", "lts-json", "-model-cache", cache}, &out); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Error("cached run emitted different output")
	}
	entries, err := filepath.Glob(filepath.Join(cache, "*.psm"))
	if err != nil || len(entries) != 1 {
		t.Errorf("cache directory holds %d artifacts (err %v), want 1", len(entries), err)
	}
	var plain strings.Builder
	if err := run(context.Background(), []string{"-model", path, "-mode", "lts-json"}, &plain); err != nil {
		t.Fatalf("uncached run: %v", err)
	}
	if plain.String() != outputs[0] {
		t.Error("cache-loaded output differs from the uncached run")
	}
}
