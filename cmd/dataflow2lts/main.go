// Command dataflow2lts converts a data-flow model document into its
// visualisations and formal model: the data-flow diagrams of the paper's
// Fig. 1 (Graphviz DOT), and the generated privacy LTS of Figs. 3/4 (DOT or
// JSON).
//
// Usage:
//
//	dataflow2lts -model model.json -mode dataflow            # Fig. 1 DOT
//	dataflow2lts -model model.json -mode dataflow -service medical-service
//	dataflow2lts -model model.json -mode lts                 # privacy LTS DOT
//	dataflow2lts -model model.json -mode lts-json            # privacy LTS JSON
//	dataflow2lts -model model.json -mode stats               # model and LTS sizes
//
// Large models generate faster with -workers N (0, the default, uses one
// worker per CPU); the emitted LTS is byte-identical for any worker count.
//
// Ctrl-C (SIGINT) cancels an in-flight generation: the exploration workers
// observe the cancellation, the partial state space is discarded, and the
// tool exits non-zero ("interrupted") instead of being hard-killed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"privascope"
	"privascope/internal/core"
	"privascope/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dataflow2lts: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "dataflow2lts:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dataflow2lts", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the model document (JSON)")
	mode := fs.String("mode", "dataflow", "output: dataflow, lts, lts-json, or stats")
	serviceID := fs.String("service", "", "restrict the data-flow diagram to one service")
	ordering := fs.String("ordering", "sequential", "flow ordering: sequential or data-driven")
	verbose := fs.Bool("verbose-states", false, "list state variables inside LTS nodes")
	workers := fs.Int("workers", 0, "parallel exploration workers (0 = one per CPU); the output is identical for any count")
	symmetry := fs.Bool("symmetry", false, "explore one canonical representative per orbit of interchangeable actors; the output is identical either way")
	modelCache := fs.String("model-cache", "", "directory of the persistent compiled-model cache (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("the -model flag is required")
	}
	model, err := privascope.LoadModel(*modelPath)
	if err != nil {
		return err
	}

	opts := core.Options{Workers: *workers, Explore: core.ExploreOptions{Symmetry: *symmetry}}
	if *ordering == "data-driven" {
		opts.FlowOrdering = core.OrderDataDriven
	}
	// The engine caches compiled models by content fingerprint; with
	// -model-cache it also persists them, so repeat conversions of an
	// unchanged model skip LTS generation entirely.
	engine, err := privascope.NewEngine(privascope.EngineOptions{Generate: opts, CacheDir: *modelCache})
	if err != nil {
		return err
	}

	switch *mode {
	case "dataflow":
		if *serviceID != "" {
			dot, err := model.ServiceDOT(*serviceID)
			if err != nil {
				return err
			}
			fmt.Fprint(out, dot)
			return nil
		}
		fmt.Fprint(out, model.DOT())
		return nil
	case "lts":
		generated, err := engine.Model(ctx, model)
		if err != nil {
			return err
		}
		fmt.Fprint(out, generated.DOT(core.DOTOptions{Name: "privacy_lts", VerboseStates: *verbose}))
		return nil
	case "lts-json":
		generated, err := engine.Model(ctx, model)
		if err != nil {
			return err
		}
		data, err := json.Marshal(generated)
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	case "stats":
		generated, err := engine.Model(ctx, model)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report.ModelSummary(generated).Render())
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want dataflow, lts, lts-json, or stats)", *mode)
	}
}
