package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/casestudy"
	"privascope/internal/pseudorisk"
)

func tableIFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "records.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anonymize.WriteCSV(f, casestudy.TableIRecords()); err != nil {
		t.Fatal(err)
	}
	return path
}

func rawFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "raw.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anonymize.WriteCSV(f, casestudy.RawMetricsRecords()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReproducesTableI(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-confidence", "0.9",
		"-scenarios", "height;age;age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"height risk", "age risk", "age+height risk", "2/4", "3/4", "Violations:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Final violations row carries 0 2 4.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	last := strings.Fields(lines[len(lines)-1])
	if len(last) < 3 || last[len(last)-3] != "0" || last[len(last)-2] != "2" || last[len(last)-1] != "4" {
		t.Errorf("violations row = %v", last)
	}
}

func TestRunDefaultScenariosAndThreshold(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	// Default scenarios: each non-target column alone, then both.
	if err := run([]string{"-data", path, "-target", "weight", "-closeness", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "age+height risk") {
		t.Error("default scenario progression missing combined column")
	}
	// A 50% violation cap is exceeded by the age+height scenario.
	err := run([]string{"-data", path, "-target", "weight", "-closeness", "5", "-max-violations", "50"}, &out)
	if !errors.Is(err, pseudorisk.ErrThresholdExceeded) {
		t.Errorf("error = %v, want ErrThresholdExceeded", err)
	}
}

func TestRunWithReidentificationReport(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-reident", "0.5",
		"-quasi", "age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"Re-identification risk", "prosecutor", "marketer", "0.500", "6/6", "smallest equivalence class"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWithKAnonymisation(t *testing.T) {
	path := rawFixture(t)
	var out strings.Builder
	err := run([]string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-k", "2",
		"-quasi", "age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"k-anonymisation", "equivalence classes", "generalisation loss", "Per-record value risks"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-data", "missing.csv", "-target", "weight"}, &out); err == nil {
		t.Error("missing data file accepted")
	}
	path := tableIFixture(t)
	if err := run([]string{"-data", path, "-target", "ghost"}, &out); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run([]string{"-data", path, "-target", "weight", "-k", "2"}, &out); err == nil {
		t.Error("-k without -quasi accepted")
	}
}
