package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/casestudy"
	"privascope/internal/pseudorisk"
)

func tableIFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "records.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anonymize.WriteCSV(f, casestudy.TableIRecords()); err != nil {
		t.Fatal(err)
	}
	return path
}

func rawFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "raw.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anonymize.WriteCSV(f, casestudy.RawMetricsRecords()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReproducesTableI(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-confidence", "0.9",
		"-scenarios", "height;age;age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"height risk", "age risk", "age+height risk", "2/4", "3/4", "Violations:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Final violations row carries 0 2 4.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	last := strings.Fields(lines[len(lines)-1])
	if len(last) < 3 || last[len(last)-3] != "0" || last[len(last)-2] != "2" || last[len(last)-1] != "4" {
		t.Errorf("violations row = %v", last)
	}
}

func TestRunDefaultScenariosAndThreshold(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	// Default scenarios: each non-target column alone, then both.
	if err := run(context.Background(), []string{"-data", path, "-target", "weight", "-closeness", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "age+height risk") {
		t.Error("default scenario progression missing combined column")
	}
	// A 50% violation cap is exceeded by the age+height scenario.
	err := run(context.Background(), []string{"-data", path, "-target", "weight", "-closeness", "5", "-max-violations", "50"}, &out)
	if !errors.Is(err, pseudorisk.ErrThresholdExceeded) {
		t.Errorf("error = %v, want ErrThresholdExceeded", err)
	}
}

func TestRunWithReidentificationReport(t *testing.T) {
	path := tableIFixture(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-reident", "0.5",
		"-quasi", "age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"Re-identification risk", "prosecutor", "marketer", "0.500", "6/6", "smallest equivalence class"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWithKAnonymisation(t *testing.T) {
	path := rawFixture(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-data", path,
		"-target", "weight",
		"-closeness", "5",
		"-k", "2",
		"-quasi", "age,height",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"k-anonymisation", "equivalence classes", "generalisation loss", "Per-record value risks"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run(context.Background(), []string{"-data", "missing.csv", "-target", "weight"}, &out); err == nil {
		t.Error("missing data file accepted")
	}
	path := tableIFixture(t)
	if err := run(context.Background(), []string{"-data", path, "-target", "ghost"}, &out); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run(context.Background(), []string{"-data", path, "-target", "weight", "-k", "2"}, &out); err == nil {
		t.Error("-k without -quasi accepted")
	}
}

// syntheticCSV writes a deterministic dataset with enough rows to cross the
// parallel class-building threshold, mixing numeric, interval and
// categorical cells.
func syntheticCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synthetic.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "age,height,city,weight")
	cities := []string{"berlin", "paris", "london", "madrid"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < rows; i++ {
		lo := 150 + 10*rng.Intn(4)
		fmt.Fprintf(w, "%d,%d-%d,%s,%d\n",
			20+10*rng.Intn(6), lo, lo+10, cities[rng.Intn(len(cities))], 45+rng.Intn(90))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	path := syntheticCSV(t, 3000)
	outputs := make(map[int]string)
	for _, workers := range []int{1, 4, 16} {
		var out strings.Builder
		err := run(context.Background(), []string{
			"-data", path,
			"-target", "weight",
			"-closeness", "5",
			"-scenarios", "height;age;age,height;city,age",
			"-reident", "0.2",
			"-quasi", "age,height",
			"-workers", strconv.Itoa(workers),
			"-max-rows", "50",
		}, &out)
		if err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		outputs[workers] = out.String()
	}
	if outputs[1] != outputs[4] {
		t.Error("output differs between -workers 1 and 4")
	}
	if outputs[1] != outputs[16] {
		t.Error("output differs between -workers 1 and 16")
	}
	if !strings.Contains(outputs[1], "more records") {
		t.Error("-max-rows did not elide per-record rows")
	}
}

func TestRunRejectsDuplicateHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.csv")
	if err := os.WriteFile(path, []byte("age,age\n23,24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run(context.Background(), []string{"-data", path, "-target", "age"}, &out)
	if err == nil || !strings.Contains(err.Error(), "duplicate CSV header") {
		t.Errorf("error = %v, want duplicate-header rejection", err)
	}
}
