// Command anonrisk computes the pseudonymisation value risks of a dataset
// (the analysis behind the paper's Table I): for each record it reports the
// probability that an adversary who sees the visible quasi-identifiers can
// pin the target field's value to within the closeness range, and counts the
// violations of a confidence policy.
//
// Usage:
//
//	anonrisk -data records.csv -target weight -closeness 5 -confidence 0.9 \
//	         -scenarios "height;age;age,height"
//
// The CSV file's first row is the header; interval cells are written as
// "lo-hi" and suppressed cells as "*". With -k and -quasi the tool first
// k-anonymises the raw dataset before scoring it, and reports the utility
// loss of the anonymisation.
//
// The pipeline is built for large tables: the CSV is streamed into a
// column-oriented table with interned cells, equivalence classes are
// computed once per quasi-identifier set and shared across scenarios and
// attacker models, and -workers fans class building and record scoring out
// over a worker pool (0 = one per CPU) without changing a byte of output.
// -max-rows caps the per-record rows printed for huge datasets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"privascope/internal/anonymize"
	"privascope/internal/pseudorisk"
	"privascope/internal/report"
)

func main() {
	// Ctrl-C cancels the in-flight scenario evaluation: class building and
	// record scoring observe the cancellation at chunk boundaries and the
	// tool exits non-zero instead of being hard-killed mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "anonrisk: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "anonrisk:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("anonrisk", flag.ContinueOnError)
	dataPath := fs.String("data", "", "path to the dataset (CSV)")
	target := fs.String("target", "", "sensitive field whose value must not be inferable")
	closeness := fs.Float64("closeness", 0, "range within which a prediction counts as correct")
	confidence := fs.Float64("confidence", 0.9, "confidence threshold at which a record counts as violated")
	scenarios := fs.String("scenarios", "", "semicolon-separated visible-field sets, fields comma-separated")
	k := fs.Int("k", 0, "k-anonymise the dataset with this k before scoring (0 = dataset is already anonymised)")
	quasi := fs.String("quasi", "", "comma-separated quasi-identifier columns for -k and -reident")
	maxViolationPct := fs.Float64("max-violations", -1, "fail when any scenario's violation percentage exceeds this value (0-100)")
	reidentThreshold := fs.Float64("reident", -1, "also report re-identification risk, flagging records at or above this probability")
	workers := fs.Int("workers", 0, "worker goroutines for class building and scoring (0 = one per CPU; output is identical for any count)")
	maxRows := fs.Int("max-rows", 0, "cap the per-record rows printed in the value-risk table (0 = all rows)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *target == "" {
		return fmt.Errorf("the -data and -target flags are required")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		return fmt.Errorf("opening dataset: %w", err)
	}
	defer f.Close()
	table, err := anonymize.ReadCSV(f, nil)
	if err != nil {
		return err
	}

	doc := report.NewReport("Pseudonymisation value-risk analysis")

	if *k > 0 {
		quasiCols := splitList(*quasi)
		if len(quasiCols) == 0 {
			return fmt.Errorf("-k requires -quasi")
		}
		anonymised, result, err := anonymize.KAnonymize(table, quasiCols, *k, anonymize.KAnonymizeOptions{Workers: *workers})
		if err != nil {
			return err
		}
		utility, err := anonymize.CompareUtility(table, anonymised, []string{*target})
		if err != nil {
			return err
		}
		loss, err := anonymize.GeneralizationLoss(table, anonymised, quasiCols)
		if err != nil {
			return err
		}
		summary := report.NewTable("metric", "value")
		summary.AddRow("k", strconv.Itoa(result.K))
		summary.AddRow("equivalence classes", strconv.Itoa(result.Classes))
		summary.AddRow("suppressed rows", strconv.Itoa(len(result.SuppressedRows)))
		summary.AddRow("generalisation loss (NCP)", fmt.Sprintf("%.3f", loss))
		if cu, ok := utility.Column(*target); ok {
			summary.AddRow("target mean shift", fmt.Sprintf("%.3f", cu.MeanShift()))
			summary.AddRow("target variance shift", fmt.Sprintf("%.3f", cu.VarianceShift()))
		}
		doc.AddTable("k-anonymisation", "", summary)
		table = anonymised
	}

	policy := pseudorisk.Policy{TargetField: *target, Closeness: *closeness, Confidence: *confidence}
	evaluator, err := pseudorisk.NewEvaluatorWithOptions(table, policy, pseudorisk.EvaluatorOptions{Workers: *workers})
	if err != nil {
		return err
	}

	fieldSets := parseScenarios(*scenarios, table, *target)
	results, err := evaluator.EvaluateProgressionContext(ctx, fieldSets)
	if err != nil {
		return err
	}
	doc.AddTable("Per-record value risks",
		fmt.Sprintf("target %q, closeness %v, confidence %.0f%%", *target, *closeness, *confidence*100),
		report.TableICapped(evaluator, results, *maxRows))

	if *reidentThreshold >= 0 {
		quasiCols := splitList(*quasi)
		if len(quasiCols) == 0 {
			for _, name := range table.ColumnNames() {
				if name != *target {
					quasiCols = append(quasiCols, name)
				}
			}
		}
		// The evaluator's class index is shared, so quasi-identifier sets
		// already partitioned for a value-risk scenario are not recomputed.
		reident, err := anonymize.ReidentificationRiskIndexed(evaluator.Index(), quasiCols, *reidentThreshold)
		if err != nil {
			return err
		}
		summary := report.NewTable("attacker model", "risk")
		summary.AddRow("prosecutor (highest record risk)", fmt.Sprintf("%.3f", reident.RiskFor(anonymize.AttackerProsecutor)))
		summary.AddRow("marketer (average record risk)", fmt.Sprintf("%.3f", reident.RiskFor(anonymize.AttackerMarketer)))
		summary.AddRow(fmt.Sprintf("records at risk (>= %.2f)", *reidentThreshold),
			fmt.Sprintf("%d/%d", reident.AtRiskRecords, len(reident.Records)))
		summary.AddRow("smallest equivalence class", strconv.Itoa(reident.SmallestClass))
		doc.AddTable("Re-identification risk", "", summary)
	}

	fmt.Fprint(out, doc.Render())

	if *maxViolationPct >= 0 {
		if err := pseudorisk.CheckThreshold(results, *maxViolationPct/100); err != nil {
			return err
		}
	}
	return nil
}

// parseScenarios turns the -scenarios flag into visible-field sets. When the
// flag is empty, a default progression over the non-target columns is used:
// each column alone, then all of them together.
func parseScenarios(raw string, table *anonymize.Table, target string) [][]string {
	if strings.TrimSpace(raw) != "" {
		var out [][]string
		for _, group := range strings.Split(raw, ";") {
			out = append(out, splitList(group))
		}
		return out
	}
	var others []string
	for _, name := range table.ColumnNames() {
		if name != target {
			others = append(others, name)
		}
	}
	out := make([][]string, 0, len(others)+1)
	for _, name := range others {
		out = append(out, []string{name})
	}
	if len(others) > 1 {
		out = append(out, others)
	}
	return out
}

func splitList(raw string) []string {
	var out []string
	for _, part := range strings.Split(raw, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
