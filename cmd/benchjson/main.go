// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping each benchmark to its measurements, so the repository's
// performance trajectory can be recorded per PR (see the `bench` make
// target, which writes BENCH_<n>.json) — and enforces that trajectory: the
// -compare mode diffs two such documents and exits nonzero when a benchmark
// regressed beyond the allowed threshold, which is how CI turns the
// committed snapshots into a perf-regression gate.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_42.json
//	benchjson -compare BENCH_42.json BENCH_43.json -threshold-pct 20
//	benchjson -compare old.json new.json -metrics 'allocs/op=25,ns/op=300'
//
// Benchmarks are keyed as "<package>.<name>" (the name stripped of its
// -GOMAXPROCS suffix) and carry every metric pair the benchmark emitted:
// ns/op, B/op, allocs/op and any custom metrics such as states/sec.
//
// In -compare mode only benchmarks present in both documents are gated
// (added or removed benchmarks are listed informationally), and only the
// selected metrics count. -metrics takes a comma-separated list of metric
// names, each optionally with its own percentage threshold ("name=pct");
// names without one use -threshold-pct. The defaults gate allocs/op at the
// base threshold and ns/op at a much looser one, because allocation counts
// are deterministic while single-iteration CI timings are noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is the measurements of one benchmark.
type entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	compareMode := flag.Bool("compare", false,
		"compare two benchmark JSON documents (old new) instead of converting bench output")
	thresholdPct := flag.Float64("threshold-pct", 20,
		"default allowed regression per gated metric, in percent")
	metrics := flag.String("metrics", "allocs/op,ns/op=300",
		"comma-separated metrics to gate, each optionally as name=pct to override -threshold-pct")
	flag.Parse()

	if !*compareMode {
		results, err := parse(bufio.NewScanner(os.Stdin))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := emit(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
		os.Exit(2)
	}
	specs, err := parseMetricSpecs(*metrics, *thresholdPct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	regressed, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if regressed {
		os.Exit(1)
	}
}

// parse scans go-test output, tracking `pkg:` context lines and collecting
// `Benchmark...` result lines.
//
// go test appends "-N" (GOMAXPROCS) to every benchmark name of a run — but
// only when N != 1, and N is the same for the whole run. A name may also
// legitimately end in "-<digits>" from a subtest such as "/workers-16", so
// the suffix cannot be judged one line at a time: parse strips a trailing
// "-<digits>" only when every benchmark in the input carries the same one.
// At GOMAXPROCS=1, where go test appends nothing, subtest names keep their
// digits instead of being corrupted ("BenchmarkX/workers-16" used to become
// "BenchmarkX/workers", colliding keys in the compare gate).
//
// One ambiguity is inherent to go test's text format and survives the
// heuristic (benchstat shares it): when the run holds a single benchmark, or
// every benchmark ends in the same legitimate "-<digits>" subtest suffix,
// the suffix is trivially uniform and is stripped even at GOMAXPROCS=1 —
// the output carries no marker (the "cpu:" line describes hardware, not
// GOMAXPROCS) that could tell the two apart. The stripping is at least
// consistent across runs of the same suite, so compare keys still pair
// baseline against candidate; only the reported name loses its tail. Runs that must keep
// such a suffix verbatim can avoid the corner by naming the subtest with a
// non-digit tail (e.g. "/workers=16" or "/16workers").
func parse(sc *bufio.Scanner) (map[string]entry, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	type row struct {
		pkg, name string
		e         entry
	}
	var rows []row
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "<name>[-N]  <iterations>  <value> <unit> ...".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iterations, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		e := entry{Iterations: iterations, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			e.Metrics[fields[i+1]] = value
		}
		rows = append(rows, row{pkg: pkg, name: fields[0], e: e})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	procs := ""
	for i, r := range rows {
		s := procsSuffix(r.name)
		if i == 0 {
			procs = s
		} else if s != procs {
			procs = ""
			break
		}
	}
	results := make(map[string]entry, len(rows))
	for _, r := range rows {
		name := strings.TrimSuffix(r.name, procs)
		key := name
		if r.pkg != "" {
			key = r.pkg + "." + name
		}
		results[key] = r.e
	}
	return results, nil
}

// procsSuffix returns the trailing "-<digits>" of a benchmark name (the form
// of go test's GOMAXPROCS suffix), or "" when the name has none.
func procsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i == len(name)-1 {
		return ""
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return name[i:]
}

// emit writes the results as indented JSON (encoding/json renders map keys
// in sorted order, so the document is stable across runs).
func emit(w io.Writer, results map[string]entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// metricSpec is one gated metric and its allowed regression.
type metricSpec struct {
	name         string
	thresholdPct float64
}

// parseMetricSpecs parses the -metrics list: comma-separated metric names,
// each optionally suffixed "=pct" to override the default threshold.
func parseMetricSpecs(list string, defaultPct float64) ([]metricSpec, error) {
	if defaultPct <= 0 {
		return nil, fmt.Errorf("threshold must be positive, got %v", defaultPct)
	}
	var specs []metricSpec
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := metricSpec{thresholdPct: defaultPct}
		if name, pct, ok := strings.Cut(part, "="); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad metric threshold %q", part)
			}
			spec.name, spec.thresholdPct = strings.TrimSpace(name), v
		} else {
			spec.name = part
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no metrics selected")
	}
	return specs, nil
}

// repairSuffixDrift pairs benchmarks whose keys drifted by a trailing
// "-<digits>" between the two documents. parse's uniform-GOMAXPROCS-suffix
// heuristic can strip a subtest's own "-<digits>" tail in one run but not the
// other (a run holding a single worker-sweep subtest makes any suffix
// trivially uniform), so the same benchmark lands under different keys and a
// naive key match silently drops it from the gate. Keys absent from the
// other document are matched on their canonical form — the key minus any
// trailing "-<digits>" — and paired only when the match is one-to-one; an
// ambiguous class (several sweep members collapsing onto one canonical name)
// maps to "" so the caller reports it instead of guessing a wrong pairing.
// The result maps each unmatched old key to its new-side partner or "".
func repairSuffixDrift(oldResults, newResults map[string]entry) map[string]string {
	canonOf := func(name string) string { return strings.TrimSuffix(name, procsSuffix(name)) }
	oldByCanon := make(map[string][]string)
	for name := range oldResults {
		if _, ok := newResults[name]; !ok {
			oldByCanon[canonOf(name)] = append(oldByCanon[canonOf(name)], name)
		}
	}
	newByCanon := make(map[string][]string)
	for name := range newResults {
		if _, ok := oldResults[name]; !ok {
			newByCanon[canonOf(name)] = append(newByCanon[canonOf(name)], name)
		}
	}
	repaired := make(map[string]string)
	for canon, oldNames := range oldByCanon {
		newNames := newByCanon[canon]
		if len(newNames) == 0 {
			continue // genuinely removed; the caller SKIPs it
		}
		if len(oldNames) == 1 && len(newNames) == 1 && oldNames[0] != newNames[0] {
			repaired[oldNames[0]] = newNames[0]
			continue
		}
		for _, name := range oldNames {
			repaired[name] = ""
		}
	}
	return repaired
}

// loadResults reads one benchmark JSON document.
func loadResults(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results map[string]entry
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// compareFiles loads both documents, writes the comparison report to w and
// reports whether any gated metric regressed beyond its threshold.
func compareFiles(w io.Writer, oldPath, newPath string, specs []metricSpec) (bool, error) {
	oldResults, err := loadResults(oldPath)
	if err != nil {
		return false, err
	}
	newResults, err := loadResults(newPath)
	if err != nil {
		return false, err
	}
	return compare(w, oldResults, newResults, specs), nil
}

// compare diffs the gated metrics of every benchmark present in both result
// sets, writes one line per comparison and reports whether anything
// regressed. A regression is a relative increase beyond the metric's
// threshold; decreases and sub-threshold increases pass. Benchmarks present
// on only one side are listed but never gate — they are additions or
// removals, not regressions.
func compare(w io.Writer, oldResults, newResults map[string]entry, specs []metricSpec) bool {
	names := make([]string, 0, len(oldResults))
	for name := range oldResults {
		names = append(names, name)
	}
	sort.Strings(names)
	repaired := repairSuffixDrift(oldResults, newResults)

	regressed := false
	for _, name := range names {
		oldEntry := oldResults[name]
		newEntry, ok := newResults[name]
		if !ok {
			if partner, rep := repaired[name]; rep {
				if partner == "" {
					fmt.Fprintf(w, "MISS  %s: absent from new results, -<digits> re-pairing ambiguous\n", name)
					continue
				}
				fmt.Fprintf(w, "PAIR  %s ~ %s (re-paired modulo trailing -<digits>)\n", name, partner)
				newEntry = newResults[partner]
			} else {
				fmt.Fprintf(w, "SKIP  %s: absent from new results\n", name)
				continue
			}
		}
		for _, spec := range specs {
			oldValue, okOld := oldEntry.Metrics[spec.name]
			newValue, okNew := newEntry.Metrics[spec.name]
			if !okOld || !okNew {
				continue
			}
			if oldValue == 0 && newValue != 0 {
				// Growth from a zero baseline has no meaningful percentage
				// (it used to be pinned to +100%, slipping past any threshold
				// of 100% or more — including the default ns/op gate). It
				// always fails.
				regressed = true
				fmt.Fprintf(w, "FAIL  %s %s: %.4g -> %.4g (zero baseline, any growth gates)\n",
					name, spec.name, oldValue, newValue)
				continue
			}
			deltaPct := 0.0
			if oldValue != 0 {
				deltaPct = (newValue - oldValue) / oldValue * 100
			}
			status := "ok  "
			if deltaPct > spec.thresholdPct {
				status = "FAIL"
				regressed = true
			}
			fmt.Fprintf(w, "%s  %s %s: %.4g -> %.4g (%+.1f%%, threshold %+.0f%%)\n",
				status, name, spec.name, oldValue, newValue, deltaPct, spec.thresholdPct)
		}
	}
	consumed := make(map[string]bool, len(repaired))
	for _, partner := range repaired {
		if partner != "" {
			consumed[partner] = true
		}
	}
	var added []string
	for name := range newResults {
		if _, ok := oldResults[name]; !ok && !consumed[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "NEW   %s: no baseline\n", name)
	}
	return regressed
}
