// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping each benchmark to its measurements, so the repository's
// performance trajectory can be recorded per PR (see the `bench` make
// target, which writes BENCH_<n>.json).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_42.json
//
// Benchmarks are keyed as "<package>.<name>" (the name stripped of its
// -GOMAXPROCS suffix) and carry every metric pair the benchmark emitted:
// ns/op, B/op, allocs/op and any custom metrics such as states/sec.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is the measurements of one benchmark.
type entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := emit(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans go-test output, tracking `pkg:` context lines and collecting
// `Benchmark...` result lines.
func parse(sc *bufio.Scanner) (map[string]entry, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := make(map[string]entry)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "<name>-N  <iterations>  <value> <unit> ...".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iterations, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := entry{Iterations: iterations, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			e.Metrics[fields[i+1]] = value
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		results[key] = e
	}
	return results, sc.Err()
}

// emit writes the results as indented JSON (encoding/json renders map keys
// in sorted order, so the document is stable across runs).
func emit(w *os.File, results map[string]entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
