package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: privascope/internal/lts
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMinimizeCompiled-8   	     685	   3873763 ns/op	  704169 B/op	    2430 allocs/op
BenchmarkReachable-8   	   10000	    101202 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	privascope/internal/lts	8.871s
pkg: privascope
BenchmarkLTSGenerationParallel/workers=4-8         	     100	    500000 ns/op	        1234567 states/sec
ok  	privascope	1.0s
`
	results, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(results), results)
	}
	min, ok := results["privascope/internal/lts.BenchmarkMinimizeCompiled"]
	if !ok {
		t.Fatalf("missing minimize entry: %v", results)
	}
	if min.Iterations != 685 || min.Metrics["ns/op"] != 3873763 || min.Metrics["allocs/op"] != 2430 {
		t.Fatalf("bad minimize entry: %+v", min)
	}
	gen, ok := results["privascope.BenchmarkLTSGenerationParallel/workers=4"]
	if !ok {
		t.Fatalf("missing generation entry: %v", results)
	}
	if gen.Metrics["states/sec"] != 1234567 {
		t.Fatalf("custom metric lost: %+v", gen)
	}
}

// TestParseKeepsSubtestSuffixAtProcsOne is the regression test for the
// GOMAXPROCS=1 corruption: without a uniform procs suffix on every line, a
// subtest name that happens to end in digits ("/workers-16") must survive
// intact instead of being truncated to "/workers".
func TestParseKeepsSubtestSuffixAtProcsOne(t *testing.T) {
	input := `pkg: privascope
BenchmarkMonitorThroughput/workers-16  100  500000 ns/op  1234 B/op  56 allocs/op
BenchmarkEngineAssessCached  200  250000 ns/op  789 B/op  12 allocs/op
`
	results, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := results["privascope.BenchmarkMonitorThroughput/workers-16"]; !ok {
		t.Fatalf("GOMAXPROCS=1 subtest name corrupted: %v", results)
	}
	if _, ok := results["privascope.BenchmarkEngineAssessCached"]; !ok {
		t.Fatalf("plain benchmark name lost: %v", results)
	}
}

// TestParseStripsUniformProcsSuffix pins the complementary behaviour: when
// every line of a run carries the same "-N" (GOMAXPROCS != 1), it is stripped
// even from subtests whose own names end in digits.
func TestParseStripsUniformProcsSuffix(t *testing.T) {
	input := `pkg: privascope
BenchmarkMonitorThroughput/workers-16-8  100  500000 ns/op  1234 B/op  56 allocs/op
BenchmarkEngineAssessCached-8  200  250000 ns/op  789 B/op  12 allocs/op
`
	results, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := results["privascope.BenchmarkMonitorThroughput/workers-16"]; !ok {
		t.Fatalf("uniform -8 suffix not stripped from subtest: %v", results)
	}
	if _, ok := results["privascope.BenchmarkEngineAssessCached"]; !ok {
		t.Fatalf("uniform -8 suffix not stripped: %v", results)
	}
}

func TestParseMetricSpecs(t *testing.T) {
	specs, err := parseMetricSpecs("allocs/op,ns/op=300", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2: %v", len(specs), specs)
	}
	if specs[0].name != "allocs/op" || specs[0].thresholdPct != 20 {
		t.Fatalf("default-threshold spec wrong: %+v", specs[0])
	}
	if specs[1].name != "ns/op" || specs[1].thresholdPct != 300 {
		t.Fatalf("override spec wrong: %+v", specs[1])
	}
	for _, bad := range []string{"", "ns/op=", "ns/op=abc", "ns/op=-5"} {
		if _, err := parseMetricSpecs(bad, 20); err == nil {
			t.Fatalf("parseMetricSpecs(%q) accepted bad input", bad)
		}
	}
	if _, err := parseMetricSpecs("ns/op", 0); err == nil {
		t.Fatal("parseMetricSpecs accepted a zero default threshold")
	}
}

func bench(ns, allocs float64) entry {
	return entry{Iterations: 100, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

// TestCompareFlagsInjectedRegression is the gate's self-test: an injected
// 50% ns/op regression must turn the comparison red, while the same data
// under a looser threshold — or a sub-threshold delta — stays green.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := map[string]entry{
		"pkg.BenchmarkFast": bench(1000, 10),
		"pkg.BenchmarkSlow": bench(2000, 20),
	}
	degraded := map[string]entry{
		"pkg.BenchmarkFast": bench(1500, 10), // +50% ns/op
		"pkg.BenchmarkSlow": bench(2000, 20),
	}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}, {name: "allocs/op", thresholdPct: 20}}

	var out strings.Builder
	if !compare(&out, old, degraded, specs) {
		t.Fatalf("a 50%% ns/op regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "pkg.BenchmarkFast ns/op") {
		t.Fatalf("report does not name the regressed benchmark:\n%s", out.String())
	}

	// The same regression is tolerated when ns/op's threshold is loosened
	// past it (the CI smoke configuration), and allocs/op still gates.
	loose := []metricSpec{{name: "ns/op", thresholdPct: 300}, {name: "allocs/op", thresholdPct: 20}}
	out.Reset()
	if compare(&out, old, degraded, loose) {
		t.Fatalf("a 50%% ns/op delta failed a 300%% threshold:\n%s", out.String())
	}
}

func TestCompareSubThresholdAndImprovements(t *testing.T) {
	old := map[string]entry{"pkg.BenchmarkX": bench(1000, 100)}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}, {name: "allocs/op", thresholdPct: 20}}

	var out strings.Builder
	if compare(&out, old, map[string]entry{"pkg.BenchmarkX": bench(1100, 110)}, specs) {
		t.Fatalf("a +10%% delta failed a 20%% threshold:\n%s", out.String())
	}
	out.Reset()
	if compare(&out, old, map[string]entry{"pkg.BenchmarkX": bench(500, 50)}, specs) {
		t.Fatalf("an improvement failed the gate:\n%s", out.String())
	}
}

func TestCompareAllocRegressionGates(t *testing.T) {
	old := map[string]entry{"pkg.BenchmarkX": bench(1000, 100)}
	degraded := map[string]entry{"pkg.BenchmarkX": bench(1000, 150)}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 300}, {name: "allocs/op", thresholdPct: 20}}
	var out strings.Builder
	if !compare(&out, old, degraded, specs) {
		t.Fatalf("a 50%% allocs/op regression passed the gate:\n%s", out.String())
	}
}

// TestCompareZeroBaselineGates is the self-test for the zero-baseline fix,
// structured like the injected-regression case: a metric growing from 0 used
// to be reported as +100% and pass any threshold of 100% or more (including
// the default ns/op=300 gate). It must now fail regardless of threshold.
func TestCompareZeroBaselineGates(t *testing.T) {
	old := map[string]entry{"pkg.BenchmarkX": bench(1000, 0)}
	grown := map[string]entry{"pkg.BenchmarkX": bench(1000, 7)}
	loose := []metricSpec{{name: "ns/op", thresholdPct: 300}, {name: "allocs/op", thresholdPct: 300}}

	var out strings.Builder
	if !compare(&out, old, grown, loose) {
		t.Fatalf("growth from a zero baseline passed a 300%% threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL  pkg.BenchmarkX allocs/op") ||
		!strings.Contains(out.String(), "zero baseline") {
		t.Fatalf("report does not flag the zero-baseline growth explicitly:\n%s", out.String())
	}

	// A metric staying at zero is not growth and must not gate.
	out.Reset()
	if compare(&out, old, map[string]entry{"pkg.BenchmarkX": bench(1000, 0)}, loose) {
		t.Fatalf("a zero -> zero metric tripped the gate:\n%s", out.String())
	}
}

func TestCompareAddedAndRemovedBenchmarksDoNotGate(t *testing.T) {
	old := map[string]entry{
		"pkg.BenchmarkKept":    bench(1000, 10),
		"pkg.BenchmarkRemoved": bench(1000, 10),
	}
	new_ := map[string]entry{
		"pkg.BenchmarkKept":  bench(1000, 10),
		"pkg.BenchmarkAdded": bench(9999, 99),
	}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}}
	var out strings.Builder
	if compare(&out, old, new_, specs) {
		t.Fatalf("added/removed benchmarks tripped the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SKIP  pkg.BenchmarkRemoved") ||
		!strings.Contains(out.String(), "NEW   pkg.BenchmarkAdded") {
		t.Fatalf("report does not list added/removed benchmarks:\n%s", out.String())
	}
}

// TestCompareFilesEndToEnd drives the file-level entry point on documents
// produced by the same parse→emit path `make bench` uses.
func TestCompareFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, benchOutput string) string {
		results, err := parse(bufio.NewScanner(strings.NewReader(benchOutput)))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := emit(f, results); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", `pkg: privascope/internal/lts
BenchmarkMinimizeCompiled-8  100  1000000 ns/op  1000 B/op  100 allocs/op
`)
	newPath := write("new.json", `pkg: privascope/internal/lts
BenchmarkMinimizeCompiled-8  100  1500000 ns/op  1000 B/op  100 allocs/op
`)
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}, {name: "allocs/op", thresholdPct: 20}}

	var out strings.Builder
	regressed, err := compareFiles(&out, oldPath, newPath, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("end-to-end compare missed a 50%% ns/op regression:\n%s", out.String())
	}

	regressed, err = compareFiles(&out, oldPath, oldPath, specs)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("comparing a snapshot against itself regressed")
	}

	if _, err := compareFiles(&out, filepath.Join(dir, "missing.json"), newPath, specs); err == nil {
		t.Fatal("compareFiles accepted a missing baseline")
	}
}

// TestCompareRepairsSuffixDrift: parse's uniform-GOMAXPROCS-suffix heuristic
// can strip a worker-sweep subtest's trailing "-<digits>" in one run but not
// the other (a single-subtest smoke run makes any suffix trivially uniform),
// so the same benchmark lands under drifting keys in the two documents. The
// gate must re-pair such keys modulo the trailing "-<digits>" instead of
// silently SKIP/NEW-ing the benchmark out of the comparison — here a 100%
// states/sec-adjacent ns/op regression that a naive key match would miss.
func TestCompareRepairsSuffixDrift(t *testing.T) {
	old := map[string]entry{
		"pkg.BenchmarkLTSGenerationParallel/workers-16": bench(1000, 10),
	}
	new_ := map[string]entry{
		// Same benchmark, suffix stripped in the new run; metrics regressed.
		"pkg.BenchmarkLTSGenerationParallel/workers": bench(2000, 10),
	}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}}
	var out strings.Builder
	if !compare(&out, old, new_, specs) {
		t.Fatalf("suffix-drifted regression slipped past the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pkg.BenchmarkLTSGenerationParallel/workers-16") ||
		!strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report does not show the re-paired comparison:\n%s", out.String())
	}
}

// TestCompareAmbiguousSuffixDriftDoesNotMisalign: when several old keys
// collapse onto the same canonical name (a sweep with changed membership),
// re-pairing is ambiguous and must NOT guess — the gate emits MISS lines and
// stays green rather than comparing, say, workers-1 against workers-16.
func TestCompareAmbiguousSuffixDriftDoesNotMisalign(t *testing.T) {
	old := map[string]entry{
		"pkg.BenchmarkLTSGenerationParallel/workers-1":  bench(16000, 10),
		"pkg.BenchmarkLTSGenerationParallel/workers-16": bench(1000, 10),
	}
	new_ := map[string]entry{
		"pkg.BenchmarkLTSGenerationParallel/workers": bench(1050, 10),
	}
	specs := []metricSpec{{name: "ns/op", thresholdPct: 20}}
	var out strings.Builder
	if compare(&out, old, new_, specs) {
		t.Fatalf("ambiguous re-pairing gated (misaligned pair):\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISS") {
		t.Fatalf("ambiguous drift not reported as MISS:\n%s", out.String())
	}
}
