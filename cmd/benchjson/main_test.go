package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: privascope/internal/lts
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMinimizeCompiled-8   	     685	   3873763 ns/op	  704169 B/op	    2430 allocs/op
BenchmarkReachable-8   	   10000	    101202 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	privascope/internal/lts	8.871s
pkg: privascope
BenchmarkLTSGenerationParallel/workers=4-8         	     100	    500000 ns/op	        1234567 states/sec
ok  	privascope	1.0s
`
	results, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(results), results)
	}
	min, ok := results["privascope/internal/lts.BenchmarkMinimizeCompiled"]
	if !ok {
		t.Fatalf("missing minimize entry: %v", results)
	}
	if min.Iterations != 685 || min.Metrics["ns/op"] != 3873763 || min.Metrics["allocs/op"] != 2430 {
		t.Fatalf("bad minimize entry: %+v", min)
	}
	gen, ok := results["privascope.BenchmarkLTSGenerationParallel/workers=4"]
	if !ok {
		t.Fatalf("missing generation entry: %v", results)
	}
	if gen.Metrics["states/sec"] != 1234567 {
		t.Fatalf("custom metric lost: %+v", gen)
	}
}
