package lts

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomLTS builds a pseudo-random LTS: up to maxStates states, up to
// maxEdges transitions over a label alphabet of numLabels strings, an initial
// state most of the time, and occasionally nil labels and unreachable
// islands, so the property tests cover the builder's full surface.
func randomLTS(rng *rand.Rand, maxStates, maxEdges, numLabels int) *LTS {
	l := New()
	n := 1 + rng.Intn(maxStates)
	states := make([]StateID, n)
	for i := range states {
		states[i] = StateID(fmt.Sprintf("s%d", i))
	}
	// Register a random subset of states explicitly (some with props); the
	// rest appear only as transition endpoints.
	for _, id := range states {
		if rng.Intn(3) == 0 {
			l.AddState(id, map[string]string{"n": string(id)})
		}
	}
	edges := rng.Intn(maxEdges + 1)
	for i := 0; i < edges; i++ {
		from := states[rng.Intn(n)]
		to := states[rng.Intn(n)]
		var label Label
		if rng.Intn(8) != 0 { // occasionally nil
			label = StringLabel(fmt.Sprintf("a%d", rng.Intn(numLabels)))
		}
		l.AddTransition(from, to, label)
	}
	if rng.Intn(8) != 0 {
		l.SetInitial(states[rng.Intn(n)])
	}
	return l
}

// TestCompiledRoundTrip is the round-trip property test: for randomly
// generated models, the compiled form reproduces the builder's states,
// initial state, transitions (per-source and per-target, in insertion order)
// and label strings exactly.
func TestCompiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		l := randomLTS(rng, 30, 120, 6)
		c := l.Compiled()

		// States: same count, same insertion order, dense IDs invert StateAt.
		ids := l.StateIDs()
		if c.NumStates() != len(ids) {
			t.Fatalf("round %d: NumStates = %d, want %d", round, c.NumStates(), len(ids))
		}
		for i, id := range ids {
			if got := c.StateAt(int32(i)); got != id {
				t.Fatalf("round %d: StateAt(%d) = %s, want %s", round, i, got, id)
			}
			dense, ok := c.Index(id)
			if !ok || dense != int32(i) {
				t.Fatalf("round %d: Index(%s) = (%d, %v), want (%d, true)", round, id, dense, ok, i)
			}
		}
		if _, ok := c.Index("no-such-state"); ok {
			t.Fatalf("round %d: Index resolved an unknown state", round)
		}

		// Initial state.
		wantInit, wantOK := l.Initial()
		gotIdx, gotOK := c.InitialIndex()
		if gotOK != wantOK {
			t.Fatalf("round %d: InitialIndex ok = %v, want %v", round, gotOK, wantOK)
		}
		if wantOK && c.StateAt(gotIdx) != wantInit {
			t.Fatalf("round %d: initial = %s, want %s", round, c.StateAt(gotIdx), wantInit)
		}

		// Transitions: global snapshot and CSR per-source/per-target order.
		trs := l.Transitions()
		if c.NumEdges() != len(trs) {
			t.Fatalf("round %d: NumEdges = %d, want %d", round, c.NumEdges(), len(trs))
		}
		for e, want := range trs {
			got := c.TransitionAt(int32(e))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: TransitionAt(%d) = %+v, want %+v", round, e, got, want)
			}
			if c.StateAt(c.From(int32(e))) != want.From || c.StateAt(c.To(int32(e))) != want.To {
				t.Fatalf("round %d: edge %d endpoints disagree", round, e)
			}
			wantLabel := ""
			if want.Label != nil {
				wantLabel = want.Label.LabelString()
			}
			if got := c.LabelString(c.LabelID(int32(e))); got != wantLabel {
				t.Fatalf("round %d: edge %d label = %q, want %q", round, e, got, wantLabel)
			}
		}
		for i, id := range ids {
			wantOut := l.Outgoing(id)
			out := c.Out(int32(i))
			if len(out) != len(wantOut) || c.OutDegree(int32(i)) != len(wantOut) {
				t.Fatalf("round %d: Out(%s) has %d edges, want %d", round, id, len(out), len(wantOut))
			}
			for j, e := range out {
				if got := c.TransitionAt(e); !reflect.DeepEqual(got, wantOut[j]) {
					t.Fatalf("round %d: Out(%s)[%d] = %+v, want %+v", round, id, j, got, wantOut[j])
				}
			}
			wantIn := l.Incoming(id)
			in := c.In(int32(i))
			if len(in) != len(wantIn) {
				t.Fatalf("round %d: In(%s) has %d edges, want %d", round, id, len(in), len(wantIn))
			}
			for j, e := range in {
				if got := c.TransitionAt(e); !reflect.DeepEqual(got, wantIn[j]) {
					t.Fatalf("round %d: In(%s)[%d] = %+v, want %+v", round, id, j, got, wantIn[j])
				}
			}
		}

		// Label interning: table size equals the number of distinct label
		// strings, and every table entry renders its own string.
		distinct := make(map[string]bool)
		for _, tr := range trs {
			s := ""
			if tr.Label != nil {
				s = tr.Label.LabelString()
			}
			distinct[s] = true
		}
		if c.NumLabels() != len(distinct) {
			t.Fatalf("round %d: NumLabels = %d, want %d distinct strings", round, c.NumLabels(), len(distinct))
		}
		for lid := 0; lid < c.NumLabels(); lid++ {
			want := ""
			if label := c.Label(int32(lid)); label != nil {
				want = label.LabelString()
			}
			if got := c.LabelString(int32(lid)); got != want {
				t.Fatalf("round %d: label table entry %d renders %q, table says %q", round, lid, want, got)
			}
		}
	}
}

// TestCompiledCachedAndInvalidated checks the builder-side cache: repeated
// calls share one compiled view, and any mutation invalidates it.
func TestCompiledCachedAndInvalidated(t *testing.T) {
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("a"))
	c1 := l.Compiled()
	if c2 := l.Compiled(); c2 != c1 {
		t.Fatal("Compiled not cached between calls")
	}
	l.AddTransition("s1", "s2", StringLabel("b"))
	c3 := l.Compiled()
	if c3 == c1 {
		t.Fatal("Compiled not invalidated by AddTransition")
	}
	if c3.NumEdges() != 2 || c3.NumStates() != 3 {
		t.Fatalf("recompiled view has %d states / %d edges, want 3 / 2", c3.NumStates(), c3.NumEdges())
	}
	l.AddState("island", nil)
	if l.Compiled() == c3 {
		t.Fatal("Compiled not invalidated by AddState")
	}
	l.SetInitial("s1")
	init, ok := l.Compiled().InitialIndex()
	if !ok || l.Compiled().StateAt(init) != "s1" {
		t.Fatal("Compiled not invalidated by SetInitial")
	}
}

// --- Reference implementations of the pre-CSR traversals, retained to pin
// --- the rewritten analyses to the old observable behaviour.

func referenceReachableFrom(l *LTS, start StateID) map[StateID]bool {
	visited := make(map[StateID]bool)
	if !l.HasState(start) {
		return visited
	}
	stack := []StateID{start}
	visited[start] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range l.Outgoing(cur) {
			if !visited[t.To] {
				visited[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return visited
}

func referenceShortestTrace(l *LTS, start StateID, pred StatePredicate) (Trace, bool) {
	if !l.HasState(start) {
		return nil, false
	}
	if pred(start) {
		return Trace{}, true
	}
	type parentLink struct {
		prev StateID
		via  Transition
	}
	parents := map[StateID]parentLink{}
	visited := map[StateID]bool{start: true}
	queue := []StateID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, tr := range l.Outgoing(cur) {
			next := tr.To
			if visited[next] {
				continue
			}
			visited[next] = true
			parents[next] = parentLink{prev: cur, via: tr}
			if pred(next) {
				var rev []Transition
				for at := next; at != start; {
					link := parents[at]
					rev = append(rev, link.via)
					at = link.prev
				}
				trace := make(Trace, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					trace = append(trace, rev[i])
				}
				return trace, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

func referenceTracesFrom(l *LTS, start StateID, maxDepth, maxTraces int) []Trace {
	var out []Trace
	var cur Trace
	visited := map[StateID]bool{start: true}
	var walk func(from StateID, depth int)
	walk = func(from StateID, depth int) {
		if maxTraces >= 0 && len(out) >= maxTraces {
			return
		}
		extended := false
		if depth < maxDepth {
			for _, t := range l.Outgoing(from) {
				if visited[t.To] {
					continue
				}
				visited[t.To] = true
				cur = append(cur, t)
				walk(t.To, depth+1)
				cur = cur[:len(cur)-1]
				visited[t.To] = false
				extended = true
			}
		}
		if !extended && len(cur) > 0 {
			trace := make(Trace, len(cur))
			copy(trace, cur)
			out = append(out, trace)
		}
	}
	walk(start, 0)
	return out
}

// TestTracesFromUnboundedDepth checks that an effectively-unbounded depth
// bound neither panics nor over-allocates: simple paths are bounded by the
// state count, so the path buffer must be capped there.
func TestTracesFromUnboundedDepth(t *testing.T) {
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("a"))
	l.AddTransition("s1", "s2", StringLabel("b"))
	traces := l.TracesFrom("s0", int(^uint(0)>>1), -1)
	if len(traces) != 1 || len(traces[0]) != 2 {
		t.Fatalf("TracesFrom with MaxInt depth = %v, want one 2-step trace", traces)
	}
}

// TestAnalysesMatchReference pins the CSR-based traversals to the reference
// implementations on a random corpus: identical reachable sets and
// byte-identical witness traces and trace enumerations.
func TestAnalysesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 150; round++ {
		l := randomLTS(rng, 25, 90, 5)
		ids := l.StateIDs()
		start := ids[rng.Intn(len(ids))]

		if got, want := l.ReachableFrom(start), referenceReachableFrom(l, start); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: ReachableFrom(%s) = %v, want %v", round, start, got, want)
		}

		target := ids[rng.Intn(len(ids))]
		pred := func(id StateID) bool { return id == target }
		gotTrace, gotOK := l.shortestTrace(start, pred)
		wantTrace, wantOK := referenceShortestTrace(l, start, pred)
		if gotOK != wantOK {
			t.Fatalf("round %d: shortestTrace ok = %v, want %v", round, gotOK, wantOK)
		}
		if gotOK && gotTrace.String() != wantTrace.String() {
			t.Fatalf("round %d: shortest trace differs:\n got:\n%s\nwant:\n%s", round, gotTrace, wantTrace)
		}

		maxDepth := rng.Intn(6)
		maxTraces := rng.Intn(40) - 1 // occasionally -1 (unbounded)
		gotTraces := l.TracesFrom(start, maxDepth, maxTraces)
		wantTraces := referenceTracesFrom(l, start, maxDepth, maxTraces)
		if len(gotTraces) != len(wantTraces) {
			t.Fatalf("round %d: TracesFrom returned %d traces, want %d", round, len(gotTraces), len(wantTraces))
		}
		for i := range gotTraces {
			if gotTraces[i].String() != wantTraces[i].String() {
				t.Fatalf("round %d: trace %d differs:\n got:\n%s\nwant:\n%s", round, i, gotTraces[i], wantTraces[i])
			}
		}
	}
}
