package lts

import (
	"encoding/json"
	"strings"
	"testing"
)

// chain builds the LTS  s0 --a--> s1 --b--> s2 --c--> s3.
func chain() *LTS {
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("a"))
	l.AddTransition("s1", "s2", StringLabel("b"))
	l.AddTransition("s2", "s3", StringLabel("c"))
	return l
}

// diamond builds an LTS with two paths from s0 to s3 and a detached state.
func diamond() *LTS {
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("left"))
	l.AddTransition("s0", "s2", StringLabel("right"))
	l.AddTransition("s1", "s3", StringLabel("join"))
	l.AddTransition("s2", "s3", StringLabel("join"))
	l.AddState("island", nil)
	return l
}

func TestAddStateAndTransitionBasics(t *testing.T) {
	l := New()
	l.AddState("s0", map[string]string{"phase": "start"})
	l.AddState("s0", map[string]string{"note": "merged"})
	s, ok := l.State("s0")
	if !ok {
		t.Fatal("State(s0) missing")
	}
	if s.Props["phase"] != "start" || s.Props["note"] != "merged" {
		t.Errorf("props not merged: %+v", s.Props)
	}
	l.AddTransition("s0", "s1", StringLabel("go"))
	if !l.HasState("s1") {
		t.Error("AddTransition should create target state")
	}
	if l.StateCount() != 2 || l.TransitionCount() != 1 {
		t.Errorf("counts = %d states, %d transitions", l.StateCount(), l.TransitionCount())
	}
	// Duplicate transitions are ignored.
	l.AddTransition("s0", "s1", StringLabel("go"))
	if l.TransitionCount() != 1 {
		t.Errorf("duplicate transition added: %d", l.TransitionCount())
	}
	// Same endpoints, different label is a new transition.
	l.AddTransition("s0", "s1", StringLabel("other"))
	if l.TransitionCount() != 2 {
		t.Errorf("distinct-label transition not added: %d", l.TransitionCount())
	}
}

func TestInitial(t *testing.T) {
	l := New()
	if _, ok := l.Initial(); ok {
		t.Error("empty LTS should have no initial state")
	}
	l.SetInitial("s0")
	if id, ok := l.Initial(); !ok || id != "s0" {
		t.Errorf("Initial() = %q, %v", id, ok)
	}
	if !l.HasState("s0") {
		t.Error("SetInitial should add the state")
	}
}

func TestOutgoingIncomingSuccessors(t *testing.T) {
	l := diamond()
	out := l.Outgoing("s0")
	if len(out) != 2 {
		t.Fatalf("Outgoing(s0) = %d transitions", len(out))
	}
	in := l.Incoming("s3")
	if len(in) != 2 {
		t.Fatalf("Incoming(s3) = %d transitions", len(in))
	}
	succ := l.Successors("s0")
	if len(succ) != 2 || succ[0] != "s1" || succ[1] != "s2" {
		t.Errorf("Successors(s0) = %v", succ)
	}
	if len(l.Successors("s3")) != 0 {
		t.Error("Successors(s3) should be empty")
	}
}

func TestReachability(t *testing.T) {
	l := diamond()
	reach, err := l.Reachable()
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != 4 {
		t.Errorf("len(Reachable()) = %d, want 4", len(reach))
	}
	if reach["island"] {
		t.Error("island should be unreachable")
	}
	unreach, err := l.UnreachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(unreach) != 1 || unreach[0] != "island" {
		t.Errorf("UnreachableStates() = %v", unreach)
	}
	term, err := l.TerminalStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(term) != 1 || term[0] != "s3" {
		t.Errorf("TerminalStates() = %v", term)
	}

	empty := New()
	if _, err := empty.Reachable(); err != ErrNoInitialState {
		t.Errorf("Reachable without initial = %v, want ErrNoInitialState", err)
	}
}

func TestIsDeterministic(t *testing.T) {
	if !chain().IsDeterministic() {
		t.Error("chain should be deterministic")
	}
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("a"))
	l.AddTransition("s0", "s2", StringLabel("a"))
	if l.IsDeterministic() {
		t.Error("two a-transitions to different states should be nondeterministic")
	}
}

func TestStats(t *testing.T) {
	l := diamond()
	st, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.States != 5 || st.Transitions != 4 {
		t.Errorf("Stats sizes = %+v", st)
	}
	if st.Terminal != 1 || st.Unreachable != 1 {
		t.Errorf("Stats terminal/unreachable = %+v", st)
	}
	if st.Depth != 2 {
		t.Errorf("Stats.Depth = %d, want 2", st.Depth)
	}
	if st.MaxOutDegree != 2 {
		t.Errorf("Stats.MaxOutDegree = %d, want 2", st.MaxOutDegree)
	}
	if _, err := New().Stats(); err == nil {
		t.Error("Stats without initial state should fail")
	}
}

func TestExistsAndAlways(t *testing.T) {
	l := chain()
	found, trace, err := l.Exists(func(id StateID) bool { return id == "s2" })
	if err != nil || !found {
		t.Fatalf("Exists(s2) = %v, %v", found, err)
	}
	if len(trace) != 2 {
		t.Errorf("witness trace length = %d, want 2", len(trace))
	}
	if trace.End("s0") != "s2" {
		t.Errorf("trace end = %s", trace.End("s0"))
	}

	found, _, err = l.Exists(func(id StateID) bool { return id == "missing" })
	if err != nil || found {
		t.Errorf("Exists(missing) = %v, %v", found, err)
	}

	ok, counter, err := l.Always(func(id StateID) bool { return id != "s3" })
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Always should fail because s3 is reachable")
	}
	if counter.End("s0") != "s3" {
		t.Errorf("counter-example ends at %s", counter.End("s0"))
	}
	ok, _, err = l.Always(func(id StateID) bool { return true })
	if err != nil || !ok {
		t.Errorf("Always(true) = %v, %v", ok, err)
	}

	if _, _, err := New().Exists(func(StateID) bool { return true }); err == nil {
		t.Error("Exists without initial should fail")
	}
}

func TestFindStatesAndTransitions(t *testing.T) {
	l := diamond()
	states, err := l.FindStates(func(id StateID) bool { return strings.HasPrefix(string(id), "s") })
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Errorf("FindStates = %v", states)
	}
	trans, err := l.FindTransitions(func(tr Transition) bool { return tr.Label.LabelString() == "join" })
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 2 {
		t.Errorf("FindTransitions(join) = %v", trans)
	}
}

func TestShortestTraceTo(t *testing.T) {
	l := diamond()
	trace, err := l.ShortestTraceTo("s3")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Errorf("trace length = %d, want 2", len(trace))
	}
	if _, err := l.ShortestTraceTo("island"); err == nil {
		t.Error("trace to unreachable state should fail")
	}
	// Trace to the initial state itself is empty.
	trace, err = l.ShortestTraceTo("s0")
	if err != nil || len(trace) != 0 {
		t.Errorf("trace to initial = %v, %v", trace, err)
	}
}

func TestTracesFrom(t *testing.T) {
	l := diamond()
	traces := l.TracesFrom("s0", 10, -1)
	if len(traces) != 2 {
		t.Fatalf("TracesFrom(s0) = %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		if tr.End("s0") != "s3" {
			t.Errorf("trace should end at s3, got %s", tr.End("s0"))
		}
	}
	// Depth limiting truncates paths.
	short := l.TracesFrom("s0", 1, -1)
	for _, tr := range short {
		if len(tr) > 1 {
			t.Errorf("depth-1 trace has length %d", len(tr))
		}
	}
	// maxTraces bounds the enumeration.
	bounded := l.TracesFrom("s0", 10, 1)
	if len(bounded) != 1 {
		t.Errorf("bounded traces = %d, want 1", len(bounded))
	}
}

func TestTransitionString(t *testing.T) {
	tr := Transition{From: "a", To: "b", Label: StringLabel("x")}
	if got := tr.String(); got != "a --[x]--> b" {
		t.Errorf("Transition.String() = %q", got)
	}
	noLabel := Transition{From: "a", To: "b"}
	if got := noLabel.String(); got != "a --[]--> b" {
		t.Errorf("Transition.String() without label = %q", got)
	}
}

func TestTraceString(t *testing.T) {
	l := chain()
	trace, err := l.ShortestTraceTo("s2")
	if err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	if !strings.Contains(s, "s0 --[a]--> s1") || !strings.Contains(s, "s1 --[b]--> s2") {
		t.Errorf("Trace.String() = %q", s)
	}
}

func TestLTSString(t *testing.T) {
	s := chain().String()
	if !strings.Contains(s, "4 states, 3 transitions") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(s, "initial: s0") {
		t.Errorf("String() missing initial: %q", s)
	}
}

func TestMinimize(t *testing.T) {
	// s1 and s2 are bisimilar (both go to s3 with "join"), so the quotient
	// has one fewer state.
	l := diamond()
	min, mapping := l.Minimize()
	if min.StateCount() >= l.StateCount() {
		t.Errorf("Minimize did not reduce: %d -> %d states", l.StateCount(), min.StateCount())
	}
	if mapping["s1"] != mapping["s2"] {
		t.Errorf("s1 and s2 should merge, mapping = %v", mapping)
	}
	if mapping["s0"] == mapping["s3"] {
		t.Error("s0 and s3 must not merge")
	}
	// Behaviour is preserved: s3-equivalent still reachable.
	found, _, err := min.Exists(func(id StateID) bool { return id == mapping["s3"] })
	if err != nil || !found {
		t.Errorf("quotient lost reachability: %v, %v", found, err)
	}
	// Minimizing a chain changes nothing (all states distinguishable).
	c := chain()
	minChain, _ := c.Minimize()
	if minChain.StateCount() != c.StateCount() {
		t.Errorf("chain minimised from %d to %d states", c.StateCount(), minChain.StateCount())
	}
}

func TestDOT(t *testing.T) {
	l := chain()
	out := l.DOT(DOTOptions{Name: "fig3"})
	for _, want := range []string{"digraph fig3 {", `label="a"`, "s0 -> s1", "s2 -> s3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Custom options.
	out = l.DOT(DOTOptions{
		StateLabel: func(id StateID) string { return "S:" + string(id) },
		StateAttrs: func(id StateID) map[string]string {
			if id == "s3" {
				return map[string]string{"color": "red"}
			}
			return nil
		},
		TransitionAttrs: func(tr Transition) map[string]string {
			if tr.Label.LabelString() == "c" {
				return map[string]string{"style": "dotted"}
			}
			return nil
		},
	})
	if !strings.Contains(out, `label="S:s0"`) {
		t.Error("custom state label not applied")
	}
	if !strings.Contains(out, `color="red"`) {
		t.Error("custom state attrs not applied")
	}
	if !strings.Contains(out, `style="dotted"`) {
		t.Error("custom transition attrs not applied")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := diamond()
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back LTS
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.StateCount() != l.StateCount() || back.TransitionCount() != l.TransitionCount() {
		t.Errorf("round trip lost structure: %d/%d vs %d/%d",
			back.StateCount(), back.TransitionCount(), l.StateCount(), l.TransitionCount())
	}
	if init, ok := back.Initial(); !ok || init != "s0" {
		t.Errorf("round trip initial = %q, %v", init, ok)
	}
	if err := (&LTS{}).UnmarshalJSON([]byte("{bad")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestLabelHistogram(t *testing.T) {
	l := diamond()
	hist := l.LabelHistogram()
	want := map[string]int{"join": 2, "left": 1, "right": 1}
	if len(hist) != len(want) {
		t.Fatalf("histogram = %v", hist)
	}
	for _, lc := range hist {
		if want[lc.Label] != lc.Count {
			t.Errorf("histogram[%s] = %d, want %d", lc.Label, lc.Count, want[lc.Label])
		}
	}
	// Sorted by label.
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Label > hist[i].Label {
			t.Errorf("histogram not sorted: %v", hist)
		}
	}
}

func TestTransitionsReturnsCopy(t *testing.T) {
	l := chain()
	ts := l.Transitions()
	ts[0].From = "corrupted"
	if l.Transitions()[0].From == "corrupted" {
		t.Error("Transitions() must return a copy")
	}
	ids := l.StateIDs()
	ids[0] = "corrupted"
	if l.StateIDs()[0] == "corrupted" {
		t.Error("StateIDs() must return a copy")
	}
}

func TestAddTransitionUnchecked(t *testing.T) {
	l := New()
	l.SetInitial("s0")
	l.AddTransitionUnchecked("s0", "s1", StringLabel("a"))
	l.AddTransitionUnchecked("s1", "s1", StringLabel("loop"))
	if l.StateCount() != 2 || l.TransitionCount() != 2 {
		t.Fatalf("states/transitions = %d/%d, want 2/2", l.StateCount(), l.TransitionCount())
	}
	if got := len(l.Outgoing("s0")); got != 1 {
		t.Errorf("Outgoing(s0) = %d transitions, want 1", got)
	}
	if got := len(l.Incoming("s1")); got != 2 {
		t.Errorf("Incoming(s1) = %d transitions, want 2", got)
	}
	// Unlike AddTransition, duplicates are the caller's responsibility: the
	// unchecked variant appends them verbatim.
	l.AddTransitionUnchecked("s0", "s1", StringLabel("a"))
	if l.TransitionCount() != 3 {
		t.Errorf("unchecked duplicate was deduplicated; transitions = %d, want 3", l.TransitionCount())
	}
	l.AddTransition("s0", "s1", StringLabel("a"))
	if l.TransitionCount() != 3 {
		t.Errorf("checked add after unchecked should dedupe; transitions = %d, want 3", l.TransitionCount())
	}
}
