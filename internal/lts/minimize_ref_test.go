package lts

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// minimizeReference is the pre-CSR Minimize, kept verbatim as the behavioural
// reference for the integer-signature rewrite: per-round string signatures
// over a map-keyed partition, with stability detected by block-count
// equality.
func minimizeReference(l *LTS) (*LTS, map[StateID]StateID) {
	block := make(map[StateID]int, len(l.states))
	for _, id := range l.order {
		if len(l.outgoing[id]) == 0 {
			block[id] = 1
		} else {
			block[id] = 0
		}
	}
	blockCount := func(b map[StateID]int) int {
		set := make(map[int]bool, len(b))
		for _, v := range b {
			set[v] = true
		}
		return len(set)
	}
	for {
		sigOf := func(id StateID) string {
			parts := make([]string, 0, len(l.outgoing[id]))
			for _, idx := range l.outgoing[id] {
				t := l.transitions[idx]
				label := ""
				if t.Label != nil {
					label = t.Label.LabelString()
				}
				parts = append(parts, fmt.Sprintf("%s\x00%d", label, block[t.To]))
			}
			sort.Strings(parts)
			return fmt.Sprintf("%d|%s", block[id], strings.Join(parts, "\x01"))
		}
		sigBlocks := make(map[string]int)
		newBlock := make(map[StateID]int, len(l.states))
		for _, id := range l.order {
			sig := sigOf(id)
			b, ok := sigBlocks[sig]
			if !ok {
				b = len(sigBlocks)
				sigBlocks[sig] = b
			}
			newBlock[id] = b
		}
		stable := blockCount(newBlock) == blockCount(block)
		block = newBlock
		if stable {
			break
		}
	}

	repOf := make(map[int]StateID)
	mapping := make(map[StateID]StateID, len(l.states))
	for _, id := range l.order {
		b := block[id]
		if _, ok := repOf[b]; !ok {
			repOf[b] = id
		}
		mapping[id] = repOf[b]
	}

	min := New()
	for _, id := range l.order {
		if mapping[id] == id {
			s := l.states[id]
			min.AddState(id, s.Props)
		}
	}
	if l.hasInitial {
		min.SetInitial(mapping[l.initial])
	}
	for _, t := range l.transitions {
		min.AddTransition(mapping[t.From], mapping[t.To], t.Label)
	}
	return min, mapping
}

// TestMinimizeMatchesReference is the property test pinning the rewritten
// Minimize to the reference on a random corpus plus the layered fixtures:
// identical state-ID mappings and byte-identical quotient renderings.
func TestMinimizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	corpus := []*LTS{
		buildLayered(6, 4),
		buildLayered(10, 8),
	}
	for i := 0; i < 120; i++ {
		corpus = append(corpus, randomLTS(rng, 30, 120, 4))
	}
	for i, l := range corpus {
		gotMin, gotMap := l.Minimize()
		wantMin, wantMap := minimizeReference(l)
		if !reflect.DeepEqual(gotMap, wantMap) {
			t.Fatalf("model %d: state mapping differs\n got: %v\nwant: %v", i, gotMap, wantMap)
		}
		if got, want := gotMin.String(), wantMin.String(); got != want {
			t.Fatalf("model %d: quotient differs\n got:\n%s\nwant:\n%s", i, got, want)
		}
		if got, want := gotMin.DOT(DOTOptions{}), wantMin.DOT(DOTOptions{}); got != want {
			t.Fatalf("model %d: quotient DOT differs", i)
		}
		if gotMin.StateCount() != wantMin.StateCount() || gotMin.TransitionCount() != wantMin.TransitionCount() {
			t.Fatalf("model %d: quotient size differs: %d/%d vs %d/%d", i,
				gotMin.StateCount(), gotMin.TransitionCount(), wantMin.StateCount(), wantMin.TransitionCount())
		}
	}
}

// TestMinimizeStability exercises the partition-equality stability check on a
// shape whose initial terminal/non-terminal numbering differs from the
// canonical first-encounter numbering (first state terminal): the rewritten
// loop must still converge to the reference partition.
func TestMinimizeStability(t *testing.T) {
	l := New()
	l.AddState("t0", nil) // terminal first, so initial numbering is renamed
	l.AddTransition("a", "t0", StringLabel("x"))
	l.AddTransition("b", "t0", StringLabel("x"))
	l.AddTransition("c", "a", StringLabel("y"))
	l.AddTransition("c", "b", StringLabel("y"))
	l.SetInitial("c")
	gotMin, gotMap := l.Minimize()
	wantMin, wantMap := minimizeReference(l)
	if !reflect.DeepEqual(gotMap, wantMap) {
		t.Fatalf("mapping differs: got %v, want %v", gotMap, wantMap)
	}
	if gotMin.String() != wantMin.String() {
		t.Fatalf("quotient differs:\n got:\n%s\nwant:\n%s", gotMin, wantMin)
	}
	// a and b are bisimilar and must merge.
	if gotMap["b"] != gotMap["a"] {
		t.Fatalf("states a and b should share a representative, got %v", gotMap)
	}
}

// minimizeBenchModel is the shared fixture for the Minimize benchmarks: a
// large layered model (many mergeable states, parallel labelled edges) of the
// shape the generator produces for wide data-flow models.
func minimizeBenchModel() *LTS {
	return buildLayered(40, 15) // 601 states, 9000 transitions
}

// BenchmarkMinimizeCompiled measures the integer-signature Minimize on the
// compiled view. Compare with BenchmarkMinimizeReference for the speedup of
// this rewrite.
func BenchmarkMinimizeCompiled(b *testing.B) {
	l := minimizeBenchModel()
	l.Compiled() // compile outside the timed loop, as analyses share the view
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, _ := l.Minimize()
		if min.StateCount() == 0 {
			b.Fatal("empty quotient")
		}
	}
}

// BenchmarkMinimizeReference measures the retired string-signature Minimize
// on the same model, kept as the baseline for the compiled rewrite.
func BenchmarkMinimizeReference(b *testing.B) {
	l := minimizeBenchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, _ := minimizeReference(l)
		if min.StateCount() == 0 {
			b.Fatal("empty quotient")
		}
	}
}
