package lts

import (
	"fmt"
	"testing"
)

// buildLayered builds a layered LTS with the given number of layers and
// width: every node of one layer has an edge to every node of the next.
func buildLayered(layers, width int) *LTS {
	l := New()
	l.SetInitial("s0")
	prev := []StateID{"s0"}
	id := 1
	for layer := 0; layer < layers; layer++ {
		var next []StateID
		for w := 0; w < width; w++ {
			node := StateID(fmt.Sprintf("s%d", id))
			id++
			next = append(next, node)
		}
		for _, from := range prev {
			for i, to := range next {
				l.AddTransition(from, to, StringLabel(fmt.Sprintf("a%d", i)))
			}
		}
		prev = next
	}
	return l
}

func BenchmarkReachable(b *testing.B) {
	l := buildLayered(20, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Reachable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExistsWitness(b *testing.B) {
	l := buildLayered(20, 10)
	target := StateID(fmt.Sprintf("s%d", l.StateCount()-1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, _, err := l.Exists(func(id StateID) bool { return id == target })
		if err != nil || !found {
			b.Fatal("witness search failed")
		}
	}
}

func BenchmarkMinimize(b *testing.B) {
	l := buildLayered(10, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		min, _ := l.Minimize()
		if min.StateCount() == 0 {
			b.Fatal("empty quotient")
		}
	}
}

func BenchmarkDOTRender(b *testing.B) {
	l := buildLayered(10, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := l.DOT(DOTOptions{}); len(out) == 0 {
			b.Fatal("empty DOT")
		}
	}
}
