package lts

import (
	"strings"
	"testing"
)

// analysisFixture builds the diamond LTS used across these tests:
//
//	s0 --a--> s1 --c--> s3
//	s0 --b--> s2 --d--> s3 ; s3 --e--> s4 ; island (unreachable)
func analysisFixture() *LTS {
	l := New()
	l.SetInitial("s0")
	l.AddTransition("s0", "s1", StringLabel("a"))
	l.AddTransition("s0", "s2", StringLabel("b"))
	l.AddTransition("s1", "s3", StringLabel("c"))
	l.AddTransition("s2", "s3", StringLabel("d"))
	l.AddTransition("s3", "s4", StringLabel("e"))
	l.AddState("island", nil)
	return l
}

func TestTraceEnd(t *testing.T) {
	l := analysisFixture()
	if end := (Trace{}).End("s0"); end != "s0" {
		t.Errorf("empty trace End = %s, want the start state", end)
	}
	trace, err := l.ShortestTraceTo("s4")
	if err != nil {
		t.Fatal(err)
	}
	if end := trace.End("s0"); end != "s4" {
		t.Errorf("trace End = %s, want s4", end)
	}
}

func TestFindStatesRequiresInitial(t *testing.T) {
	l := New()
	l.AddState("lonely", nil)
	if _, err := l.FindStates(func(StateID) bool { return true }); err != ErrNoInitialState {
		t.Errorf("FindStates without initial: err = %v, want ErrNoInitialState", err)
	}
	if _, err := l.FindTransitions(func(Transition) bool { return true }); err != ErrNoInitialState {
		t.Errorf("FindTransitions without initial: err = %v, want ErrNoInitialState", err)
	}
}

func TestFindStatesExcludesUnreachable(t *testing.T) {
	l := analysisFixture()
	states, err := l.FindStates(func(StateID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range states {
		if id == "island" {
			t.Error("FindStates returned the unreachable island state")
		}
	}
	if len(states) != 5 {
		t.Errorf("FindStates(true) = %v, want the 5 reachable states", states)
	}
}

func TestFindTransitionsPredicateAndReachability(t *testing.T) {
	l := analysisFixture()
	l.AddTransition("island", "s4", StringLabel("c")) // from an unreachable state
	trans, err := l.FindTransitions(func(tr Transition) bool { return tr.Label.LabelString() == "c" })
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 1 || trans[0].From != "s1" {
		t.Errorf("FindTransitions(c) = %v, want only the reachable s1->s3", trans)
	}
}

func TestExistsOnInitialState(t *testing.T) {
	l := analysisFixture()
	found, trace, err := l.Exists(func(id StateID) bool { return id == "s0" })
	if err != nil || !found {
		t.Fatalf("Exists(s0) = %v, %v", found, err)
	}
	if len(trace) != 0 {
		t.Errorf("witness for the initial state should be empty, got %v", trace)
	}
}

func TestAlwaysPropagatesMissingInitial(t *testing.T) {
	if _, _, err := New().Always(func(StateID) bool { return true }); err != ErrNoInitialState {
		t.Errorf("Always without initial: err = %v, want ErrNoInitialState", err)
	}
}

func TestAlwaysCounterExampleIsShortest(t *testing.T) {
	l := analysisFixture()
	ok, counter, err := l.Always(func(id StateID) bool { return id != "s4" })
	if err != nil || ok {
		t.Fatalf("Always(!s4) = %v, %v", ok, err)
	}
	if len(counter) != 3 || counter.End("s0") != "s4" {
		t.Errorf("counter-example = %v, want a shortest 3-step trace to s4", counter)
	}
}

func TestShortestTraceToMissingInitial(t *testing.T) {
	if _, err := New().ShortestTraceTo("x"); err != ErrNoInitialState {
		t.Errorf("ShortestTraceTo without initial: err = %v, want ErrNoInitialState", err)
	}
}

func TestShortestTraceFromUnknownStart(t *testing.T) {
	l := analysisFixture()
	if trace, ok := l.shortestTrace("nowhere", func(StateID) bool { return true }); ok || trace != nil {
		t.Errorf("shortestTrace(nowhere) = %v, %v, want no trace", trace, ok)
	}
	if traces := l.TracesFrom("nowhere", 3, -1); len(traces) != 0 {
		t.Errorf("TracesFrom(nowhere) = %v, want none", traces)
	}
}

func TestTracesFromBounds(t *testing.T) {
	l := analysisFixture()
	// maxTraces = 0 yields nothing.
	if traces := l.TracesFrom("s0", 10, 0); len(traces) != 0 {
		t.Errorf("TracesFrom(maxTraces=0) = %v, want none", traces)
	}
	// Depth bound cuts paths short: both one-step prefixes appear.
	short := l.TracesFrom("s0", 1, -1)
	if len(short) != 2 {
		t.Fatalf("TracesFrom(depth=1) = %d traces, want 2", len(short))
	}
	for _, tr := range short {
		if len(tr) != 1 {
			t.Errorf("depth-1 trace has %d steps: %v", len(tr), tr)
		}
	}
	// Unbounded: two full simple paths to s4.
	full := l.TracesFrom("s0", 10, -1)
	if len(full) != 2 {
		t.Fatalf("TracesFrom = %d traces, want 2", len(full))
	}
	for _, tr := range full {
		if tr.End("s0") != "s4" {
			t.Errorf("trace does not reach s4: %v", tr)
		}
	}
}

func TestTraceStringRendersSteps(t *testing.T) {
	l := analysisFixture()
	trace, err := l.ShortestTraceTo("s4")
	if err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	if !strings.Contains(s, "s3 --[e]--> s4") || strings.Count(s, "\n") != len(trace)-1 {
		t.Errorf("Trace.String() = %q", s)
	}
}
