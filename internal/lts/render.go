package lts

import (
	"encoding/json"
	"fmt"
	"sort"

	"privascope/internal/dot"
)

// DOTOptions controls how an LTS is rendered to Graphviz DOT.
type DOTOptions struct {
	// Name is the graph name; defaults to "lts".
	Name string
	// StateLabel produces the node label for a state; defaults to the ID.
	StateLabel func(StateID) string
	// StateAttrs may add extra node attributes (e.g. colour risky states).
	StateAttrs func(StateID) map[string]string
	// TransitionAttrs may add extra edge attributes (e.g. dotted risk
	// transitions as in the paper's Fig. 4); the label defaults to the
	// transition's LabelString.
	TransitionAttrs func(Transition) map[string]string
	// RankDir sets the layout direction; defaults to "LR".
	RankDir string
}

// DOT renders the LTS using the given options.
func (l *LTS) DOT(opts DOTOptions) string {
	name := opts.Name
	if name == "" {
		name = "lts"
	}
	rank := opts.RankDir
	if rank == "" {
		rank = "LR"
	}
	g := dot.NewGraph(name)
	g.SetGraphAttr("rankdir", rank)
	g.SetNodeDefault("shape", "circle")
	g.SetNodeDefault("fontname", "Helvetica")
	g.SetEdgeDefault("fontname", "Helvetica")

	for _, id := range l.order {
		attrs := map[string]string{}
		label := string(id)
		if opts.StateLabel != nil {
			label = opts.StateLabel(id)
		}
		attrs["label"] = label
		if l.hasInitial && id == l.initial {
			attrs["penwidth"] = "2"
		}
		if opts.StateAttrs != nil {
			for k, v := range opts.StateAttrs(id) {
				attrs[k] = v
			}
		}
		g.AddNode(string(id), attrs)
	}
	// Edge labels come from the compiled view's interned table, so each
	// distinct label string is rendered once per model rather than once per
	// transition.
	c := l.Compiled()
	for e := range c.trs {
		t := c.trs[e]
		attrs := map[string]string{}
		if t.Label != nil {
			attrs["label"] = c.labelStrs[c.edgeLabel[e]]
		}
		if opts.TransitionAttrs != nil {
			for k, v := range opts.TransitionAttrs(t) {
				attrs[k] = v
			}
		}
		g.AddEdge(string(t.From), string(t.To), attrs)
	}
	return g.Render()
}

// jsonDoc is the JSON serialisation of an LTS. Labels are flattened to their
// string form; systems that need richer labels should serialise at their own
// layer (package core does).
type jsonDoc struct {
	Initial     string            `json:"initial,omitempty"`
	States      []jsonState       `json:"states"`
	Transitions []jsonTransition  `json:"transitions"`
	Stats       map[string]int    `json:"stats,omitempty"`
	Extra       map[string]string `json:"extra,omitempty"`
}

type jsonState struct {
	ID    string            `json:"id"`
	Props map[string]string `json:"props,omitempty"`
}

type jsonTransition struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Label string `json:"label,omitempty"`
}

// MarshalJSON serialises the LTS structure (states, transitions, label
// strings). The concrete Label types are not preserved.
func (l *LTS) MarshalJSON() ([]byte, error) {
	doc := jsonDoc{}
	if l.hasInitial {
		doc.Initial = string(l.initial)
	}
	for _, id := range l.order {
		s := l.states[id]
		doc.States = append(doc.States, jsonState{ID: string(id), Props: s.Props})
	}
	for _, t := range l.transitions {
		jt := jsonTransition{From: string(t.From), To: string(t.To)}
		if t.Label != nil {
			jt.Label = t.Label.LabelString()
		}
		doc.Transitions = append(doc.Transitions, jt)
	}
	if st, err := l.Stats(); err == nil {
		doc.Stats = map[string]int{
			"states":      st.States,
			"transitions": st.Transitions,
			"terminal":    st.Terminal,
			"depth":       st.Depth,
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON rebuilds an LTS from the JSON produced by MarshalJSON.
// Transition labels become StringLabel values.
func (l *LTS) UnmarshalJSON(data []byte) error {
	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("lts: parsing LTS document: %w", err)
	}
	// Rebuild into a fresh LTS and adopt its fields (the receiver's cached
	// compiled view cannot be copied, only invalidated).
	fresh := New()
	for _, s := range doc.States {
		fresh.AddState(StateID(s.ID), s.Props)
	}
	for _, t := range doc.Transitions {
		fresh.AddTransition(StateID(t.From), StateID(t.To), StringLabel(t.Label))
	}
	if doc.Initial != "" {
		fresh.SetInitial(StateID(doc.Initial))
	}
	l.initial = fresh.initial
	l.hasInitial = fresh.hasInitial
	l.states = fresh.states
	l.order = fresh.order
	l.transitions = fresh.transitions
	l.outgoing = fresh.outgoing
	l.incoming = fresh.incoming
	l.invalidate()
	return nil
}

// LabelHistogram counts transitions per label string, sorted by label. It is
// used in reports to summarise which actions dominate a model. The counting
// runs over the compiled view's interned label table, so no label is
// re-rendered.
func (l *LTS) LabelHistogram() []LabelCount {
	c := l.Compiled()
	counts := make([]int, c.NumLabels())
	for _, lid := range c.edgeLabel {
		counts[lid]++
	}
	out := make([]LabelCount, 0, len(counts))
	for lid, n := range counts {
		out = append(out, LabelCount{Label: c.labelStrs[lid], Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelCount is one entry of LabelHistogram.
type LabelCount struct {
	Label string
	Count int
}
