package lts

import (
	"reflect"
	"strings"
	"testing"
)

// buildRestoreFixture returns a small LTS with shared labels, a diamond shape
// and a parallel edge, exercising every CSR corner.
func buildRestoreFixture() *LTS {
	l := New()
	l.SetInitial("s0")
	shared := StringLabel("shared")
	l.AddTransition("s0", "s1", shared)
	l.AddTransition("s0", "s2", StringLabel("b"))
	l.AddTransition("s1", "s3", shared)
	l.AddTransition("s2", "s3", StringLabel("c"))
	l.AddTransition("s3", "s0", nil)
	l.AddTransition("s0", "s1", StringLabel("parallel"))
	return l
}

func TestRestoreCompiledRoundTrip(t *testing.T) {
	orig := buildRestoreFixture()
	parts := orig.Compiled().Parts()

	restored, err := RestoreCompiled(parts)
	if err != nil {
		t.Fatalf("RestoreCompiled: %v", err)
	}
	l := RestoreLTS(restored)

	if got, want := l.String(), orig.String(); got != want {
		t.Fatalf("restored LTS renders differently:\n%s\nvs\n%s", got, want)
	}
	if !reflect.DeepEqual(l.Transitions(), orig.Transitions()) {
		t.Fatalf("restored transitions differ")
	}
	if !reflect.DeepEqual(l.StateIDs(), orig.StateIDs()) {
		t.Fatalf("restored state order differs")
	}
	gotStats, err := l.Stats()
	if err != nil {
		t.Fatalf("restored Stats: %v", err)
	}
	wantStats, _ := orig.Stats()
	if gotStats != wantStats {
		t.Fatalf("restored stats %+v, want %+v", gotStats, wantStats)
	}
	for _, id := range orig.StateIDs() {
		if !reflect.DeepEqual(l.Outgoing(id), orig.Outgoing(id)) {
			t.Fatalf("outgoing of %s differs", id)
		}
		if !reflect.DeepEqual(l.Incoming(id), orig.Incoming(id)) {
			t.Fatalf("incoming of %s differs", id)
		}
	}
	// The restored LTS must serve analyses without recompiling: its compiled
	// pointer is the restored snapshot itself.
	if l.Compiled() != restored {
		t.Fatalf("restored LTS recompiled instead of adopting the restored view")
	}
	min, _ := orig.Minimize()
	minRestored, _ := l.Minimize()
	if got, want := minRestored.String(), min.String(); got != want {
		t.Fatalf("minimized restored LTS differs:\n%s\nvs\n%s", got, want)
	}
}

// TestRestoreCompiledRejectsCorruptParts mutates each invariant in turn and
// requires a clean error, never a panic.
func TestRestoreCompiledRejectsCorruptParts(t *testing.T) {
	fresh := func() CompiledParts {
		// Re-derive parts from a fresh compile each time, deep-copying the
		// slices a case mutates.
		p := buildRestoreFixture().Compiled().Parts()
		p.EdgeFrom = append([]int32(nil), p.EdgeFrom...)
		p.EdgeTo = append([]int32(nil), p.EdgeTo...)
		p.EdgeLabel = append([]int32(nil), p.EdgeLabel...)
		p.OutOff = append([]int32(nil), p.OutOff...)
		p.OutEdges = append([]int32(nil), p.OutEdges...)
		p.InOff = append([]int32(nil), p.InOff...)
		p.InEdges = append([]int32(nil), p.InEdges...)
		p.States = append([]StateID(nil), p.States...)
		return p
	}
	cases := map[string]func(*CompiledParts){
		"edge array length":    func(p *CompiledParts) { p.EdgeFrom = p.EdgeFrom[:1] },
		"label table length":   func(p *CompiledParts) { p.LabelStrs = p.LabelStrs[:1] },
		"offset array length":  func(p *CompiledParts) { p.OutOff = p.OutOff[:2] },
		"csr edges length":     func(p *CompiledParts) { p.OutEdges = p.OutEdges[:1] },
		"initial out of range": func(p *CompiledParts) { p.Initial = 99 },
		"duplicate state id":   func(p *CompiledParts) { p.States[1] = p.States[0] },
		"endpoint range":       func(p *CompiledParts) { p.EdgeTo[0] = -7 },
		"label range":          func(p *CompiledParts) { p.EdgeLabel[0] = 42 },
		"offsets do not span":  func(p *CompiledParts) { p.OutOff[len(p.OutOff)-1]++ },
		"offsets decrease":     func(p *CompiledParts) { p.OutOff[1] = p.OutOff[2] + 1 },
		"csr edge range":       func(p *CompiledParts) { p.OutEdges[0] = 77 },
		"csr wrong bucket": func(p *CompiledParts) {
			p.InEdges[0], p.InEdges[len(p.InEdges)-1] = p.InEdges[len(p.InEdges)-1], p.InEdges[0]
		},
	}
	for name, corrupt := range cases {
		p := fresh()
		corrupt(&p)
		if _, err := RestoreCompiled(p); err == nil {
			t.Errorf("%s: corruption accepted", name)
		} else if !strings.Contains(err.Error(), "lts: restore") {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
	// A duplicated CSR entry within one bucket must be caught by the
	// ascending-order check.
	p := fresh()
	if len(p.OutEdges) >= 2 && p.OutOff[1] >= 2 {
		p.OutEdges[1] = p.OutEdges[0]
		if _, err := RestoreCompiled(p); err == nil {
			t.Errorf("duplicated CSR entry accepted")
		}
	}
}
