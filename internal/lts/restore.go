package lts

import "fmt"

// CompiledParts is the flat data of a Compiled, exposed so the on-disk model
// store (internal/modelstore) can serialise the compiled form and rebuild it
// without recompiling — in particular without re-rendering any label string.
// Every slice aliases the Compiled's internal layout and must be treated as
// immutable.
type CompiledParts struct {
	// States maps each dense index to its state ID, in insertion order.
	States []StateID
	// Initial is the dense initial state, -1 when none was set.
	Initial int32
	// Trs are the original transitions, indexed by transition index. Trs[e]
	// must satisfy Trs[e].From == States[EdgeFrom[e]] and
	// Trs[e].To == States[EdgeTo[e]].
	Trs []Transition
	// Labels and LabelStrs are the interned label table: LabelStrs[i] is the
	// label string and Labels[i] the first Label value encountered rendering
	// it (possibly nil).
	Labels    []Label
	LabelStrs []string
	// EdgeLabel, EdgeFrom and EdgeTo are the per-transition label index and
	// dense endpoint states.
	EdgeLabel, EdgeFrom, EdgeTo []int32
	// OutOff/OutEdges and InOff/InEdges are the forward and reverse CSR
	// layouts: the transitions leaving state s are
	// OutEdges[OutOff[s]:OutOff[s+1]], in ascending transition index.
	OutOff, OutEdges, InOff, InEdges []int32
}

// Parts returns the flat sections of the compiled LTS. The returned slices
// alias the Compiled and must not be modified.
func (c *Compiled) Parts() CompiledParts {
	return CompiledParts{
		States:    c.states,
		Initial:   c.initial,
		Trs:       c.trs,
		Labels:    c.labels,
		LabelStrs: c.labelStrs,
		EdgeLabel: c.edgeLabel,
		EdgeFrom:  c.edgeFrom,
		EdgeTo:    c.edgeTo,
		OutOff:    c.outOff,
		OutEdges:  c.outEdges,
		InOff:     c.inOff,
		InEdges:   c.inEdges,
	}
}

// RestoreCompiled rebuilds a Compiled from previously exported parts,
// validating every structural invariant Compile would have established:
// consistent section lengths, distinct state IDs, in-range endpoint and label
// indices, and both CSR layouts partitioning the transitions with ascending
// indices per bucket. It never panics on malformed parts; the first violated
// invariant is returned as an error. The slices are retained, not copied —
// callers hand over ownership (the model store's zero-copy path aliases them
// into an mmap'd artifact).
//
// Consistency of Trs with States/EdgeFrom/EdgeTo/EdgeLabel is the caller's
// contract (the model store constructs Trs from those same arrays); it is not
// re-verified here because it would re-render or re-compare every label and
// state string.
func RestoreCompiled(p CompiledParts) (*Compiled, error) {
	n, m := len(p.States), len(p.Trs)
	if len(p.EdgeLabel) != m || len(p.EdgeFrom) != m || len(p.EdgeTo) != m {
		return nil, fmt.Errorf("lts: restore: edge arrays have %d/%d/%d entries, want %d",
			len(p.EdgeLabel), len(p.EdgeFrom), len(p.EdgeTo), m)
	}
	if len(p.Labels) != len(p.LabelStrs) {
		return nil, fmt.Errorf("lts: restore: %d labels but %d label strings", len(p.Labels), len(p.LabelStrs))
	}
	if len(p.OutOff) != n+1 || len(p.InOff) != n+1 {
		return nil, fmt.Errorf("lts: restore: CSR offset arrays have %d/%d entries, want %d",
			len(p.OutOff), len(p.InOff), n+1)
	}
	if len(p.OutEdges) != m || len(p.InEdges) != m {
		return nil, fmt.Errorf("lts: restore: CSR edge arrays have %d/%d entries, want %d",
			len(p.OutEdges), len(p.InEdges), m)
	}
	if p.Initial < -1 || int(p.Initial) >= n {
		return nil, fmt.Errorf("lts: restore: initial state %d out of range [-1, %d)", p.Initial, n)
	}
	c := &Compiled{
		states:    p.States,
		ids:       make(map[StateID]int32, n),
		initial:   p.Initial,
		trs:       p.Trs,
		labels:    p.Labels,
		labelStrs: p.LabelStrs,
		edgeLabel: p.EdgeLabel,
		edgeFrom:  p.EdgeFrom,
		edgeTo:    p.EdgeTo,
		outOff:    p.OutOff,
		outEdges:  p.OutEdges,
		inOff:     p.InOff,
		inEdges:   p.InEdges,
	}
	for i, id := range p.States {
		if _, dup := c.ids[id]; dup {
			return nil, fmt.Errorf("lts: restore: duplicate state ID %q", id)
		}
		c.ids[id] = int32(i)
	}
	numLabels := int32(len(p.Labels))
	for e := 0; e < m; e++ {
		if p.EdgeFrom[e] < 0 || int(p.EdgeFrom[e]) >= n || p.EdgeTo[e] < 0 || int(p.EdgeTo[e]) >= n {
			return nil, fmt.Errorf("lts: restore: transition %d endpoints (%d, %d) out of range [0, %d)",
				e, p.EdgeFrom[e], p.EdgeTo[e], n)
		}
		if p.EdgeLabel[e] < 0 || p.EdgeLabel[e] >= numLabels {
			return nil, fmt.Errorf("lts: restore: transition %d label index %d out of range [0, %d)",
				e, p.EdgeLabel[e], numLabels)
		}
	}
	if err := checkCSR("outgoing", p.OutOff, p.OutEdges, p.EdgeFrom); err != nil {
		return nil, err
	}
	if err := checkCSR("incoming", p.InOff, p.InEdges, p.EdgeTo); err != nil {
		return nil, err
	}
	for s := 0; s < n; s++ {
		if d := int(p.OutOff[s+1] - p.OutOff[s]); d > c.maxOutDegree {
			c.maxOutDegree = d
		}
	}
	return c, nil
}

// checkCSR verifies one CSR layout against the per-edge endpoint array:
// offsets start at 0, end at the edge count and never decrease, and every
// bucket lists transition indices of its own state in ascending order. Since
// each transition has exactly one endpoint state per direction, the ascending
// in-range buckets summing to the edge count imply the layout is exactly a
// partition of all transitions — no index missing, none duplicated.
func checkCSR(name string, off, edges, endpoint []int32) error {
	m := int32(len(edges))
	if off[0] != 0 || off[len(off)-1] != m {
		return fmt.Errorf("lts: restore: %s CSR offsets span [%d, %d], want [0, %d]",
			name, off[0], off[len(off)-1], m)
	}
	for s := 0; s+1 < len(off); s++ {
		lo, hi := off[s], off[s+1]
		if lo > hi {
			return fmt.Errorf("lts: restore: %s CSR offsets decrease at state %d (%d > %d)", name, s, lo, hi)
		}
		prev := int32(-1)
		for _, e := range edges[lo:hi] {
			if e < 0 || e >= m {
				return fmt.Errorf("lts: restore: %s CSR lists transition %d, outside [0, %d)", name, e, m)
			}
			if e <= prev {
				return fmt.Errorf("lts: restore: %s CSR bucket of state %d not strictly ascending at transition %d", name, s, e)
			}
			if endpoint[e] != int32(s) {
				return fmt.Errorf("lts: restore: %s CSR bucket of state %d lists transition %d of state %d",
					name, s, e, endpoint[e])
			}
			prev = e
		}
	}
	return nil
}

// RestoreLTS rebuilds a fully functional builder LTS around a restored
// compiled view: the state map, insertion order, transition list and
// per-state adjacency of a New()+AddTransition construction, with the
// compiled view pre-seeded so the first analysis never recompiles (and never
// re-renders a label). The LTS is immediately usable by every consumer —
// traversals, DOT rendering, JSON serialisation — and, like any built LTS, is
// safe for concurrent readers.
func RestoreLTS(c *Compiled) *LTS {
	n := len(c.states)
	l := &LTS{
		states:      make(map[StateID]State, n),
		order:       append([]StateID(nil), c.states...),
		transitions: c.trs,
		outgoing:    make(map[StateID][]int, n),
		incoming:    make(map[StateID][]int, n),
	}
	for _, id := range c.states {
		l.states[id] = State{ID: id}
	}
	for s := 0; s < n; s++ {
		id := c.states[s]
		if out := c.Out(int32(s)); len(out) > 0 {
			idxs := make([]int, len(out))
			for i, e := range out {
				idxs[i] = int(e)
			}
			l.outgoing[id] = idxs
		}
		if in := c.In(int32(s)); len(in) > 0 {
			idxs := make([]int, len(in))
			for i, e := range in {
				idxs[i] = int(e)
			}
			l.incoming[id] = idxs
		}
	}
	if c.initial >= 0 {
		l.initial = c.states[c.initial]
		l.hasInitial = true
	}
	l.compiled.Store(c)
	return l
}
