// Package lts provides a general-purpose Labelled Transition System (LTS)
// library: construction, traversal, trace extraction, property checking,
// minimisation and rendering.
//
// The paper's formal model of user privacy (Section II-B) is an LTS whose
// states represent the user's state of privacy and whose labelled transitions
// represent actions on personal data. This package is deliberately agnostic
// about what states and labels mean: package core layers the privacy
// semantics (state variables, actions, extraction rules) on top of it, and
// the analyses in packages risk and pseudorisk annotate it.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// StateID identifies a state within an LTS.
type StateID string

// Label is implemented by transition labels. Labels must be immutable once
// attached to a transition.
type Label interface {
	// LabelString returns a short human-readable rendering of the label,
	// used in traces, reports and DOT output.
	LabelString() string
}

// StringLabel is a trivial Label for tests and simple systems.
type StringLabel string

// LabelString implements Label.
func (s StringLabel) LabelString() string { return string(s) }

var _ Label = StringLabel("")

// State is a node of the LTS. Props holds small display-oriented annotations;
// richer per-state data (such as the privacy state vector) is kept by the
// layer that builds the LTS, keyed by the state ID.
type State struct {
	ID StateID
	// Props are optional display annotations (e.g. "phase": "after-care").
	Props map[string]string
}

// Transition is a directed, labelled edge of the LTS.
type Transition struct {
	From  StateID
	To    StateID
	Label Label
}

// String renders the transition for traces and error messages, e.g.
// "s0 --[collect(name)]--> s1".
func (t Transition) String() string {
	label := ""
	if t.Label != nil {
		label = t.Label.LabelString()
	}
	var b strings.Builder
	b.Grow(len(t.From) + len(label) + len(t.To) + len(" --[") + len("]--> "))
	b.WriteString(string(t.From))
	b.WriteString(" --[")
	b.WriteString(label)
	b.WriteString("]--> ")
	b.WriteString(string(t.To))
	return b.String()
}

// LTS is a labelled transition system. The zero value is not usable; create
// instances with New. An LTS is not safe for concurrent mutation; once built
// it is safe for concurrent readers.
type LTS struct {
	initial     StateID
	hasInitial  bool
	states      map[StateID]State
	order       []StateID // insertion order, for deterministic iteration
	transitions []Transition
	outgoing    map[StateID][]int // state -> indices into transitions
	incoming    map[StateID][]int

	// compiled caches the CSR view every analysis runs on; mutators reset it.
	// Concurrent readers may race to compile, which is harmless (both results
	// are identical snapshots); mutation concurrent with reads is already
	// excluded by the LTS contract.
	compiled atomic.Pointer[Compiled]
}

// Compiled returns the CSR compilation of the LTS, building it on first use
// and caching it until the next mutation. The result is an immutable snapshot
// shared by all callers.
func (l *LTS) Compiled() *Compiled {
	if c := l.compiled.Load(); c != nil {
		return c
	}
	c := Compile(l)
	l.compiled.Store(c)
	return c
}

// invalidate drops the cached compiled view after a mutation.
func (l *LTS) invalidate() { l.compiled.Store(nil) }

// New returns an empty LTS.
func New() *LTS {
	return &LTS{
		states:   make(map[StateID]State),
		outgoing: make(map[StateID][]int),
		incoming: make(map[StateID][]int),
	}
}

// AddState adds a state. Adding an existing ID merges the props.
func (l *LTS) AddState(id StateID, props map[string]string) {
	if existing, ok := l.states[id]; ok {
		if len(props) > 0 {
			if existing.Props == nil {
				existing.Props = make(map[string]string, len(props))
			}
			for k, v := range props {
				existing.Props[k] = v
			}
			l.states[id] = existing
		}
		return
	}
	s := State{ID: id}
	if len(props) > 0 {
		s.Props = make(map[string]string, len(props))
		for k, v := range props {
			s.Props[k] = v
		}
	}
	l.states[id] = s
	l.order = append(l.order, id)
	l.invalidate()
}

// SetInitial marks the initial state, adding it if necessary.
func (l *LTS) SetInitial(id StateID) {
	l.AddState(id, nil)
	l.initial = id
	l.hasInitial = true
	l.invalidate()
}

// Initial returns the initial state ID; ok is false if none was set.
func (l *LTS) Initial() (StateID, bool) { return l.initial, l.hasInitial }

// HasState reports whether the state exists.
func (l *LTS) HasState(id StateID) bool {
	_, ok := l.states[id]
	return ok
}

// State returns the state with the given ID.
func (l *LTS) State(id StateID) (State, bool) {
	s, ok := l.states[id]
	return s, ok
}

// AddTransition adds a labelled transition, creating missing endpoint states.
// The same (from, label, to) triple may be added only once; duplicates are
// silently ignored so generators can be written without bookkeeping.
func (l *LTS) AddTransition(from, to StateID, label Label) {
	l.AddState(from, nil)
	l.AddState(to, nil)
	labelStr := ""
	if label != nil {
		labelStr = label.LabelString()
	}
	for _, idx := range l.outgoing[from] {
		t := l.transitions[idx]
		if t.To != to {
			continue
		}
		existing := ""
		if t.Label != nil {
			existing = t.Label.LabelString()
		}
		if existing == labelStr {
			return
		}
	}
	l.transitions = append(l.transitions, Transition{From: from, To: to, Label: label})
	idx := len(l.transitions) - 1
	l.outgoing[from] = append(l.outgoing[from], idx)
	l.incoming[to] = append(l.incoming[to], idx)
	l.invalidate()
}

// AddTransitionUnchecked appends a labelled transition without AddTransition's
// duplicate scan (which renders the label of every parallel edge). Builders
// that guarantee each (from, to, label) triple is produced at most once — such
// as the privacy-LTS generator, which expands every state exactly once — use
// it to keep the serial merge phase of parallel generation cheap. Missing
// endpoint states are still created.
func (l *LTS) AddTransitionUnchecked(from, to StateID, label Label) {
	l.AddState(from, nil)
	l.AddState(to, nil)
	l.transitions = append(l.transitions, Transition{From: from, To: to, Label: label})
	idx := len(l.transitions) - 1
	l.outgoing[from] = append(l.outgoing[from], idx)
	l.incoming[to] = append(l.incoming[to], idx)
	l.invalidate()
}

// StateCount returns the number of states.
func (l *LTS) StateCount() int { return len(l.states) }

// TransitionCount returns the number of transitions.
func (l *LTS) TransitionCount() int { return len(l.transitions) }

// StateIDs returns all state IDs in insertion order.
func (l *LTS) StateIDs() []StateID {
	out := make([]StateID, len(l.order))
	copy(out, l.order)
	return out
}

// Transitions returns a copy of all transitions in insertion order.
func (l *LTS) Transitions() []Transition {
	out := make([]Transition, len(l.transitions))
	copy(out, l.transitions)
	return out
}

// Outgoing returns the transitions leaving the given state, in insertion
// order.
func (l *LTS) Outgoing(id StateID) []Transition {
	idxs := l.outgoing[id]
	out := make([]Transition, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.transitions[i])
	}
	return out
}

// Incoming returns the transitions entering the given state.
func (l *LTS) Incoming(id StateID) []Transition {
	idxs := l.incoming[id]
	out := make([]Transition, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.transitions[i])
	}
	return out
}

// Successors returns the distinct successor state IDs of the given state,
// sorted.
func (l *LTS) Successors(id StateID) []StateID {
	set := make(map[StateID]bool)
	for _, t := range l.Outgoing(id) {
		set[t.To] = true
	}
	out := make([]StateID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrNoInitialState is returned by analyses that require an initial state.
var ErrNoInitialState = errors.New("lts: no initial state set")

// Reachable returns the set of states reachable from the initial state
// (including it), as a map for membership tests.
func (l *LTS) Reachable() (map[StateID]bool, error) {
	if !l.hasInitial {
		return nil, ErrNoInitialState
	}
	return l.ReachableFrom(l.initial), nil
}

// ReachableFrom returns the set of states reachable from the given state.
// The traversal itself is an integer DFS with a bitset visited set over the
// compiled view; only the returned membership map is allocated per call.
func (l *LTS) ReachableFrom(start StateID) map[StateID]bool {
	c := l.Compiled()
	s, ok := c.ids[start]
	if !ok {
		return make(map[StateID]bool)
	}
	bits, count := c.ReachableBits(s)
	visited := make(map[StateID]bool, count)
	for i, id := range c.states {
		if bits.Has(int32(i)) {
			visited[id] = true
		}
	}
	return visited
}

// UnreachableStates returns states not reachable from the initial state,
// sorted by ID. Generators should normally produce none.
func (l *LTS) UnreachableStates() ([]StateID, error) {
	c := l.Compiled()
	init, ok := c.InitialIndex()
	if !ok {
		return nil, ErrNoInitialState
	}
	bits, _ := c.ReachableBits(init)
	var out []StateID
	for i, id := range c.states {
		if !bits.Has(int32(i)) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TerminalStates returns reachable states with no outgoing transitions,
// sorted by ID.
func (l *LTS) TerminalStates() ([]StateID, error) {
	c := l.Compiled()
	init, ok := c.InitialIndex()
	if !ok {
		return nil, ErrNoInitialState
	}
	bits, _ := c.ReachableBits(init)
	var out []StateID
	for i, id := range c.states {
		if bits.Has(int32(i)) && c.OutDegree(int32(i)) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IsDeterministic reports whether no state has two outgoing transitions with
// the same label string leading to different states.
func (l *LTS) IsDeterministic() bool {
	c := l.Compiled()
	seen := make(map[int32]int32)
	for s := range c.states {
		edges := c.Out(int32(s))
		if len(edges) < 2 {
			continue
		}
		clear(seen)
		for _, e := range edges {
			lid := c.edgeLabel[e]
			to := c.edgeTo[e]
			if prev, ok := seen[lid]; ok && prev != to {
				return false
			}
			seen[lid] = to
		}
	}
	return true
}

// Stats summarises the size and shape of the LTS.
type Stats struct {
	States      int
	Transitions int
	Terminal    int
	Unreachable int
	// MaxOutDegree is the largest number of transitions leaving any state.
	MaxOutDegree int
	// Depth is the length of the longest shortest-path from the initial
	// state to any reachable state (the "diameter" from the initial state).
	Depth int
}

// Stats computes summary statistics. It requires an initial state.
func (l *LTS) Stats() (Stats, error) {
	c := l.Compiled()
	init, ok := c.InitialIndex()
	if !ok {
		return Stats{}, ErrNoInitialState
	}
	st := Stats{
		States:       c.NumStates(),
		Transitions:  c.NumEdges(),
		MaxOutDegree: c.MaxOutDegree(),
	}
	bits, reachable := c.ReachableBits(init)
	st.Unreachable = c.NumStates() - reachable
	for i := range c.states {
		if bits.Has(int32(i)) && c.OutDegree(int32(i)) == 0 {
			st.Terminal++
		}
	}
	// Integer BFS for depth.
	dist := make([]int32, c.NumStates())
	for i := range dist {
		dist[i] = -1
	}
	dist[init] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, init)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if int(dist[cur]) > st.Depth {
			st.Depth = int(dist[cur])
		}
		for _, e := range c.Out(cur) {
			next := c.edgeTo[e]
			if dist[next] < 0 {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return st, nil
}

// String renders a compact multi-line description of the LTS, useful in
// examples and debugging output.
func (l *LTS) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LTS: %d states, %d transitions\n", len(l.states), len(l.transitions))
	if l.hasInitial {
		fmt.Fprintf(&b, "initial: %s\n", l.initial)
	}
	for _, id := range l.order {
		for _, t := range l.Outgoing(id) {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
