// Package lts provides a general-purpose Labelled Transition System (LTS)
// library: construction, traversal, trace extraction, property checking,
// minimisation and rendering.
//
// The paper's formal model of user privacy (Section II-B) is an LTS whose
// states represent the user's state of privacy and whose labelled transitions
// represent actions on personal data. This package is deliberately agnostic
// about what states and labels mean: package core layers the privacy
// semantics (state variables, actions, extraction rules) on top of it, and
// the analyses in packages risk and pseudorisk annotate it.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// StateID identifies a state within an LTS.
type StateID string

// Label is implemented by transition labels. Labels must be immutable once
// attached to a transition.
type Label interface {
	// LabelString returns a short human-readable rendering of the label,
	// used in traces, reports and DOT output.
	LabelString() string
}

// StringLabel is a trivial Label for tests and simple systems.
type StringLabel string

// LabelString implements Label.
func (s StringLabel) LabelString() string { return string(s) }

var _ Label = StringLabel("")

// State is a node of the LTS. Props holds small display-oriented annotations;
// richer per-state data (such as the privacy state vector) is kept by the
// layer that builds the LTS, keyed by the state ID.
type State struct {
	ID StateID
	// Props are optional display annotations (e.g. "phase": "after-care").
	Props map[string]string
}

// Transition is a directed, labelled edge of the LTS.
type Transition struct {
	From  StateID
	To    StateID
	Label Label
}

// String renders the transition for traces and error messages.
func (t Transition) String() string {
	label := ""
	if t.Label != nil {
		label = t.Label.LabelString()
	}
	return fmt.Sprintf("%s --[%s]--> %s", t.From, label, t.To)
}

// LTS is a labelled transition system. The zero value is not usable; create
// instances with New. An LTS is not safe for concurrent mutation; once built
// it is safe for concurrent readers.
type LTS struct {
	initial     StateID
	hasInitial  bool
	states      map[StateID]State
	order       []StateID // insertion order, for deterministic iteration
	transitions []Transition
	outgoing    map[StateID][]int // state -> indices into transitions
	incoming    map[StateID][]int
}

// New returns an empty LTS.
func New() *LTS {
	return &LTS{
		states:   make(map[StateID]State),
		outgoing: make(map[StateID][]int),
		incoming: make(map[StateID][]int),
	}
}

// AddState adds a state. Adding an existing ID merges the props.
func (l *LTS) AddState(id StateID, props map[string]string) {
	if existing, ok := l.states[id]; ok {
		if len(props) > 0 {
			if existing.Props == nil {
				existing.Props = make(map[string]string, len(props))
			}
			for k, v := range props {
				existing.Props[k] = v
			}
			l.states[id] = existing
		}
		return
	}
	s := State{ID: id}
	if len(props) > 0 {
		s.Props = make(map[string]string, len(props))
		for k, v := range props {
			s.Props[k] = v
		}
	}
	l.states[id] = s
	l.order = append(l.order, id)
}

// SetInitial marks the initial state, adding it if necessary.
func (l *LTS) SetInitial(id StateID) {
	l.AddState(id, nil)
	l.initial = id
	l.hasInitial = true
}

// Initial returns the initial state ID; ok is false if none was set.
func (l *LTS) Initial() (StateID, bool) { return l.initial, l.hasInitial }

// HasState reports whether the state exists.
func (l *LTS) HasState(id StateID) bool {
	_, ok := l.states[id]
	return ok
}

// State returns the state with the given ID.
func (l *LTS) State(id StateID) (State, bool) {
	s, ok := l.states[id]
	return s, ok
}

// AddTransition adds a labelled transition, creating missing endpoint states.
// The same (from, label, to) triple may be added only once; duplicates are
// silently ignored so generators can be written without bookkeeping.
func (l *LTS) AddTransition(from, to StateID, label Label) {
	l.AddState(from, nil)
	l.AddState(to, nil)
	labelStr := ""
	if label != nil {
		labelStr = label.LabelString()
	}
	for _, idx := range l.outgoing[from] {
		t := l.transitions[idx]
		if t.To != to {
			continue
		}
		existing := ""
		if t.Label != nil {
			existing = t.Label.LabelString()
		}
		if existing == labelStr {
			return
		}
	}
	l.transitions = append(l.transitions, Transition{From: from, To: to, Label: label})
	idx := len(l.transitions) - 1
	l.outgoing[from] = append(l.outgoing[from], idx)
	l.incoming[to] = append(l.incoming[to], idx)
}

// AddTransitionUnchecked appends a labelled transition without AddTransition's
// duplicate scan (which renders the label of every parallel edge). Builders
// that guarantee each (from, to, label) triple is produced at most once — such
// as the privacy-LTS generator, which expands every state exactly once — use
// it to keep the serial merge phase of parallel generation cheap. Missing
// endpoint states are still created.
func (l *LTS) AddTransitionUnchecked(from, to StateID, label Label) {
	l.AddState(from, nil)
	l.AddState(to, nil)
	l.transitions = append(l.transitions, Transition{From: from, To: to, Label: label})
	idx := len(l.transitions) - 1
	l.outgoing[from] = append(l.outgoing[from], idx)
	l.incoming[to] = append(l.incoming[to], idx)
}

// StateCount returns the number of states.
func (l *LTS) StateCount() int { return len(l.states) }

// TransitionCount returns the number of transitions.
func (l *LTS) TransitionCount() int { return len(l.transitions) }

// StateIDs returns all state IDs in insertion order.
func (l *LTS) StateIDs() []StateID {
	out := make([]StateID, len(l.order))
	copy(out, l.order)
	return out
}

// Transitions returns a copy of all transitions in insertion order.
func (l *LTS) Transitions() []Transition {
	out := make([]Transition, len(l.transitions))
	copy(out, l.transitions)
	return out
}

// Outgoing returns the transitions leaving the given state, in insertion
// order.
func (l *LTS) Outgoing(id StateID) []Transition {
	idxs := l.outgoing[id]
	out := make([]Transition, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.transitions[i])
	}
	return out
}

// Incoming returns the transitions entering the given state.
func (l *LTS) Incoming(id StateID) []Transition {
	idxs := l.incoming[id]
	out := make([]Transition, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.transitions[i])
	}
	return out
}

// Successors returns the distinct successor state IDs of the given state,
// sorted.
func (l *LTS) Successors(id StateID) []StateID {
	set := make(map[StateID]bool)
	for _, t := range l.Outgoing(id) {
		set[t.To] = true
	}
	out := make([]StateID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrNoInitialState is returned by analyses that require an initial state.
var ErrNoInitialState = errors.New("lts: no initial state set")

// Reachable returns the set of states reachable from the initial state
// (including it), as a map for membership tests.
func (l *LTS) Reachable() (map[StateID]bool, error) {
	if !l.hasInitial {
		return nil, ErrNoInitialState
	}
	return l.ReachableFrom(l.initial), nil
}

// ReachableFrom returns the set of states reachable from the given state.
func (l *LTS) ReachableFrom(start StateID) map[StateID]bool {
	visited := make(map[StateID]bool)
	if !l.HasState(start) {
		return visited
	}
	stack := []StateID{start}
	visited[start] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range l.outgoing[cur] {
			next := l.transitions[idx].To
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return visited
}

// UnreachableStates returns states not reachable from the initial state,
// sorted by ID. Generators should normally produce none.
func (l *LTS) UnreachableStates() ([]StateID, error) {
	reach, err := l.Reachable()
	if err != nil {
		return nil, err
	}
	var out []StateID
	for _, id := range l.order {
		if !reach[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TerminalStates returns reachable states with no outgoing transitions,
// sorted by ID.
func (l *LTS) TerminalStates() ([]StateID, error) {
	reach, err := l.Reachable()
	if err != nil {
		return nil, err
	}
	var out []StateID
	for _, id := range l.order {
		if reach[id] && len(l.outgoing[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IsDeterministic reports whether no state has two outgoing transitions with
// the same label string leading to different states.
func (l *LTS) IsDeterministic() bool {
	for id := range l.states {
		seen := make(map[string]StateID)
		for _, t := range l.Outgoing(id) {
			label := ""
			if t.Label != nil {
				label = t.Label.LabelString()
			}
			if prev, ok := seen[label]; ok && prev != t.To {
				return false
			}
			seen[label] = t.To
		}
	}
	return true
}

// Stats summarises the size and shape of the LTS.
type Stats struct {
	States      int
	Transitions int
	Terminal    int
	Unreachable int
	// MaxOutDegree is the largest number of transitions leaving any state.
	MaxOutDegree int
	// Depth is the length of the longest shortest-path from the initial
	// state to any reachable state (the "diameter" from the initial state).
	Depth int
}

// Stats computes summary statistics. It requires an initial state.
func (l *LTS) Stats() (Stats, error) {
	if !l.hasInitial {
		return Stats{}, ErrNoInitialState
	}
	st := Stats{States: len(l.states), Transitions: len(l.transitions)}
	term, err := l.TerminalStates()
	if err != nil {
		return Stats{}, err
	}
	st.Terminal = len(term)
	unreach, err := l.UnreachableStates()
	if err != nil {
		return Stats{}, err
	}
	st.Unreachable = len(unreach)
	for id := range l.states {
		if d := len(l.outgoing[id]); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
	}
	// BFS for depth.
	dist := map[StateID]int{l.initial: 0}
	queue := []StateID{l.initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] > st.Depth {
			st.Depth = dist[cur]
		}
		for _, idx := range l.outgoing[cur] {
			next := l.transitions[idx].To
			if _, ok := dist[next]; !ok {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return st, nil
}

// String renders a compact multi-line description of the LTS, useful in
// examples and debugging output.
func (l *LTS) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LTS: %d states, %d transitions\n", len(l.states), len(l.transitions))
	if l.hasInitial {
		fmt.Fprintf(&b, "initial: %s\n", l.initial)
	}
	for _, id := range l.order {
		for _, t := range l.Outgoing(id) {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
