package lts

import (
	"math/rand"
	"reflect"
	"testing"

	"privascope/internal/proptest"
)

// The properties here run in the internal test package so they can compare
// against the frozen reference implementations (minimizeReference) and the
// compiled view's internals. internal/proptest is std-lib-only precisely so
// this lowest layer can use the harness without an import cycle.

// TestPropCompiledRoundTrip: the compiled CSR view of a random LTS inverts
// exactly — states, dense indices, initial state, edges and labels all map
// back to the mutable structure.
func TestPropCompiledRoundTrip(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		l := randomLTS(rng, 30, 120, 6)
		c := l.Compiled()

		ids := l.StateIDs()
		if c.NumStates() != len(ids) {
			t.Fatalf("seed %d: NumStates = %d, want %d", seed, c.NumStates(), len(ids))
		}
		for i, id := range ids {
			if got := c.StateAt(int32(i)); got != id {
				t.Fatalf("seed %d: StateAt(%d) = %s, want %s", seed, i, got, id)
			}
			if dense, ok := c.Index(id); !ok || dense != int32(i) {
				t.Fatalf("seed %d: Index(%s) = (%d, %v), want (%d, true)", seed, id, dense, ok, i)
			}
		}

		wantInit, wantOK := l.Initial()
		gotIdx, gotOK := c.InitialIndex()
		if gotOK != wantOK || (wantOK && c.StateAt(gotIdx) != wantInit) {
			t.Fatalf("seed %d: initial state did not round-trip", seed)
		}

		trs := l.Transitions()
		if c.NumEdges() != len(trs) {
			t.Fatalf("seed %d: NumEdges = %d, want %d", seed, c.NumEdges(), len(trs))
		}
		for e, want := range trs {
			if got := c.TransitionAt(int32(e)); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: TransitionAt(%d) = %+v, want %+v", seed, e, got, want)
			}
			wantLabel := ""
			if want.Label != nil {
				wantLabel = want.Label.LabelString()
			}
			if got := c.LabelString(c.LabelID(int32(e))); got != wantLabel {
				t.Fatalf("seed %d: edge %d label = %q, want %q", seed, e, got, wantLabel)
			}
		}
		return nil
	})
}

// TestPropMinimizeMatchesReference: the integer-signature Minimize agrees
// with the frozen pre-CSR reference on every random LTS — same mapping, same
// quotient rendering.
func TestPropMinimizeMatchesReference(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		l := randomLTS(rng, 30, 120, 4)
		gotMin, gotMap := l.Minimize()
		wantMin, wantMap := minimizeReference(l)
		if !reflect.DeepEqual(gotMap, wantMap) {
			t.Fatalf("seed %d: state mapping differs\n got: %v\nwant: %v", seed, gotMap, wantMap)
		}
		if got, want := gotMin.String(), wantMin.String(); got != want {
			t.Fatalf("seed %d: quotient differs\n got:\n%s\nwant:\n%s", seed, got, want)
		}
		return nil
	})
}

// TestPropMinimizeIsIdempotent: a quotient is already minimal — minimizing
// it again merges nothing.
func TestPropMinimizeIsIdempotent(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		l := randomLTS(rng, 30, 120, 4)
		min, _ := l.Minimize()
		again, mapping := min.Minimize()
		if again.StateCount() != min.StateCount() || again.TransitionCount() != min.TransitionCount() {
			t.Fatalf("seed %d: second minimisation changed size: %d/%d -> %d/%d", seed,
				min.StateCount(), min.TransitionCount(), again.StateCount(), again.TransitionCount())
		}
		for id, rep := range mapping {
			if id != rep {
				t.Fatalf("seed %d: second minimisation merged %s into %s", seed, id, rep)
			}
		}
		return nil
	})
}

// TestPropMinimizeRespectingHonoursClasses: MinimizeRespecting never merges
// states the classifier separates, refines plain Minimize (never coarser),
// and degenerates to plain Minimize under a constant classifier.
func TestPropMinimizeRespectingHonoursClasses(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		l := randomLTS(rng, 30, 120, 4)

		// Random classifier with a handful of classes.
		classes := make(map[StateID]string)
		for _, id := range l.StateIDs() {
			classes[id] = string(rune('a' + rng.Intn(3)))
		}
		classOf := func(id StateID) string { return classes[id] }

		min, mapping := l.MinimizeRespecting(classOf)
		for id, rep := range mapping {
			if classes[id] != classes[rep] {
				t.Fatalf("seed %d: %s (class %s) merged into %s (class %s)",
					seed, id, classes[id], rep, classes[rep])
			}
		}
		plainMin, plainMap := l.Minimize()
		if min.StateCount() < plainMin.StateCount() {
			t.Fatalf("seed %d: class-respecting quotient has %d states, plain quotient %d — refinement cannot be coarser",
				seed, min.StateCount(), plainMin.StateCount())
		}
		// Refinement: states separated by plain Minimize stay separated.
		for id, rep := range plainMap {
			if mapping[id] == mapping[rep] && plainMap[id] != plainMap[rep] {
				t.Fatalf("seed %d: class-respecting quotient merged %s and %s which plain Minimize separates",
					seed, id, rep)
			}
		}

		constMin, constMap := l.MinimizeRespecting(func(StateID) string { return "k" })
		if !reflect.DeepEqual(constMap, plainMap) {
			t.Fatalf("seed %d: constant classifier diverged from plain Minimize", seed)
		}
		if constMin.String() != plainMin.String() {
			t.Fatalf("seed %d: constant-classifier quotient differs from plain quotient", seed)
		}
		return nil
	})
}
