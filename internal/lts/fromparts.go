package lts

import "fmt"

// BulkEdge is one transition of a bulk-constructed LTS, with endpoints given
// as dense indices into the state-ID list passed to FromParts.
type BulkEdge struct {
	From, To int32
	Label    Label
}

// Relabeled returns an LTS sharing the receiver's state set, iteration order
// and transition index structures, in which transition i carries labels[i]
// (in Transitions order) instead of the receiver's label. Because the state
// maps are shared, neither LTS may be mutated afterwards — the generated-LTS
// contract. Incremental regeneration uses this to swap re-derived labels into
// a wholesale-reused exploration without rebuilding any index.
func (l *LTS) Relabeled(labels []Label) (*LTS, error) {
	if len(labels) != len(l.transitions) {
		return nil, fmt.Errorf("lts: Relabeled: %d labels for %d transitions", len(labels), len(l.transitions))
	}
	c := &LTS{
		initial: l.initial, hasInitial: l.hasInitial,
		states: l.states, order: l.order,
		outgoing: l.outgoing, incoming: l.incoming,
		transitions: make([]Transition, len(l.transitions)),
	}
	for i := range l.transitions {
		t := l.transitions[i]
		t.Label = labels[i]
		c.transitions[i] = t
	}
	return c, nil
}

// FromParts builds an LTS in bulk from a dense state list and edge list, the
// shape exploration drivers naturally produce. It is equivalent to calling
// AddState for every ID in order, SetInitial, and AddTransitionUnchecked for
// every edge in order — but allocates the transition slice and the
// outgoing/incoming index backing arrays exactly once instead of growing
// them edge by edge.
//
// ids must be distinct; edge endpoints must index into ids. initial is the
// index of the initial state, or -1 for none.
func FromParts(ids []StateID, initial int, edges []BulkEdge) (*LTS, error) {
	n := len(ids)
	l := &LTS{
		states:   make(map[StateID]State, n),
		order:    append([]StateID(nil), ids...),
		outgoing: make(map[StateID][]int, n),
		incoming: make(map[StateID][]int, n),
	}
	for _, id := range ids {
		if _, dup := l.states[id]; dup {
			return nil, fmt.Errorf("lts: FromParts: duplicate state ID %q", id)
		}
		l.states[id] = State{ID: id}
	}
	if initial >= 0 {
		if initial >= n {
			return nil, fmt.Errorf("lts: FromParts: initial index %d out of range", initial)
		}
		l.initial = ids[initial]
		l.hasInitial = true
	}

	l.transitions = make([]Transition, len(edges))
	// Counting sort of edge indices by From and by To: one backing array per
	// direction, sliced per state.
	outCount := make([]int32, n+1)
	inCount := make([]int32, n+1)
	for i, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("lts: FromParts: edge %d endpoints (%d, %d) out of range", i, e.From, e.To)
		}
		l.transitions[i] = Transition{From: ids[e.From], To: ids[e.To], Label: e.Label}
		outCount[e.From+1]++
		inCount[e.To+1]++
	}
	for s := 0; s < n; s++ {
		outCount[s+1] += outCount[s]
		inCount[s+1] += inCount[s]
	}
	outIdx := make([]int, len(edges))
	inIdx := make([]int, len(edges))
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for i, e := range edges {
		outIdx[outCount[e.From]+outPos[e.From]] = i
		outPos[e.From]++
		inIdx[inCount[e.To]+inPos[e.To]] = i
		inPos[e.To]++
	}
	for s := 0; s < n; s++ {
		if lo, hi := outCount[s], outCount[s+1]; hi > lo {
			l.outgoing[ids[s]] = outIdx[lo:hi:hi]
		}
		if lo, hi := inCount[s], inCount[s+1]; hi > lo {
			l.incoming[ids[s]] = inIdx[lo:hi:hi]
		}
	}
	return l, nil
}
