package lts

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// StatePredicate selects states, e.g. "some non-allowed actor could identify
// the diagnosis field".
type StatePredicate func(StateID) bool

// TransitionPredicate selects transitions, e.g. "a read action by the
// Administrator".
type TransitionPredicate func(Transition) bool

// Trace is a path through the LTS starting at some state: a sequence of
// transitions where each transition's source is the previous one's target.
type Trace []Transition

// String renders the trace one transition per line.
func (tr Trace) String() string {
	parts := make([]string, len(tr))
	for i, t := range tr {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// End returns the final state of the trace, or the given start state if the
// trace is empty.
func (tr Trace) End(start StateID) StateID {
	if len(tr) == 0 {
		return start
	}
	return tr[len(tr)-1].To
}

// FindStates returns the reachable states satisfying the predicate, sorted.
func (l *LTS) FindStates(pred StatePredicate) ([]StateID, error) {
	c := l.Compiled()
	init, ok := c.InitialIndex()
	if !ok {
		return nil, ErrNoInitialState
	}
	bits, _ := c.ReachableBits(init)
	var out []StateID
	for i, id := range c.states {
		if bits.Has(int32(i)) && pred(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// FindTransitions returns the transitions (between reachable states)
// satisfying the predicate, in insertion order.
func (l *LTS) FindTransitions(pred TransitionPredicate) ([]Transition, error) {
	c := l.Compiled()
	init, ok := c.InitialIndex()
	if !ok {
		return nil, ErrNoInitialState
	}
	bits, _ := c.ReachableBits(init)
	var out []Transition
	for e := range c.trs {
		if bits.Has(c.edgeFrom[e]) && pred(c.trs[e]) {
			out = append(out, c.trs[e])
		}
	}
	return out, nil
}

// Exists reports whether some reachable state satisfies the predicate
// (the modal-logic EF operator) and, if so, returns a shortest witness trace
// from the initial state to such a state.
func (l *LTS) Exists(pred StatePredicate) (bool, Trace, error) {
	if !l.hasInitial {
		return false, nil, ErrNoInitialState
	}
	trace, found := l.shortestTrace(l.initial, pred)
	return found, trace, nil
}

// Always reports whether every reachable state satisfies the predicate
// (the AG operator). If not, it returns a shortest counter-example trace to a
// violating state.
func (l *LTS) Always(pred StatePredicate) (bool, Trace, error) {
	violating, trace, err := l.Exists(func(id StateID) bool { return !pred(id) })
	if err != nil {
		return false, nil, err
	}
	if violating {
		return false, trace, nil
	}
	return true, nil, nil
}

// shortestTrace runs an integer BFS over the compiled view from start and
// returns the shortest trace to a state satisfying pred. The discovery order
// (FIFO queue, out-edges in insertion order) matches the original map-based
// search exactly, so witness traces are byte-identical.
func (l *LTS) shortestTrace(start StateID, pred StatePredicate) (Trace, bool) {
	c := l.Compiled()
	s, ok := c.ids[start]
	if !ok {
		return nil, false
	}
	if pred(start) {
		return Trace{}, true
	}
	// via[v] is the transition that discovered v; its source is the BFS
	// parent, so one array carries both links of the parent chain.
	via := make([]int32, len(c.states))
	for i := range via {
		via[i] = -1
	}
	visited := NewBitset(len(c.states))
	visited.Set(s)
	queue := make([]int32, 0, 64)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, e := range c.Out(cur) {
			next := c.edgeTo[e]
			if visited.Has(next) {
				continue
			}
			visited.Set(next)
			via[next] = e
			if pred(c.states[next]) {
				depth := 0
				for at := next; at != s; at = c.edgeFrom[via[at]] {
					depth++
				}
				trace := make(Trace, depth)
				for at := next; at != s; at = c.edgeFrom[via[at]] {
					depth--
					trace[depth] = c.trs[via[at]]
				}
				return trace, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// ShortestTraceTo returns the shortest trace from the initial state to the
// given state.
func (l *LTS) ShortestTraceTo(target StateID) (Trace, error) {
	if !l.hasInitial {
		return nil, ErrNoInitialState
	}
	trace, ok := l.shortestTrace(l.initial, func(id StateID) bool { return id == target })
	if !ok {
		return nil, fmt.Errorf("lts: state %q is not reachable from the initial state", target)
	}
	return trace, nil
}

// TracesFrom enumerates every simple path (no repeated states) of length at
// most maxDepth starting from the given state. The traversal is bounded to
// maxTraces paths so callers cannot accidentally explode; a negative
// maxTraces means unbounded.
func (l *LTS) TracesFrom(start StateID, maxDepth, maxTraces int) []Trace {
	c := l.Compiled()
	s, ok := c.ids[start]
	if !ok {
		return nil
	}
	var out []Trace
	// Simple paths are bounded by the state count, so cap the pre-allocation
	// there: callers may pass an effectively-unbounded maxDepth.
	cur := make([]int32, 0, min(max(maxDepth, 0), len(c.states))) // transition indices of the current path
	visited := NewBitset(len(c.states))
	visited.Set(s)
	var walk func(from int32, depth int)
	walk = func(from int32, depth int) {
		if maxTraces >= 0 && len(out) >= maxTraces {
			return
		}
		extended := false
		if depth < maxDepth {
			for _, e := range c.Out(from) {
				to := c.edgeTo[e]
				if visited.Has(to) {
					continue
				}
				visited.Set(to)
				cur = append(cur, e)
				walk(to, depth+1)
				cur = cur[:len(cur)-1]
				visited.Clear(to)
				extended = true
			}
		}
		if !extended && len(cur) > 0 {
			trace := make(Trace, len(cur))
			for i, e := range cur {
				trace[i] = c.trs[e]
			}
			out = append(out, trace)
		}
	}
	walk(s, 0)
	return out
}

// Minimize returns a new LTS that is the quotient of l under label-signature
// partition refinement: states are merged when they have the same outgoing
// label set and their successors fall in the same blocks, iterated to a fixed
// point. This is strong-bisimulation minimisation restricted to label
// strings; it is used to present compact views of large generated models.
// The mapping from original state IDs to representative IDs is also returned.
//
// The refinement runs on the compiled view: a state's signature is its own
// block plus the sorted multiset of (label ID, successor block) integer
// pairs, hashed and bucketed with full-signature comparison on collision, so
// no label strings are rendered and no per-round signature strings are
// built. Stability is detected by comparing the partitions themselves (block
// numbering is canonical — first encounter in state order — so two rounds
// assign identical arrays exactly when the partition stopped refining).
func (l *LTS) Minimize() (*LTS, map[StateID]StateID) {
	return l.MinimizeRespecting(nil)
}

// MinimizeRespecting is Minimize with a caller-refined initial partition:
// states start in the same block only when classOf assigns them the same
// class (on top of the terminal/non-terminal split), so states from
// different classes are never merged. Callers use it to make the quotient
// respect state payloads the LTS itself does not know about — the privacy
// layer passes each state's privacy-vector key, which makes every quotient
// transition's vector delta an exact original delta and vice versa. A nil
// classOf puts every state in one class, which is plain Minimize.
func (l *LTS) MinimizeRespecting(classOf func(StateID) string) (*LTS, map[StateID]StateID) {
	c := l.Compiled()
	n := c.NumStates()

	// Initial partition: split by terminal/non-terminal and the caller's
	// class, blocks numbered by first encounter in state order (the
	// canonical numbering every round uses, so the stability comparison
	// below is a plain array equality).
	block := make([]int32, n)
	numBlocks := 0
	type initKey struct {
		terminal bool
		class    string
	}
	initBlocks := make(map[initKey]int32, 2)
	for i := 0; i < n; i++ {
		key := initKey{terminal: c.OutDegree(int32(i)) == 0}
		if classOf != nil {
			key.class = classOf(c.states[i])
		}
		b, ok := initBlocks[key]
		if !ok {
			b = int32(numBlocks)
			numBlocks++
			initBlocks[key] = b
		}
		block[i] = b
	}

	// blockRep remembers, per new block, the signature that founded it, for
	// exact comparison when two signatures collide on the same hash.
	type blockRep struct {
		own int32
		sig []uint64
	}
	newBlock := make([]int32, n)
	sig := make([]uint64, 0, c.MaxOutDegree())
	for {
		table := make(map[uint64][]int32, numBlocks)
		reps := make([]blockRep, 0, numBlocks)
		for i := 0; i < n; i++ {
			sig = sig[:0]
			for _, e := range c.Out(int32(i)) {
				sig = append(sig, uint64(uint32(c.edgeLabel[e]))<<32|uint64(uint32(block[c.edgeTo[e]])))
			}
			slices.Sort(sig)
			own := block[i]
			h := hashSignature(own, sig)
			found := int32(-1)
			for _, cand := range table[h] {
				if r := &reps[cand]; r.own == own && slices.Equal(r.sig, sig) {
					found = cand
					break
				}
			}
			if found < 0 {
				found = int32(len(reps))
				reps = append(reps, blockRep{own: own, sig: append([]uint64(nil), sig...)})
				table[h] = append(table[h], found)
			}
			newBlock[i] = found
		}
		stable := len(reps) == numBlocks && slices.Equal(newBlock, block)
		block, newBlock = newBlock, block
		numBlocks = len(reps)
		if stable {
			break
		}
	}

	// Representative of each block: the first state in insertion order.
	repOf := make([]StateID, numBlocks)
	repSet := make([]bool, numBlocks)
	mapping := make(map[StateID]StateID, n)
	for i := 0; i < n; i++ {
		b := block[i]
		if !repSet[b] {
			repSet[b] = true
			repOf[b] = c.states[i]
		}
		mapping[c.states[i]] = repOf[b]
	}

	min := New()
	for i := 0; i < n; i++ {
		id := c.states[i]
		if mapping[id] == id {
			min.AddState(id, l.states[id].Props)
		}
	}
	if l.hasInitial {
		min.SetInitial(mapping[l.initial])
	}
	// Quotient transitions, deduplicated by (source block, target block,
	// label) with the first insertion-order occurrence winning — exactly what
	// AddTransition's per-edge duplicate scan used to compute, without
	// re-rendering any label.
	type quotientEdge struct{ from, to, label int32 }
	added := make(map[quotientEdge]bool, len(c.trs))
	for e := range c.trs {
		k := quotientEdge{block[c.edgeFrom[e]], block[c.edgeTo[e]], c.edgeLabel[e]}
		if added[k] {
			continue
		}
		added[k] = true
		t := c.trs[e]
		min.AddTransitionUnchecked(mapping[t.From], mapping[t.To], t.Label)
	}
	return min, mapping
}

// hashSignature mixes a minimisation signature into a 64-bit FNV-1a-style
// hash. Collisions are resolved by full comparison, so only distribution
// matters here, not cryptographic strength.
func hashSignature(own int32, sig []uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(uint32(own))) * prime
	for _, v := range sig {
		h = (h ^ (v & 0xffffffff)) * prime
		h = (h ^ (v >> 32)) * prime
	}
	return h
}
