package lts

import (
	"fmt"
	"sort"
	"strings"
)

// StatePredicate selects states, e.g. "some non-allowed actor could identify
// the diagnosis field".
type StatePredicate func(StateID) bool

// TransitionPredicate selects transitions, e.g. "a read action by the
// Administrator".
type TransitionPredicate func(Transition) bool

// Trace is a path through the LTS starting at some state: a sequence of
// transitions where each transition's source is the previous one's target.
type Trace []Transition

// String renders the trace one transition per line.
func (tr Trace) String() string {
	parts := make([]string, len(tr))
	for i, t := range tr {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// End returns the final state of the trace, or the given start state if the
// trace is empty.
func (tr Trace) End(start StateID) StateID {
	if len(tr) == 0 {
		return start
	}
	return tr[len(tr)-1].To
}

// FindStates returns the reachable states satisfying the predicate, sorted.
func (l *LTS) FindStates(pred StatePredicate) ([]StateID, error) {
	reach, err := l.Reachable()
	if err != nil {
		return nil, err
	}
	var out []StateID
	for id := range reach {
		if pred(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// FindTransitions returns the transitions (between reachable states)
// satisfying the predicate, in insertion order.
func (l *LTS) FindTransitions(pred TransitionPredicate) ([]Transition, error) {
	reach, err := l.Reachable()
	if err != nil {
		return nil, err
	}
	var out []Transition
	for _, t := range l.transitions {
		if reach[t.From] && pred(t) {
			out = append(out, t)
		}
	}
	return out, nil
}

// Exists reports whether some reachable state satisfies the predicate
// (the modal-logic EF operator) and, if so, returns a shortest witness trace
// from the initial state to such a state.
func (l *LTS) Exists(pred StatePredicate) (bool, Trace, error) {
	if !l.hasInitial {
		return false, nil, ErrNoInitialState
	}
	trace, found := l.shortestTrace(l.initial, pred)
	return found, trace, nil
}

// Always reports whether every reachable state satisfies the predicate
// (the AG operator). If not, it returns a shortest counter-example trace to a
// violating state.
func (l *LTS) Always(pred StatePredicate) (bool, Trace, error) {
	violating, trace, err := l.Exists(func(id StateID) bool { return !pred(id) })
	if err != nil {
		return false, nil, err
	}
	if violating {
		return false, trace, nil
	}
	return true, nil, nil
}

// shortestTrace runs a BFS from start and returns the shortest trace to a
// state satisfying pred.
func (l *LTS) shortestTrace(start StateID, pred StatePredicate) (Trace, bool) {
	if !l.HasState(start) {
		return nil, false
	}
	if pred(start) {
		return Trace{}, true
	}
	type parentLink struct {
		prev StateID
		via  int // transition index
	}
	parents := map[StateID]parentLink{}
	visited := map[StateID]bool{start: true}
	queue := []StateID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, idx := range l.outgoing[cur] {
			next := l.transitions[idx].To
			if visited[next] {
				continue
			}
			visited[next] = true
			parents[next] = parentLink{prev: cur, via: idx}
			if pred(next) {
				// Reconstruct the trace.
				var rev []Transition
				for at := next; at != start; {
					link := parents[at]
					rev = append(rev, l.transitions[link.via])
					at = link.prev
				}
				trace := make(Trace, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					trace = append(trace, rev[i])
				}
				return trace, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// ShortestTraceTo returns the shortest trace from the initial state to the
// given state.
func (l *LTS) ShortestTraceTo(target StateID) (Trace, error) {
	if !l.hasInitial {
		return nil, ErrNoInitialState
	}
	trace, ok := l.shortestTrace(l.initial, func(id StateID) bool { return id == target })
	if !ok {
		return nil, fmt.Errorf("lts: state %q is not reachable from the initial state", target)
	}
	return trace, nil
}

// TracesFrom enumerates every simple path (no repeated states) of length at
// most maxDepth starting from the given state. The traversal is bounded to
// maxTraces paths so callers cannot accidentally explode; a negative
// maxTraces means unbounded.
func (l *LTS) TracesFrom(start StateID, maxDepth, maxTraces int) []Trace {
	var out []Trace
	var cur Trace
	visited := map[StateID]bool{start: true}
	var walk func(from StateID, depth int)
	walk = func(from StateID, depth int) {
		if maxTraces >= 0 && len(out) >= maxTraces {
			return
		}
		outgoing := l.Outgoing(from)
		extended := false
		if depth < maxDepth {
			for _, t := range outgoing {
				if visited[t.To] {
					continue
				}
				visited[t.To] = true
				cur = append(cur, t)
				walk(t.To, depth+1)
				cur = cur[:len(cur)-1]
				visited[t.To] = false
				extended = true
			}
		}
		if !extended && len(cur) > 0 {
			trace := make(Trace, len(cur))
			copy(trace, cur)
			out = append(out, trace)
		}
	}
	walk(start, 0)
	return out
}

// Minimize returns a new LTS that is the quotient of l under label-signature
// partition refinement: states are merged when they have the same outgoing
// label set and their successors fall in the same blocks, iterated to a fixed
// point. This is strong-bisimulation minimisation restricted to label
// strings; it is used to present compact views of large generated models.
// The mapping from original state IDs to representative IDs is also returned.
func (l *LTS) Minimize() (*LTS, map[StateID]StateID) {
	// Initial partition: all states in one block (split by terminal/non-terminal).
	block := make(map[StateID]int, len(l.states))
	for _, id := range l.order {
		if len(l.outgoing[id]) == 0 {
			block[id] = 1
		} else {
			block[id] = 0
		}
	}
	blockCount := func(b map[StateID]int) int {
		set := make(map[int]bool, len(b))
		for _, v := range b {
			set[v] = true
		}
		return len(set)
	}
	for {
		// Signature: current block plus the sorted list of "label->block"
		// pairs of the outgoing transitions. Because the current block is
		// part of the signature, each round refines the previous partition,
		// so the block count is non-decreasing and the loop terminates.
		sigOf := func(id StateID) string {
			parts := make([]string, 0, len(l.outgoing[id]))
			for _, idx := range l.outgoing[id] {
				t := l.transitions[idx]
				label := ""
				if t.Label != nil {
					label = t.Label.LabelString()
				}
				parts = append(parts, fmt.Sprintf("%s\x00%d", label, block[t.To]))
			}
			sort.Strings(parts)
			return fmt.Sprintf("%d|%s", block[id], strings.Join(parts, "\x01"))
		}
		sigBlocks := make(map[string]int)
		newBlock := make(map[StateID]int, len(l.states))
		for _, id := range l.order {
			sig := sigOf(id)
			b, ok := sigBlocks[sig]
			if !ok {
				b = len(sigBlocks)
				sigBlocks[sig] = b
			}
			newBlock[id] = b
		}
		stable := blockCount(newBlock) == blockCount(block)
		block = newBlock
		if stable {
			break
		}
	}

	// Representative of each block: the first state in insertion order.
	repOf := make(map[int]StateID)
	mapping := make(map[StateID]StateID, len(l.states))
	for _, id := range l.order {
		b := block[id]
		if _, ok := repOf[b]; !ok {
			repOf[b] = id
		}
		mapping[id] = repOf[b]
	}

	min := New()
	for _, id := range l.order {
		if mapping[id] == id {
			s := l.states[id]
			min.AddState(id, s.Props)
		}
	}
	if l.hasInitial {
		min.SetInitial(mapping[l.initial])
	}
	for _, t := range l.transitions {
		min.AddTransition(mapping[t.From], mapping[t.To], t.Label)
	}
	return min, mapping
}
