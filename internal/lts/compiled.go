package lts

// Compiled is an immutable, cache-friendly compilation of an LTS: states are
// renumbered to dense int32 indices (in insertion order), every distinct
// label string is interned into a table exactly once, and the transitions are
// laid out twice in compressed-sparse-row (CSR) form — grouped by source for
// outgoing traversal and by target for incoming traversal — as flat []int32
// slices of transition indices. Every graph analysis in this package
// (reachability, shortest witness traces, simple-path enumeration,
// minimisation) runs on the compiled form: integer-indexed BFS/DFS over
// slices with bitset visited sets, no map lookups and no label rendering on
// the hot path.
//
// A Compiled is a snapshot: it references the transitions the LTS held when
// Compile ran and never observes later mutations. The LTS caches its own
// compiled view (see LTS.Compiled) and invalidates it on mutation, so
// analyses transparently recompile after the builder changes. All methods are
// safe for concurrent use.
type Compiled struct {
	states  []StateID         // dense index -> state ID, insertion order
	ids     map[StateID]int32 // state ID -> dense index
	initial int32             // dense initial state, -1 when unset

	trs []Transition // snapshot of the source transitions, insertion order

	labels    []Label  // interned label table; labels[i] is the first Label seen rendering labelStrs[i]
	labelStrs []string // labelStrs[i] == labels[i].LabelString() (resolved once, at compile time)
	edgeLabel []int32  // per transition -> index into the label table
	edgeFrom  []int32  // per transition -> dense source state
	edgeTo    []int32  // per transition -> dense target state

	outOff   []int32 // len NumStates+1; out-edges of s are outEdges[outOff[s]:outOff[s+1]]
	outEdges []int32 // transition indices grouped by source, insertion order within each source
	inOff    []int32
	inEdges  []int32

	maxOutDegree int
}

// Compile builds the CSR form of the LTS. Each distinct label string is
// rendered exactly once into the interned table; analyses on the compiled
// form never call LabelString again.
func Compile(l *LTS) *Compiled {
	n := len(l.order)
	m := len(l.transitions)
	c := &Compiled{
		states:  append([]StateID(nil), l.order...),
		ids:     make(map[StateID]int32, n),
		initial: -1,
		// Full-capacity reslice: later appends to the builder's slice can
		// never write into this snapshot's window.
		trs:       l.transitions[:m:m],
		edgeLabel: make([]int32, m),
		edgeFrom:  make([]int32, m),
		edgeTo:    make([]int32, m),
		outOff:    make([]int32, n+1),
		inOff:     make([]int32, n+1),
	}
	for i, id := range c.states {
		c.ids[id] = int32(i)
	}
	if l.hasInitial {
		c.initial = c.ids[l.initial]
	}

	labelIDs := make(map[string]int32)
	for i := range c.trs {
		t := &c.trs[i]
		c.edgeFrom[i] = c.ids[t.From]
		c.edgeTo[i] = c.ids[t.To]
		str := ""
		if t.Label != nil {
			str = t.Label.LabelString()
		}
		lid, ok := labelIDs[str]
		if !ok {
			lid = int32(len(c.labels))
			labelIDs[str] = lid
			c.labels = append(c.labels, t.Label)
			c.labelStrs = append(c.labelStrs, str)
		}
		c.edgeLabel[i] = lid
	}

	// Counting sort into CSR: one pass to count degrees, a prefix sum, and a
	// stable fill (ascending transition index preserves insertion order
	// within each source/target).
	for i := 0; i < m; i++ {
		c.outOff[c.edgeFrom[i]+1]++
		c.inOff[c.edgeTo[i]+1]++
	}
	for s := 0; s < n; s++ {
		if d := int(c.outOff[s+1]); d > c.maxOutDegree {
			c.maxOutDegree = d
		}
		c.outOff[s+1] += c.outOff[s]
		c.inOff[s+1] += c.inOff[s]
	}
	c.outEdges = make([]int32, m)
	c.inEdges = make([]int32, m)
	outNext := append([]int32(nil), c.outOff[:n]...)
	inNext := append([]int32(nil), c.inOff[:n]...)
	for i := 0; i < m; i++ {
		from, to := c.edgeFrom[i], c.edgeTo[i]
		c.outEdges[outNext[from]] = int32(i)
		outNext[from]++
		c.inEdges[inNext[to]] = int32(i)
		inNext[to]++
	}
	return c
}

// NumStates returns the number of states.
func (c *Compiled) NumStates() int { return len(c.states) }

// NumEdges returns the number of transitions.
func (c *Compiled) NumEdges() int { return len(c.trs) }

// NumLabels returns the number of distinct label strings.
func (c *Compiled) NumLabels() int { return len(c.labels) }

// MaxOutDegree returns the largest number of transitions leaving any state.
func (c *Compiled) MaxOutDegree() int { return c.maxOutDegree }

// StateAt returns the state ID at the given dense index.
func (c *Compiled) StateAt(s int32) StateID { return c.states[s] }

// Index returns the dense index of the state ID.
func (c *Compiled) Index(id StateID) (int32, bool) {
	s, ok := c.ids[id]
	return s, ok
}

// InitialIndex returns the dense index of the initial state; ok is false when
// none was set at compile time.
func (c *Compiled) InitialIndex() (int32, bool) {
	if c.initial < 0 {
		return 0, false
	}
	return c.initial, true
}

// Out returns the transition indices leaving the state, in insertion order.
// The returned slice aliases the CSR layout and must not be modified.
func (c *Compiled) Out(s int32) []int32 { return c.outEdges[c.outOff[s]:c.outOff[s+1]] }

// In returns the transition indices entering the state, in insertion order.
// The returned slice aliases the CSR layout and must not be modified.
func (c *Compiled) In(s int32) []int32 { return c.inEdges[c.inOff[s]:c.inOff[s+1]] }

// OutDegree returns the number of transitions leaving the state.
func (c *Compiled) OutDegree(s int32) int { return int(c.outOff[s+1] - c.outOff[s]) }

// From returns the dense source state of the transition.
func (c *Compiled) From(e int32) int32 { return c.edgeFrom[e] }

// To returns the dense target state of the transition.
func (c *Compiled) To(e int32) int32 { return c.edgeTo[e] }

// LabelID returns the interned label index of the transition.
func (c *Compiled) LabelID(e int32) int32 { return c.edgeLabel[e] }

// Label returns the interned label at the given label index: the first Label
// value encountered with that label string (nil labels intern alongside
// labels rendering the empty string).
func (c *Compiled) Label(lid int32) Label { return c.labels[lid] }

// LabelString returns the label string at the given label index, resolved
// once at compile time.
func (c *Compiled) LabelString(lid int32) string { return c.labelStrs[lid] }

// TransitionAt returns the original transition value at the given transition
// index, byte-identical to what the builder LTS holds.
func (c *Compiled) TransitionAt(e int32) Transition { return c.trs[e] }

// ReachableBits returns the bitset of states reachable from the given dense
// state (including it) and their count.
func (c *Compiled) ReachableBits(start int32) (Bitset, int) {
	visited := NewBitset(len(c.states))
	visited.Set(start)
	count := 1
	stack := make([]int32, 0, 64)
	stack = append(stack, start)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Out(cur) {
			next := c.edgeTo[e]
			if visited.Has(next) {
				continue
			}
			visited.Set(next)
			count++
			stack = append(stack, next)
		}
	}
	return visited, count
}

// Bitset is a fixed-width bitset over dense state indices, the visited-set
// representation of every compiled graph traversal.
type Bitset []uint64

// NewBitset returns an all-false bitset for n elements.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int32) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b Bitset) Clear(i int32) { b[i>>6] &^= 1 << uint(i&63) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
