// Package testutil holds shared test helpers. It is imported only from
// _test.go files; keep it free of dependencies on the packages it helps
// test.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutineLeak snapshots the goroutine count and registers a cleanup
// that fails the test if, after a grace period, more goroutines are running
// than at the snapshot. Call it first thing in any test that exercises a
// cancellation path:
//
//	func TestCancelled(t *testing.T) {
//		testutil.CheckGoroutineLeak(t)
//		... cancel a context mid-operation ...
//	}
//
// The contract under test: every worker pool in this module is joined before
// its entry point returns, so cancellation must never strand a goroutine.
// The check polls (goroutines park asynchronously after wg.Wait returns in
// their spawner) and only fails after the count stays elevated for the full
// grace period, with the offending stacks in the failure message.
func CheckGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		const (
			grace = 2 * time.Second
			step  = 10 * time.Millisecond
		)
		deadline := time.Now().Add(grace)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(step)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after cleanup grace period\n%s",
				before, after, goroutineStacks())
		}
	})
}

// goroutineStacks renders all goroutine stacks, trimmed to a sane size for
// test logs.
func goroutineStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	const maxLen = 16 * 1024
	if len(s) > maxLen {
		if cut := strings.LastIndex(s[:maxLen], "\n\ngoroutine "); cut > 0 {
			s = s[:cut] + "\n\n[... more goroutines elided ...]"
		} else {
			s = s[:maxLen]
		}
	}
	return s
}
