// Package dot provides a minimal builder for Graphviz DOT documents.
//
// The rest of the repository uses it to render data-flow diagrams (Fig. 1 of
// the paper) and labelled transition systems (Figs. 3 and 4) as text that can
// be piped straight into `dot -Tpng`. Only the small subset of the DOT
// language needed by those renderers is supported: directed graphs, node and
// edge attributes, and named subgraph clusters.
package dot

import (
	"sort"
	"strings"
)

// Graph is a directed DOT graph under construction. The zero value is not
// usable; create graphs with NewGraph.
type Graph struct {
	name      string
	graphAttr map[string]string
	nodeAttr  map[string]string
	edgeAttr  map[string]string
	nodes     []*node
	nodeIndex map[string]*node
	edges     []*edge
	clusters  []*Cluster
}

// Cluster is a named subgraph rendered as a DOT cluster.
type Cluster struct {
	name  string
	label string
	attrs map[string]string
	nodes []string
}

type node struct {
	id    string
	attrs map[string]string
}

type edge struct {
	from, to string
	attrs    map[string]string
}

// NewGraph creates an empty directed graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{
		name:      name,
		graphAttr: make(map[string]string),
		nodeAttr:  make(map[string]string),
		edgeAttr:  make(map[string]string),
		nodeIndex: make(map[string]*node),
	}
}

// SetGraphAttr sets a graph-level attribute such as "rankdir".
func (g *Graph) SetGraphAttr(key, value string) { g.graphAttr[key] = value }

// SetNodeDefault sets a default attribute applied to every node.
func (g *Graph) SetNodeDefault(key, value string) { g.nodeAttr[key] = value }

// SetEdgeDefault sets a default attribute applied to every edge.
func (g *Graph) SetEdgeDefault(key, value string) { g.edgeAttr[key] = value }

// AddNode adds (or updates) a node with the given identifier and attributes.
// Attribute maps are copied; callers may reuse the map afterwards.
func (g *Graph) AddNode(id string, attrs map[string]string) {
	if existing, ok := g.nodeIndex[id]; ok {
		for k, v := range attrs {
			existing.attrs[k] = v
		}
		return
	}
	n := &node{id: id, attrs: copyAttrs(attrs)}
	g.nodes = append(g.nodes, n)
	g.nodeIndex[id] = n
}

// HasNode reports whether a node with the identifier has been added.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodeIndex[id]
	return ok
}

// NodeCount returns the number of nodes added to the graph.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges added to the graph.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// AddEdge adds a directed edge between two node identifiers. Nodes that have
// not been declared are created implicitly with no attributes.
func (g *Graph) AddEdge(from, to string, attrs map[string]string) {
	if !g.HasNode(from) {
		g.AddNode(from, nil)
	}
	if !g.HasNode(to) {
		g.AddNode(to, nil)
	}
	g.edges = append(g.edges, &edge{from: from, to: to, attrs: copyAttrs(attrs)})
}

// AddCluster creates a subgraph cluster with the given name and display
// label, and returns it so nodes can be assigned to it.
func (g *Graph) AddCluster(name, label string) *Cluster {
	c := &Cluster{name: name, label: label, attrs: make(map[string]string)}
	g.clusters = append(g.clusters, c)
	return c
}

// SetAttr sets a cluster-level attribute such as "style".
func (c *Cluster) SetAttr(key, value string) { c.attrs[key] = value }

// AddNode assigns an existing (or future) node identifier to the cluster.
func (c *Cluster) AddNode(id string) { c.nodes = append(c.nodes, id) }

// Render produces the DOT document as a string. The document is assembled
// with direct writes into one pre-sized strings.Builder — no fmt formatting
// and no intermediate attribute strings — because LTS renderings put every
// transition label of a model through this path.
func (g *Graph) Render() string {
	var b strings.Builder
	b.Grow(g.estimateSize())
	b.WriteString("digraph ")
	b.WriteString(quoteID(g.name))
	b.WriteString(" {\n")
	writeAttrLines(&b, "  ", g.graphAttr)
	if len(g.nodeAttr) > 0 {
		b.WriteString("  node ")
		writeAttrList(&b, g.nodeAttr)
		b.WriteString(";\n")
	}
	if len(g.edgeAttr) > 0 {
		b.WriteString("  edge ")
		writeAttrList(&b, g.edgeAttr)
		b.WriteString(";\n")
	}
	clustered := make(map[string]bool)
	for _, c := range g.clusters {
		b.WriteString("  subgraph ")
		b.WriteString(quoteID("cluster_" + c.name))
		b.WriteString(" {\n    label=")
		b.WriteString(quote(c.label))
		b.WriteString(";\n")
		writeAttrLines(&b, "    ", c.attrs)
		for _, id := range c.nodes {
			clustered[id] = true
			if n, ok := g.nodeIndex[id]; ok {
				writeNode(&b, "    ", n)
			}
		}
		b.WriteString("  }\n")
	}
	for _, n := range g.nodes {
		if clustered[n.id] {
			continue
		}
		writeNode(&b, "  ", n)
	}
	for _, e := range g.edges {
		b.WriteString("  ")
		b.WriteString(quoteID(e.from))
		b.WriteString(" -> ")
		b.WriteString(quoteID(e.to))
		if len(e.attrs) > 0 {
			b.WriteString(" ")
			writeAttrList(&b, e.attrs)
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// estimateSize guesses the rendered length so Render grows its builder once.
// Attribute values dominate (LTS node and edge labels), so they are counted
// exactly; structural syntax is padded per element.
func (g *Graph) estimateSize() int {
	const perAttr, perElem = 8, 16
	size := perElem + len(g.name)
	countAttrs := func(attrs map[string]string) {
		for k, v := range attrs {
			size += len(k) + len(v) + perAttr
		}
	}
	countAttrs(g.graphAttr)
	countAttrs(g.nodeAttr)
	countAttrs(g.edgeAttr)
	for _, c := range g.clusters {
		size += perElem + len(c.name) + len(c.label)
		countAttrs(c.attrs)
	}
	for _, n := range g.nodes {
		size += perElem + len(n.id)
		countAttrs(n.attrs)
	}
	for _, e := range g.edges {
		size += perElem + len(e.from) + len(e.to)
		countAttrs(e.attrs)
	}
	return size
}

func writeNode(b *strings.Builder, indent string, n *node) {
	b.WriteString(indent)
	b.WriteString(quoteID(n.id))
	if len(n.attrs) > 0 {
		b.WriteString(" ")
		writeAttrList(b, n.attrs)
	}
	b.WriteString(";\n")
}

func writeAttrLines(b *strings.Builder, indent string, attrs map[string]string) {
	for _, k := range sortedKeys(attrs) {
		b.WriteString(indent)
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(quote(attrs[k]))
		b.WriteString(";\n")
	}
}

func writeAttrList(b *strings.Builder, attrs map[string]string) {
	b.WriteString("[")
	for i, k := range sortedKeys(attrs) {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(quote(attrs[k]))
	}
	b.WriteString("]")
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func copyAttrs(attrs map[string]string) map[string]string {
	out := make(map[string]string, len(attrs))
	for k, v := range attrs {
		out[k] = v
	}
	return out
}

// quote renders a value as a quoted DOT string, escaping embedded quotes and
// newlines.
func quote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return `"` + s + `"`
}

// quoteID quotes an identifier unless it is already a safe DOT ID.
func quoteID(s string) string {
	if s == "" {
		return `""`
	}
	safe := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			safe = false
		}
		if !safe {
			break
		}
	}
	if safe {
		return s
	}
	return quote(s)
}
