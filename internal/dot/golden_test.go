package dot_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"privascope/internal/core"
	"privascope/internal/dot"
	"privascope/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update. DOT output is consumed by external tooling (graphviz), so the
// exact text — quoting, indentation, attribute order — is pinned.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("rewriting %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (re-record with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from its golden file (re-record with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenGraphRender pins the raw renderer: defaults, clusters, implicit
// nodes, and identifiers/attributes that need quoting.
func TestGoldenGraphRender(t *testing.T) {
	g := dot.NewGraph("sample graph")
	g.SetGraphAttr("rankdir", "LR")
	g.SetNodeDefault("fontname", "Helvetica")
	g.SetEdgeDefault("color", "grey40")
	g.AddNode("start", map[string]string{"shape": "oval", "label": "Start\nhere"})
	g.AddNode("store-1", map[string]string{"shape": "box", "label": `holds "data"`})
	g.AddEdge("start", "store-1", map[string]string{"label": "1. {name, age}"})
	g.AddEdge("store-1", "implicit", nil)
	c := g.AddCluster("cluster_svc", "Service One")
	c.SetAttr("style", "dashed")
	c.AddNode("start")
	c.AddNode("store-1")
	golden(t, "graph.golden", g.Render())
}

// TestGoldenModelDOT pins the data-flow diagram of the fixed synthetic
// model, the Fig. 1 rendering every CLI export goes through.
func TestGoldenModelDOT(t *testing.T) {
	m := synth.Model(synth.ModelSpec{Services: 2, FieldsPerService: 2, ExtraActors: 1})
	golden(t, "synth_model.golden", m.DOT())
}

// TestGoldenPrivacyLTSDOT pins the privacy-LTS rendering (the paper's
// Fig. 4 style) of a one-service synthetic system, verbose states included.
func TestGoldenPrivacyLTSDOT(t *testing.T) {
	m := synth.Model(synth.ModelSpec{Services: 1, FieldsPerService: 2})
	p, err := core.Generate(m)
	if err != nil {
		t.Fatalf("generating model: %v", err)
	}
	golden(t, "synth_lts.golden", p.DOT(core.DOTOptions{VerboseStates: true}))
}
