package dot

import (
	"strings"
	"testing"
)

func TestRenderEmptyGraph(t *testing.T) {
	g := NewGraph("empty")
	got := g.Render()
	want := "digraph empty {\n}\n"
	if got != want {
		t.Fatalf("Render() = %q, want %q", got, want)
	}
}

func TestRenderNodesAndEdges(t *testing.T) {
	g := NewGraph("flow")
	g.SetGraphAttr("rankdir", "LR")
	g.AddNode("patient", map[string]string{"shape": "oval", "label": "Patient"})
	g.AddNode("ehr", map[string]string{"shape": "box"})
	g.AddEdge("patient", "ehr", map[string]string{"label": "name, dob"})

	out := g.Render()
	for _, want := range []string{
		`rankdir="LR";`,
		`patient [label="Patient", shape="oval"];`,
		`ehr [shape="box"];`,
		`patient -> ehr [label="name, dob"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q in:\n%s", want, out)
		}
	}
}

func TestAddEdgeImplicitNodes(t *testing.T) {
	g := NewGraph("g")
	g.AddEdge("a", "b", nil)
	if !g.HasNode("a") || !g.HasNode("b") {
		t.Fatalf("AddEdge should create missing nodes; has(a)=%v has(b)=%v", g.HasNode("a"), g.HasNode("b"))
	}
	if g.NodeCount() != 2 {
		t.Fatalf("NodeCount() = %d, want 2", g.NodeCount())
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount() = %d, want 1", g.EdgeCount())
	}
}

func TestAddNodeMergesAttributes(t *testing.T) {
	g := NewGraph("g")
	g.AddNode("n", map[string]string{"shape": "box"})
	g.AddNode("n", map[string]string{"label": "Node"})
	out := g.Render()
	if !strings.Contains(out, `n [label="Node", shape="box"];`) {
		t.Fatalf("expected merged attributes, got:\n%s", out)
	}
	if g.NodeCount() != 1 {
		t.Fatalf("NodeCount() = %d, want 1", g.NodeCount())
	}
}

func TestClusters(t *testing.T) {
	g := NewGraph("svc")
	g.AddNode("a", map[string]string{"label": "A"})
	g.AddNode("b", nil)
	c := g.AddCluster("medical", "Medical Service")
	c.SetAttr("style", "dashed")
	c.AddNode("a")

	out := g.Render()
	if !strings.Contains(out, "subgraph cluster_medical {") {
		t.Fatalf("missing cluster block:\n%s", out)
	}
	if !strings.Contains(out, `label="Medical Service";`) {
		t.Fatalf("missing cluster label:\n%s", out)
	}
	if !strings.Contains(out, `style="dashed";`) {
		t.Fatalf("missing cluster attr:\n%s", out)
	}
	// Node "a" must be emitted inside the cluster only.
	if strings.Count(out, `a [label="A"];`) != 1 {
		t.Fatalf("node a should be rendered exactly once:\n%s", out)
	}
}

func TestQuoteEscaping(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"plain", "abc", `"abc"`},
		{"quotes", `say "hi"`, `"say \"hi\""`},
		{"newline", "a\nb", `"a\nb"`},
		{"backslash", `a\b`, `"a\\b"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := quote(tt.in); got != tt.want {
				t.Errorf("quote(%q) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestQuoteID(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"simple", "simple"},
		{"with_underscore", "with_underscore"},
		{"s1", "s1"},
		{"1leading", `"1leading"`},
		{"has space", `"has space"`},
		{"", `""`},
	}
	for _, tt := range tests {
		if got := quoteID(tt.in); got != tt.want {
			t.Errorf("quoteID(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	build := func() string {
		g := NewGraph("d")
		g.AddNode("x", map[string]string{"b": "2", "a": "1", "c": "3"})
		g.AddEdge("x", "y", map[string]string{"z": "9", "a": "0"})
		return g.Render()
	}
	first := build()
	for i := 0; i < 20; i++ {
		if got := build(); got != first {
			t.Fatalf("Render() not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}
