package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"privascope/internal/core"
	"privascope/internal/report"
	"privascope/internal/risk"
	"privascope/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update. Report rendering feeds documentation and CLI output, so its exact
// text is pinned byte-for-byte; a deliberate format change re-records with:
//
//	go test ./internal/report -run Golden -update
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("rewriting %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (re-record with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from its golden file (re-record with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenModel is the fixed synthetic system every golden rendering uses:
// small enough to read in a diff, big enough to exercise multi-service
// output, extra actors and the maintenance potential reads.
func goldenModel(t *testing.T) (*core.PrivacyLTS, []risk.UserProfile) {
	t.Helper()
	m := synth.Model(synth.ModelSpec{Services: 2, FieldsPerService: 2, ExtraActors: 1})
	p, err := core.Generate(m)
	if err != nil {
		t.Fatalf("generating model: %v", err)
	}
	profiles := synth.Population(m, synth.PopulationOptions{
		Users: 3, Seed: 7, SensitiveFields: synth.SensitiveFieldsOf(m),
	})
	return p, profiles
}

func TestGoldenModelSummary(t *testing.T) {
	p, _ := goldenModel(t)
	r := report.ModelSummary(p)
	golden(t, "model_summary.golden", r.Render())
	golden(t, "model_summary.md.golden", r.RenderMarkdown())
}

func TestGoldenDisclosureAssessment(t *testing.T) {
	p, profiles := goldenModel(t)
	a, err := risk.MustAnalyzer(risk.Config{}).Analyze(p, profiles[0])
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	r := report.DisclosureAssessment(a)
	golden(t, "disclosure_assessment.golden", r.Render())
	golden(t, "disclosure_assessment.md.golden", r.RenderMarkdown())
}

func TestGoldenPopulationSummary(t *testing.T) {
	p, profiles := goldenModel(t)
	pa, err := risk.MustAnalyzer(risk.Config{}).AnalyzePopulation(p, profiles)
	if err != nil {
		t.Fatalf("analyzing population: %v", err)
	}
	golden(t, "population_summary.golden", report.PopulationSummary(pa).Render())
}
