package report

import (
	"fmt"
	"strconv"
	"strings"

	"privascope/internal/core"
	"privascope/internal/policy"
	"privascope/internal/pseudorisk"
	"privascope/internal/risk"
)

// ModelSummary builds a report section describing a generated privacy LTS:
// its size, the action mix, and any generation warnings.
func ModelSummary(p *core.PrivacyLTS) *Report {
	r := NewReport("Privacy model: " + p.Model.Name)
	stats := p.Stats()
	overview := NewTable("metric", "value")
	overview.AddRow("actors", strconv.Itoa(stats.Actors))
	overview.AddRow("fields", strconv.Itoa(stats.Fields))
	overview.AddRow("state variables per state", strconv.Itoa(stats.StateVariables))
	overview.AddRow("states", strconv.Itoa(stats.States))
	overview.AddRow("transitions", strconv.Itoa(stats.Transitions))
	overview.AddRow("potential-read transitions", strconv.Itoa(stats.PotentialTransitions))
	r.AddTable("Model size", "", overview)

	hist := NewTable("transition label", "count")
	for _, lc := range p.Graph.LabelHistogram() {
		hist.AddRow(lc.Label, strconv.Itoa(lc.Count))
	}
	r.AddTable("Transition labels", "", hist)

	if len(p.Warnings) > 0 {
		r.AddSection("Warnings", "- "+strings.Join(p.Warnings, "\n- "))
	}
	return r
}

// DisclosureAssessment builds the report for an unwanted-disclosure analysis
// (case study IV-A).
func DisclosureAssessment(a *risk.Assessment) *Report {
	r := NewReport("Unwanted-disclosure risk assessment for " + a.Profile.ID)
	r.AddSection("Consent",
		fmt.Sprintf("Consented services: %s\nAllowed actors: %s\nNon-allowed actors: %s",
			orNone(strings.Join(a.Profile.ConsentedServices, ", ")),
			orNone(strings.Join(a.AllowedActors, ", ")),
			orNone(strings.Join(a.NonAllowedActors, ", "))))

	findings := NewTable("risk", "actor", "action", "datastore", "driving field", "impact", "likelihood", "explanation")
	for _, f := range a.Findings {
		findings.AddRow(
			f.Risk.String(),
			f.Actor,
			f.Action.String(),
			f.Datastore,
			f.DrivingField,
			fmt.Sprintf("%.2f (%s)", f.Impact, f.ImpactLevel),
			fmt.Sprintf("%.2f (%s)", f.Likelihood, f.LikelihoodLevel),
			f.Explanation,
		)
	}
	r.AddTable("Findings", fmt.Sprintf("Overall risk: %s", a.OverallRisk), findings)

	mitigations := NewTable("actor", "risk", "suggested mitigation")
	seen := make(map[string]bool)
	for _, f := range a.Findings {
		if f.Risk < risk.LevelMedium || f.Mitigation == "" {
			continue
		}
		key := f.Actor + "|" + f.Mitigation
		if seen[key] {
			continue
		}
		seen[key] = true
		mitigations.AddRow(f.Actor, f.Risk.String(), f.Mitigation)
	}
	if mitigations.NumRows() > 0 {
		r.AddTable("Suggested mitigations", "", mitigations)
	}
	return r
}

// RiskComparison builds the before/after table of a mitigation (case study
// IV-A: Medium reduced to Low).
func RiskComparison(changes []risk.Change) *Table {
	t := NewTable("actor", "datastore", "field", "risk before", "risk after")
	for _, c := range changes {
		t.AddRow(c.Actor, c.Datastore, c.Field, c.Before.String(), c.After.String())
	}
	return t
}

// PopulationSummary builds the report for a population-wide disclosure-risk
// analysis: the risk distribution and the actors responsible for the most
// at-risk users.
func PopulationSummary(p *risk.PopulationAssessment) *Report {
	r := NewReport("Population risk summary")
	dist := NewTable("overall risk", "users")
	for _, level := range []risk.Level{risk.LevelHigh, risk.LevelMedium, risk.LevelLow, risk.LevelNone} {
		if n, ok := p.Distribution[level]; ok {
			dist.AddRow(level.String(), strconv.Itoa(n))
		}
	}
	r.AddTable("Risk distribution",
		fmt.Sprintf("%d of %d users are at medium risk or above", p.UsersAtRisk, len(p.Users)), dist)

	actors := NewTable("actor", "users whose top risk it causes")
	for _, actor := range p.WorstActorsRanked() {
		actors.AddRow(actor, strconv.Itoa(p.WorstActors[actor]))
	}
	if actors.NumRows() > 0 {
		r.AddTable("Actors to mitigate first", "", actors)
	}
	users := NewTable("user", "overall risk", "findings", "worst actor", "driving field")
	for _, u := range p.Users {
		users.AddRow(u.UserID, u.OverallRisk.String(), strconv.Itoa(u.Findings), u.WorstActor, u.HighestImpactField)
	}
	r.AddTable("Per-user results", "", users)
	return r
}

// TableI renders the paper's Table I: one row per record with its
// quasi-identifier values and the risk fraction under each visible-field
// scenario, plus the closing "Violations" row.
func TableI(records *pseudorisk.Evaluator, results []pseudorisk.ScenarioResult) *Table {
	return TableICapped(records, results, 0)
}

// TableICapped is TableI with the per-record rows capped at maxRows
// (0 or negative means no cap): on a million-row dataset the aggregate rows
// are what matters, and rendering every record would dwarf the analysis
// itself. When rows are elided, a summary row notes how many; the
// "Violations" row always covers the full dataset.
func TableICapped(records *pseudorisk.Evaluator, results []pseudorisk.ScenarioResult, maxRows int) *Table {
	tbl := records.Table()
	headers := append([]string{}, tbl.ColumnNames()...)
	for _, res := range results {
		headers = append(headers, scenarioHeader(res)+" risk")
	}
	out := NewTable(headers...)
	shown := tbl.NumRows()
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}
	for r := 0; r < shown; r++ {
		row := make([]string, 0, len(headers))
		for _, col := range tbl.ColumnNames() {
			v, err := tbl.Value(r, col)
			if err != nil {
				row = append(row, "?")
				continue
			}
			row = append(row, v.String())
		}
		for _, res := range results {
			if r < len(res.Risks) {
				row = append(row, res.Risks[r].Fraction().String())
			} else {
				row = append(row, "")
			}
		}
		out.AddRow(row...)
	}
	if hidden := tbl.NumRows() - shown; hidden > 0 {
		elided := make([]string, len(headers))
		elided[0] = fmt.Sprintf("... %d more records", hidden)
		out.AddRow(elided...)
	}
	violations := make([]string, len(tbl.ColumnNames()))
	if len(violations) > 0 {
		violations[0] = "Violations:"
	}
	for _, res := range results {
		violations = append(violations, strconv.Itoa(res.Violations))
	}
	out.AddRow(violations...)
	return out
}

func scenarioHeader(res pseudorisk.ScenarioResult) string {
	if len(res.VisibleFields) == 0 {
		return "(none)"
	}
	return strings.Join(res.VisibleFields, "+")
}

// PseudonymisationAnnotation builds the report for an LTS-level
// pseudonymisation risk analysis (Fig. 4).
func PseudonymisationAnnotation(a *pseudorisk.Annotation) *Report {
	r := NewReport("Pseudonymisation risk for actor " + a.Actor)
	r.AddSection("Policy", a.Policy.Description)
	t := NewTable("at-risk state", "fields read", "violations", "violation fraction", "max risk")
	for _, rt := range a.RiskTransitions {
		t.AddRow(
			string(rt.From),
			orNone(strings.Join(rt.ReadAnonFields, ", ")),
			strconv.Itoa(rt.Result.Violations),
			fmt.Sprintf("%.0f%%", rt.Result.ViolationFraction*100),
			fmt.Sprintf("%.2f", rt.Result.MaxRisk),
		)
	}
	r.AddTable("Risk transitions", "", t)
	return r
}

// Compliance builds the report for a policy-compliance check.
func Compliance(c *policy.ComplianceReport) *Report {
	r := NewReport("Privacy-policy compliance")
	status := "COMPLIANT"
	if !c.Compliant {
		status = fmt.Sprintf("NON-COMPLIANT (%d violations)", len(c.Violations))
	}
	r.AddSection("Result", fmt.Sprintf("%s — %d transitions checked", status, c.CheckedTransitions))
	if len(c.Violations) > 0 {
		t := NewTable("service", "actor", "action", "fields", "reason")
		for _, v := range c.Violations {
			t.AddRow(v.Service, v.Actor, v.Action.String(), strings.Join(v.Fields, ", "), v.Reason)
		}
		r.AddTable("Violations", "", t)
	}
	return r
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
