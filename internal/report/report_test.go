package report_test

import (
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/policy"
	"privascope/internal/pseudorisk"
	"privascope/internal/report"
	"privascope/internal/risk"
)

func TestTableRender(t *testing.T) {
	tbl := report.NewTable("name", "value")
	tbl.AddRow("states", "12")
	tbl.AddRow("transitions", "18", "ignored extra cell")
	tbl.AddRow("short")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "transitions  18") {
		t.Errorf("alignment broken:\n%s", out)
	}
	if tbl.NumRows() != 3 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := report.NewTable("a", "b")
	tbl.AddRow("x|y", "2")
	out := tbl.RenderMarkdown()
	if !strings.Contains(out, "| a | b |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
}

func TestReportRender(t *testing.T) {
	r := report.NewReport("Demo")
	r.AddSection("Intro", "Some text.")
	tbl := report.NewTable("k", "v")
	tbl.AddRow("x", "1")
	r.AddTable("Numbers", "Counted things.", tbl)

	text := r.Render()
	for _, want := range []string{"Demo\n====", "Intro\n-----", "Some text.", "Numbers", "Counted things.", "x  1"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render() missing %q:\n%s", want, text)
		}
	}
	md := r.RenderMarkdown()
	for _, want := range []string{"# Demo", "## Intro", "## Numbers", "| k | v |"} {
		if !strings.Contains(md, want) {
			t.Errorf("RenderMarkdown() missing %q:\n%s", want, md)
		}
	}
	if len(r.Sections()) != 2 {
		t.Errorf("Sections() = %d", len(r.Sections()))
	}
}

func TestModelSummary(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	out := report.ModelSummary(p).Render()
	for _, want := range []string{"doctors-surgery", "states", "transitions", "potential-read transitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestDisclosureAssessmentReport(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	assessment, err := risk.MustAnalyzer(risk.Config{}).Analyze(p, casestudy.PatientProfile())
	if err != nil {
		t.Fatal(err)
	}
	out := report.DisclosureAssessment(assessment).Render()
	for _, want := range []string{"patient-1", "Non-allowed actors", casestudy.ActorAdministrator, "medium", "Suggested mitigations"} {
		if !strings.Contains(out, want) {
			t.Errorf("assessment report missing %q", want)
		}
	}
}

func TestPopulationSummaryReport(t *testing.T) {
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	analyzer := risk.MustAnalyzer(risk.Config{})
	wary := casestudy.PatientProfile()
	relaxed := risk.UserProfile{ID: "relaxed", ConsentedServices: []string{casestudy.ServiceMedical, casestudy.ServiceResearch}}
	population, err := analyzer.AnalyzePopulation(p, []risk.UserProfile{wary, relaxed})
	if err != nil {
		t.Fatal(err)
	}
	out := report.PopulationSummary(population).Render()
	for _, want := range []string{"Risk distribution", "Per-user results", "patient-1", "relaxed", "medium"} {
		if !strings.Contains(out, want) {
			t.Errorf("population report missing %q", want)
		}
	}
	if !strings.Contains(out, "Actors to mitigate first") {
		t.Error("population report missing mitigation ranking")
	}
}

func TestRiskComparisonTable(t *testing.T) {
	changes := []risk.Change{
		{Actor: "administrator", Datastore: "ehr", Field: "diagnosis", Before: risk.LevelMedium, After: risk.LevelNone},
	}
	out := report.RiskComparison(changes).Render()
	if !strings.Contains(out, "administrator") || !strings.Contains(out, "medium") || !strings.Contains(out, "none") {
		t.Errorf("comparison table malformed:\n%s", out)
	}
}

func TestTableIReport(t *testing.T) {
	evaluator, err := pseudorisk.NewEvaluator(casestudy.TableIRecords(), casestudy.ResearchPolicy())
	if err != nil {
		t.Fatal(err)
	}
	results, err := evaluator.EvaluateProgression([][]string{{"height"}, {"age"}, {"age", "height"}})
	if err != nil {
		t.Fatal(err)
	}
	out := report.TableI(evaluator, results).Render()
	for _, want := range []string{"height risk", "age risk", "age+height risk", "2/4", "3/4", "2/2", "Violations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I report missing %q:\n%s", want, out)
		}
	}
	// The violations row ends with 0, 2, 4.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	fields := strings.Fields(last)
	if len(fields) < 4 || fields[len(fields)-3] != "0" || fields[len(fields)-2] != "2" || fields[len(fields)-1] != "4" {
		t.Errorf("violations row = %q, want trailing 0 2 4", last)
	}
}

func TestPseudonymisationAnnotationReport(t *testing.T) {
	p, err := core.GenerateWithOptions(casestudy.Metrics(), core.Options{
		FlowOrdering: core.OrderDataDriven, PotentialReads: core.PotentialReadsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	annotation, err := pseudorisk.AnalyzeLTS(p, pseudorisk.Options{
		Actor:  casestudy.ActorResearcher,
		Policy: casestudy.ResearchPolicy(),
		Table:  casestudy.TableIRecords(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := report.PseudonymisationAnnotation(annotation).Render()
	for _, want := range []string{casestudy.ActorResearcher, "Risk transitions", "violations", "weight"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotation report missing %q", want)
		}
	}
}

func TestComplianceReport(t *testing.T) {
	p, err := core.GenerateWithOptions(casestudy.Surgery(), core.Options{PotentialReads: core.PotentialReadsOff})
	if err != nil {
		t.Fatal(err)
	}
	set := policy.MustPolicySet(policy.PolicyFromModelFlows(p, casestudy.ServiceMedical))
	compliance, err := policy.NewChecker(set).Check(p)
	if err != nil {
		t.Fatal(err)
	}
	out := report.Compliance(compliance).Render()
	if !strings.Contains(out, "NON-COMPLIANT") {
		t.Errorf("compliance report should be non-compliant:\n%s", out)
	}
	if !strings.Contains(out, casestudy.ServiceResearch) {
		t.Error("missing offending service")
	}

	full := policy.MustPolicySet(
		policy.PolicyFromModelFlows(p, casestudy.ServiceMedical),
		policy.PolicyFromModelFlows(p, casestudy.ServiceResearch),
	)
	compliance, err = policy.NewChecker(full).Check(p)
	if err != nil {
		t.Fatal(err)
	}
	out = report.Compliance(compliance).Render()
	if !strings.Contains(out, "COMPLIANT —") {
		t.Errorf("compliance report should be compliant:\n%s", out)
	}
}
