// Package report renders analysis results as plain-text and Markdown
// documents: model summaries, unwanted-disclosure assessments, the
// pseudonymisation-risk table of the paper's Table I, and policy-compliance
// reports. The CLI tools and examples print these; EXPERIMENTS.md embeds
// them.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table builder.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: append([]string(nil), headers...)}
}

// AddRow appends a row; short rows are padded with empty cells and long rows
// are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render produces an aligned plain-text rendering with a separator line under
// the header.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// RenderMarkdown produces a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	return b.String()
}

// Section is one titled block of a report: free text, a table, or both.
type Section struct {
	Title string
	Body  string
	Table *Table
}

// Report is a titled sequence of sections.
type Report struct {
	Title    string
	sections []Section
}

// NewReport creates an empty report with the given title.
func NewReport(title string) *Report { return &Report{Title: title} }

// AddSection appends a text section.
func (r *Report) AddSection(title, body string) *Report {
	r.sections = append(r.sections, Section{Title: title, Body: body})
	return r
}

// AddTable appends a table section with optional introductory text.
func (r *Report) AddTable(title, body string, table *Table) *Report {
	r.sections = append(r.sections, Section{Title: title, Body: body, Table: table})
	return r
}

// Sections returns a copy of the report's sections.
func (r *Report) Sections() []Section { return append([]Section(nil), r.sections...) }

// Render produces the plain-text document.
func (r *Report) Render() string {
	var b strings.Builder
	if r.Title != "" {
		b.WriteString(r.Title + "\n")
		b.WriteString(strings.Repeat("=", len(r.Title)) + "\n\n")
	}
	for _, s := range r.sections {
		if s.Title != "" {
			b.WriteString(s.Title + "\n")
			b.WriteString(strings.Repeat("-", len(s.Title)) + "\n")
		}
		if s.Body != "" {
			b.WriteString(s.Body + "\n")
		}
		if s.Table != nil {
			b.WriteString(s.Table.Render())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderMarkdown produces the Markdown document.
func (r *Report) RenderMarkdown() string {
	var b strings.Builder
	if r.Title != "" {
		fmt.Fprintf(&b, "# %s\n\n", r.Title)
	}
	for _, s := range r.sections {
		if s.Title != "" {
			fmt.Fprintf(&b, "## %s\n\n", s.Title)
		}
		if s.Body != "" {
			b.WriteString(s.Body + "\n\n")
		}
		if s.Table != nil {
			b.WriteString(s.Table.RenderMarkdown())
			b.WriteString("\n")
		}
	}
	return b.String()
}
