package anonymize

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTable builds a deterministic numeric table with the given number of
// rows for the anonymisation micro-benchmarks.
func benchTable(rows int) *Table {
	rng := rand.New(rand.NewSource(1))
	t := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "height", Role: RoleQuasiIdentifier},
		Column{Name: "weight", Role: RoleSensitive},
	)
	for i := 0; i < rows; i++ {
		t.MustAddRow(
			Num(float64(18+rng.Intn(70))),
			Num(float64(150+rng.Intn(50))),
			Num(float64(45+rng.Intn(90))),
		)
	}
	return t
}

func BenchmarkEquivalenceClasses(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		t := benchTable(rows)
		anon, err := Spec{"age": NumericBinning{Width: 10}, "height": NumericBinning{Width: 10}}.Apply(t)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := anon.EquivalenceClasses([]string{"age", "height"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValueRisks(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		t := benchTable(rows)
		anon, err := Spec{"age": NumericBinning{Width: 10}, "height": NumericBinning{Width: 10}}.Apply(t)
		if err != nil {
			b.Fatal(err)
		}
		opts := ValueRiskOptions{VisibleColumns: []string{"age", "height"}, TargetColumn: "weight", Closeness: 5}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ValueRisks(anon, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReidentificationRisk(b *testing.B) {
	t := benchTable(1000)
	anon, err := Spec{"age": NumericBinning{Width: 10}, "height": NumericBinning{Width: 10}}.Apply(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReidentificationRisk(anon, []string{"age", "height"}, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}
