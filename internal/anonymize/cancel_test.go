package anonymize_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"privascope/internal/anonymize"
	"privascope/internal/synth"
	"privascope/internal/testutil"
)

func cancelTestTable() *anonymize.Table {
	// Big enough that the parallel chunked paths actually engage
	// (minChunkRows is 1024).
	return synth.HealthRecords(synth.HealthRecordsOptions{Rows: 30_000, Seed: 7})
}

func TestValueRisksContextPreCancelled(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	table := cancelTestTable()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := anonymize.ValueRisksContext(ctx, table, anonymize.ValueRiskOptions{
		VisibleColumns: []string{"age", "height"},
		TargetColumn:   "weight",
		Closeness:      5,
		Workers:        4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValueRisksContextBackgroundMatchesValueRisks(t *testing.T) {
	table := cancelTestTable()
	opts := anonymize.ValueRiskOptions{
		VisibleColumns: []string{"age"},
		TargetColumn:   "weight",
		Closeness:      5,
		Workers:        4,
	}
	direct, err := anonymize.ValueRisks(table, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaContext, err := anonymize.ValueRisksContext(context.Background(), table, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(viaContext) {
		t.Fatalf("length mismatch: %d vs %d", len(direct), len(viaContext))
	}
	for i := range direct {
		if direct[i] != viaContext[i] {
			t.Fatalf("row %d: %v vs %v", i, direct[i], viaContext[i])
		}
	}
}

func TestClassIndexCancelledBuildIsNotCached(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	table := cancelTestTable()
	index := anonymize.NewClassIndex(table, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := index.ClassesContext(ctx, []string{"age", "height"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The aborted build must not poison the index: a live caller recomputes
	// and gets the real partition.
	classes, err := index.ClassesContext(context.Background(), []string{"age", "height"})
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	want, err := table.EquivalenceClasses([]string{"age", "height"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(want) {
		t.Fatalf("classes = %d, want %d", len(classes), len(want))
	}
}

func TestClassIndexWaiterHonoursOwnContext(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	table := cancelTestTable()
	index := anonymize.NewClassIndex(table, 2)

	// A waiter with an already-expired deadline must not block behind a
	// concurrent build for longer than its context allows.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure expiry
	start := time.Now()
	_, err := index.ClassesContext(ctx, []string{"age"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired waiter blocked for %v", elapsed)
	}
}
