package anonymize

import (
	"fmt"
	"strings"
	"testing"
)

func TestReadCSVRejectsDuplicateHeader(t *testing.T) {
	for _, input := range []string{
		"age,age\n23,24\n",
		"age,height,age\n23,182,24\n",
		"age, age\n23,24\n", // TrimLeadingSpace makes these collide
	} {
		_, err := ReadCSV(strings.NewReader(input), nil)
		if err == nil {
			t.Errorf("duplicate header accepted: %q", input)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate CSV header") {
			t.Errorf("error %q does not name the duplicate header", err)
		}
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	for _, tc := range []struct {
		name, input string
		wantRow     string
	}{
		{"short row", "a,b\n1,2\n3\n", "row 2"},
		{"long row", "a,b\n1,2,3\n", "row 1"},
		{"bare quote", "a,b\n1,\"x\ny\n", "row 1"},
	} {
		_, err := ReadCSV(strings.NewReader(tc.input), nil)
		if err == nil {
			t.Errorf("%s: malformed CSV accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantRow) {
			t.Errorf("%s: error %q does not locate %s", tc.name, err, tc.wantRow)
		}
	}
}

func TestReadCSVStreamsLargeInput(t *testing.T) {
	// Build a CSV bigger than any internal buffer, with heavy cell repetition,
	// and check the streamed columnar result cell by cell.
	var b strings.Builder
	b.WriteString("city,age,weight\n")
	cities := []string{"berlin", "paris", "london"}
	const rows = 10000
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%s,%d,%d\n", cities[i%len(cities)], 20+i%50, 50+i%40)
	}
	tbl, err := ReadCSV(strings.NewReader(b.String()), ColumnSpec{"city": RoleQuasiIdentifier})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != rows {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), rows)
	}
	col, ok := tbl.Column("city")
	if !ok || col.Role != RoleQuasiIdentifier {
		t.Errorf("city column = %+v, role not applied", col)
	}
	cityCol, _ := tbl.ColumnValues("city")
	ageCol, _ := tbl.ColumnValues("age")
	for i := 0; i < rows; i++ {
		if want := cities[i%len(cities)]; cityCol[i].Str != want {
			t.Fatalf("row %d city = %q, want %q", i, cityCol[i].Str, want)
		}
		if want := float64(20 + i%50); ageCol[i].Num != want {
			t.Fatalf("row %d age = %v, want %v", i, ageCol[i].Num, want)
		}
	}
}

func TestReadCSVQuotedAndTypedCells(t *testing.T) {
	input := "name,range,score\n\"Smith, John\",30-40,*\nplain,7,-3.5\n"
	tbl, err := ReadCSV(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tbl.Value(0, "name")
	if v.Kind != KindCategorical || v.Str != "Smith, John" {
		t.Errorf("quoted cell = %v", v)
	}
	v, _ = tbl.Value(0, "range")
	if v.Kind != KindInterval || v.Lo != 30 || v.Hi != 40 {
		t.Errorf("interval cell = %v", v)
	}
	v, _ = tbl.Value(0, "score")
	if !v.IsSuppressed() {
		t.Errorf("suppressed cell = %v", v)
	}
	v, _ = tbl.Value(1, "score")
	if v.Kind != KindNumeric || v.Num != -3.5 {
		t.Errorf("negative numeric cell = %v", v)
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("a,b\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.NumColumns() != 2 {
		t.Errorf("rows=%d cols=%d, want 0 and 2", tbl.NumRows(), tbl.NumColumns())
	}
}
