package anonymize_test

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/proptest"
	"privascope/internal/synth"
)

// minClassSize returns the size of the smallest equivalence class of the
// table over the given quasi-identifiers (0 for an empty table).
func minClassSize(t *testing.T, tab *anonymize.Table, qis []string) int {
	t.Helper()
	classes, err := tab.EquivalenceClasses(qis)
	if err != nil {
		t.Fatalf("EquivalenceClasses: %v", err)
	}
	min := tab.NumRows()
	for _, c := range classes {
		if len(c) < min {
			min = len(c)
		}
	}
	return min
}

// TestPropGeneralizingNeverDecreasesK is the metamorphic k-monotonicity
// property: coarsening a quasi-identifier column with a wider aligned
// binning can only merge equivalence classes, so the minimum class size —
// and with it the k for which the table is k-anonymous — never decreases.
// Width-doubling at origin 0 keeps bins aligned (every 2w-bin is the union
// of two w-bins), which is exactly the generalisation ladder KAnonymize
// climbs.
func TestPropGeneralizingNeverDecreasesK(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		tab, qis := synth.RandomTable(rng, 64)
		column := qis[rng.Intn(len(qis))]
		width := math.Pow(2, float64(rng.Intn(4))) // 1, 2, 4 or 8

		fine, err := anonymize.Spec{column: anonymize.NumericBinning{Width: width}}.Apply(tab)
		if err != nil {
			return err
		}
		coarse, err := anonymize.Spec{column: anonymize.NumericBinning{Width: 2 * width}}.Apply(tab)
		if err != nil {
			return err
		}
		kFine, kCoarse := minClassSize(t, fine, qis), minClassSize(t, coarse, qis)
		if kCoarse < kFine {
			t.Fatalf("seed %d: doubling %s's bin width from %v dropped the minimum class size %d -> %d",
				seed, column, width, kFine, kCoarse)
		}
		return nil
	})
}

// TestPropKAnonymizeReachesK: every equivalence class of the anonymised
// table that contains no suppressed row has at least k rows. (The suppressed
// rows share one fully-suppressed class that may legitimately stay below k —
// their quasi-identifiers are gone entirely.)
func TestPropKAnonymizeReachesK(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		tab, qis := synth.RandomTable(rng, 64)
		k := 2 + rng.Intn(3)
		out, res, err := anonymize.KAnonymize(tab, qis, k, anonymize.KAnonymizeOptions{})
		if err != nil {
			return err
		}
		suppressed := make(map[int]bool, len(res.SuppressedRows))
		for _, r := range res.SuppressedRows {
			suppressed[r] = true
		}
		classes, err := out.EquivalenceClasses(qis)
		if err != nil {
			return err
		}
		for _, class := range classes {
			if suppressed[class[0]] {
				continue
			}
			if len(class) < k {
				t.Fatalf("seed %d: k=%d but a non-suppressed class has %d rows (widths %v)",
					seed, k, len(class), res.Widths)
			}
		}
		return nil
	})
}

// TestPropClassIndexMatchesEquivalenceClasses is the cross-implementation
// invariant between the two partition implementations: the cached,
// parallel ClassIndex must produce exactly the partition the sequential
// Table.EquivalenceClasses produces, for every worker count.
func TestPropClassIndexMatchesEquivalenceClasses(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		tab, qis := synth.RandomTable(rng, 64)
		want, err := tab.EquivalenceClasses(qis)
		if err != nil {
			return err
		}
		for _, workers := range []int{1, 2, 4} {
			ix := anonymize.NewClassIndex(tab, workers)
			got, err := ix.Classes(qis)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: ClassIndex with %d workers diverges from EquivalenceClasses",
					seed, workers)
			}
		}
		return nil
	})
}

// TestPropCSVCanonicalFormIsIdempotent: writing a random table to CSV,
// reading it back and writing it again reproduces the first output byte for
// byte — the CSV codec has a canonical form it converges to in one round
// trip.
func TestPropCSVCanonicalFormIsIdempotent(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		tab, _ := synth.RandomTable(rng, 64)

		var first bytes.Buffer
		if err := anonymize.WriteCSV(&first, tab); err != nil {
			return err
		}
		spec := anonymize.ColumnSpec{}
		for _, col := range tab.Columns() {
			spec[col.Name] = col.Role
		}
		back, err := anonymize.ReadCSV(bytes.NewReader(first.Bytes()), spec)
		if err != nil {
			return err
		}
		if back.NumRows() != tab.NumRows() {
			t.Fatalf("seed %d: round trip changed row count %d -> %d", seed, tab.NumRows(), back.NumRows())
		}
		var second bytes.Buffer
		if err := anonymize.WriteCSV(&second, back); err != nil {
			return err
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: CSV canonical form is not idempotent:\nfirst:\n%s\nsecond:\n%s",
				seed, first.String(), second.String())
		}
		return nil
	})
}
