package anonymize

import (
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ClassIndex computes and caches the equivalence classes of one table. The
// value-risk analysis partitions the same dataset once per scenario and once
// more per attacker model; on a million-row table re-deriving those
// partitions from scratch dominates the run. The index removes both costs:
//
//   - per-column group keys are computed once (in parallel) and shared by
//     every partition that includes the column, so the scenario progression
//     "height", "age", "age+height" renders each cell's key exactly once;
//   - each distinct column set's classes are computed once and returned to
//     every later caller — the re-identification attacker models, the
//     LTS annotation's repeated at-risk states and the scenario scoring all
//     hit the same entries.
//
// Class building fans out over contiguous row chunks: each worker groups its
// chunk into a private hash map, and the chunk maps are merged in chunk
// order, so member lists stay in ascending row order and the merged result
// is byte-identical to the single-threaded Table.EquivalenceClasses output
// for any worker count (the same merge discipline as the LTS generator's
// sharded visited set).
//
// A ClassIndex is safe for concurrent use. The indexed table must not be
// mutated while the index is alive; mutate a clone or build a fresh index
// instead.
type ClassIndex struct {
	table   *Table
	workers int

	mu      sync.Mutex
	colKeys map[int]*colKeysEntry
	classes map[string]*classEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// colKeysEntry is the once-computed per-row group keys of one column.
type colKeysEntry struct {
	once sync.Once
	keys []string
}

// classEntry is the once-computed class partition of one column set.
type classEntry struct {
	once    sync.Once
	classes [][]int
	err     error
}

// NewClassIndex builds an empty index over the table. workers sets the
// parallelism of key computation and class building; zero or negative
// selects runtime.GOMAXPROCS(0). The output is identical for any worker
// count.
func NewClassIndex(t *Table, workers int) *ClassIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ClassIndex{
		table:   t,
		workers: workers,
		colKeys: make(map[int]*colKeysEntry),
		classes: make(map[string]*classEntry),
	}
}

// Table returns the indexed table.
func (ix *ClassIndex) Table() *Table { return ix.table }

// Workers returns the configured worker count.
func (ix *ClassIndex) Workers() int { return ix.workers }

// Hits returns how many Classes calls were served from the cache.
func (ix *ClassIndex) Hits() int64 { return ix.hits.Load() }

// Misses returns how many Classes calls computed a fresh partition.
func (ix *ClassIndex) Misses() int64 { return ix.misses.Load() }

// Classes returns the equivalence classes of the rows over the given
// columns, computing them at most once per distinct column sequence. The
// result is shared between callers and must be treated as read-only. It is
// identical to Table.EquivalenceClasses(columns) for the same column order.
func (ix *ClassIndex) Classes(columns []string) ([][]int, error) {
	idxs, err := ix.table.resolveColumns(columns)
	if err != nil {
		return nil, err
	}
	key := classCacheKey(idxs)
	ix.mu.Lock()
	entry, ok := ix.classes[key]
	if !ok {
		entry = &classEntry{}
		ix.classes[key] = entry
	}
	ix.mu.Unlock()
	if ok {
		ix.hits.Add(1)
	} else {
		ix.misses.Add(1)
	}
	entry.once.Do(func() {
		entry.classes = buildClassesKeyed(ix.table, idxs, ix.workers, ix.keysFor)
	})
	return entry.classes, entry.err
}

// classCacheKey canonically encodes a column index sequence. Column order
// matters: it changes the composite keys and therefore the sorted order of
// the returned groups.
func classCacheKey(idxs []int) string {
	var b strings.Builder
	for i, idx := range idxs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// keysFor returns the cached per-row group keys of one column, computing
// them on first use with the index's worker pool.
func (ix *ClassIndex) keysFor(col int) []string {
	ix.mu.Lock()
	entry, ok := ix.colKeys[col]
	if !ok {
		entry = &colKeysEntry{}
		ix.colKeys[col] = entry
	}
	ix.mu.Unlock()
	entry.once.Do(func() {
		entry.keys = columnGroupKeys(ix.table, col, ix.workers)
	})
	return entry.keys
}

// columnGroupKeys renders GroupKey for every cell of one column, splitting
// the rows across workers. Each worker writes a disjoint range, so the
// result does not depend on scheduling.
func columnGroupKeys(t *Table, col, workers int) []string {
	n := t.nrows
	keys := make([]string, n)
	values := t.cols[col]
	parallelRows(n, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			keys[r] = values[r].GroupKey()
		}
	})
	return keys
}

// buildClasses groups the rows by their composite group key over the given
// column indices, computing keys directly from the cells.
func buildClasses(t *Table, idxs []int, workers int) [][]int {
	return buildClassesKeyed(t, idxs, workers, func(col int) []string {
		return columnGroupKeys(t, col, workers)
	})
}

// buildClassesKeyed is buildClasses with a pluggable per-column key source,
// so a ClassIndex can share key slices across partitions.
//
// Grouping fans out over contiguous row chunks. Each worker fills a private
// map for its chunk; the merge walks the chunk maps in chunk order, so every
// key's member list is the concatenation of ascending sub-ranges — the exact
// row order a sequential pass produces. Group order is sorted by key, as in
// Table.EquivalenceClasses.
func buildClassesKeyed(t *Table, idxs []int, workers int, keysFor func(col int) []string) [][]int {
	n := t.nrows
	if n == 0 {
		return nil
	}
	// No grouping columns: every row is indistinguishable, one shared class.
	if len(idxs) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}

	colKeys := make([][]string, len(idxs))
	for j, idx := range idxs {
		colKeys[j] = keysFor(idx)
	}
	// Composite keys are length-prefixed so the encoding is injective: a
	// separator character could appear inside a categorical value and alias
	// two distinct rows into one class.
	rowKey := func(r int) string {
		if len(colKeys) == 1 {
			return colKeys[0][r]
		}
		var b strings.Builder
		for _, keys := range colKeys {
			k := keys[r]
			b.WriteString(strconv.Itoa(len(k)))
			b.WriteByte(':')
			b.WriteString(k)
		}
		return b.String()
	}

	chunks := rowChunks(n, workers)
	chunkGroups := make([]map[string][]int, len(chunks))
	var wg sync.WaitGroup
	for c, chunk := range chunks {
		wg.Add(1)
		go func(c int, lo, hi int) {
			defer wg.Done()
			groups := make(map[string][]int)
			for r := lo; r < hi; r++ {
				key := rowKey(r)
				groups[key] = append(groups[key], r)
			}
			chunkGroups[c] = groups
		}(c, chunk[0], chunk[1])
	}
	wg.Wait()

	// Deterministic merge: chunk maps are walked in chunk order, so member
	// sub-lists concatenate in ascending row order; groups sort by key.
	merged := make(map[string][]int, len(chunkGroups[0]))
	keys := make([]string, 0, len(chunkGroups[0]))
	for _, groups := range chunkGroups {
		for key, rows := range groups {
			if _, ok := merged[key]; !ok {
				keys = append(keys, key)
			}
			merged[key] = append(merged[key], rows...)
		}
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, merged[k])
	}
	return out
}

// rowChunks splits [0, n) into up to `workers` contiguous ranges of
// near-equal size. Returned as [lo, hi) pairs in ascending order.
func rowChunks(n, workers int) [][2]int {
	if workers <= 1 || n < 2*minChunkRows {
		return [][2]int{{0, n}}
	}
	chunkCount := workers
	if max := n / minChunkRows; chunkCount > max {
		chunkCount = max
	}
	out := make([][2]int, 0, chunkCount)
	size := n / chunkCount
	rem := n % chunkCount
	lo := 0
	for c := 0; c < chunkCount; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// minChunkRows keeps tiny tables on the sequential path: below this many
// rows per chunk the goroutine handoff costs more than the grouping.
const minChunkRows = 1024

// parallelRows runs fn over contiguous sub-ranges of [0, n) using up to
// `workers` goroutines. fn must only touch its own range.
func parallelRows(n, workers int, fn func(lo, hi int)) {
	chunks := rowChunks(n, workers)
	if len(chunks) == 1 {
		fn(chunks[0][0], chunks[0][1])
		return
	}
	var wg sync.WaitGroup
	for _, chunk := range chunks {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(chunk[0], chunk[1])
	}
	wg.Wait()
}
