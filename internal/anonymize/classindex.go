package anonymize

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privascope/internal/flight"
)

// ClassIndex computes and caches the equivalence classes of one table. The
// value-risk analysis partitions the same dataset once per scenario and once
// more per attacker model; on a million-row table re-deriving those
// partitions from scratch dominates the run. The index removes both costs:
//
//   - per-column group keys are computed once (in parallel) and shared by
//     every partition that includes the column, so the scenario progression
//     "height", "age", "age+height" renders each cell's key exactly once;
//   - each distinct column set's classes are computed once and returned to
//     every later caller — the re-identification attacker models, the
//     LTS annotation's repeated at-risk states and the scenario scoring all
//     hit the same entries.
//
// Class building fans out over contiguous row chunks: each worker groups its
// chunk into a private hash map, and the chunk maps are merged in chunk
// order, so member lists stay in ascending row order and the merged result
// is byte-identical to the single-threaded Table.EquivalenceClasses output
// for any worker count (the same merge discipline as the LTS generator's
// sharded visited set).
//
// A ClassIndex is safe for concurrent use. Both caches are single-flighted
// with context support (internal/flight): concurrent requests for the same
// partition share one computation, a caller waiting on another's build can
// abandon the wait when its own context is done, and a build aborted by
// cancellation is forgotten rather than cached, so one cancelled caller never
// poisons the index for others. The indexed table must not be mutated while
// the index is alive; mutate a clone or build a fresh index instead.
type ClassIndex struct {
	table   *Table
	workers int

	colKeys flight.Group[int, []string]
	classes flight.Group[string, [][]int]
}

// NewClassIndex builds an empty index over the table. workers sets the
// parallelism of key computation and class building; zero or negative
// selects runtime.GOMAXPROCS(0). The output is identical for any worker
// count.
func NewClassIndex(t *Table, workers int) *ClassIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ClassIndex{table: t, workers: workers}
}

// Table returns the indexed table.
func (ix *ClassIndex) Table() *Table { return ix.table }

// Workers returns the configured worker count.
func (ix *ClassIndex) Workers() int { return ix.workers }

// Hits returns how many Classes calls were served from the cache.
func (ix *ClassIndex) Hits() int64 { return ix.classes.Hits() }

// Misses returns how many Classes calls computed a fresh partition.
func (ix *ClassIndex) Misses() int64 { return ix.classes.Misses() }

// Classes returns the equivalence classes of the rows over the given
// columns, computing them at most once per distinct column sequence. The
// result is shared between callers and must be treated as read-only. It is
// identical to Table.EquivalenceClasses(columns) for the same column order.
func (ix *ClassIndex) Classes(columns []string) ([][]int, error) {
	return ix.ClassesContext(context.Background(), columns)
}

// ClassesContext is Classes with cancellation: the class build polls ctx at
// chunk boundaries, and a caller blocked on another caller's in-flight build
// returns its own ctx.Err() as soon as ctx is done. A build aborted by
// cancellation is not cached; the next caller recomputes it.
func (ix *ClassIndex) ClassesContext(ctx context.Context, columns []string) ([][]int, error) {
	idxs, err := ix.table.resolveColumns(columns)
	if err != nil {
		return nil, err
	}
	return ix.classes.Do(ctx, classCacheKey(idxs), func(ctx context.Context) ([][]int, error) {
		return buildClassesKeyed(ctx, ix.table, idxs, ix.workers, ix.keysFor)
	})
}

// classCacheKey canonically encodes a column index sequence. Column order
// matters: it changes the composite keys and therefore the sorted order of
// the returned groups.
func classCacheKey(idxs []int) string {
	var b strings.Builder
	for i, idx := range idxs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// keysFor returns the cached per-row group keys of one column, computing
// them on first use with the index's worker pool.
func (ix *ClassIndex) keysFor(ctx context.Context, col int) ([]string, error) {
	return ix.colKeys.Do(ctx, col, func(ctx context.Context) ([]string, error) {
		return columnGroupKeys(ctx, ix.table, col, ix.workers)
	})
}

// columnGroupKeys renders GroupKey for every cell of one column, splitting
// the rows across workers. Each worker writes a disjoint range, so the
// result does not depend on scheduling.
func columnGroupKeys(ctx context.Context, t *Table, col, workers int) ([]string, error) {
	n := t.nrows
	keys := make([]string, n)
	values := t.cols[col]
	err := parallelRows(ctx, n, workers, func(ctx context.Context, lo, hi int) error {
		for r := lo; r < hi; r++ {
			if r&rowCancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			keys[r] = values[r].GroupKey()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// buildClasses groups the rows by their composite group key over the given
// column indices, computing keys directly from the cells.
func buildClasses(t *Table, idxs []int, workers int) [][]int {
	// A background context cannot fail, and no key source below can error,
	// so the error is structurally nil here.
	classes, _ := buildClassesContext(context.Background(), t, idxs, workers)
	return classes
}

// buildClassesContext is buildClasses with cancellation at chunk boundaries.
func buildClassesContext(ctx context.Context, t *Table, idxs []int, workers int) ([][]int, error) {
	return buildClassesKeyed(ctx, t, idxs, workers, func(ctx context.Context, col int) ([]string, error) {
		return columnGroupKeys(ctx, t, col, workers)
	})
}

// buildClassesKeyed is buildClassesContext with a pluggable per-column key
// source, so a ClassIndex can share key slices across partitions.
//
// Grouping fans out over contiguous row chunks. Each worker fills a private
// map for its chunk; the merge walks the chunk maps in chunk order, so every
// key's member list is the concatenation of ascending sub-ranges — the exact
// row order a sequential pass produces. Group order is sorted by key, as in
// Table.EquivalenceClasses. Workers poll ctx every rowCancelCheckMask+1 rows
// and the pool is joined before returning, so cancellation is prompt and
// leak-free.
func buildClassesKeyed(ctx context.Context, t *Table, idxs []int, workers int, keysFor func(ctx context.Context, col int) ([]string, error)) ([][]int, error) {
	n := t.nrows
	if n == 0 {
		return nil, ctx.Err()
	}
	// No grouping columns: every row is indistinguishable, one shared class.
	if len(idxs) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}

	colKeys := make([][]string, len(idxs))
	for j, idx := range idxs {
		keys, err := keysFor(ctx, idx)
		if err != nil {
			return nil, err
		}
		colKeys[j] = keys
	}
	// Composite keys are length-prefixed so the encoding is injective: a
	// separator character could appear inside a categorical value and alias
	// two distinct rows into one class.
	rowKey := func(r int) string {
		if len(colKeys) == 1 {
			return colKeys[0][r]
		}
		var b strings.Builder
		for _, keys := range colKeys {
			k := keys[r]
			b.WriteString(strconv.Itoa(len(k)))
			b.WriteByte(':')
			b.WriteString(k)
		}
		return b.String()
	}

	chunks := rowChunks(n, workers)
	chunkGroups := make([]map[string][]int, len(chunks))
	chunkErrs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for c, chunk := range chunks {
		wg.Add(1)
		go func(c int, lo, hi int) {
			defer wg.Done()
			groups := make(map[string][]int)
			for r := lo; r < hi; r++ {
				if r&rowCancelCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						chunkErrs[c] = err
						return
					}
				}
				key := rowKey(r)
				groups[key] = append(groups[key], r)
			}
			chunkGroups[c] = groups
		}(c, chunk[0], chunk[1])
	}
	wg.Wait()
	for _, err := range chunkErrs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic merge: chunk maps are walked in chunk order, so member
	// sub-lists concatenate in ascending row order; groups sort by key.
	merged := make(map[string][]int, len(chunkGroups[0]))
	keys := make([]string, 0, len(chunkGroups[0]))
	for _, groups := range chunkGroups {
		for key, rows := range groups {
			if _, ok := merged[key]; !ok {
				keys = append(keys, key)
			}
			merged[key] = append(merged[key], rows...)
		}
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, merged[k])
	}
	return out, nil
}

// rowChunks splits [0, n) into up to `workers` contiguous ranges of
// near-equal size. Returned as [lo, hi) pairs in ascending order.
func rowChunks(n, workers int) [][2]int {
	if workers <= 1 || n < 2*minChunkRows {
		return [][2]int{{0, n}}
	}
	chunkCount := workers
	if max := n / minChunkRows; chunkCount > max {
		chunkCount = max
	}
	out := make([][2]int, 0, chunkCount)
	size := n / chunkCount
	rem := n % chunkCount
	lo := 0
	for c := 0; c < chunkCount; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// minChunkRows keeps tiny tables on the sequential path: below this many
// rows per chunk the goroutine handoff costs more than the grouping.
const minChunkRows = 1024

// rowCancelCheckMask spaces out ctx polls on per-row hot loops: a worker
// polls whenever its row index is a multiple of 4096, i.e. at least once
// every 4096 rows within its range (a chunk shorter than that may not poll
// at all, which is fine — its remaining work is bounded). This keeps the
// poll cost invisible while bounding cancellation latency to microseconds
// of work.
const rowCancelCheckMask = 4095

// parallelRows runs fn over contiguous sub-ranges of [0, n) using up to
// `workers` goroutines. fn must only touch its own range; it receives ctx so
// it can poll for cancellation, and the first non-nil error (in chunk order)
// is returned after all workers are joined.
func parallelRows(ctx context.Context, n, workers int, fn func(ctx context.Context, lo, hi int) error) error {
	chunks := rowChunks(n, workers)
	if len(chunks) == 1 {
		return fn(ctx, chunks[0][0], chunks[0][1])
	}
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for c, chunk := range chunks {
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			errs[c] = fn(ctx, lo, hi)
		}(c, chunk[0], chunk[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
