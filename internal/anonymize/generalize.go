package anonymize

import (
	"fmt"
	"math"
)

// Generalizer maps a cell value to a less precise value. Generalisation is
// the primary mechanism of k-anonymisation: quasi-identifier values are
// coarsened until enough records become indistinguishable.
type Generalizer interface {
	// Generalize coarsens a single value.
	Generalize(v Value) Value
	// Describe returns a short human-readable description of the
	// generalisation applied, for reports.
	Describe() string
}

// NumericBinning generalises numeric values into fixed-width intervals
// aligned to Origin, e.g. Width 10 and Origin 0 maps 34 to the interval
// 30-40 (as the Age column of the paper's Table I).
type NumericBinning struct {
	Width  float64
	Origin float64
}

// Generalize implements Generalizer. Interval inputs are re-binned using
// their midpoint; categorical and suppressed values pass through unchanged.
func (n NumericBinning) Generalize(v Value) Value {
	if n.Width <= 0 {
		return v
	}
	var x float64
	switch v.Kind {
	case KindNumeric:
		x = v.Num
	case KindInterval:
		x = v.Midpoint()
	default:
		return v
	}
	lo := n.Origin + math.Floor((x-n.Origin)/n.Width)*n.Width
	return Interval(lo, lo+n.Width)
}

// Describe implements Generalizer.
func (n NumericBinning) Describe() string {
	return fmt.Sprintf("numeric binning (width %v)", n.Width)
}

var _ Generalizer = NumericBinning{}

// CategoryMap generalises categorical values by mapping each category to a
// broader group; unmapped categories are suppressed when SuppressUnknown is
// set, otherwise passed through.
type CategoryMap struct {
	Groups          map[string]string
	SuppressUnknown bool
}

// Generalize implements Generalizer.
func (c CategoryMap) Generalize(v Value) Value {
	if v.Kind != KindCategorical {
		return v
	}
	if group, ok := c.Groups[v.Str]; ok {
		return Cat(group)
	}
	if c.SuppressUnknown {
		return Suppressed()
	}
	return v
}

// Describe implements Generalizer.
func (c CategoryMap) Describe() string {
	return fmt.Sprintf("category map (%d groups)", len(c.Groups))
}

var _ Generalizer = CategoryMap{}

// SuppressAll replaces every value with a suppressed cell. It is the most
// aggressive generalisation step and the fallback of the k-anonymiser.
type SuppressAll struct{}

// Generalize implements Generalizer.
func (SuppressAll) Generalize(Value) Value { return Suppressed() }

// Describe implements Generalizer.
func (SuppressAll) Describe() string { return "suppression" }

var _ Generalizer = SuppressAll{}

// Spec maps column names to the generaliser applied to them. Columns not in
// the spec are left untouched.
type Spec map[string]Generalizer

// Apply returns a new table with the spec's generalisers applied column-wise.
// The input table is not modified. With column-oriented storage each
// generaliser streams over one contiguous cell slice.
func (s Spec) Apply(t *Table) (*Table, error) {
	out := t.Clone()
	for column, gen := range s {
		idx, ok := out.ColumnIndex(column)
		if !ok {
			return nil, fmt.Errorf("anonymize: generalisation spec references unknown column %q", column)
		}
		cells := out.cols[idx]
		for r := range cells {
			cells[r] = gen.Generalize(cells[r])
		}
	}
	return out, nil
}
