package anonymize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAttackerModelString(t *testing.T) {
	if AttackerProsecutor.String() != "prosecutor" ||
		AttackerJournalist.String() != "journalist" ||
		AttackerMarketer.String() != "marketer" {
		t.Error("AttackerModel.String() wrong")
	}
	if AttackerModel(9).String() != "attacker(9)" {
		t.Error("unknown attacker model rendering wrong")
	}
}

func TestReidentificationRiskTableI(t *testing.T) {
	tbl := tableIRecords(t)
	report, err := ReidentificationRisk(tbl, []string{"age", "height"}, 0.5)
	if err != nil {
		t.Fatalf("ReidentificationRisk: %v", err)
	}
	// Three equivalence classes of size two: every record has prosecutor
	// risk 1/2.
	if report.HighestRisk != 0.5 {
		t.Errorf("HighestRisk = %v, want 0.5", report.HighestRisk)
	}
	if math.Abs(report.AverageRisk-0.5) > 1e-9 {
		t.Errorf("AverageRisk = %v, want 0.5", report.AverageRisk)
	}
	if report.SmallestClass != 2 {
		t.Errorf("SmallestClass = %d, want 2", report.SmallestClass)
	}
	if report.AtRiskRecords != 6 {
		t.Errorf("AtRiskRecords at 0.5 = %d, want 6", report.AtRiskRecords)
	}
	if !report.SatisfiesK(2) || report.SatisfiesK(3) {
		t.Error("SatisfiesK misreports the k level")
	}
	for _, rec := range report.Records {
		if rec.ClassSize != 2 || rec.Risk != 0.5 {
			t.Errorf("record %d = %+v", rec.Row, rec)
		}
	}
	// Prosecutor and journalist report the class-based bound; marketer the
	// average.
	if report.RiskFor(AttackerProsecutor) != 0.5 || report.RiskFor(AttackerJournalist) != 0.5 {
		t.Error("prosecutor/journalist risk wrong")
	}
	if report.RiskFor(AttackerMarketer) != report.AverageRisk {
		t.Error("marketer risk should be the average")
	}
}

func TestReidentificationRiskSingletons(t *testing.T) {
	tbl := MustTable(Column{Name: "age", Role: RoleQuasiIdentifier})
	for _, a := range []float64{21, 22, 23, 24} {
		tbl.MustAddRow(Num(a))
	}
	report, err := ReidentificationRisk(tbl, []string{"age"}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if report.HighestRisk != 1 || report.SmallestClass != 1 {
		t.Errorf("singleton classes: %+v", report)
	}
	if report.AtRiskRecords != 4 {
		t.Errorf("AtRiskRecords = %d, want 4", report.AtRiskRecords)
	}
	if report.SatisfiesK(2) {
		t.Error("singleton dataset must not satisfy 2-anonymity")
	}

	// Generalising the ages into one bin removes the risk.
	anon, err := Spec{"age": NumericBinning{Width: 10, Origin: 20}}.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ReidentificationRisk(anon, []string{"age"}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if after.HighestRisk != 0.25 {
		t.Errorf("generalised highest risk = %v, want 0.25", after.HighestRisk)
	}
	if after.AtRiskRecords != 0 {
		t.Errorf("generalised AtRiskRecords = %d, want 0", after.AtRiskRecords)
	}
}

func TestReidentificationRiskErrors(t *testing.T) {
	tbl := tableIRecords(t)
	if _, err := ReidentificationRisk(nil, []string{"age"}, 0.5); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := ReidentificationRisk(tbl, nil, 0.5); err == nil {
		t.Error("empty quasi-identifier list accepted")
	}
	if _, err := ReidentificationRisk(tbl, []string{"ghost"}, 0.5); err == nil {
		t.Error("unknown quasi-identifier accepted")
	}
	if _, err := ReidentificationRisk(tbl, []string{"age"}, 1.5); err == nil {
		t.Error("threshold above 1 accepted")
	}
	empty := MustTable(Column{Name: "age"})
	report, err := ReidentificationRisk(empty, []string{"age"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Records) != 0 || report.HighestRisk != 0 {
		t.Errorf("empty table report = %+v", report)
	}
	if !report.SatisfiesK(5) {
		t.Error("empty table should trivially satisfy any k")
	}
	if report.SatisfiesK(0) {
		t.Error("k=0 should never be satisfied")
	}
}

func TestReidentificationRiskProperties(t *testing.T) {
	// Properties: every per-record risk is 1/classSize in (0,1]; the average
	// equals numClasses / numRows; k-anonymity agrees with IsKAnonymous.
	f := func(seed uint32) bool {
		x := seed
		next := func(m int) int {
			x = x*1664525 + 1013904223
			return int(x>>8) % m
		}
		tbl := MustTable(Column{Name: "qi", Role: RoleQuasiIdentifier}, Column{Name: "v"})
		n := next(25) + 1
		for i := 0; i < n; i++ {
			tbl.MustAddRow(Num(float64(next(4))), Num(float64(i)))
		}
		report, err := ReidentificationRisk(tbl, []string{"qi"}, 0.5)
		if err != nil {
			return false
		}
		classes, err := tbl.EquivalenceClasses([]string{"qi"})
		if err != nil {
			return false
		}
		expectedAvg := float64(len(classes)) / float64(n)
		if math.Abs(report.AverageRisk-expectedAvg) > 1e-9 {
			return false
		}
		for _, rec := range report.Records {
			if rec.Risk <= 0 || rec.Risk > 1 {
				return false
			}
			if math.Abs(rec.Risk-1/float64(rec.ClassSize)) > 1e-12 {
				return false
			}
		}
		for k := 1; k <= 3; k++ {
			ok, err := IsKAnonymous(tbl, []string{"qi"}, k)
			if err != nil {
				return false
			}
			if ok != report.SatisfiesK(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
