package anonymize

import (
	"errors"
	"fmt"
	"sort"
)

// IsKAnonymous reports whether every equivalence class induced by the
// quasi-identifier columns has at least k members (Sweeney's k-anonymity).
// Rows whose quasi-identifiers are all suppressed count as one shared class.
func IsKAnonymous(t *Table, quasiIdentifiers []string, k int) (bool, error) {
	if k <= 0 {
		return false, errors.New("anonymize: k must be positive")
	}
	if t.NumRows() == 0 {
		return true, nil
	}
	classes, err := t.EquivalenceClasses(quasiIdentifiers)
	if err != nil {
		return false, err
	}
	for _, class := range classes {
		if len(class) < k {
			return false, nil
		}
	}
	return true, nil
}

// DistinctLDiversity reports whether every equivalence class induced by the
// quasi-identifiers contains at least l distinct values of the sensitive
// column (distinct l-diversity, Machanavajjhala et al.). The paper contrasts
// the value risk that k-anonymity leaves behind with what l-diversity would
// remove; this check lets the analysis make that comparison concrete.
func DistinctLDiversity(t *Table, quasiIdentifiers []string, sensitive string, l int) (bool, error) {
	if l <= 0 {
		return false, errors.New("anonymize: l must be positive")
	}
	if _, ok := t.ColumnIndex(sensitive); !ok {
		return false, fmt.Errorf("anonymize: unknown sensitive column %q", sensitive)
	}
	classes, err := t.EquivalenceClasses(quasiIdentifiers)
	if err != nil {
		return false, err
	}
	for _, class := range classes {
		distinct := make(map[string]bool)
		for _, r := range class {
			v, err := t.Value(r, sensitive)
			if err != nil {
				return false, err
			}
			distinct[v.GroupKey()] = true
		}
		if len(distinct) < l {
			return false, nil
		}
	}
	return true, nil
}

// KAnonymizeOptions configures the k-anonymiser.
type KAnonymizeOptions struct {
	// InitialWidths seeds the bin width per numeric quasi-identifier; when a
	// column is missing, the width starts at 1.
	InitialWidths map[string]float64
	// MaxDoublings bounds how often each width may double before the
	// remaining undersized classes are suppressed; default 20.
	MaxDoublings int
	// Origins aligns the bins per column; default 0.
	Origins map[string]float64
	// Workers bounds the goroutines used for class building inside each
	// widening round; zero or negative selects one per CPU. The output is
	// identical for any worker count.
	Workers int
}

// KAnonymizeResult reports how k-anonymity was achieved.
type KAnonymizeResult struct {
	// K is the requested k.
	K int
	// Widths is the final bin width per numeric quasi-identifier.
	Widths map[string]float64
	// SuppressedRows lists the rows whose quasi-identifiers had to be
	// suppressed entirely because generalisation alone could not reach k.
	SuppressedRows []int
	// Classes is the number of equivalence classes in the output.
	Classes int
	// Doublings is the number of width-doubling rounds performed.
	Doublings int
}

// KAnonymize produces a k-anonymous version of the table by global recoding:
// numeric quasi-identifiers are binned with per-column widths that double
// until every equivalence class has at least k rows; rows still in
// undersized classes after MaxDoublings rounds have their quasi-identifiers
// suppressed. Categorical quasi-identifiers are left as-is during widening
// and suppressed with the rest in the fallback.
//
// The input table is not modified.
func KAnonymize(t *Table, quasiIdentifiers []string, k int, opts KAnonymizeOptions) (*Table, KAnonymizeResult, error) {
	if k <= 0 {
		return nil, KAnonymizeResult{}, errors.New("anonymize: k must be positive")
	}
	for _, q := range quasiIdentifiers {
		if _, ok := t.ColumnIndex(q); !ok {
			return nil, KAnonymizeResult{}, fmt.Errorf("anonymize: unknown quasi-identifier %q", q)
		}
	}
	if opts.MaxDoublings <= 0 {
		opts.MaxDoublings = 20
	}

	widths := make(map[string]float64, len(quasiIdentifiers))
	for _, q := range quasiIdentifiers {
		w := 1.0
		if opts.InitialWidths != nil && opts.InitialWidths[q] > 0 {
			w = opts.InitialWidths[q]
		}
		widths[q] = w
	}
	origin := func(q string) float64 {
		if opts.Origins != nil {
			return opts.Origins[q]
		}
		return 0
	}

	result := KAnonymizeResult{K: k, Widths: widths}
	var out *Table
	var classes [][]int
	for round := 0; ; round++ {
		spec := Spec{}
		for _, q := range quasiIdentifiers {
			spec[q] = NumericBinning{Width: widths[q], Origin: origin(q)}
		}
		var err error
		out, err = spec.Apply(t)
		if err != nil {
			return nil, KAnonymizeResult{}, err
		}
		// One class index per candidate table: the k-check, the per-column
		// widening heuristic and the final suppression pass all share its
		// per-column group keys instead of re-deriving them.
		ix := NewClassIndex(out, opts.Workers)
		classes, err = ix.Classes(quasiIdentifiers)
		if err != nil {
			return nil, KAnonymizeResult{}, err
		}
		ok := true
		for _, class := range classes {
			if len(class) < k {
				ok = false
				break
			}
		}
		if ok || round >= opts.MaxDoublings {
			result.Doublings = round
			break
		}
		// Double the width of the column whose smallest class is smallest —
		// a simple greedy heuristic; ties are broken by column name for
		// determinism.
		worst := ""
		worstSize := t.NumRows() + 1
		names := append([]string(nil), quasiIdentifiers...)
		sort.Strings(names)
		for _, q := range names {
			perColumn, err := ix.Classes([]string{q})
			if err != nil {
				return nil, KAnonymizeResult{}, err
			}
			minSize := t.NumRows() + 1
			for _, class := range perColumn {
				if len(class) < minSize {
					minSize = len(class)
				}
			}
			if minSize < worstSize {
				worstSize = minSize
				worst = q
			}
		}
		if worst == "" {
			result.Doublings = round
			break
		}
		widths[worst] *= 2
	}

	// Suppress quasi-identifiers of rows still in undersized classes; the
	// classes of the final widening round are reused rather than recomputed.
	for _, class := range classes {
		if len(class) >= k {
			continue
		}
		for _, r := range class {
			result.SuppressedRows = append(result.SuppressedRows, r)
			for _, q := range quasiIdentifiers {
				if err := out.SetValue(r, q, Suppressed()); err != nil {
					return nil, KAnonymizeResult{}, err
				}
			}
		}
	}
	sort.Ints(result.SuppressedRows)

	finalClasses, err := out.EquivalenceClasses(quasiIdentifiers)
	if err != nil {
		return nil, KAnonymizeResult{}, err
	}
	result.Classes = len(finalClasses)
	return out, result, nil
}
