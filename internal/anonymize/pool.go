package anonymize

import "strings"

// Interner is a cell-level value pool for bulk table loading. Real datasets
// repeat cells heavily — a categorical column with twenty distinct labels
// over a million rows is the norm, not the exception — so the streaming CSV
// reader parses each distinct cell text once and returns the pooled Value
// for every repetition: repeated categorical cells share one string
// allocation, and repeated numeric cells skip float re-parsing entirely.
//
// An Interner is not safe for concurrent use; give each loading goroutine
// its own.
type Interner struct {
	values map[string]Value
}

// NewInterner returns an empty pool.
func NewInterner() *Interner {
	return &Interner{values: make(map[string]Value)}
}

// Parse returns ParseValue(cell), serving repeated cell texts from the pool.
// The returned Value never aliases cell's backing memory, so callers may
// reuse their read buffer between calls (as encoding/csv does).
func (in *Interner) Parse(cell string) Value {
	if v, ok := in.values[cell]; ok {
		return v
	}
	v := ParseValue(cell)
	if v.Kind == KindCategorical {
		// Detach from the caller's buffer: a pooled category must not pin a
		// whole CSV record (or a reused buffer) in memory.
		v.Str = strings.Clone(v.Str)
	}
	in.values[strings.Clone(cell)] = v
	return v
}

// Size returns the number of distinct cell texts pooled so far.
func (in *Interner) Size() int { return len(in.values) }
