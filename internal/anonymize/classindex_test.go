package anonymize

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// classTestTable builds a deterministic mixed-kind table large enough to
// exercise the chunked parallel path (several chunks at minChunkRows).
func classTestTable(rows int) *Table {
	rng := rand.New(rand.NewSource(7))
	countries := []string{"de", "fr", "uk", "es", "it", "nl", "pl", "se"}
	t := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "height", Role: RoleQuasiIdentifier},
		Column{Name: "country", Role: RoleQuasiIdentifier},
		Column{Name: "weight", Role: RoleSensitive},
	)
	for i := 0; i < rows; i++ {
		age := Num(float64(18 + rng.Intn(70)))
		if rng.Intn(50) == 0 {
			age = Suppressed()
		}
		t.MustAddRow(
			age,
			Interval(float64(150+10*rng.Intn(5)), float64(160+10*rng.Intn(5))),
			Cat(countries[rng.Intn(len(countries))]),
			Num(float64(45+rng.Intn(90))),
		)
	}
	return t
}

func TestClassIndexMatchesSequentialAcrossWorkerCounts(t *testing.T) {
	tbl := classTestTable(4 * minChunkRows)
	columnSets := [][]string{
		{"age"},
		{"country"},
		{"age", "height"},
		{"height", "age"}, // column order changes group order; both must match sequential
		{"age", "height", "country"},
	}
	for _, columns := range columnSets {
		want, err := tbl.EquivalenceClasses(columns)
		if err != nil {
			t.Fatalf("EquivalenceClasses(%v): %v", columns, err)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			ix := NewClassIndex(tbl, workers)
			got, err := ix.Classes(columns)
			if err != nil {
				t.Fatalf("Classes(%v) workers=%d: %v", columns, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Classes(%v) workers=%d diverges from sequential: %d vs %d groups",
					columns, workers, len(got), len(want))
			}
		}
	}
}

func TestClassIndexCachesPartitions(t *testing.T) {
	tbl := classTestTable(100)
	ix := NewClassIndex(tbl, 4)
	first, err := ix.Classes([]string{"age", "height"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ix.Classes([]string{"age", "height"})
	if err != nil {
		t.Fatal(err)
	}
	if &first[0][0] != &second[0][0] {
		t.Error("repeated Classes call did not return the cached partition")
	}
	if ix.Hits() != 1 || ix.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1 and 1", ix.Hits(), ix.Misses())
	}
	// A different column order is a different partition order: distinct entry.
	if _, err := ix.Classes([]string{"height", "age"}); err != nil {
		t.Fatal(err)
	}
	if ix.Misses() != 2 {
		t.Errorf("misses=%d after reordered columns, want 2", ix.Misses())
	}
	if _, err := ix.Classes([]string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestClassIndexEmptyAndDegenerateTables(t *testing.T) {
	empty := MustTable(Column{Name: "a"})
	ix := NewClassIndex(empty, 8)
	classes, err := ix.Classes([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 0 {
		t.Errorf("empty table produced %d classes", len(classes))
	}

	single := MustTable(Column{Name: "a"})
	single.MustAddRow(Num(1))
	classes, err = NewClassIndex(single, 8).Classes([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || len(classes[0]) != 1 || classes[0][0] != 0 {
		t.Errorf("single-row table classes = %v", classes)
	}
}

func TestValueRisksIdenticalAcrossWorkerCounts(t *testing.T) {
	tbl := classTestTable(3 * minChunkRows)
	anon, err := Spec{"age": NumericBinning{Width: 10}, "height": NumericBinning{Width: 20}}.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	base := ValueRiskOptions{
		VisibleColumns: []string{"age", "height", "country"},
		TargetColumn:   "weight",
		Closeness:      5,
	}
	want, err := ValueRisks(anon, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		opts := base
		opts.Workers = workers
		opts.Index = NewClassIndex(anon, workers)
		got, err := ValueRisks(anon, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d risks diverge from sequential", workers)
		}
	}
}

func TestValueRisksRejectsForeignIndex(t *testing.T) {
	a := classTestTable(10)
	b := classTestTable(10)
	_, err := ValueRisks(a, ValueRiskOptions{
		TargetColumn: "weight",
		Index:        NewClassIndex(b, 1),
	})
	if err == nil {
		t.Error("index over a different table accepted")
	}
}

func TestReidentificationRiskIndexedMatchesUnindexed(t *testing.T) {
	tbl := classTestTable(2000)
	anon, err := Spec{"age": NumericBinning{Width: 10}}.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReidentificationRisk(anon, []string{"age", "country"}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewClassIndex(anon, 8)
	got, err := ReidentificationRiskIndexed(ix, []string{"age", "country"}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("indexed re-identification risk diverges from unindexed")
	}
	if _, err := ReidentificationRiskIndexed(nil, []string{"age"}, 0.2); err == nil {
		t.Error("nil index accepted")
	}
}

func TestRowChunksCoverAllRows(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {minChunkRows, 4}, {2*minChunkRows + 1, 4}, {10 * minChunkRows, 3}, {100, 1},
	} {
		chunks := rowChunks(tc.n, tc.workers)
		next := 0
		for _, c := range chunks {
			if c[0] != next {
				t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d", tc.n, tc.workers, c[0], next)
			}
			if c[1] < c[0] {
				t.Fatalf("n=%d workers=%d: inverted chunk %v", tc.n, tc.workers, c)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.workers, next, tc.n)
		}
	}
}

func TestInternerPoolsRepeatedCells(t *testing.T) {
	in := NewInterner()
	a := in.Parse("berlin")
	b := in.Parse("berlin")
	if a != b {
		t.Error("repeated cell parsed to different values")
	}
	if in.Size() != 1 {
		t.Errorf("pool size = %d, want 1", in.Size())
	}
	if v := in.Parse("41.5"); v.Kind != KindNumeric || v.Num != 41.5 {
		t.Errorf("numeric cell = %v", v)
	}
	if v := in.Parse("30-40"); v.Kind != KindInterval || v.Lo != 30 || v.Hi != 40 {
		t.Errorf("interval cell = %v", v)
	}
	if v := in.Parse("*"); !v.IsSuppressed() {
		t.Errorf("suppressed cell = %v", v)
	}
	if in.Size() != 4 {
		t.Errorf("pool size = %d, want 4", in.Size())
	}
}

func TestInternerDetachesFromCallerBuffer(t *testing.T) {
	buf := []byte("madrid")
	in := NewInterner()
	v := in.Parse(string(buf))
	copy(buf, "XXXXXX")
	if v.Str != "madrid" {
		t.Errorf("pooled value aliased the caller's buffer: %q", v.Str)
	}
	if got := in.Parse("madrid"); got != v {
		t.Error("pool key aliased the caller's buffer")
	}
}

func TestEquivalenceClassesLargeTableParallelConsistency(t *testing.T) {
	// End-to-end sanity on a table big enough for >= 4 chunks: every row
	// appears in exactly one class, and classes are internally consistent.
	tbl := classTestTable(4 * minChunkRows)
	ix := NewClassIndex(tbl, 8)
	classes, err := ix.Classes([]string{"age", "country"})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, tbl.NumRows())
	for _, class := range classes {
		key := ""
		for i, r := range class {
			if seen[r] {
				t.Fatalf("row %d in two classes", r)
			}
			seen[r] = true
			age, _ := tbl.Value(r, "age")
			country, _ := tbl.Value(r, "country")
			k := age.GroupKey() + "|" + country.GroupKey()
			if i == 0 {
				key = k
			} else if k != key {
				t.Fatalf("class mixes keys %q and %q", key, k)
			}
		}
	}
	if len(seen) != tbl.NumRows() {
		t.Fatalf("classes cover %d rows, want %d", len(seen), tbl.NumRows())
	}
}

func ExampleClassIndex() {
	tbl := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "weight", Role: RoleSensitive},
	)
	for _, row := range [][2]float64{{23, 50}, {23, 55}, {34, 70}, {34, 72}} {
		tbl.MustAddRow(Num(row[0]), Num(row[1]))
	}
	ix := NewClassIndex(tbl, 4)
	classes, _ := ix.Classes([]string{"age"})
	fmt.Println(len(classes), "classes")
	classes2, _ := ix.Classes([]string{"age"}) // served from cache
	fmt.Println(len(classes2), "classes,", ix.Hits(), "cache hit")
	// Output:
	// 2 classes
	// 2 classes, 1 cache hit
}

func TestScoreClassFastPathMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Mixed-kind classes straddling the quadratic cutoff, including exact
	// boundary hits at distance == closeness.
	makeValue := func() Value {
		switch rng.Intn(6) {
		case 0:
			return Cat([]string{"a", "b", "c"}[rng.Intn(3)])
		case 1:
			return Suppressed()
		case 2:
			lo := float64(rng.Intn(20))
			return Interval(lo, lo+float64(rng.Intn(10)))
		default:
			return Num(float64(rng.Intn(30)))
		}
	}
	for _, size := range []int{1, 2, quadraticClassCutoff, quadraticClassCutoff + 1, 200, 1000} {
		for _, closeness := range []float64{0, 1, 5} {
			target := make([]Value, size)
			class := make([]int, size)
			for i := range target {
				target[i] = makeValue()
				class[i] = i
			}
			want := make([]ValueRisk, size)
			scoreClassQuadratic(want, class, target, closeness)
			got := make([]ValueRisk, size)
			scoreClassInto(got, class, target, closeness)
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("size=%d closeness=%v row %d (%v): fast=%+v quadratic=%+v",
							size, closeness, i, target[i], got[i], want[i])
					}
				}
			}
		}
	}
}

func TestScoreClassInvertedIntervalFallsBack(t *testing.T) {
	// An interval parsed from "50-30" is inverted; the fast path must defer
	// to the exact pairwise scan for the whole class.
	size := 2 * quadraticClassCutoff
	target := make([]Value, size)
	class := make([]int, size)
	for i := range target {
		target[i] = Num(float64(i))
		class[i] = i
	}
	target[7] = Interval(50, 30)
	want := make([]ValueRisk, size)
	scoreClassQuadratic(want, class, target, 5)
	got := make([]ValueRisk, size)
	scoreClassInto(got, class, target, 5)
	if !reflect.DeepEqual(got, want) {
		t.Error("inverted-interval class diverges from quadratic reference")
	}
}

func TestScoreClassNaNValues(t *testing.T) {
	size := 2 * quadraticClassCutoff
	target := make([]Value, size)
	class := make([]int, size)
	for i := range target {
		target[i] = Num(float64(i % 10))
		class[i] = i
	}
	target[3] = Num(math.NaN())
	want := make([]ValueRisk, size)
	scoreClassQuadratic(want, class, target, 1)
	got := make([]ValueRisk, size)
	scoreClassInto(got, class, target, 1)
	if !reflect.DeepEqual(got, want) {
		t.Error("NaN-valued class diverges from quadratic reference")
	}
	if got[3].Frequency != 0 {
		t.Errorf("NaN record frequency = %d, want 0", got[3].Frequency)
	}
}

func TestScoreClassFloatRoundingEdge(t *testing.T) {
	// At 1e16 the additions fl(hi+c) and subtractions fl(lo-c) round
	// differently; the fast path must evaluate exactly the float expressions
	// Close uses or it disagrees with the pairwise reference here.
	size := 2 * quadraticClassCutoff
	target := make([]Value, size)
	class := make([]int, size)
	for i := range target {
		target[i] = Num(1e16)
		class[i] = i
	}
	target[1] = Num(1e16 + 2)
	want := make([]ValueRisk, size)
	scoreClassQuadratic(want, class, target, 1.0)
	got := make([]ValueRisk, size)
	scoreClassInto(got, class, target, 1.0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fast path diverges at the rounding edge: fast=%+v quadratic=%+v", got[1], want[1])
	}
}

func TestEquivalenceClassesSeparatorInjective(t *testing.T) {
	// Categorical values containing a would-be separator must not alias two
	// distinct rows into one class.
	tbl := MustTable(Column{Name: "a"}, Column{Name: "b"})
	tbl.MustAddRow(Cat("x|categorical:y"), Cat("z"))
	tbl.MustAddRow(Cat("x"), Cat("y|categorical:z"))
	classes, err := tbl.EquivalenceClasses([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("aliased rows merged: %v", classes)
	}
}
