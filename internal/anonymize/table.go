package anonymize

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ColumnRole describes how a column participates in re-identification, using
// the same terminology as package schema.
type ColumnRole int

// Column roles.
const (
	RoleStandard ColumnRole = iota + 1
	RoleIdentifier
	RoleQuasiIdentifier
	RoleSensitive
)

// String returns the lower-case role name.
func (r ColumnRole) String() string {
	switch r {
	case RoleStandard:
		return "standard"
	case RoleIdentifier:
		return "identifier"
	case RoleQuasiIdentifier:
		return "quasi-identifier"
	case RoleSensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Column describes one column of a record table.
type Column struct {
	// Name is the unique column name, e.g. "weight".
	Name string
	// Role classifies the column.
	Role ColumnRole
	// Unit is a display-only unit, e.g. "kg".
	Unit string
}

// Table is an in-memory record table: the datasets the pseudonymisation risk
// analysis operates on. Tables are not safe for concurrent mutation.
type Table struct {
	columns []Column
	index   map[string]int
	rows    [][]Value
}

// NewTable creates an empty table with the given columns.
func NewTable(columns ...Column) (*Table, error) {
	if len(columns) == 0 {
		return nil, errors.New("anonymize: table needs at least one column")
	}
	t := &Table{columns: append([]Column(nil), columns...), index: make(map[string]int, len(columns))}
	for i, c := range columns {
		if strings.TrimSpace(c.Name) == "" {
			return nil, fmt.Errorf("anonymize: column %d has an empty name", i)
		}
		if _, dup := t.index[c.Name]; dup {
			return nil, fmt.Errorf("anonymize: duplicate column %q", c.Name)
		}
		t.index[c.Name] = i
	}
	return t, nil
}

// MustTable is like NewTable but panics on error; for fixtures.
func MustTable(columns ...Column) *Table {
	t, err := NewTable(columns...)
	if err != nil {
		panic(err)
	}
	return t
}

// AddRow appends a row; the number of values must match the columns.
func (t *Table) AddRow(values ...Value) error {
	if len(values) != len(t.columns) {
		return fmt.Errorf("anonymize: row has %d values, table has %d columns", len(values), len(t.columns))
	}
	t.rows = append(t.rows, append([]Value(nil), values...))
	return nil
}

// MustAddRow is like AddRow but panics on error; for fixtures.
func (t *Table) MustAddRow(values ...Value) {
	if err := t.AddRow(values...); err != nil {
		panic(err)
	}
}

// Columns returns a copy of the column definitions.
func (t *Table) Columns() []Column { return append([]Column(nil), t.columns...) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.columns))
	for i, c := range t.columns {
		out[i] = c.Name
	}
	return out
}

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Column returns the definition of the named column.
func (t *Table) Column(name string) (Column, bool) {
	if i, ok := t.index[name]; ok {
		return t.columns[i], true
	}
	return Column{}, false
}

// ColumnsByRole returns the names of columns with the given role, in order.
func (t *Table) ColumnsByRole(role ColumnRole) []string {
	var out []string
	for _, c := range t.columns {
		if c.Role == role {
			out = append(out, c.Name)
		}
	}
	return out
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// Value returns the cell at (row, column name).
func (t *Table) Value(row int, column string) (Value, error) {
	if row < 0 || row >= len(t.rows) {
		return Value{}, fmt.Errorf("anonymize: row %d out of range [0,%d)", row, len(t.rows))
	}
	i, ok := t.index[column]
	if !ok {
		return Value{}, fmt.Errorf("anonymize: unknown column %q", column)
	}
	return t.rows[row][i], nil
}

// Row returns a copy of the row's values.
func (t *Table) Row(row int) ([]Value, error) {
	if row < 0 || row >= len(t.rows) {
		return nil, fmt.Errorf("anonymize: row %d out of range [0,%d)", row, len(t.rows))
	}
	return append([]Value(nil), t.rows[row]...), nil
}

// SetValue overwrites the cell at (row, column name).
func (t *Table) SetValue(row int, column string, v Value) error {
	if row < 0 || row >= len(t.rows) {
		return fmt.Errorf("anonymize: row %d out of range [0,%d)", row, len(t.rows))
	}
	i, ok := t.index[column]
	if !ok {
		return fmt.Errorf("anonymize: unknown column %q", column)
	}
	t.rows[row][i] = v
	return nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{
		columns: append([]Column(nil), t.columns...),
		index:   make(map[string]int, len(t.index)),
		rows:    make([][]Value, len(t.rows)),
	}
	for k, v := range t.index {
		out.index[k] = v
	}
	for i, row := range t.rows {
		out.rows[i] = append([]Value(nil), row...)
	}
	return out
}

// Project returns a new table containing only the named columns (in the
// given order), with all rows copied.
func (t *Table) Project(columns ...string) (*Table, error) {
	cols := make([]Column, 0, len(columns))
	idxs := make([]int, 0, len(columns))
	for _, name := range columns {
		i, ok := t.index[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: unknown column %q", name)
		}
		cols = append(cols, t.columns[i])
		idxs = append(idxs, i)
	}
	out, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	for _, row := range t.rows {
		values := make([]Value, len(idxs))
		for j, i := range idxs {
			values[j] = row[i]
		}
		out.rows = append(out.rows, values)
	}
	return out, nil
}

// String renders the table as an aligned text grid, for reports and examples.
func (t *Table) String() string {
	widths := make([]int, len(t.columns))
	header := make([]string, len(t.columns))
	for i, c := range t.columns {
		header[i] = c.Name
		if c.Unit != "" {
			header[i] += " (" + c.Unit + ")"
		}
		widths[i] = len(header[i])
	}
	cells := make([][]string, len(t.rows))
	for r, row := range t.rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	writeRow := func(values []string) {
		for i, v := range values {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// EquivalenceClasses partitions the row indices into groups whose values in
// the given columns are indistinguishable (identical group keys). The groups
// and their members are returned in deterministic order. Rows where every
// grouping column is suppressed form their own shared group.
func (t *Table) EquivalenceClasses(columns []string) ([][]int, error) {
	idxs := make([]int, 0, len(columns))
	for _, name := range columns {
		i, ok := t.index[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: unknown column %q", name)
		}
		idxs = append(idxs, i)
	}
	groups := make(map[string][]int)
	var keys []string
	for r, row := range t.rows {
		parts := make([]string, len(idxs))
		for j, i := range idxs {
			parts[j] = row[i].GroupKey()
		}
		key := strings.Join(parts, "|")
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], r)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out, nil
}
