package anonymize

import (
	"errors"
	"fmt"
	"strings"
)

// ColumnRole describes how a column participates in re-identification, using
// the same terminology as package schema.
type ColumnRole int

// Column roles.
const (
	RoleStandard ColumnRole = iota + 1
	RoleIdentifier
	RoleQuasiIdentifier
	RoleSensitive
)

// String returns the lower-case role name.
func (r ColumnRole) String() string {
	switch r {
	case RoleStandard:
		return "standard"
	case RoleIdentifier:
		return "identifier"
	case RoleQuasiIdentifier:
		return "quasi-identifier"
	case RoleSensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Column describes one column of a record table.
type Column struct {
	// Name is the unique column name, e.g. "weight".
	Name string
	// Role classifies the column.
	Role ColumnRole
	// Unit is a display-only unit, e.g. "kg".
	Unit string
}

// Table is an in-memory record table: the datasets the pseudonymisation risk
// analysis operates on.
//
// Storage is column-oriented: each column's cells live in one contiguous
// slice, so the analyses — which walk a handful of columns over every row —
// scan sequential memory instead of hopping across per-row allocations, and
// a million-row table costs one allocation per column rather than one per
// row. Tables are not safe for concurrent mutation; concurrent reads are
// safe once mutation has stopped.
type Table struct {
	columns []Column
	index   map[string]int
	// cols holds the cell data column-major: cols[c][r] is row r of column c.
	cols  [][]Value
	nrows int
}

// NewTable creates an empty table with the given columns.
func NewTable(columns ...Column) (*Table, error) {
	if len(columns) == 0 {
		return nil, errors.New("anonymize: table needs at least one column")
	}
	t := &Table{
		columns: append([]Column(nil), columns...),
		index:   make(map[string]int, len(columns)),
		cols:    make([][]Value, len(columns)),
	}
	for i, c := range columns {
		if strings.TrimSpace(c.Name) == "" {
			return nil, fmt.Errorf("anonymize: column %d has an empty name", i)
		}
		if _, dup := t.index[c.Name]; dup {
			return nil, fmt.Errorf("anonymize: duplicate column %q", c.Name)
		}
		t.index[c.Name] = i
	}
	return t, nil
}

// MustTable is like NewTable but panics on error; for fixtures.
func MustTable(columns ...Column) *Table {
	t, err := NewTable(columns...)
	if err != nil {
		panic(err)
	}
	return t
}

// AddRow appends a row; the number of values must match the columns.
func (t *Table) AddRow(values ...Value) error {
	if len(values) != len(t.columns) {
		return fmt.Errorf("anonymize: row has %d values, table has %d columns", len(values), len(t.columns))
	}
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
	t.nrows++
	return nil
}

// MustAddRow is like AddRow but panics on error; for fixtures.
func (t *Table) MustAddRow(values ...Value) {
	if err := t.AddRow(values...); err != nil {
		panic(err)
	}
}

// Columns returns a copy of the column definitions.
func (t *Table) Columns() []Column { return append([]Column(nil), t.columns...) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.columns))
	for i, c := range t.columns {
		out[i] = c.Name
	}
	return out
}

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Column returns the definition of the named column.
func (t *Table) Column(name string) (Column, bool) {
	if i, ok := t.index[name]; ok {
		return t.columns[i], true
	}
	return Column{}, false
}

// ColumnsByRole returns the names of columns with the given role, in order.
func (t *Table) ColumnsByRole(role ColumnRole) []string {
	var out []string
	for _, c := range t.columns {
		if c.Role == role {
			out = append(out, c.Name)
		}
	}
	return out
}

// ColumnValues returns the cells of the named column in row order. The
// returned slice is the table's backing storage and must be treated as
// read-only; it stays valid until the table is mutated.
func (t *Table) ColumnValues(name string) ([]Value, bool) {
	if i, ok := t.index[name]; ok {
		return t.cols[i], true
	}
	return nil, false
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// Value returns the cell at (row, column name).
func (t *Table) Value(row int, column string) (Value, error) {
	if row < 0 || row >= t.nrows {
		return Value{}, fmt.Errorf("anonymize: row %d out of range [0,%d)", row, t.nrows)
	}
	i, ok := t.index[column]
	if !ok {
		return Value{}, fmt.Errorf("anonymize: unknown column %q", column)
	}
	return t.cols[i][row], nil
}

// Row returns a copy of the row's values.
func (t *Table) Row(row int) ([]Value, error) {
	if row < 0 || row >= t.nrows {
		return nil, fmt.Errorf("anonymize: row %d out of range [0,%d)", row, t.nrows)
	}
	out := make([]Value, len(t.cols))
	for i, col := range t.cols {
		out[i] = col[row]
	}
	return out, nil
}

// SetValue overwrites the cell at (row, column name).
func (t *Table) SetValue(row int, column string, v Value) error {
	if row < 0 || row >= t.nrows {
		return fmt.Errorf("anonymize: row %d out of range [0,%d)", row, t.nrows)
	}
	i, ok := t.index[column]
	if !ok {
		return fmt.Errorf("anonymize: unknown column %q", column)
	}
	t.cols[i][row] = v
	return nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{
		columns: append([]Column(nil), t.columns...),
		index:   make(map[string]int, len(t.index)),
		cols:    make([][]Value, len(t.cols)),
		nrows:   t.nrows,
	}
	for k, v := range t.index {
		out.index[k] = v
	}
	for i, col := range t.cols {
		out.cols[i] = append([]Value(nil), col...)
	}
	return out
}

// Project returns a new table containing only the named columns (in the
// given order), with all rows copied.
func (t *Table) Project(columns ...string) (*Table, error) {
	cols := make([]Column, 0, len(columns))
	idxs := make([]int, 0, len(columns))
	for _, name := range columns {
		i, ok := t.index[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: unknown column %q", name)
		}
		cols = append(cols, t.columns[i])
		idxs = append(idxs, i)
	}
	out, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	out.nrows = t.nrows
	for j, i := range idxs {
		out.cols[j] = append([]Value(nil), t.cols[i]...)
	}
	return out, nil
}

// String renders the table as an aligned text grid, for reports and examples.
func (t *Table) String() string {
	widths := make([]int, len(t.columns))
	header := make([]string, len(t.columns))
	for i, c := range t.columns {
		header[i] = c.Name
		if c.Unit != "" {
			header[i] += " (" + c.Unit + ")"
		}
		widths[i] = len(header[i])
	}
	cells := make([][]string, t.nrows)
	for r := 0; r < t.nrows; r++ {
		cells[r] = make([]string, len(t.cols))
		for i, col := range t.cols {
			cells[r][i] = col[r].String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	writeRow := func(values []string) {
		for i, v := range values {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// EquivalenceClasses partitions the row indices into groups whose values in
// the given columns are indistinguishable (identical group keys). The groups
// and their members are returned in deterministic order: groups sorted by
// their canonical key, members in ascending row order. Rows where every
// grouping column is suppressed form their own shared group.
//
// The computation is single-threaded; use a ClassIndex to build (and cache)
// classes with a worker pool on large tables. Both produce identical output.
func (t *Table) EquivalenceClasses(columns []string) ([][]int, error) {
	idxs, err := t.resolveColumns(columns)
	if err != nil {
		return nil, err
	}
	return buildClasses(t, idxs, 1), nil
}

// resolveColumns maps column names to their indices, erroring on unknowns.
func (t *Table) resolveColumns(columns []string) ([]int, error) {
	idxs := make([]int, 0, len(columns))
	for _, name := range columns {
		i, ok := t.index[name]
		if !ok {
			return nil, fmt.Errorf("anonymize: unknown column %q", name)
		}
		idxs = append(idxs, i)
	}
	return idxs, nil
}
