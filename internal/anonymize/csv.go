package anonymize

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ColumnSpec assigns roles to columns when reading a CSV file. Keys are
// column names (as they appear in the header); unnamed columns default to
// RoleStandard.
type ColumnSpec map[string]ColumnRole

// ReadCSV reads a table from CSV text. The first record is the header; each
// cell is parsed with ParseValue, so numbers become numeric values, "lo-hi"
// becomes an interval, "*" a suppressed cell, and everything else a
// category.
func ReadCSV(r io.Reader, spec ColumnSpec) (*Table, error) {
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	records, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("anonymize: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("anonymize: CSV input is empty")
	}
	header := records[0]
	columns := make([]Column, len(header))
	for i, name := range header {
		name = strings.TrimSpace(name)
		role := RoleStandard
		if spec != nil {
			if r, ok := spec[name]; ok {
				role = r
			}
		}
		columns[i] = Column{Name: name, Role: role}
	}
	t, err := NewTable(columns...)
	if err != nil {
		return nil, err
	}
	for i, record := range records[1:] {
		if len(record) != len(header) {
			return nil, fmt.Errorf("anonymize: CSV row %d has %d cells, header has %d", i+1, len(record), len(header))
		}
		values := make([]Value, len(record))
		for j, cell := range record {
			values[j] = ParseValue(cell)
		}
		if err := t.AddRow(values...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table as CSV, rendering cells with Value.String.
func WriteCSV(w io.Writer, t *Table) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("anonymize: writing CSV header: %w", err)
	}
	for r := 0; r < t.NumRows(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return err
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		if err := writer.Write(cells); err != nil {
			return fmt.Errorf("anonymize: writing CSV row %d: %w", r, err)
		}
	}
	writer.Flush()
	if err := writer.Error(); err != nil {
		return fmt.Errorf("anonymize: flushing CSV: %w", err)
	}
	return nil
}
