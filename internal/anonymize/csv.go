package anonymize

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ColumnSpec assigns roles to columns when reading a CSV file. Keys are
// column names (as they appear in the header); unnamed columns default to
// RoleStandard.
type ColumnSpec map[string]ColumnRole

// ReadCSV reads a table from CSV text. The first record is the header; each
// cell is parsed with ParseValue, so numbers become numeric values, "lo-hi"
// becomes an interval, "*" a suppressed cell, and everything else a
// category.
//
// The input is streamed record-at-a-time into the table's column-oriented
// storage — the whole file is never buffered — and cells are pooled through
// an Interner, so repeated categorical cells share one string allocation.
// Duplicate header column names are rejected (a duplicate would make every
// lookup silently resolve to the first column of that name), as are ragged
// rows whose cell count differs from the header's.
func ReadCSV(r io.Reader, spec ColumnSpec) (*Table, error) {
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	reader.ReuseRecord = true

	header, err := reader.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("anonymize: CSV input is empty")
	}
	if err != nil {
		return nil, fmt.Errorf("anonymize: reading CSV header: %w", err)
	}
	columns := make([]Column, len(header))
	seen := make(map[string]int, len(header))
	for i, name := range header {
		name = strings.Clone(strings.TrimSpace(name))
		if first, dup := seen[name]; dup {
			return nil, fmt.Errorf("anonymize: duplicate CSV header column %q (columns %d and %d); every column lookup would resolve to the first one only", name, first+1, i+1)
		}
		seen[name] = i
		role := RoleStandard
		if spec != nil {
			if r, ok := spec[name]; ok {
				role = r
			}
		}
		columns[i] = Column{Name: name, Role: role}
	}
	t, err := NewTable(columns...)
	if err != nil {
		return nil, err
	}

	pool := NewInterner()
	for row := 1; ; row++ {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// encoding/csv reports ragged rows (ErrFieldCount, measured
			// against the header record) and quoting problems here; wrap
			// with the data row number for context.
			return nil, fmt.Errorf("anonymize: CSV row %d: %w", row, err)
		}
		for i, cell := range record {
			t.cols[i] = append(t.cols[i], pool.Parse(cell))
		}
		t.nrows++
	}
	return t, nil
}

// WriteCSV writes the table as CSV, rendering cells with Value.String.
func WriteCSV(w io.Writer, t *Table) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("anonymize: writing CSV header: %w", err)
	}
	cells := make([]string, len(t.cols))
	for r := 0; r < t.nrows; r++ {
		for i, col := range t.cols {
			cells[i] = col[r].String()
		}
		if err := writer.Write(cells); err != nil {
			return fmt.Errorf("anonymize: writing CSV row %d: %w", r, err)
		}
	}
	writer.Flush()
	if err := writer.Error(); err != nil {
		return fmt.Errorf("anonymize: flushing CSV: %w", err)
	}
	return nil
}
