package anonymize

import (
	"math"
	"testing"
)

func TestCompareUtilityEmptyTable(t *testing.T) {
	orig := MustTable(Column{Name: "w"})
	anon := MustTable(Column{Name: "w"})
	rep, err := CompareUtility(orig, anon, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	cu, ok := rep.Column("w")
	if !ok {
		t.Fatal("missing column entry")
	}
	if cu.OriginalMean != 0 || cu.AnonymisedMean != 0 || cu.MeanAbsoluteError != 0 || cu.SuppressedFraction != 0 {
		t.Errorf("empty-table utility = %+v, want zeros", cu)
	}
	if rep.SuppressionRate != 0 {
		t.Errorf("suppression rate = %v, want 0", rep.SuppressionRate)
	}
	if !rep.AcceptableWithin(0) {
		t.Error("empty table not acceptable at zero mean shift")
	}
}

func TestCompareUtilityAllSuppressedColumn(t *testing.T) {
	orig := MustTable(Column{Name: "w"})
	anon := MustTable(Column{Name: "w"})
	for _, v := range []float64{60, 70, 80} {
		orig.MustAddRow(Num(v))
		anon.MustAddRow(Suppressed())
	}
	rep, err := CompareUtility(orig, anon, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	cu, _ := rep.Column("w")
	if cu.SuppressedFraction != 1 {
		t.Errorf("suppressed fraction = %v, want 1", cu.SuppressedFraction)
	}
	if rep.SuppressionRate != 1 {
		t.Errorf("suppression rate = %v, want 1", rep.SuppressionRate)
	}
	// No usable anonymised cells: the anonymised mean collapses to zero and
	// the mean shift equals the original mean.
	if cu.AnonymisedMean != 0 || cu.MeanAbsoluteError != 0 {
		t.Errorf("all-suppressed utility = %+v", cu)
	}
	if got, want := cu.MeanShift(), 70.0; got != want {
		t.Errorf("mean shift = %v, want %v", got, want)
	}
}

func TestCompareUtilityErrors(t *testing.T) {
	a := MustTable(Column{Name: "w"})
	a.MustAddRow(Num(1))
	b := MustTable(Column{Name: "w"})
	if _, err := CompareUtility(a, b, []string{"w"}); err == nil {
		t.Error("row-count mismatch accepted")
	}
	if _, err := CompareUtility(a, a, []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGeneralizationLossEdgeCases(t *testing.T) {
	empty := MustTable(Column{Name: "w"})
	if loss, err := GeneralizationLoss(empty, empty, []string{"w"}); err != nil || loss != 0 {
		t.Errorf("empty table loss = %v, %v; want 0, nil", loss, err)
	}

	// All-suppressed column counts as full loss.
	orig := MustTable(Column{Name: "w"})
	anon := MustTable(Column{Name: "w"})
	for _, v := range []float64{10, 20} {
		orig.MustAddRow(Num(v))
		anon.MustAddRow(Suppressed())
	}
	if loss, err := GeneralizationLoss(orig, anon, []string{"w"}); err != nil || loss != 1 {
		t.Errorf("all-suppressed loss = %v, %v; want 1, nil", loss, err)
	}

	// A single-row table has zero value range: any interval is full loss,
	// the exact value none.
	one := MustTable(Column{Name: "w"})
	one.MustAddRow(Num(42))
	exact := one.Clone()
	if loss, err := GeneralizationLoss(one, exact, []string{"w"}); err != nil || loss != 0 {
		t.Errorf("identity loss = %v, %v; want 0, nil", loss, err)
	}
	binned, err := Spec{"w": NumericBinning{Width: 10}}.Apply(one)
	if err != nil {
		t.Fatal(err)
	}
	if loss, err := GeneralizationLoss(one, binned, []string{"w"}); err != nil || loss != 1 {
		t.Errorf("zero-range interval loss = %v, %v; want 1, nil", loss, err)
	}

	if _, err := GeneralizationLoss(one, one, []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGeneralizersPassThroughAndSuppress(t *testing.T) {
	// NumericBinning leaves categorical and suppressed cells alone, and a
	// non-positive width is the identity.
	if v := (NumericBinning{Width: 10}).Generalize(Cat("x")); v != Cat("x") {
		t.Errorf("binned category = %v", v)
	}
	if v := (NumericBinning{Width: 10}).Generalize(Suppressed()); !v.IsSuppressed() {
		t.Errorf("binned suppressed cell = %v", v)
	}
	if v := (NumericBinning{}).Generalize(Num(7)); v != Num(7) {
		t.Errorf("zero-width binning = %v", v)
	}
	// Interval inputs re-bin via their midpoint.
	if v := (NumericBinning{Width: 10}).Generalize(Interval(30, 50)); v != Interval(40, 50) {
		t.Errorf("re-binned interval = %v", v)
	}

	cm := CategoryMap{Groups: map[string]string{"a": "vowel"}, SuppressUnknown: true}
	if v := cm.Generalize(Cat("a")); v != Cat("vowel") {
		t.Errorf("mapped category = %v", v)
	}
	if v := cm.Generalize(Cat("z")); !v.IsSuppressed() {
		t.Errorf("unknown category = %v, want suppressed", v)
	}
	if v := cm.Generalize(Num(3)); v != Num(3) {
		t.Errorf("category map on numeric = %v", v)
	}
	if v := (CategoryMap{}).Generalize(Cat("z")); v != Cat("z") {
		t.Errorf("pass-through category = %v", v)
	}

	if v := (SuppressAll{}).Generalize(Num(1)); !v.IsSuppressed() {
		t.Errorf("SuppressAll = %v", v)
	}
}

func TestValueRisksSingleRowClass(t *testing.T) {
	tbl := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "weight", Role: RoleSensitive},
	)
	tbl.MustAddRow(Num(23), Num(50))
	tbl.MustAddRow(Num(34), Num(70))
	risks, err := ValueRisks(tbl, ValueRiskOptions{
		VisibleColumns: []string{"age"},
		TargetColumn:   "weight",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range risks {
		if r.SetSize != 1 || r.Frequency != 1 || r.Probability != 1 {
			t.Errorf("single-row class risk = %+v, want 1/1", r)
		}
	}
}

func TestSpecApplyDoesNotMutateInput(t *testing.T) {
	tbl := MustTable(Column{Name: "w"})
	tbl.MustAddRow(Num(42))
	out, err := Spec{"w": NumericBinning{Width: 10}}.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Value(0, "w"); v != Num(42) {
		t.Errorf("input mutated: %v", v)
	}
	if v, _ := out.Value(0, "w"); v != Interval(40, 50) {
		t.Errorf("output cell = %v", v)
	}
	if _, err := (Spec{"ghost": SuppressAll{}}).Apply(tbl); err == nil {
		t.Error("unknown spec column accepted")
	}
	if math.IsNaN((SuppressAll{}).Generalize(Num(1)).Midpoint()) != true {
		t.Error("suppressed midpoint should be NaN")
	}
}
