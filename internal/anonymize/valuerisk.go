package anonymize

import (
	"errors"
	"fmt"
)

// ValueRisk is the per-record outcome of the paper's value-risk computation
// (Section III-B): the marginal probability that an adversary who can see
// the visible fields of the record's equivalence set pins the target field's
// true value to within the configured closeness.
type ValueRisk struct {
	// Row is the record's index in the analysed table.
	Row int
	// SetSize is the size of the record's equivalence set s.
	SetSize int
	// Frequency is frequency(f): the number of records in s whose target
	// value is close enough to this record's value.
	Frequency int
	// Probability is Frequency / SetSize.
	Probability float64
}

// Fraction returns the risk as the exact fraction the paper's Table I prints
// (e.g. 2/4).
func (v ValueRisk) Fraction() Fraction { return Fraction{Num: v.Frequency, Den: v.SetSize} }

// String renders the risk as its fraction.
func (v ValueRisk) String() string { return v.Fraction().String() }

// ValueRiskOptions configures the computation.
type ValueRiskOptions struct {
	// VisibleColumns are the fields the adversary has already read
	// (the paper's fieldsread); all other columns are masked when the data
	// is divided into equivalence sets.
	VisibleColumns []string
	// TargetColumn is the sensitive field f whose value is being inferred.
	TargetColumn string
	// Closeness is the range within which two target values count as the
	// same observation (5 kg in the paper's weight example). Zero means
	// exact equality.
	Closeness float64
}

// ValueRisks computes the value risk of every record in the table following
// the three steps of Section III-B:
//
//  1. the visible (already-read) fields form the input field set;
//  2. the remaining fields are masked and the records are divided into sets
//     of apparently identical records (equivalence classes on the visible
//     fields);
//  3. for each record r, risk(r, f) = frequency(f) / size(s), where
//     frequency counts the records in r's set whose value of f lies within
//     the closeness range of r's value.
//
// When no columns are visible, every record falls into one set covering the
// whole table.
func ValueRisks(t *Table, opts ValueRiskOptions) ([]ValueRisk, error) {
	if t == nil {
		return nil, errors.New("anonymize: table must not be nil")
	}
	if _, ok := t.ColumnIndex(opts.TargetColumn); !ok {
		return nil, fmt.Errorf("anonymize: unknown target column %q", opts.TargetColumn)
	}
	if opts.Closeness < 0 {
		return nil, errors.New("anonymize: closeness must not be negative")
	}
	for _, c := range opts.VisibleColumns {
		if _, ok := t.ColumnIndex(c); !ok {
			return nil, fmt.Errorf("anonymize: unknown visible column %q", c)
		}
	}

	var classes [][]int
	if len(opts.VisibleColumns) == 0 {
		all := make([]int, t.NumRows())
		for i := range all {
			all[i] = i
		}
		classes = [][]int{all}
	} else {
		var err error
		classes, err = t.EquivalenceClasses(opts.VisibleColumns)
		if err != nil {
			return nil, err
		}
	}

	risks := make([]ValueRisk, t.NumRows())
	for _, class := range classes {
		values := make([]Value, len(class))
		for i, r := range class {
			v, err := t.Value(r, opts.TargetColumn)
			if err != nil {
				return nil, err
			}
			values[i] = v
		}
		for i, r := range class {
			freq := 0
			for j := range class {
				if values[i].Close(values[j], opts.Closeness) {
					freq++
				}
			}
			risk := ValueRisk{Row: r, SetSize: len(class), Frequency: freq}
			if len(class) > 0 {
				risk.Probability = float64(freq) / float64(len(class))
			}
			risks[r] = risk
		}
	}
	return risks, nil
}

// CountViolations returns how many records' value risk meets or exceeds the
// confidence threshold (e.g. 0.9 for the paper's "at least 90% confidence"
// policy). It is the "Violations" row of Table I.
func CountViolations(risks []ValueRisk, confidenceThreshold float64) int {
	count := 0
	for _, r := range risks {
		if r.Probability >= confidenceThreshold {
			count++
		}
	}
	return count
}

// MaxRisk returns the highest probability among the risks, or zero when the
// slice is empty.
func MaxRisk(risks []ValueRisk) float64 {
	max := 0.0
	for _, r := range risks {
		if r.Probability > max {
			max = r.Probability
		}
	}
	return max
}
