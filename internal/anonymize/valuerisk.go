package anonymize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ValueRisk is the per-record outcome of the paper's value-risk computation
// (Section III-B): the marginal probability that an adversary who can see
// the visible fields of the record's equivalence set pins the target field's
// true value to within the configured closeness.
type ValueRisk struct {
	// Row is the record's index in the analysed table.
	Row int
	// SetSize is the size of the record's equivalence set s.
	SetSize int
	// Frequency is frequency(f): the number of records in s whose target
	// value is close enough to this record's value.
	Frequency int
	// Probability is Frequency / SetSize.
	Probability float64
}

// Fraction returns the risk as the exact fraction the paper's Table I prints
// (e.g. 2/4).
func (v ValueRisk) Fraction() Fraction { return Fraction{Num: v.Frequency, Den: v.SetSize} }

// String renders the risk as its fraction.
func (v ValueRisk) String() string { return v.Fraction().String() }

// ValueRiskOptions configures the computation.
type ValueRiskOptions struct {
	// VisibleColumns are the fields the adversary has already read
	// (the paper's fieldsread); all other columns are masked when the data
	// is divided into equivalence sets.
	VisibleColumns []string
	// TargetColumn is the sensitive field f whose value is being inferred.
	TargetColumn string
	// Closeness is the range within which two target values count as the
	// same observation (5 kg in the paper's weight example). Zero means
	// exact equality.
	Closeness float64
	// Workers bounds the goroutines used to build classes and score records;
	// zero or one selects the sequential path. The result is identical for
	// any worker count.
	Workers int
	// Index, when set, supplies (and caches) the equivalence classes instead
	// of recomputing them. It must index the analysed table.
	Index *ClassIndex
}

// ValueRisks computes the value risk of every record in the table following
// the three steps of Section III-B:
//
//  1. the visible (already-read) fields form the input field set;
//  2. the remaining fields are masked and the records are divided into sets
//     of apparently identical records (equivalence classes on the visible
//     fields);
//  3. for each record r, risk(r, f) = frequency(f) / size(s), where
//     frequency counts the records in r's set whose value of f lies within
//     the closeness range of r's value.
//
// When no columns are visible, every record falls into one set covering the
// whole table.
//
// Scoring fans out over equivalence sets (Options.Workers): sets are
// independent and each worker writes only its sets' rows, so the output is
// byte-identical for any worker count.
func ValueRisks(t *Table, opts ValueRiskOptions) ([]ValueRisk, error) {
	return ValueRisksContext(context.Background(), t, opts)
}

// ValueRisksContext is ValueRisks with cancellation: class building polls ctx
// at row-chunk boundaries and scoring polls it between equivalence sets, so a
// cancelled context aborts the computation promptly, returns ctx.Err(), and
// joins every scoring goroutine before returning (none leak).
func ValueRisksContext(ctx context.Context, t *Table, opts ValueRiskOptions) ([]ValueRisk, error) {
	if t == nil {
		return nil, errors.New("anonymize: table must not be nil")
	}
	targetIdx, ok := t.ColumnIndex(opts.TargetColumn)
	if !ok {
		return nil, fmt.Errorf("anonymize: unknown target column %q", opts.TargetColumn)
	}
	if opts.Closeness < 0 {
		return nil, errors.New("anonymize: closeness must not be negative")
	}
	if opts.Index != nil && opts.Index.Table() != t {
		return nil, errors.New("anonymize: class index was built for a different table")
	}

	classes, err := valueRiskClasses(ctx, t, opts)
	if err != nil {
		return nil, err
	}

	risks := make([]ValueRisk, t.NumRows())
	target := t.cols[targetIdx]
	scoreClass := func(class []int) {
		scoreClassInto(risks, class, target, opts.Closeness)
	}

	workers := opts.Workers
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		for i, class := range classes {
			if i&classCancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			scoreClass(class)
		}
		return risks, nil
	}
	// Each class touches a disjoint set of rows, so workers can pull classes
	// from a shared counter and write results without coordination. Workers
	// poll ctx between classes and are joined before returning.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(classes) || ctx.Err() != nil {
					return
				}
				scoreClass(classes[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return risks, nil
}

// classCancelCheckMask spaces ctx polls on the sequential scoring loop; an
// equivalence set can be scored in nanoseconds (singleton sets), so checking
// every set would be measurable on tables with millions of classes.
const classCancelCheckMask = 255

// quadraticClassCutoff is the class size below which the direct pairwise
// frequency scan beats the sorted-bounds counting path (no allocations, no
// sorting).
const quadraticClassCutoff = 32

// scoreClassInto computes the value risk of every record of one equivalence
// set and writes the results into the rows' slots of risks.
//
// Small sets use the direct O(k²) pairwise scan. Large sets use an
// O(k log k) counting scheme that produces exactly the same frequencies:
//
//   - categorical values are close only to equal categorical values, so one
//     hash count per distinct category answers all of them;
//   - suppressed cells (and NaN-valued numerics) are close to nothing and
//     count for nothing;
//   - the remaining numeric and interval values widen to bounds [lo, hi],
//     and Close(i, j) is lo_i-c <= hi_j && lo_j-c <= hi_i — so with both
//     bound multisets sorted, frequency(i) is the total minus two binary-
//     search exclusion counts, each evaluating the same float expression
//     Close does (the excluded sets cannot overlap while every interval
//     satisfies lo <= hi; inverted intervals fall back to the pairwise
//     scan).
//
// Without this path a single million-row equivalence set — the "no visible
// fields" scenario of every large dataset — would cost 10¹² comparisons.
func scoreClassInto(risks []ValueRisk, class []int, target []Value, closeness float64) {
	size := len(class)
	if size <= quadraticClassCutoff {
		scoreClassQuadratic(risks, class, target, closeness)
		return
	}

	var catCounts map[string]int
	los := make([]float64, 0, size)
	his := make([]float64, 0, size)
	for _, r := range class {
		v := target[r]
		switch v.Kind {
		case KindCategorical:
			if catCounts == nil {
				catCounts = make(map[string]int)
			}
			catCounts[v.Str]++
		case KindNumeric, KindInterval:
			lo, hi := v.bounds()
			if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
				if lo > hi {
					// An inverted interval breaks the disjointness of the two
					// exclusion counts; keep exactness over speed.
					scoreClassQuadratic(risks, class, target, closeness)
					return
				}
				continue // NaN bounds: close to nothing, like a suppressed cell
			}
			los = append(los, lo)
			his = append(his, hi)
		}
	}
	sort.Float64s(los)
	sort.Float64s(his)
	numeric := len(los)

	for _, r := range class {
		v := target[r]
		freq := 0
		switch v.Kind {
		case KindCategorical:
			freq = catCounts[v.Str]
		case KindNumeric, KindInterval:
			lo, hi := v.bounds()
			if !math.IsNaN(lo) && !math.IsNaN(hi) {
				// Both exclusion counts evaluate the exact float expressions
				// Close uses — hi_j < fl(lo_i-c) and fl(lo_j-c) > hi_i — so
				// rounding cannot make the fast path disagree with the
				// pairwise scan. fl(x-c) is monotone in x, so the sorted
				// order of los carries over to the searched predicate.
				below := sort.SearchFloat64s(his, lo-closeness)
				above := numeric - sort.Search(numeric, func(i int) bool { return los[i]-closeness > hi })
				freq = numeric - below - above
			}
		}
		risks[r] = ValueRisk{Row: r, SetSize: size, Frequency: freq, Probability: float64(freq) / float64(size)}
	}
}

// scoreClassQuadratic is the direct pairwise scan; the reference semantics
// every fast path must reproduce.
func scoreClassQuadratic(risks []ValueRisk, class []int, target []Value, closeness float64) {
	size := len(class)
	values := make([]Value, size)
	for i, r := range class {
		values[i] = target[r]
	}
	for i, r := range class {
		freq := 0
		for j := range values {
			if values[i].Close(values[j], closeness) {
				freq++
			}
		}
		risk := ValueRisk{Row: r, SetSize: size, Frequency: freq}
		if size > 0 {
			risk.Probability = float64(freq) / float64(size)
		}
		risks[r] = risk
	}
}

// valueRiskClasses resolves the equivalence sets for the options: the whole
// table as one set when nothing is visible, otherwise the (possibly cached)
// class partition over the visible columns.
func valueRiskClasses(ctx context.Context, t *Table, opts ValueRiskOptions) ([][]int, error) {
	for _, c := range opts.VisibleColumns {
		if _, ok := t.ColumnIndex(c); !ok {
			return nil, fmt.Errorf("anonymize: unknown visible column %q", c)
		}
	}
	if len(opts.VisibleColumns) == 0 {
		all := make([]int, t.NumRows())
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	if opts.Index != nil {
		return opts.Index.ClassesContext(ctx, opts.VisibleColumns)
	}
	idxs, err := t.resolveColumns(opts.VisibleColumns)
	if err != nil {
		return nil, err
	}
	return buildClassesContext(ctx, t, idxs, opts.Workers)
}

// CountViolations returns how many records' value risk meets or exceeds the
// confidence threshold (e.g. 0.9 for the paper's "at least 90% confidence"
// policy). It is the "Violations" row of Table I.
func CountViolations(risks []ValueRisk, confidenceThreshold float64) int {
	count := 0
	for _, r := range risks {
		if r.Probability >= confidenceThreshold {
			count++
		}
	}
	return count
}

// MaxRisk returns the highest probability among the risks, or zero when the
// slice is empty.
func MaxRisk(risks []ValueRisk) float64 {
	max := 0.0
	for _, r := range risks {
		if r.Probability > max {
			max = r.Probability
		}
	}
	return max
}
