package anonymize

import (
	"fmt"
	"math"
)

// ColumnUtility compares one numeric column before and after
// pseudonymisation. The paper's Section III-B proposes exactly this check:
// "The resulting pseudonymised dataset ... can be tested for utility, by
// comparing statistical qualities like means and variances between the
// original data and the pseudonymised data."
type ColumnUtility struct {
	Column string
	// OriginalMean and AnonymisedMean are the column means; interval cells
	// contribute their midpoints, suppressed cells are excluded.
	OriginalMean   float64
	AnonymisedMean float64
	// OriginalVariance and AnonymisedVariance are the population variances.
	OriginalVariance   float64
	AnonymisedVariance float64
	// MeanAbsoluteError is the mean |original - anonymised| over rows where
	// both cells are usable.
	MeanAbsoluteError float64
	// SuppressedFraction is the fraction of cells suppressed in the
	// anonymised column.
	SuppressedFraction float64
}

// MeanShift returns the absolute difference between the two means.
func (c ColumnUtility) MeanShift() float64 {
	return math.Abs(c.OriginalMean - c.AnonymisedMean)
}

// VarianceShift returns the absolute difference between the two variances.
func (c ColumnUtility) VarianceShift() float64 {
	return math.Abs(c.OriginalVariance - c.AnonymisedVariance)
}

// UtilityReport aggregates per-column utility comparisons.
type UtilityReport struct {
	Columns []ColumnUtility
	// SuppressionRate is the fraction of all compared cells suppressed in
	// the anonymised table.
	SuppressionRate float64
}

// Column returns the utility entry for the named column.
func (u UtilityReport) Column(name string) (ColumnUtility, bool) {
	for _, c := range u.Columns {
		if c.Column == name {
			return c, true
		}
	}
	return ColumnUtility{}, false
}

// AcceptableWithin reports whether every compared column's mean shifted by at
// most maxMeanShift. It is the simple accept/reject gate the paper sketches
// ("If a technique requires too much data removal and utility is shown to be
// likely adversely affected, the technique used would clearly be not
// appropriate").
func (u UtilityReport) AcceptableWithin(maxMeanShift float64) bool {
	for _, c := range u.Columns {
		if c.MeanShift() > maxMeanShift {
			return false
		}
	}
	return true
}

// CompareUtility compares the named numeric columns of the original and
// anonymised tables, which must have the same number of rows.
func CompareUtility(original, anonymised *Table, columns []string) (UtilityReport, error) {
	if original.NumRows() != anonymised.NumRows() {
		return UtilityReport{}, fmt.Errorf("anonymize: row count mismatch: %d vs %d",
			original.NumRows(), anonymised.NumRows())
	}
	report := UtilityReport{}
	totalCells, suppressedCells := 0, 0
	for _, column := range columns {
		oi, ok := original.ColumnIndex(column)
		if !ok {
			return UtilityReport{}, fmt.Errorf("anonymize: unknown column %q in original table", column)
		}
		ai, ok := anonymised.ColumnIndex(column)
		if !ok {
			return UtilityReport{}, fmt.Errorf("anonymize: unknown column %q in anonymised table", column)
		}
		cu := ColumnUtility{Column: column}
		origCol, anonCol := original.cols[oi], anonymised.cols[ai]
		var origVals, anonVals []float64
		var absErrSum float64
		var pairCount, suppressed int
		for r := 0; r < original.NumRows(); r++ {
			ov, av := origCol[r], anonCol[r]
			totalCells++
			if av.IsSuppressed() {
				suppressedCells++
				suppressed++
			}
			om, am := ov.Midpoint(), av.Midpoint()
			if !math.IsNaN(om) {
				origVals = append(origVals, om)
			}
			if !math.IsNaN(am) {
				anonVals = append(anonVals, am)
			}
			if !math.IsNaN(om) && !math.IsNaN(am) {
				absErrSum += math.Abs(om - am)
				pairCount++
			}
		}
		cu.OriginalMean, cu.OriginalVariance = meanVariance(origVals)
		cu.AnonymisedMean, cu.AnonymisedVariance = meanVariance(anonVals)
		if pairCount > 0 {
			cu.MeanAbsoluteError = absErrSum / float64(pairCount)
		}
		if anonymised.NumRows() > 0 {
			cu.SuppressedFraction = float64(suppressed) / float64(anonymised.NumRows())
		}
		report.Columns = append(report.Columns, cu)
	}
	if totalCells > 0 {
		report.SuppressionRate = float64(suppressedCells) / float64(totalCells)
	}
	return report, nil
}

// meanVariance returns the mean and population variance of the values.
func meanVariance(values []float64) (float64, float64) {
	if len(values) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	varSum := 0.0
	for _, v := range values {
		d := v - mean
		varSum += d * d
	}
	return mean, varSum / float64(len(values))
}

// GeneralizationLoss computes the normalised certainty penalty (NCP) of the
// anonymised table over the given numeric columns: for each cell, the width
// of its interval divided by the column's value range in the original table
// (suppressed cells count as full loss). The result is averaged over all
// cells; 0 means no information was lost, 1 means everything was.
func GeneralizationLoss(original, anonymised *Table, columns []string) (float64, error) {
	if original.NumRows() != anonymised.NumRows() {
		return 0, fmt.Errorf("anonymize: row count mismatch: %d vs %d", original.NumRows(), anonymised.NumRows())
	}
	if original.NumRows() == 0 || len(columns) == 0 {
		return 0, nil
	}
	total := 0.0
	cells := 0
	for _, column := range columns {
		oi, ok := original.ColumnIndex(column)
		if !ok {
			return 0, fmt.Errorf("anonymize: unknown column %q", column)
		}
		ai, ok := anonymised.ColumnIndex(column)
		if !ok {
			return 0, fmt.Errorf("anonymize: unknown column %q in anonymised table", column)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range original.cols[oi] {
			m := v.Midpoint()
			if math.IsNaN(m) {
				continue
			}
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		rangeWidth := hi - lo
		for _, v := range anonymised.cols[ai] {
			cells++
			switch v.Kind {
			case KindSuppressed:
				total += 1
			case KindInterval:
				if rangeWidth > 0 {
					loss := (v.Hi - v.Lo) / rangeWidth
					if loss > 1 {
						loss = 1
					}
					total += loss
				} else {
					total += 1
				}
			default:
				// Exact values lose nothing.
			}
		}
	}
	if cells == 0 {
		return 0, nil
	}
	return total / float64(cells), nil
}
