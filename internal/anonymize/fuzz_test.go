package anonymize_test

import (
	"bytes"
	"testing"

	"privascope/internal/anonymize"
)

// FuzzReadCSV feeds arbitrary bytes through the CSV reader. Malformed input
// (ragged rows, duplicate headers, broken quoting, empty files) must be
// rejected with an error, never a panic; input the reader accepts must
// round-trip through the canonical form: writing the parsed table and
// re-reading it reproduces the same table, and a second write is
// byte-identical to the first (the idempotence property the anonymisation
// pipelines rely on when persisting intermediate tables).
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("age,zip,condition\n34,1210,flu\n35,1220,cold\n"))
	f.Add([]byte("age,condition\n30-40,flu\n*,cold\n"))
	f.Add([]byte("a,b\n1\n"))            // ragged row
	f.Add([]byte("a,a\n1,2\n"))          // duplicate header
	f.Add([]byte("a,b\n\"unterminated")) // broken quoting
	f.Add([]byte(""))
	f.Add([]byte("only-header\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec := anonymize.ColumnSpec{
			"age":       anonymize.RoleQuasiIdentifier,
			"zip":       anonymize.RoleQuasiIdentifier,
			"condition": anonymize.RoleSensitive,
		}
		table, err := anonymize.ReadCSV(bytes.NewReader(data), spec)
		if err != nil {
			return
		}

		var first bytes.Buffer
		if err := anonymize.WriteCSV(&first, table); err != nil {
			t.Fatalf("writing an accepted table failed: %v", err)
		}
		roundSpec := make(anonymize.ColumnSpec, len(table.Columns()))
		for _, col := range table.Columns() {
			roundSpec[col.Name] = col.Role
		}
		again, err := anonymize.ReadCSV(bytes.NewReader(first.Bytes()), roundSpec)
		if err != nil {
			t.Fatalf("re-reading our own CSV output failed: %v\noutput:\n%s", err, first.String())
		}
		if again.NumRows() != table.NumRows() || len(again.Columns()) != len(table.Columns()) {
			t.Fatalf("round-trip changed shape: %dx%d -> %dx%d",
				table.NumRows(), len(table.Columns()), again.NumRows(), len(again.Columns()))
		}
		var second bytes.Buffer
		if err := anonymize.WriteCSV(&second, again); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form is not idempotent:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}
