// Package anonymize provides the dataset and pseudonymisation substrate the
// paper's value-risk analysis (Section III-B) is built on: typed record
// tables, generalisation, k-anonymisation, l-diversity checking, utility
// metrics, and the per-record value-risk computation
// risk(r, f) = frequency(f) / size(s) that produces Table I.
//
// The paper does not propose new anonymisation algorithms — it models the
// risks that remain after a chosen technique is applied. This package
// therefore implements conventional global-recoding k-anonymisation
// (generalisation plus suppression) so those risks can be produced and
// analysed end to end without external tools such as ARX or CAT.
package anonymize

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates the kinds of cell values a table can hold.
type ValueKind int

// Value kinds. Interval values are produced by generalising numeric values;
// Suppressed marks a cell removed by the anonymiser.
const (
	KindNumeric ValueKind = iota + 1
	KindInterval
	KindCategorical
	KindSuppressed
)

// String returns the lower-case kind name.
func (k ValueKind) String() string {
	switch k {
	case KindNumeric:
		return "numeric"
	case KindInterval:
		return "interval"
	case KindCategorical:
		return "categorical"
	case KindSuppressed:
		return "suppressed"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Value is one table cell. Values are small immutable value types.
type Value struct {
	Kind ValueKind
	// Num holds the numeric value for KindNumeric.
	Num float64
	// Lo and Hi hold the inclusive-exclusive bounds for KindInterval.
	Lo, Hi float64
	// Str holds the category for KindCategorical.
	Str string
}

// Num returns a numeric value.
func Num(x float64) Value { return Value{Kind: KindNumeric, Num: x} }

// Interval returns a generalised numeric value covering [lo, hi).
func Interval(lo, hi float64) Value { return Value{Kind: KindInterval, Lo: lo, Hi: hi} }

// Cat returns a categorical value.
func Cat(s string) Value { return Value{Kind: KindCategorical, Str: s} }

// Suppressed returns a suppressed (removed) cell.
func Suppressed() Value { return Value{Kind: KindSuppressed} }

// IsSuppressed reports whether the cell has been suppressed.
func (v Value) IsSuppressed() bool { return v.Kind == KindSuppressed }

// String renders the value the way the paper's Table I does: numbers plainly,
// intervals as "lo-hi", categories verbatim, suppressed cells as "*".
func (v Value) String() string {
	switch v.Kind {
	case KindNumeric:
		return strconv.FormatFloat(v.Num, 'f', -1, 64)
	case KindInterval:
		return fmt.Sprintf("%s-%s",
			strconv.FormatFloat(v.Lo, 'f', -1, 64), strconv.FormatFloat(v.Hi, 'f', -1, 64))
	case KindCategorical:
		return v.Str
	case KindSuppressed:
		return "*"
	default:
		return "?"
	}
}

// GroupKey returns a canonical string used when grouping rows into
// equivalence classes: values with the same group key are indistinguishable
// to an observer who sees this cell.
func (v Value) GroupKey() string {
	switch v.Kind {
	case KindSuppressed:
		return "*"
	default:
		return v.Kind.String() + ":" + v.String()
	}
}

// Midpoint returns a representative numeric value: the number itself, the
// interval midpoint, or NaN for categorical/suppressed cells. It is used by
// the utility metrics.
func (v Value) Midpoint() float64 {
	switch v.Kind {
	case KindNumeric:
		return v.Num
	case KindInterval:
		return (v.Lo + v.Hi) / 2
	default:
		return math.NaN()
	}
}

// Close reports whether two values are "close enough" to count as the same
// observation when computing frequencies (Section III-B: "A user may specify
// a range so that frequency(f) is the number of values in s which are close
// enough to the original value"). Numeric values are close when they differ
// by at most closeness; intervals are close when they overlap after being
// widened by closeness; categorical values must match exactly; suppressed
// values are never close to anything.
func (v Value) Close(other Value, closeness float64) bool {
	if v.Kind == KindSuppressed || other.Kind == KindSuppressed {
		return false
	}
	if v.Kind == KindCategorical || other.Kind == KindCategorical {
		return v.Kind == other.Kind && v.Str == other.Str
	}
	lo1, hi1 := v.bounds()
	lo2, hi2 := other.bounds()
	return lo1-closeness <= hi2 && lo2-closeness <= hi1
}

func (v Value) bounds() (float64, float64) {
	if v.Kind == KindInterval {
		return v.Lo, v.Hi
	}
	return v.Num, v.Num
}

// Equal reports exact equality of two values.
func (v Value) Equal(other Value) bool { return v == other }

// ParseValue parses a cell from text: "lo-hi" becomes an interval, a number
// becomes numeric, "*" or an empty cell becomes suppressed, anything else
// categorical. Empty cells map to suppressed rather than Cat("") so that a
// missing value is treated as removed data and — unlike an empty category,
// which renders as a blank CSV cell that encoding/csv cannot round-trip when
// a whole record is blank — survives a write/read cycle.
func ParseValue(s string) Value {
	s = strings.TrimSpace(s)
	if s == "*" || s == "" {
		return Suppressed()
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return Num(n)
	}
	if idx := strings.Index(s, "-"); idx > 0 {
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(s[:idx]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(s[idx+1:]), 64)
		if err1 == nil && err2 == nil {
			return Interval(lo, hi)
		}
	}
	return Cat(s)
}

// Fraction is an exact probability as reported in the paper's Table I
// (e.g. "2/4", "3/4", "2/2").
type Fraction struct {
	Num, Den int
}

// Float returns the fraction as a float64; zero when the denominator is zero.
func (f Fraction) Float() float64 {
	if f.Den == 0 {
		return 0
	}
	return float64(f.Num) / float64(f.Den)
}

// String renders the fraction exactly as Table I does.
func (f Fraction) String() string { return fmt.Sprintf("%d/%d", f.Num, f.Den) }
