package anonymize

import (
	"errors"
	"fmt"
)

// Re-identification risk is the first of the two pseudonymisation risk types
// the paper names (Section III-B: "Re-identification: The risk that a person
// whose personal data is pseudonymised within a disclosed data set can be
// re-identified"). The paper's own analysis then concentrates on value risk;
// this file provides the complementary re-identification measures so the
// toolkit covers both, using the three standard attacker models that the
// paper's related-work section cites via the ARX tool (prosecutor,
// journalist, marketer).

// AttackerModel selects the assumptions made about the adversary when
// estimating re-identification risk.
type AttackerModel int

// Attacker models.
//
//   - Prosecutor: the adversary knows their target is in the dataset; the
//     per-record risk is 1 / |equivalence class|.
//   - Journalist: the adversary does not know whether the target is in the
//     dataset; without a population table the class-size-based risk is the
//     same upper bound as the prosecutor model, which is how it is reported
//     here.
//   - Marketer: the adversary wants to re-identify as many records as
//     possible; the risk is the expected fraction of records re-identified,
//     i.e. the average of the per-record prosecutor risks.
const (
	AttackerProsecutor AttackerModel = iota + 1
	AttackerJournalist
	AttackerMarketer
)

// String returns the lower-case model name.
func (a AttackerModel) String() string {
	switch a {
	case AttackerProsecutor:
		return "prosecutor"
	case AttackerJournalist:
		return "journalist"
	case AttackerMarketer:
		return "marketer"
	default:
		return fmt.Sprintf("attacker(%d)", int(a))
	}
}

// RecordReidentRisk is the re-identification risk of a single record.
type RecordReidentRisk struct {
	// Row is the record's index.
	Row int
	// ClassSize is the size of the record's equivalence class over the
	// quasi-identifiers.
	ClassSize int
	// Risk is the probability of re-identification under the prosecutor
	// model, 1 / ClassSize.
	Risk float64
}

// ReidentReport summarises the re-identification risk of a dataset.
type ReidentReport struct {
	// QuasiIdentifiers are the columns the adversary is assumed to know.
	QuasiIdentifiers []string
	// Records holds the per-record risks in row order.
	Records []RecordReidentRisk
	// HighestRisk is the maximum per-record risk (the prosecutor headline
	// number).
	HighestRisk float64
	// AverageRisk is the mean per-record risk (the marketer number).
	AverageRisk float64
	// AtRiskRecords is the number of records whose risk meets or exceeds the
	// threshold passed to ReidentificationRisk.
	AtRiskRecords int
	// Threshold is the threshold used for AtRiskRecords.
	Threshold float64
	// SmallestClass is the size of the smallest equivalence class; a dataset
	// is k-anonymous exactly when SmallestClass >= k.
	SmallestClass int
}

// RiskFor returns the headline risk number under the given attacker model.
func (r ReidentReport) RiskFor(model AttackerModel) float64 {
	switch model {
	case AttackerMarketer:
		return r.AverageRisk
	default:
		// Prosecutor, and journalist as its upper bound without a population
		// table.
		return r.HighestRisk
	}
}

// ReidentificationRisk computes the re-identification risk of every record
// given the quasi-identifier columns the adversary is assumed to know.
// Records whose risk is at least threshold are counted as at-risk; a
// threshold of 0.2, for example, flags records in classes smaller than 5.
func ReidentificationRisk(t *Table, quasiIdentifiers []string, threshold float64) (ReidentReport, error) {
	return reidentificationRisk(t, nil, quasiIdentifiers, threshold)
}

// ReidentificationRiskIndexed is ReidentificationRisk drawing its
// equivalence classes from a ClassIndex, so the partition is shared with
// (for example) a value-risk scenario over the same quasi-identifiers
// instead of being recomputed. All three attacker models are derived from
// the one cached partition.
func ReidentificationRiskIndexed(ix *ClassIndex, quasiIdentifiers []string, threshold float64) (ReidentReport, error) {
	if ix == nil {
		return ReidentReport{}, errors.New("anonymize: class index must not be nil")
	}
	return reidentificationRisk(ix.Table(), ix, quasiIdentifiers, threshold)
}

// reidentificationRisk is the shared implementation; ix is optional.
func reidentificationRisk(t *Table, ix *ClassIndex, quasiIdentifiers []string, threshold float64) (ReidentReport, error) {
	if t == nil {
		return ReidentReport{}, errors.New("anonymize: table must not be nil")
	}
	if len(quasiIdentifiers) == 0 {
		return ReidentReport{}, errors.New("anonymize: at least one quasi-identifier is required")
	}
	if threshold < 0 || threshold > 1 {
		return ReidentReport{}, fmt.Errorf("anonymize: threshold %v outside [0,1]", threshold)
	}
	var classes [][]int
	var err error
	if ix != nil {
		classes, err = ix.Classes(quasiIdentifiers)
	} else {
		classes, err = t.EquivalenceClasses(quasiIdentifiers)
	}
	if err != nil {
		return ReidentReport{}, err
	}
	report := ReidentReport{
		QuasiIdentifiers: append([]string(nil), quasiIdentifiers...),
		Records:          make([]RecordReidentRisk, t.NumRows()),
		Threshold:        threshold,
	}
	if t.NumRows() == 0 {
		return report, nil
	}
	report.SmallestClass = t.NumRows()
	sum := 0.0
	for _, class := range classes {
		size := len(class)
		if size < report.SmallestClass {
			report.SmallestClass = size
		}
		risk := 1.0 / float64(size)
		for _, row := range class {
			report.Records[row] = RecordReidentRisk{Row: row, ClassSize: size, Risk: risk}
			sum += risk
			if risk > report.HighestRisk {
				report.HighestRisk = risk
			}
			if risk >= threshold {
				report.AtRiskRecords++
			}
		}
	}
	report.AverageRisk = sum / float64(t.NumRows())
	return report, nil
}

// SatisfiesK reports whether the dataset meets k-anonymity according to the
// report's smallest equivalence class.
func (r ReidentReport) SatisfiesK(k int) bool {
	if k <= 0 {
		return false
	}
	if len(r.Records) == 0 {
		return true
	}
	return r.SmallestClass >= k
}
