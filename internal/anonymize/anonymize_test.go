package anonymize

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// tableIRecords builds the six records of the paper's Table I: age and height
// already 2-anonymised (10-year / 20-cm bins), weight exact.
func tableIRecords(t testing.TB) *Table {
	t.Helper()
	tbl := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "height", Role: RoleQuasiIdentifier, Unit: "cm"},
		Column{Name: "weight", Role: RoleSensitive, Unit: "kg"},
	)
	rows := [][3]Value{
		{Interval(30, 40), Interval(180, 200), Num(100)},
		{Interval(30, 40), Interval(180, 200), Num(102)},
		{Interval(20, 30), Interval(180, 200), Num(110)},
		{Interval(20, 30), Interval(180, 200), Num(111)},
		{Interval(20, 30), Interval(160, 180), Num(80)},
		{Interval(20, 30), Interval(160, 180), Num(110)},
	}
	for _, r := range rows {
		tbl.MustAddRow(r[0], r[1], r[2])
	}
	return tbl
}

func fractions(risks []ValueRisk) []string {
	out := make([]string, len(risks))
	for i, r := range risks {
		out[i] = r.String()
	}
	return out
}

func TestValueKindAndString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Num(100), "100"},
		{Num(2.5), "2.5"},
		{Interval(30, 40), "30-40"},
		{Cat("flu"), "flu"},
		{Suppressed(), "*"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
	if KindNumeric.String() != "numeric" || KindSuppressed.String() != "suppressed" {
		t.Error("ValueKind.String() wrong")
	}
	if got := ValueKind(9).String(); got != "kind(9)" {
		t.Errorf("ValueKind(9).String() = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	tests := []struct {
		in   string
		want Value
	}{
		{"100", Num(100)},
		{" 2.5 ", Num(2.5)},
		{"30-40", Interval(30, 40)},
		{"*", Suppressed()},
		{"flu", Cat("flu")},
		{"a-b", Cat("a-b")},
	}
	for _, tt := range tests {
		if got := ParseValue(tt.in); got != tt.want {
			t.Errorf("ParseValue(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestValueMidpointAndClose(t *testing.T) {
	if Interval(30, 40).Midpoint() != 35 {
		t.Error("interval midpoint wrong")
	}
	if Num(7).Midpoint() != 7 {
		t.Error("numeric midpoint wrong")
	}
	if !math.IsNaN(Cat("x").Midpoint()) || !math.IsNaN(Suppressed().Midpoint()) {
		t.Error("non-numeric midpoints should be NaN")
	}

	tests := []struct {
		a, b      Value
		closeness float64
		want      bool
	}{
		{Num(100), Num(102), 5, true},
		{Num(100), Num(110), 5, false},
		{Num(100), Num(100), 0, true},
		{Num(100), Num(101), 0, false},
		{Interval(30, 40), Num(38), 0, true},
		{Interval(30, 40), Num(45), 0, false},
		{Interval(30, 40), Num(44), 5, true},
		{Cat("flu"), Cat("flu"), 0, true},
		{Cat("flu"), Cat("cold"), 0, false},
		{Cat("flu"), Num(1), 5, false},
		{Suppressed(), Num(1), 100, false},
	}
	for _, tt := range tests {
		if got := tt.a.Close(tt.b, tt.closeness); got != tt.want {
			t.Errorf("Close(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.closeness, got, tt.want)
		}
		if got := tt.b.Close(tt.a, tt.closeness); got != tt.want {
			t.Errorf("Close is not symmetric for (%v, %v)", tt.a, tt.b)
		}
	}
}

func TestFraction(t *testing.T) {
	f := Fraction{Num: 3, Den: 4}
	if f.String() != "3/4" {
		t.Errorf("String() = %q", f.String())
	}
	if f.Float() != 0.75 {
		t.Errorf("Float() = %v", f.Float())
	}
	if (Fraction{Num: 1, Den: 0}).Float() != 0 {
		t.Error("zero denominator should give 0")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(); err == nil {
		t.Error("table with no columns accepted")
	}
	if _, err := NewTable(Column{Name: " "}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewTable(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate column accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic on invalid columns")
		}
	}()
	MustTable()
}

func TestTableBasics(t *testing.T) {
	tbl := tableIRecords(t)
	if tbl.NumRows() != 6 || tbl.NumColumns() != 3 {
		t.Fatalf("size = %dx%d", tbl.NumRows(), tbl.NumColumns())
	}
	if err := tbl.AddRow(Num(1)); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tbl.Value(0, "ghost"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.Value(99, "age"); err == nil {
		t.Error("out-of-range row accepted")
	}
	v, err := tbl.Value(0, "weight")
	if err != nil || v.Num != 100 {
		t.Errorf("Value(0, weight) = %v, %v", v, err)
	}
	row, err := tbl.Row(2)
	if err != nil || len(row) != 3 {
		t.Errorf("Row(2) = %v, %v", row, err)
	}
	if _, err := tbl.Row(-1); err == nil {
		t.Error("negative row accepted")
	}
	if got := tbl.ColumnsByRole(RoleQuasiIdentifier); len(got) != 2 {
		t.Errorf("ColumnsByRole(quasi) = %v", got)
	}
	if c, ok := tbl.Column("height"); !ok || c.Unit != "cm" {
		t.Errorf("Column(height) = %+v, %v", c, ok)
	}
	if _, ok := tbl.Column("ghost"); ok {
		t.Error("Column(ghost) should fail")
	}
	names := tbl.ColumnNames()
	if len(names) != 3 || names[2] != "weight" {
		t.Errorf("ColumnNames() = %v", names)
	}
	if RoleSensitive.String() != "sensitive" || ColumnRole(9).String() != "role(9)" {
		t.Error("ColumnRole.String() wrong")
	}
}

func TestTableCloneIndependent(t *testing.T) {
	tbl := tableIRecords(t)
	clone := tbl.Clone()
	if err := clone.SetValue(0, "weight", Num(1)); err != nil {
		t.Fatal(err)
	}
	orig, _ := tbl.Value(0, "weight")
	if orig.Num != 100 {
		t.Error("mutating the clone changed the original")
	}
	if err := clone.SetValue(0, "ghost", Num(1)); err == nil {
		t.Error("SetValue on unknown column accepted")
	}
	if err := clone.SetValue(-1, "weight", Num(1)); err == nil {
		t.Error("SetValue on bad row accepted")
	}
}

func TestTableProject(t *testing.T) {
	tbl := tableIRecords(t)
	proj, err := tbl.Project("weight", "age")
	if err != nil {
		t.Fatal(err)
	}
	if proj.NumColumns() != 2 || proj.NumRows() != 6 {
		t.Fatalf("projection size = %dx%d", proj.NumRows(), proj.NumColumns())
	}
	if proj.ColumnNames()[0] != "weight" {
		t.Errorf("projection order = %v", proj.ColumnNames())
	}
	if _, err := tbl.Project("ghost"); err == nil {
		t.Error("projection of unknown column accepted")
	}
}

func TestTableString(t *testing.T) {
	out := tableIRecords(t).String()
	for _, want := range []string{"age", "height (cm)", "weight (kg)", "30-40", "180-200", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestEquivalenceClasses(t *testing.T) {
	tbl := tableIRecords(t)
	classes, err := tbl.EquivalenceClasses([]string{"age", "height"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %v, want 3 groups", classes)
	}
	sizes := map[int]int{}
	for _, c := range classes {
		sizes[len(c)]++
	}
	if sizes[2] != 3 {
		t.Errorf("expected three classes of size 2, got %v", classes)
	}
	if _, err := tbl.EquivalenceClasses([]string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
	// Grouping on height only gives 2 classes (4 + 2).
	classes, err = tbl.EquivalenceClasses([]string{"height"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Errorf("height classes = %v", classes)
	}
}

func TestNumericBinning(t *testing.T) {
	bin := NumericBinning{Width: 10}
	if got := bin.Generalize(Num(34)); got != Interval(30, 40) {
		t.Errorf("Generalize(34) = %v", got)
	}
	if got := bin.Generalize(Num(40)); got != Interval(40, 50) {
		t.Errorf("Generalize(40) = %v", got)
	}
	if got := bin.Generalize(Interval(32, 34)); got != Interval(30, 40) {
		t.Errorf("Generalize(interval) = %v", got)
	}
	if got := bin.Generalize(Cat("x")); got != Cat("x") {
		t.Errorf("categorical should pass through, got %v", got)
	}
	if got := (NumericBinning{Width: 0}).Generalize(Num(5)); got != Num(5) {
		t.Errorf("zero width should pass through, got %v", got)
	}
	if got := (NumericBinning{Width: 20, Origin: 160}).Generalize(Num(185)); got != Interval(180, 200) {
		t.Errorf("origin-aligned binning = %v", got)
	}
	if !strings.Contains(bin.Describe(), "10") {
		t.Error("Describe should mention the width")
	}
}

func TestCategoryMapAndSuppressAll(t *testing.T) {
	cm := CategoryMap{Groups: map[string]string{"flu": "respiratory", "cold": "respiratory"}}
	if got := cm.Generalize(Cat("flu")); got != Cat("respiratory") {
		t.Errorf("Generalize(flu) = %v", got)
	}
	if got := cm.Generalize(Cat("broken-leg")); got != Cat("broken-leg") {
		t.Errorf("unmapped category should pass through, got %v", got)
	}
	strict := CategoryMap{Groups: map[string]string{}, SuppressUnknown: true}
	if got := strict.Generalize(Cat("x")); !got.IsSuppressed() {
		t.Errorf("SuppressUnknown should suppress, got %v", got)
	}
	if got := cm.Generalize(Num(5)); got != Num(5) {
		t.Errorf("numeric should pass through CategoryMap, got %v", got)
	}
	if got := (SuppressAll{}).Generalize(Num(5)); !got.IsSuppressed() {
		t.Errorf("SuppressAll = %v", got)
	}
	if cm.Describe() == "" || (SuppressAll{}).Describe() == "" {
		t.Error("Describe should not be empty")
	}
}

func TestSpecApply(t *testing.T) {
	tbl := MustTable(Column{Name: "age"}, Column{Name: "city"})
	tbl.MustAddRow(Num(34), Cat("Rome"))
	tbl.MustAddRow(Num(47), Cat("Paris"))
	out, err := Spec{"age": NumericBinning{Width: 10}}.Apply(tbl)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Value(0, "age")
	if v != Interval(30, 40) {
		t.Errorf("generalised age = %v", v)
	}
	// Original untouched.
	v, _ = tbl.Value(0, "age")
	if v != Num(34) {
		t.Error("Apply mutated the input table")
	}
	if _, err := (Spec{"ghost": SuppressAll{}}).Apply(tbl); err == nil {
		t.Error("spec with unknown column accepted")
	}
}

func TestIsKAnonymous(t *testing.T) {
	tbl := tableIRecords(t)
	qi := []string{"age", "height"}
	ok, err := IsKAnonymous(tbl, qi, 2)
	if err != nil || !ok {
		t.Errorf("IsKAnonymous(k=2) = %v, %v; Table I is 2-anonymous", ok, err)
	}
	ok, err = IsKAnonymous(tbl, qi, 3)
	if err != nil || ok {
		t.Errorf("IsKAnonymous(k=3) = %v, %v; want false", ok, err)
	}
	if _, err := IsKAnonymous(tbl, qi, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := IsKAnonymous(tbl, []string{"ghost"}, 2); err == nil {
		t.Error("unknown QI accepted")
	}
	empty := MustTable(Column{Name: "x"})
	if ok, err := IsKAnonymous(empty, []string{"x"}, 5); err != nil || !ok {
		t.Errorf("empty table should be trivially k-anonymous, got %v, %v", ok, err)
	}
}

func TestDistinctLDiversity(t *testing.T) {
	tbl := tableIRecords(t)
	qi := []string{"age", "height"}
	// Every class has 2 distinct weights except the paper does not require
	// it; classes {100,102}, {110,111}, {80,110} all have 2 distinct values.
	ok, err := DistinctLDiversity(tbl, qi, "weight", 2)
	if err != nil || !ok {
		t.Errorf("l=2 diversity = %v, %v", ok, err)
	}
	ok, err = DistinctLDiversity(tbl, qi, "weight", 3)
	if err != nil || ok {
		t.Errorf("l=3 diversity = %v, %v; want false", ok, err)
	}
	if _, err := DistinctLDiversity(tbl, qi, "ghost", 2); err == nil {
		t.Error("unknown sensitive column accepted")
	}
	if _, err := DistinctLDiversity(tbl, qi, "weight", 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestKAnonymize(t *testing.T) {
	// Raw (not yet anonymised) physical attributes.
	tbl := MustTable(
		Column{Name: "age", Role: RoleQuasiIdentifier},
		Column{Name: "height", Role: RoleQuasiIdentifier},
		Column{Name: "weight", Role: RoleSensitive},
	)
	raw := [][3]float64{
		{34, 185, 100}, {38, 190, 102}, {25, 181, 110}, {29, 199, 111}, {22, 165, 80}, {27, 170, 110},
		{31, 186, 95}, {36, 182, 99}, {24, 174, 85}, {28, 178, 88},
	}
	for _, r := range raw {
		tbl.MustAddRow(Num(r[0]), Num(r[1]), Num(r[2]))
	}
	qi := []string{"age", "height"}
	anon, result, err := KAnonymize(tbl, qi, 2, KAnonymizeOptions{
		InitialWidths: map[string]float64{"age": 5, "height": 10},
	})
	if err != nil {
		t.Fatalf("KAnonymize: %v", err)
	}
	ok, err := IsKAnonymous(anon, qi, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok && len(result.SuppressedRows) == 0 {
		t.Errorf("output is not 2-anonymous and nothing was suppressed; result=%+v\n%s", result, anon.String())
	}
	if result.Classes == 0 {
		t.Error("result should report equivalence classes")
	}
	// The sensitive column is untouched.
	for r := 0; r < anon.NumRows(); r++ {
		v, _ := anon.Value(r, "weight")
		orig, _ := tbl.Value(r, "weight")
		if v != orig {
			t.Errorf("row %d weight changed: %v -> %v", r, orig, v)
		}
	}
	// Input is unchanged.
	v, _ := tbl.Value(0, "age")
	if v != Num(34) {
		t.Error("KAnonymize mutated its input")
	}

	// Error cases.
	if _, _, err := KAnonymize(tbl, qi, 0, KAnonymizeOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := KAnonymize(tbl, []string{"ghost"}, 2, KAnonymizeOptions{}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestKAnonymizeSuppressionFallback(t *testing.T) {
	// Two wildly different records cannot be generalised together with few
	// doublings, so the anonymiser must fall back to suppression.
	tbl := MustTable(Column{Name: "age", Role: RoleQuasiIdentifier}, Column{Name: "weight"})
	tbl.MustAddRow(Num(1), Num(50))
	tbl.MustAddRow(Num(1e9), Num(60))
	tbl.MustAddRow(Num(1), Num(55))
	anon, result, err := KAnonymize(tbl, []string{"age"}, 2, KAnonymizeOptions{MaxDoublings: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.SuppressedRows) == 0 {
		t.Fatalf("expected suppression, got %+v\n%s", result, anon.String())
	}
	for _, r := range result.SuppressedRows {
		v, _ := anon.Value(r, "age")
		if !v.IsSuppressed() {
			t.Errorf("row %d should have suppressed age", r)
		}
	}
}

func TestKAnonymizeProperty(t *testing.T) {
	// Property: for random small datasets, the output is k-anonymous once
	// suppressed rows are accounted for (suppressed rows share one class, so
	// they only violate k-anonymity if fewer than k rows were suppressed
	// overall, which the fallback cannot avoid; we accept that documented
	// boundary case and check everything else).
	f := func(seed uint32) bool {
		n := int(seed%20) + 4
		x := seed
		next := func(m int) int {
			x = x*1664525 + 1013904223
			return int(x>>8) % m
		}
		tbl := MustTable(Column{Name: "a", Role: RoleQuasiIdentifier}, Column{Name: "s"})
		for i := 0; i < n; i++ {
			tbl.MustAddRow(Num(float64(next(50))), Num(float64(next(100))))
		}
		anon, result, err := KAnonymize(tbl, []string{"a"}, 2, KAnonymizeOptions{})
		if err != nil {
			return false
		}
		classes, err := anon.EquivalenceClasses([]string{"a"})
		if err != nil {
			return false
		}
		suppressedSet := make(map[int]bool)
		for _, r := range result.SuppressedRows {
			suppressedSet[r] = true
		}
		for _, class := range classes {
			if len(class) >= 2 {
				continue
			}
			// Undersized classes may only consist of suppressed rows.
			for _, r := range class {
				if !suppressedSet[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValueRisksReproduceTableI(t *testing.T) {
	tbl := tableIRecords(t)
	const closeness = 5.0

	tests := []struct {
		name    string
		visible []string
		want    []string
		wantHit int // violations at >= 90% confidence
	}{
		{"height only", []string{"height"}, []string{"2/4", "2/4", "2/4", "2/4", "1/2", "1/2"}, 0},
		{"age only", []string{"age"}, []string{"2/2", "2/2", "3/4", "3/4", "1/4", "3/4"}, 2},
		{"age and height", []string{"age", "height"}, []string{"2/2", "2/2", "2/2", "2/2", "1/2", "1/2"}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			risks, err := ValueRisks(tbl, ValueRiskOptions{
				VisibleColumns: tt.visible,
				TargetColumn:   "weight",
				Closeness:      closeness,
			})
			if err != nil {
				t.Fatalf("ValueRisks: %v", err)
			}
			got := fractions(risks)
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("row %d risk = %s, want %s (all: %v)", i, got[i], tt.want[i], got)
				}
			}
			if violations := CountViolations(risks, 0.9); violations != tt.wantHit {
				t.Errorf("violations = %d, want %d", violations, tt.wantHit)
			}
		})
	}
}

func TestValueRisksEdgeCases(t *testing.T) {
	tbl := tableIRecords(t)
	if _, err := ValueRisks(nil, ValueRiskOptions{TargetColumn: "weight"}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := ValueRisks(tbl, ValueRiskOptions{TargetColumn: "ghost"}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := ValueRisks(tbl, ValueRiskOptions{TargetColumn: "weight", VisibleColumns: []string{"ghost"}}); err == nil {
		t.Error("unknown visible column accepted")
	}
	if _, err := ValueRisks(tbl, ValueRiskOptions{TargetColumn: "weight", Closeness: -1}); err == nil {
		t.Error("negative closeness accepted")
	}
	// No visible columns: one set covering the whole table.
	risks, err := ValueRisks(tbl, ValueRiskOptions{TargetColumn: "weight", Closeness: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range risks {
		if r.SetSize != 6 {
			t.Errorf("set size without visible columns = %d, want 6", r.SetSize)
		}
	}
	if MaxRisk(risks) <= 0 || MaxRisk(nil) != 0 {
		t.Error("MaxRisk misbehaves")
	}
}

func TestCompareUtility(t *testing.T) {
	original := MustTable(Column{Name: "weight"})
	anonymised := MustTable(Column{Name: "weight"})
	weights := []float64{100, 102, 110, 111, 80, 110}
	for _, w := range weights {
		original.MustAddRow(Num(w))
		anonymised.MustAddRow(NumericBinning{Width: 20}.Generalize(Num(w)))
	}
	report, err := CompareUtility(original, anonymised, []string{"weight"})
	if err != nil {
		t.Fatal(err)
	}
	cu, ok := report.Column("weight")
	if !ok {
		t.Fatal("missing column utility")
	}
	if cu.OriginalMean == 0 || cu.AnonymisedMean == 0 {
		t.Errorf("means not computed: %+v", cu)
	}
	if cu.MeanAbsoluteError <= 0 || cu.MeanAbsoluteError > 10 {
		t.Errorf("MeanAbsoluteError = %v, want within (0, 10]", cu.MeanAbsoluteError)
	}
	if cu.SuppressedFraction != 0 {
		t.Errorf("SuppressedFraction = %v, want 0", cu.SuppressedFraction)
	}
	if !report.AcceptableWithin(15) {
		t.Error("mean shift should be acceptable within 15")
	}
	if report.AcceptableWithin(0.0001) {
		t.Error("mean shift should not be acceptable within 0.0001")
	}
	if _, ok := report.Column("ghost"); ok {
		t.Error("Column(ghost) should fail")
	}

	// Errors.
	short := MustTable(Column{Name: "weight"})
	if _, err := CompareUtility(original, short, []string{"weight"}); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := CompareUtility(original, anonymised, []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGeneralizationLoss(t *testing.T) {
	original := MustTable(Column{Name: "age"})
	anonymised := MustTable(Column{Name: "age"})
	for _, a := range []float64{20, 30, 40, 60} {
		original.MustAddRow(Num(a))
		anonymised.MustAddRow(NumericBinning{Width: 10}.Generalize(Num(a)))
	}
	loss, err := GeneralizationLoss(original, anonymised, []string{"age"})
	if err != nil {
		t.Fatal(err)
	}
	// Range is 40, every interval has width 10 -> loss 0.25.
	if math.Abs(loss-0.25) > 1e-9 {
		t.Errorf("loss = %v, want 0.25", loss)
	}
	// Identical tables lose nothing.
	loss, err = GeneralizationLoss(original, original, []string{"age"})
	if err != nil || loss != 0 {
		t.Errorf("loss of identity = %v, %v", loss, err)
	}
	// Suppression is total loss.
	suppressed := original.Clone()
	for r := 0; r < suppressed.NumRows(); r++ {
		if err := suppressed.SetValue(r, "age", Suppressed()); err != nil {
			t.Fatal(err)
		}
	}
	loss, err = GeneralizationLoss(original, suppressed, []string{"age"})
	if err != nil || loss != 1 {
		t.Errorf("loss of suppressed table = %v, %v, want 1", loss, err)
	}
	if _, err := GeneralizationLoss(original, MustTable(Column{Name: "age"}), []string{"age"}); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	input := "age,height,weight\n30-40,180-200,100\n20-30,160-180,*\nunknown,170-180,82\n"
	tbl, err := ReadCSV(strings.NewReader(input), ColumnSpec{
		"age": RoleQuasiIdentifier, "height": RoleQuasiIdentifier, "weight": RoleSensitive,
	})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	v, _ := tbl.Value(0, "age")
	if v != Interval(30, 40) {
		t.Errorf("parsed age = %v", v)
	}
	v, _ = tbl.Value(1, "weight")
	if !v.IsSuppressed() {
		t.Errorf("parsed suppressed weight = %v", v)
	}
	v, _ = tbl.Value(2, "age")
	if v != Cat("unknown") {
		t.Errorf("parsed categorical age = %v", v)
	}
	if c, _ := tbl.Column("age"); c.Role != RoleQuasiIdentifier {
		t.Errorf("column role = %v", c.Role)
	}

	var out strings.Builder
	if err := WriteCSV(&out, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(out.String()), nil)
	if err != nil {
		t.Fatalf("ReadCSV(round trip): %v", err)
	}
	if back.NumRows() != tbl.NumRows() || back.NumColumns() != tbl.NumColumns() {
		t.Error("round trip changed the table size")
	}

	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), nil); err == nil {
		t.Error("ragged CSV accepted")
	}
}

func TestValueRiskProbabilityBounds(t *testing.T) {
	// Property: probabilities are always in (0, 1] and the record itself is
	// always counted (frequency >= 1).
	f := func(seed uint32) bool {
		x := seed
		next := func(m int) int {
			x = x*1664525 + 1013904223
			return int(x>>8) % m
		}
		tbl := MustTable(Column{Name: "qi"}, Column{Name: "target"})
		n := next(20) + 1
		for i := 0; i < n; i++ {
			tbl.MustAddRow(Num(float64(next(3))), Num(float64(next(10))))
		}
		risks, err := ValueRisks(tbl, ValueRiskOptions{
			VisibleColumns: []string{"qi"}, TargetColumn: "target", Closeness: float64(next(4)),
		})
		if err != nil {
			return false
		}
		for _, r := range risks {
			if r.Frequency < 1 || r.Frequency > r.SetSize {
				return false
			}
			if r.Probability <= 0 || r.Probability > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
