package core

import (
	"math/bits"
	"sort"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/schema"
)

// compiledModel is the per-Generate compilation of a data-flow model: every
// per-flow and per-policy decision that does not depend on the current
// exploration state is resolved once, up front, so that expanding a state is
// reduced to a few word operations per successor. The compiled form is
// immutable during exploration and therefore shared by all workers.
type compiledModel struct {
	model  *dataflow.Model
	vocab  *Vocabulary
	policy accesscontrol.Policy
	codec  *stateCodec

	// services in dataflow.Model.ServiceIDs order; flows in global
	// enumeration order (services in ServiceIDs order, each service's flows
	// in declared Order), which is the order transitions are emitted in.
	services []compiledService
	flows    []compiledFlow
	// stores in dataflow.Model.DatastoreIDs order, the order potential reads
	// are enumerated in.
	stores []compiledStore
}

type compiledService struct {
	id       string
	flowIdxs []int // indices into compiledModel.flows, in execution order
}

// compiledFlow is one data-flow arrow with its gating and effect precompiled
// into bit masks over the packedState layout.
type compiledFlow struct {
	flow    dataflow.Flow
	action  Action
	svcIdx  int
	flowIdx int
	// valid is false when no extraction rule applies to the flow; an invalid
	// flow never fires (and, under OrderSequential, blocks its service).
	valid bool
	// impossible is true when the gate references an actor or field outside
	// the vocabulary, so the gate can never be satisfied.
	impossible bool

	// gateHas lists has-segment bits that must all be set for the flow to
	// fire (the non-authored fields the source actor must already hold).
	gateHas []wordMask
	// gateStore/gateStoreMask require the datastore's mask segment to contain
	// every bit of the mask (read and delete gating); gateStore is -1 when
	// unused.
	gateStore     int
	gateStoreMask []uint64

	// setHas lists has-segment bits set when the flow fires.
	setHas []wordMask
	// storeIdx is the datastore whose segment the flow rewrites (-1 none);
	// storeOr is OR-ed in for create/anon, storeClear is cleared for delete.
	storeIdx   int
	storeOr    []uint64
	storeClear []uint64

	// label is the (immutable, shared) transition label of the flow.
	label *TransitionLabel
}

// compiledStore precompiles, per datastore, the potential-read enumeration
// and the "could identify" contribution of each field it may hold.
type compiledStore struct {
	id string
	// base is the word offset of this store's mask segment.
	base int
	// readers lists, in sorted actor order, every actor the policy allows to
	// read some field of this store, with the per-field bit positions needed
	// to test occupancy and the actor's has-bit.
	readers []storeReader
	// couldByField[fieldIdx] is the has-segment mask of could(actor, field)
	// bits implied by the field being present in this store, for every actor
	// with read access.
	couldByField [][]wordMask
}

type storeReader struct {
	actor  string
	fields []readerField
}

type readerField struct {
	name string
	// word/mask locate the field's bit in the store's mask segment
	// (store-relative word index).
	word int
	mask uint64
	// has locates has(actor, field) in the has segment; a zero mask means the
	// actor or field is outside the vocabulary (the bit is never set, so the
	// field is always considered unidentified and reading it is a no-op —
	// matching StateVector semantics for unknown actors).
	has wordMask
}

// evenBits masks the HasIdentified bit positions of a state-vector word: has
// bits sit at even positions, their CouldIdentify counterparts at the next
// odd position, so could |= has is a masked shift within each word.
const evenBits = 0x5555555555555555

// compileModel builds the compiled form of the model for the given options.
func compileModel(m *dataflow.Model, policy accesscontrol.Policy, vocab *Vocabulary, ordering FlowOrdering) *compiledModel {
	// Store-field universe: every model field plus its pseudonymised form.
	fieldSet := make(map[string]bool)
	for _, f := range m.FieldUniverse() {
		fieldSet[f] = true
		fieldSet[schema.AnonName(f)] = true
	}
	storeFields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		storeFields = append(storeFields, f)
	}
	sort.Strings(storeFields)

	storeIDs := m.DatastoreIDs()
	storeIndex := make(map[string]int, len(storeIDs))
	for i, id := range storeIDs {
		storeIndex[id] = i
	}

	serviceIDs := m.ServiceIDs()
	numFlows := len(m.Flows)
	codec := newStateCodec(vocab.wordsPerVec, storeFields, len(storeIDs), len(serviceIDs), numFlows, ordering)

	cm := &compiledModel{model: m, vocab: vocab, policy: policy, codec: codec}

	// Flows, in the enumeration order of exploration.
	for svcIdx, svcID := range serviceIDs {
		svc := compiledService{id: svcID}
		for _, f := range m.ServiceFlows(svcID) {
			flowIdx := len(cm.flows)
			cm.flows = append(cm.flows, compileFlow(m, vocab, codec, storeIndex, f, svcIdx, flowIdx))
			svc.flowIdxs = append(svc.flowIdxs, flowIdx)
		}
		cm.services = append(cm.services, svc)
	}

	// Stores: potential-read tables and could-bit contributions.
	for storeIdx, storeID := range storeIDs {
		cs := compiledStore{
			id:           storeID,
			base:         codec.storeBase(storeIdx),
			couldByField: make([][]wordMask, len(storeFields)),
		}
		byActor := make(map[string][]readerField)
		for fieldIdx, field := range storeFields {
			for _, actor := range policy.ActorsWith(storeID, field, accesscontrol.PermissionRead) {
				rf := readerField{name: field, word: fieldIdx / 64, mask: 1 << uint(fieldIdx%64)}
				if bit := vocab.index(actor, field, HasIdentified); bit >= 0 {
					rf.has = wordMask{word: bit / 64, mask: 1 << uint(bit%64)}
				}
				byActor[actor] = append(byActor[actor], rf)
				if bit := vocab.index(actor, field, CouldIdentify); bit >= 0 {
					cs.couldByField[fieldIdx] = addBit(cs.couldByField[fieldIdx], bit)
				}
			}
		}
		actors := make([]string, 0, len(byActor))
		for a := range byActor {
			actors = append(actors, a)
		}
		sort.Strings(actors)
		for _, a := range actors {
			cs.readers = append(cs.readers, storeReader{actor: a, fields: byActor[a]})
		}
		cm.stores = append(cm.stores, cs)
	}
	return cm
}

// compileFlow resolves one flow's action, gate and effect.
func compileFlow(m *dataflow.Model, vocab *Vocabulary, codec *stateCodec, storeIndex map[string]int, f dataflow.Flow, svcIdx, flowIdx int) compiledFlow {
	cf := compiledFlow{flow: f, svcIdx: svcIdx, flowIdx: flowIdx, gateStore: -1, storeIdx: -1}
	action, ok := deriveAction(m, f)
	if !ok {
		return cf
	}
	cf.action = action
	cf.valid = true
	cf.label = flowLabel(f, action)

	gateHasBit := func(actor, field string) {
		bit := vocab.index(actor, field, HasIdentified)
		if bit < 0 {
			cf.impossible = true
			return
		}
		cf.gateHas = addBit(cf.gateHas, bit)
	}
	setHasBit := func(actor, field string) {
		if bit := vocab.index(actor, field, HasIdentified); bit >= 0 {
			cf.setHas = addBit(cf.setHas, bit)
		}
	}
	storeMask := func(fields []string, anon bool) []uint64 {
		mask := make([]uint64, codec.storeWords)
		for _, field := range fields {
			name := field
			if anon {
				name = schema.AnonName(field)
			}
			idx, ok := codec.storeFieldIndex[name]
			if !ok {
				cf.impossible = true
				continue
			}
			mask[idx/64] |= 1 << uint(idx%64)
		}
		return mask
	}

	switch action {
	case ActionCollect:
		for _, field := range f.Fields {
			setHasBit(f.To, field)
		}
	case ActionDisclose:
		authored := f.AuthoredSet()
		for _, field := range f.Fields {
			if !authored.Contains(field) {
				gateHasBit(f.From, field)
			}
			setHasBit(f.To, field)
		}
		for _, field := range f.Authored {
			setHasBit(f.From, field)
		}
	case ActionCreate, ActionAnon:
		authored := f.AuthoredSet()
		for _, field := range f.Fields {
			if !authored.Contains(field) {
				gateHasBit(f.From, field)
			}
		}
		for _, field := range f.Authored {
			setHasBit(f.From, field)
		}
		cf.storeIdx = storeIndex[f.To]
		cf.storeOr = storeMask(f.Fields, action == ActionAnon)
	case ActionDelete:
		cf.gateStore = storeIndex[f.To]
		cf.gateStoreMask = storeMask(f.Fields, false)
		cf.storeIdx = storeIndex[f.To]
		cf.storeClear = cf.gateStoreMask
	case ActionRead:
		cf.gateStore = storeIndex[f.From]
		cf.gateStoreMask = storeMask(f.Fields, false)
		for _, field := range f.Fields {
			setHasBit(f.To, field)
		}
	}
	return cf
}

// enabled reports whether the flow may fire in the given state: the gating
// rule "the start node has the correct data to flow".
func (cm *compiledModel) enabled(cf *compiledFlow, ps packedState) bool {
	if !cf.valid || cf.impossible {
		return false
	}
	for _, wm := range cf.gateHas {
		if ps[wm.word]&wm.mask != wm.mask {
			return false
		}
	}
	if cf.gateStore >= 0 {
		base := cm.codec.storeBase(cf.gateStore)
		for w, m := range cf.gateStoreMask {
			if ps[base+w]&m != m {
				return false
			}
		}
	}
	return true
}

// publicVector builds the externally-visible privacy state vector of a packed
// state: the accumulated has bits, each implying its could bit, plus the
// could bits derived from policy-readable datastore contents.
func (cm *compiledModel) publicVector(ps packedState) StateVector {
	vec := StateVector{words: make([]uint64, cm.codec.hasWords), vocab: cm.vocab}
	cm.publicVectorInto(ps, vec.words)
	return vec
}

// publicVectorInto computes the public vector into a caller-provided word
// slice of length codec.hasWords (the batch assembly writes into a shared
// slab).
func (cm *compiledModel) publicVectorInto(ps packedState, words []uint64) {
	copy(words, ps[:cm.codec.hasWords])
	for i, w := range words {
		words[i] = w | (w&evenBits)<<1
	}
	for si := range cm.stores {
		cs := &cm.stores[si]
		for w := 0; w < cm.codec.storeWords; w++ {
			remaining := ps[cs.base+w]
			for remaining != 0 {
				fieldIdx := w*64 + bits.TrailingZeros64(remaining)
				for _, wm := range cs.couldByField[fieldIdx] {
					words[wm.word] |= wm.mask
				}
				remaining &= remaining - 1
			}
		}
	}
}

// decodeStores materialises the datastore contents of a packed state as the
// field sets the PrivacyLTS API (and the pseudonymisation analysis) consume.
func (cm *compiledModel) decodeStores(ps packedState) map[string]schema.FieldSet {
	out := make(map[string]schema.FieldSet, len(cm.stores))
	for si := range cm.stores {
		cs := &cm.stores[si]
		var names []string
		for w := 0; w < cm.codec.storeWords; w++ {
			remaining := ps[cs.base+w]
			for remaining != 0 {
				names = append(names, cm.codec.storeFields[w*64+bits.TrailingZeros64(remaining)])
				remaining &= remaining - 1
			}
		}
		if len(names) > 0 {
			out[cs.id] = schema.NewFieldSet(names...)
		}
	}
	return out
}
