package core

import (
	"fmt"

	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// The accessors and the constructor in this file exist for one consumer: the
// persistent compiled-model store (internal/modelstore), which serialises a
// generated PrivacyLTS into a binary artifact and rebuilds it on load without
// re-running state-space exploration. They expose the per-state payloads the
// struct otherwise keeps private — the raw vector words and the datastore
// contents — and accept them back.

// Words returns the raw bit words of the vector, in ascending bit order. The
// slice aliases the vector's storage and must be treated as read-only; a zero
// vector (no vocabulary) returns nil.
func (s StateVector) Words() []uint64 { return s.words }

// WordsPerVector returns the number of 64-bit words each state vector of this
// vocabulary occupies (at least 1).
func (v *Vocabulary) WordsPerVector() int { return v.wordsPerVec }

// VectorFromWords wraps raw bit words as a state vector of this vocabulary.
// The words are retained, not copied — the model store's zero-copy path hands
// in subslices of one mmap'd section. The length must match WordsPerVector
// exactly.
func (v *Vocabulary) VectorFromWords(words []uint64) (StateVector, error) {
	if len(words) != v.wordsPerVec {
		return StateVector{}, fmt.Errorf("core: vector has %d words, vocabulary needs %d", len(words), v.wordsPerVec)
	}
	return StateVector{words: words, vocab: v}, nil
}

// StoreMap returns the per-datastore contents of the given state. The map and
// its field sets are the model's own bookkeeping and must be treated as
// read-only; states without datastore contents return nil.
func (p *PrivacyLTS) StoreMap(id lts.StateID) map[string]schema.FieldSet {
	return p.stores[id]
}

// RestorePrivacyLTS assembles a PrivacyLTS from previously serialised parts:
// the (caller-verified) data-flow model the artifact was generated from, the
// vocabulary, the restored graph, and the per-state payload maps. The
// arguments are retained, not copied. The compiled analysis view is built
// lazily on first use, exactly as after generation.
func RestorePrivacyLTS(model *dataflow.Model, vocab *Vocabulary, graph *lts.LTS,
	warnings []string, vectors map[lts.StateID]StateVector,
	stores map[lts.StateID]map[string]schema.FieldSet) *PrivacyLTS {
	return &PrivacyLTS{
		Model:    model,
		Vocab:    vocab,
		Graph:    graph,
		Warnings: warnings,
		vectors:  vectors,
		stores:   stores,
	}
}
