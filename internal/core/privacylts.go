package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/dataflow"
	"privascope/internal/flight"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// PrivacyLTS is the generated formal model of user privacy: an LTS whose
// states carry privacy state vectors and whose transitions carry
// TransitionLabels. It also remembers, per state, the contents of every
// datastore, which the pseudonymisation risk analysis needs.
type PrivacyLTS struct {
	// Model is the data-flow model the LTS was generated from.
	Model *dataflow.Model
	// Vocab fixes the actor/field ordering of the state vectors.
	Vocab *Vocabulary
	// Graph is the underlying labelled transition system.
	Graph *lts.LTS
	// Warnings lists design inconsistencies found during generation, such as
	// flows whose actor lacks the permission the flow requires.
	Warnings []string

	vectors map[lts.StateID]StateVector
	stores  map[lts.StateID]map[string]schema.FieldSet

	// compiled lazily holds the analysis view (see Compiled); single-flighted
	// so concurrent analyses compile the model exactly once.
	compiled flight.Group[struct{}, *CompiledView]
}

// Vector returns the privacy state vector of the given state.
func (p *PrivacyLTS) Vector(id lts.StateID) (StateVector, bool) {
	v, ok := p.vectors[id]
	return v, ok
}

// StoreContents returns the fields held by the named datastore in the given
// state.
func (p *PrivacyLTS) StoreContents(id lts.StateID, datastore string) schema.FieldSet {
	return p.stores[id][datastore]
}

// InitialState returns the initial state ID (the absolute privacy state).
func (p *PrivacyLTS) InitialState() lts.StateID {
	id, _ := p.Graph.Initial()
	return id
}

// States returns every state ID in generation order (s0, s1, ...).
func (p *PrivacyLTS) States() []lts.StateID { return p.Graph.StateIDs() }

// Has reports whether the actor has identified the field in the given state.
func (p *PrivacyLTS) Has(id lts.StateID, actor, field string) bool {
	v, ok := p.vectors[id]
	return ok && v.Has(actor, field)
}

// Could reports whether the actor could identify the field in the given
// state.
func (p *PrivacyLTS) Could(id lts.StateID, actor, field string) bool {
	v, ok := p.vectors[id]
	return ok && v.Could(actor, field)
}

// ActorsWhoCould returns the sorted actors that could identify the field in
// the given state.
func (p *PrivacyLTS) ActorsWhoCould(id lts.StateID, field string) []string {
	v, ok := p.vectors[id]
	if !ok {
		return nil
	}
	var out []string
	for _, actor := range p.Vocab.Actors() {
		if v.Could(actor, field) {
			out = append(out, actor)
		}
	}
	return out
}

// ActorsWhoHave returns the sorted actors that have identified the field in
// the given state.
func (p *PrivacyLTS) ActorsWhoHave(id lts.StateID, field string) []string {
	v, ok := p.vectors[id]
	if !ok {
		return nil
	}
	var out []string
	for _, actor := range p.Vocab.Actors() {
		if v.Has(actor, field) {
			out = append(out, actor)
		}
	}
	return out
}

// FindStates returns the states whose vector satisfies the predicate, in
// generation order.
func (p *PrivacyLTS) FindStates(pred func(StateVector) bool) []lts.StateID {
	var out []lts.StateID
	for _, id := range p.Graph.StateIDs() {
		if pred(p.vectors[id]) {
			out = append(out, id)
		}
	}
	return out
}

// ChangeOf returns the state variables that become true when the transition
// fires (the change relative to the source state, used by the impact
// computation of Section III-A).
func (p *PrivacyLTS) ChangeOf(t lts.Transition) []Variable {
	from, okFrom := p.vectors[t.From]
	to, okTo := p.vectors[t.To]
	if !okFrom || !okTo {
		return nil
	}
	return to.NewlyTrue(from)
}

// PotentialTransitions returns the transitions the generator added beyond the
// declared flows (policy-permitted reads), in insertion order.
func (p *PrivacyLTS) PotentialTransitions() []lts.Transition {
	var out []lts.Transition
	for _, t := range p.Graph.Transitions() {
		if label := LabelOf(t); label != nil && label.Potential {
			out = append(out, t)
		}
	}
	return out
}

// DeclaredTransitions returns the transitions that correspond to declared
// data-flow arrows.
func (p *PrivacyLTS) DeclaredTransitions() []lts.Transition {
	var out []lts.Transition
	for _, t := range p.Graph.Transitions() {
		if label := LabelOf(t); label != nil && !label.Potential {
			out = append(out, t)
		}
	}
	return out
}

// Minimized returns the quotient of the privacy LTS under payload-respecting
// label-signature bisimulation as a new PrivacyLTS, together with the
// mapping from original to representative state IDs. The quotient only
// merges states with identical privacy vectors and datastore contents
// (lts.MinimizeRespecting seeded with the state payload key), so every
// quotient state's payload is exact — not a representative's approximation —
// and every quotient transition's vector delta is an original delta and vice
// versa. Risk assessments therefore see the same disclosure events on the
// quotient as on the original, a metamorphic property the randomized test
// harness checks. (Plain Graph.Minimize without the payload refinement does
// NOT have this property: merging states with different vectors manufactures
// deltas no original transition performs.)
func (p *PrivacyLTS) Minimized() (*PrivacyLTS, map[lts.StateID]lts.StateID) {
	min, mapping := p.Graph.MinimizeRespecting(p.payloadKey)
	q := &PrivacyLTS{
		Model:    p.Model,
		Vocab:    p.Vocab,
		Graph:    min,
		Warnings: p.Warnings,
		vectors:  make(map[lts.StateID]StateVector, min.StateCount()),
		stores:   make(map[lts.StateID]map[string]schema.FieldSet, min.StateCount()),
	}
	for orig, rep := range mapping {
		if orig == rep {
			q.vectors[rep] = p.vectors[rep]
			q.stores[rep] = p.stores[rep]
		}
	}
	return q, mapping
}

// payloadKey canonically serialises the state's privacy vector and datastore
// contents; states agreeing on it are interchangeable for every analysis in
// this module.
func (p *PrivacyLTS) payloadKey(id lts.StateID) string {
	var b strings.Builder
	b.WriteString(p.vectors[id].Key())
	storeMap := p.stores[id]
	storeIDs := make([]string, 0, len(storeMap))
	for sid := range storeMap {
		if !storeMap[sid].IsEmpty() {
			storeIDs = append(storeIDs, sid)
		}
	}
	sort.Strings(storeIDs)
	for _, sid := range storeIDs {
		b.WriteString("|")
		b.WriteString(sid)
		b.WriteString("=")
		b.WriteString(strings.Join(storeMap[sid].Names(), ","))
	}
	return b.String()
}

// Stats summarises the generated model.
type Stats struct {
	States               int
	Transitions          int
	PotentialTransitions int
	StateVariables       int
	Actors               int
	Fields               int
	Warnings             int
}

// Stats computes summary statistics for reports and benchmarks.
func (p *PrivacyLTS) Stats() Stats {
	return Stats{
		States:               p.Graph.StateCount(),
		Transitions:          p.Graph.TransitionCount(),
		PotentialTransitions: len(p.PotentialTransitions()),
		StateVariables:       p.Vocab.NumVariables(),
		Actors:               len(p.Vocab.Actors()),
		Fields:               len(p.Vocab.Fields()),
		Warnings:             len(p.Warnings),
	}
}

// DOTOptions controls rendering of the privacy LTS.
type DOTOptions struct {
	// Name is the graph name; defaults to "privacy_lts".
	Name string
	// VerboseStates lists the true state variables inside each node instead
	// of only the counts. Only sensible for small models.
	VerboseStates bool
	// HighlightStates colours the listed states (e.g. states where a
	// non-allowed actor could identify a sensitive field).
	HighlightStates map[lts.StateID]string
	// TransitionStyle may override edge attributes per transition; potential
	// reads default to dashed grey edges, matching the dotted risk
	// transitions of the paper's Fig. 4.
	TransitionStyle func(lts.Transition) map[string]string
}

// DOT renders the privacy LTS to Graphviz DOT.
func (p *PrivacyLTS) DOT(opts DOTOptions) string {
	name := opts.Name
	if name == "" {
		name = "privacy_lts"
	}
	return p.Graph.DOT(lts.DOTOptions{
		Name: name,
		StateLabel: func(id lts.StateID) string {
			vec := p.vectors[id]
			if opts.VerboseStates {
				return fmt.Sprintf("%s\n%s", id, wrapVariables(vec.TrueVariables(), 3))
			}
			return fmt.Sprintf("%s\n(%d/%d)", id, vec.CountTrue(), p.Vocab.NumVariables())
		},
		StateAttrs: func(id lts.StateID) map[string]string {
			attrs := map[string]string{"shape": "ellipse"}
			if colour, ok := opts.HighlightStates[id]; ok {
				attrs["style"] = "filled"
				attrs["fillcolor"] = colour
			}
			return attrs
		},
		TransitionAttrs: func(t lts.Transition) map[string]string {
			attrs := map[string]string{}
			if label := LabelOf(t); label != nil && label.Potential {
				attrs["style"] = "dashed"
				attrs["color"] = "gray40"
				attrs["fontcolor"] = "gray40"
			}
			if opts.TransitionStyle != nil {
				for k, v := range opts.TransitionStyle(t) {
					attrs[k] = v
				}
			}
			return attrs
		},
	})
}

func wrapVariables(vars []Variable, perLine int) string {
	if len(vars) == 0 {
		return "{}"
	}
	var lines []string
	for i := 0; i < len(vars); i += perLine {
		end := i + perLine
		if end > len(vars) {
			end = len(vars)
		}
		parts := make([]string, 0, end-i)
		for _, v := range vars[i:end] {
			parts = append(parts, v.String())
		}
		lines = append(lines, strings.Join(parts, ", "))
	}
	return strings.Join(lines, "\n")
}

// jsonState is the serialised form of one privacy state.
type jsonState struct {
	ID        string              `json:"id"`
	Variables []string            `json:"variables,omitempty"`
	Stores    map[string][]string `json:"stores,omitempty"`
}

// jsonTransition is the serialised form of one transition.
type jsonTransition struct {
	From      string   `json:"from"`
	To        string   `json:"to"`
	Action    string   `json:"action"`
	Actor     string   `json:"actor,omitempty"`
	Fields    []string `json:"fields"`
	Datastore string   `json:"datastore,omitempty"`
	Purpose   string   `json:"purpose,omitempty"`
	Service   string   `json:"service,omitempty"`
	Potential bool     `json:"potential,omitempty"`
}

// jsonDoc is the serialised form of a PrivacyLTS.
type jsonDoc struct {
	ModelName   string           `json:"model"`
	Initial     string           `json:"initial"`
	Actors      []string         `json:"actors"`
	Fields      []string         `json:"fields"`
	States      []jsonState      `json:"states"`
	Transitions []jsonTransition `json:"transitions"`
	Warnings    []string         `json:"warnings,omitempty"`
}

// MarshalJSON serialises the privacy LTS, including state variables and
// per-state datastore contents, so external tools can consume the model.
func (p *PrivacyLTS) MarshalJSON() ([]byte, error) {
	doc := jsonDoc{
		ModelName: p.Model.Name,
		Initial:   string(p.InitialState()),
		Actors:    p.Vocab.Actors(),
		Fields:    p.Vocab.Fields(),
		Warnings:  p.Warnings,
	}
	for _, id := range p.Graph.StateIDs() {
		vec := p.vectors[id]
		js := jsonState{ID: string(id)}
		for _, v := range vec.TrueVariables() {
			js.Variables = append(js.Variables, v.String())
		}
		storeMap := p.stores[id]
		if len(storeMap) > 0 {
			js.Stores = make(map[string][]string)
			storeIDs := make([]string, 0, len(storeMap))
			for sid := range storeMap {
				storeIDs = append(storeIDs, sid)
			}
			sort.Strings(storeIDs)
			for _, sid := range storeIDs {
				if fs := storeMap[sid]; !fs.IsEmpty() {
					js.Stores[sid] = fs.Names()
				}
			}
		}
		doc.States = append(doc.States, js)
	}
	for _, t := range p.Graph.Transitions() {
		label := LabelOf(t)
		if label == nil {
			continue
		}
		doc.Transitions = append(doc.Transitions, jsonTransition{
			From:      string(t.From),
			To:        string(t.To),
			Action:    label.Action.String(),
			Actor:     label.Actor,
			Fields:    label.FieldSet(),
			Datastore: label.Datastore,
			Purpose:   label.Purpose,
			Service:   label.Service,
			Potential: label.Potential,
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}
