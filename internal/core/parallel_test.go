package core_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/synth"
)

// ltsDigest hashes the complete serialised model — state IDs, state
// variables, per-state store contents, transition order, labels — plus the
// verbose DOT rendering, so any divergence in generation order or content
// changes the digest.
func ltsDigest(t *testing.T, p *core.PrivacyLTS) string {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h := sha256.New()
	h.Write(data)
	h.Write([]byte(p.DOT(core.DOTOptions{VerboseStates: true})))
	return hex.EncodeToString(h.Sum(nil))
}

// TestParallelGenerationIdenticalDigests: for every case-study and synthetic
// model, under both flow orderings, generation with 1, 2, 4 and 8 workers
// produces the same digest — the paper's formal model must not depend on how
// many goroutines explored it.
func TestParallelGenerationIdenticalDigests(t *testing.T) {
	models := map[string]struct {
		generate func(opts core.Options) (*core.PrivacyLTS, error)
	}{
		"surgery": {func(opts core.Options) (*core.PrivacyLTS, error) {
			return core.GenerateWithOptions(casestudy.Surgery(), opts)
		}},
		"metrics": {func(opts core.Options) (*core.PrivacyLTS, error) {
			return core.GenerateWithOptions(casestudy.Metrics(), opts)
		}},
		"synthetic-3": {func(opts core.Options) (*core.PrivacyLTS, error) {
			return core.GenerateWithOptions(synth.Model(synth.ModelSpec{Services: 3, FieldsPerService: 3}), opts)
		}},
	}
	orderings := []core.FlowOrdering{core.OrderSequential, core.OrderDataDriven}
	modes := []core.PotentialReadMode{core.PotentialReadsTerminal, core.PotentialReadsFull}

	for name, tc := range models {
		for _, ordering := range orderings {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/ordering=%d/mode=%d", name, ordering, mode), func(t *testing.T) {
					opts := core.Options{FlowOrdering: ordering, PotentialReads: mode, Workers: 1}
					base, err := tc.generate(opts)
					if err != nil {
						t.Fatal(err)
					}
					want := ltsDigest(t, base)
					for _, workers := range []int{2, 4, 8} {
						opts.Workers = workers
						p, err := tc.generate(opts)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if got := ltsDigest(t, p); got != want {
							t.Errorf("workers=%d digest %s != workers=1 digest %s", workers, got, want)
						}
					}
				})
			}
		}
	}
}

// TestParallelGenerationSurgeryStats pins the well-known sizes of the
// doctors'-surgery model for a spread of worker counts: the paper's Fig. 3
// model must come out the same whether explored by one goroutine or many.
func TestParallelGenerationSurgeryStats(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p, err := core.GenerateWithOptions(casestudy.Surgery(), core.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		stats := p.Stats()
		if stats.States != 47 || stats.Transitions != 49 || stats.PotentialTransitions != 34 {
			t.Errorf("workers=%d: states/transitions/potential = %d/%d/%d, want 47/49/34",
				workers, stats.States, stats.Transitions, stats.PotentialTransitions)
		}
		if p.InitialState() != "s0" {
			t.Errorf("workers=%d: initial state = %s, want s0", workers, p.InitialState())
		}
	}
}
