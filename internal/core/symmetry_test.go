package core_test

import (
	"context"
	"fmt"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/explore"
	"privascope/internal/synth"
)

// TestSymmetryDigestIdentical: symmetry-reduced generation must reproduce the
// plain full generation byte for byte — same digest over the serialised model
// and the verbose DOT — for symmetric and asymmetric models alike, under both
// flow orderings and every potential-read mode, at several worker counts.
func TestSymmetryDigestIdentical(t *testing.T) {
	for _, name := range []string{"symmetric-4", "symmetric-3", "synthetic-2", "surgery"} {
		t.Run(name, func(t *testing.T) {
			for _, ordering := range []core.FlowOrdering{core.OrderSequential, core.OrderDataDriven} {
				for _, mode := range []core.PotentialReadMode{core.PotentialReadsOff, core.PotentialReadsTerminal, core.PotentialReadsFull} {
					base := core.Options{FlowOrdering: ordering, PotentialReads: mode, Workers: 1}
					plain, err := generateCase(name, base)
					if err != nil {
						t.Fatalf("plain generate: %v", err)
					}
					want := ltsDigest(t, plain)
					for _, workers := range []int{1, 4} {
						opts := base
						opts.Workers = workers
						opts.Explore.Symmetry = true
						sym, err := generateCase(name, opts)
						if err != nil {
							t.Fatalf("symmetry generate (workers=%d): %v", workers, err)
						}
						if got := ltsDigest(t, sym); got != want {
							t.Fatalf("ordering=%v mode=%v workers=%d: symmetry digest %s != plain %s",
								ordering, mode, workers, got, want)
						}
					}
				}
			}
		})
	}
}

func generateCase(name string, opts core.Options) (*core.PrivacyLTS, error) {
	switch name {
	case "symmetric-4":
		return core.GenerateWithOptions(synth.SymmetricModel(synth.SymmetricSpec{Replicas: 4}), opts)
	case "symmetric-3":
		return core.GenerateWithOptions(synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3, Fields: 3}), opts)
	case "synthetic-2":
		return core.GenerateWithOptions(synth.Model(synth.ModelSpec{}), opts)
	case "surgery":
		return core.GenerateWithOptions(casestudy.Surgery(), opts)
	}
	return nil, fmt.Errorf("unknown case %q", name)
}

// TestSymmetryQuotientBound: with four interchangeable replicas, the quotient
// exploration must visit at most (full states / orbit size) + ε canonical
// states — the acceptance bound of symmetry reduction.
func TestSymmetryQuotientBound(t *testing.T) {
	m := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 4})
	orbits := explore.DetectOrbits(m)
	if len(orbits) != 1 || len(orbits[0]) != 4 {
		t.Fatalf("DetectOrbits = %v, want one orbit of 4 replicas", orbits)
	}
	gen := core.NewGenerator(core.Options{Workers: 2, Explore: core.ExploreOptions{Symmetry: true}})
	_, _, report, err := gen.GenerateTracedContext(context.Background(), m)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if report.Mode != "symmetry" {
		t.Fatalf("report.Mode = %q, want symmetry", report.Mode)
	}
	if report.Orbits != 1 || report.OrbitActors != 4 {
		t.Fatalf("report orbits = %d actors = %d, want 1 orbit of 4", report.Orbits, report.OrbitActors)
	}
	const epsilon = 8
	if bound := report.States/4 + epsilon; report.CanonicalStates > bound {
		t.Fatalf("CanonicalStates = %d, want <= States/4 + %d = %d (States = %d)",
			report.CanonicalStates, epsilon, bound, report.States)
	}
	t.Logf("full states = %d, canonical states = %d, cold-expanded = %d",
		report.States, report.CanonicalStates, report.ColdExpanded)
}

// TestSymmetryWithoutOrbitsFallsBack: a model with no interchangeable actors
// must run the plain full exploration (Mode "full"), not fail.
func TestSymmetryWithoutOrbitsFallsBack(t *testing.T) {
	m := synth.Model(synth.ModelSpec{})
	if orbits := explore.DetectOrbits(m); len(orbits) != 0 {
		t.Fatalf("DetectOrbits = %v, want none (services differ by field names)", orbits)
	}
	gen := core.NewGenerator(core.Options{Workers: 1, Explore: core.ExploreOptions{Symmetry: true}})
	_, _, report, err := gen.GenerateTracedContext(context.Background(), m)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if report.Mode != "full" {
		t.Fatalf("report.Mode = %q, want full", report.Mode)
	}
}
