package core

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"

	"privascope/internal/dataflow"
	"privascope/internal/explore"
	"privascope/internal/lts"
)

// RegenerateContext rebuilds the privacy LTS for m, reusing a previous
// generation's exploration trace where the model delta proves it safe. prev
// and prevTrace must come from one GenerateTracedContext (or
// RegenerateContext) call of a generator with the same options; either may be
// nil to force a full regeneration.
//
// The delta between prev.Model and m (explore.Diff) decides the strategy:
// unsafe deltas — any structural change — fall back to full regeneration;
// identical, metadata and policy deltas replay the previous exploration,
// recomputing only the potential reads of readers whose access changed.
// Every path produces a PrivacyLTS byte-identical to a cold
// GenerateContext(m), with identical warnings; the report says which path
// ran and why.
func (g *Generator) RegenerateContext(ctx context.Context, prev *PrivacyLTS, prevTrace *explore.Result, m *dataflow.Model) (*PrivacyLTS, *explore.Result, *ExploreReport, error) {
	pre, err := g.prepare(m)
	if err != nil {
		return nil, nil, nil, err
	}
	full := func(reason, deltaKind string, affected int) (*PrivacyLTS, *explore.Result, *ExploreReport, error) {
		res, err := explore.Run(ctx, g.exploreConfig(), &coldExpander{cm: pre.cm, mode: g.opts.PotentialReads})
		if err != nil {
			return nil, nil, nil, g.wrapExploreErr(err)
		}
		report := &ExploreReport{
			Mode: "full", Fallback: true, FallbackReason: reason,
			DeltaKind: deltaKind, AffectedReaders: affected,
			States: res.NumStates, StatesExplored: res.Explored,
		}
		if err := assemble(ctx, pre.p, pre.cm, res, g.opts.Workers); err != nil {
			return nil, nil, nil, err
		}
		return pre.p, res, report, nil
	}

	if prev == nil || prevTrace == nil {
		return full("no previous generation to reuse", "", 0)
	}
	delta := explore.Diff(prev.Model, m)
	kind := delta.Kind.String()
	if delta.Kind == explore.DeltaUnsafe {
		return full(strings.Join(delta.Reasons, "; "), kind, 0)
	}
	if prevTrace.Words != pre.cm.codec.totalWords {
		// Unreachable for structurally-identical models; defends against a
		// trace generated under different options.
		return full("state encoding width changed", kind, len(delta.AffectedReaders))
	}

	if len(delta.AffectedReaders) == 0 {
		// No reader's access changed, so the previous state space, edge set
		// AND public vectors are provably those of the new model: skip
		// exploration entirely, re-deriving only the labels.
		return g.reuseTrace(ctx, pre, prev, prevTrace, delta, false)
	}
	if g.opts.PotentialReads == PotentialReadsOff {
		// Read access changed but potential reads are off: the state space and
		// edge set are still untouched, only the policy-derived "could" bits
		// of the public vectors need recomputing.
		return g.reuseTrace(ctx, pre, prev, prevTrace, delta, true)
	}
	rx := newReplayExpander(pre.cm, g.opts.PotentialReads, prevTrace, delta)
	res, err := explore.Run(ctx, g.exploreConfig(), rx)
	if err != nil {
		return nil, nil, nil, g.wrapExploreErr(err)
	}
	report := &ExploreReport{
		Mode: "replay", DeltaKind: kind,
		AffectedReaders: len(delta.AffectedReaders),
		ColdExpanded:    int(rx.cold.Load()),
		States:          res.NumStates, StatesExplored: res.Explored,
	}
	if err := assemble(ctx, pre.p, pre.cm, res, g.opts.Workers); err != nil {
		return nil, nil, nil, err
	}
	return pre.p, res, report, nil
}

// reuseTrace rebuilds the PrivacyLTS from the previous exploration without
// running the driver: the packed states and per-state store contents are
// shared with the previous generation (they are read-only through the
// PrivacyLTS API), declared-flow labels are re-derived from the new
// compilation (they may carry changed metadata such as flow purposes), and
// potential-read labels — purely structural — are reused. The public vectors
// are shared too unless recomputeVectors says the policy's read answers
// changed (the vectors' "could" bits derive from them). Only the label remap,
// the graph rebuild and any vector recompute are O(states+edges); nothing is
// re-explored.
func (g *Generator) reuseTrace(ctx context.Context, pre *prepared, prev *PrivacyLTS, prevTrace *explore.Result, delta *explore.Delta, recomputeVectors bool) (*PrivacyLTS, *explore.Result, *ExploreReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	// Declared-flow labels may carry changed metadata (flow purposes);
	// re-derive them from the new compilation. Most deltas change no label at
	// all, in which case the graph and trace are shared wholesale; otherwise
	// only the transition labels are swapped (lts.Relabeled shares every
	// index structure). Potential-read labels are purely structural — store
	// ID, actor ID, field names — and always reusable.
	changed := make(map[int32]bool, len(pre.cm.flows))
	anyChanged := false
	for i := range prevTrace.Edges {
		e := &prevTrace.Edges[i]
		if e.Rule < 0 {
			continue
		}
		c, seen := changed[e.Rule]
		if !seen {
			c = !labelsEqual(e.Label, pre.cm.flows[e.Rule].label)
			changed[e.Rule] = c
			anyChanged = anyChanged || c
		}
	}
	p := pre.p
	p.stores = prev.stores
	res := prevTrace
	if anyChanged {
		edges := make([]explore.Edge, len(prevTrace.Edges))
		copy(edges, prevTrace.Edges)
		labels := make([]lts.Label, len(edges))
		for i := range edges {
			if edges[i].Rule >= 0 && changed[edges[i].Rule] {
				edges[i].Label = pre.cm.flows[edges[i].Rule].label
			}
			labels[i] = edges[i].Label
		}
		graph, err := prev.Graph.Relabeled(labels)
		if err != nil {
			return nil, nil, nil, err
		}
		p.Graph = graph
		res = prevTrace.WithEdges(edges)
	} else {
		p.Graph = prev.Graph
	}
	if recomputeVectors {
		n := res.NumStates
		hasWords := pre.cm.codec.hasWords
		vecSlab := make([]uint64, n*hasWords)
		if err := fillVectors(ctx, pre.cm, res, vecSlab, g.opts.Workers); err != nil {
			return nil, nil, nil, err
		}
		ids := prev.Graph.StateIDs()
		p.vectors = make(map[lts.StateID]StateVector, n)
		for i := 0; i < n; i++ {
			lo, hi := i*hasWords, (i+1)*hasWords
			p.vectors[ids[i]] = StateVector{words: vecSlab[lo:hi:hi], vocab: pre.cm.vocab}
		}
	} else {
		p.vectors = prev.vectors
	}
	report := &ExploreReport{
		Mode: "replay", DeltaKind: delta.Kind.String(),
		AffectedReaders: len(delta.AffectedReaders),
		States:          res.NumStates, StatesExplored: 0,
	}
	return p, res, report, nil
}

// labelsEqual reports whether two transition labels have identical content
// (DeepEqual, following the label pointers). Used to detect which declared
// flows actually changed labels across a metadata delta.
func labelsEqual(a, b lts.Label) bool {
	return reflect.DeepEqual(a, b)
}

// replayExpander expands a state by replaying the previous trace's recorded
// successors: declared-flow edges reuse the old target states outright (the
// structure is unchanged, so the old targets are exactly what re-applying the
// flows would produce), potential reads of unaffected readers reuse the old
// target and label with the rule re-encoded against the new reader tables,
// and only affected readers are recomputed from the compiled model. States
// absent from the old trace — reachable only through changed policy — are
// expanded cold.
type replayExpander struct {
	cm   *compiledModel
	mode PotentialReadMode
	prev *explore.Result
	idx  []int32
	// affected[si] holds the reader actors of store si whose read access
	// changed; readerIdx[si] maps actor name to the NEW reader index.
	affected  []map[string]bool
	readerIdx []map[string]int
	cold      atomic.Int64
}

func newReplayExpander(cm *compiledModel, mode PotentialReadMode, prev *explore.Result, delta *explore.Delta) *replayExpander {
	rx := &replayExpander{cm: cm, mode: mode, prev: prev, idx: prev.EdgeIndex()}
	rx.affected = make([]map[string]bool, len(cm.stores))
	rx.readerIdx = make([]map[string]int, len(cm.stores))
	storeIdx := make(map[string]int, len(cm.stores))
	for si := range cm.stores {
		storeIdx[cm.stores[si].id] = si
		m := make(map[string]int, len(cm.stores[si].readers))
		for ri := range cm.stores[si].readers {
			m[cm.stores[si].readers[ri].actor] = ri
		}
		rx.readerIdx[si] = m
	}
	for _, rk := range delta.AffectedReaders {
		si, ok := storeIdx[rk.Datastore]
		if !ok {
			continue
		}
		if rx.affected[si] == nil {
			rx.affected[si] = make(map[string]bool)
		}
		rx.affected[si][rk.Actor] = true
	}
	return rx
}

func (e *replayExpander) Words() int        { return e.cm.codec.totalWords }
func (e *replayExpander) Initial() []uint64 { return e.cm.codec.newState() }

func (e *replayExpander) Expand(ps []uint64, sink *explore.Sink) {
	sc := scratchOf(sink, e.cm, nil)
	sid, ok := e.prev.Lookup(ps)
	if !ok || !e.prev.WasExpanded(sid) {
		e.cold.Add(1)
		expandInto(e.cm, ps, sink, sc, e.mode, nil)
		return
	}
	edges := e.prev.Edges[e.idx[sid]:e.idx[sid+1]]
	i := 0
	for ; i < len(edges) && edges[i].Rule >= 0; i++ {
		ed := &edges[i]
		sink.Emit(e.prev.StateWords(ed.To), ed.Rule, e.cm.flows[ed.Rule].label, false)
	}
	if e.mode == PotentialReadsOff {
		return
	}
	terminal := e.mode == PotentialReadsTerminal
	for si := range e.cm.stores {
		start := i
		for i < len(edges) {
			s2, _ := decodePotentialRule(edges[i].Rule)
			if s2 != si {
				break
			}
			i++
		}
		old := edges[start:i]
		aff := e.affected[si]
		if len(aff) == 0 {
			// No reader of this store changed: reuse every old edge, with the
			// rule re-encoded against the new reader table.
			for oi := range old {
				ed := &old[oi]
				actor := ed.Label.(*TransitionLabel).Actor
				sink.Emit(e.prev.StateWords(ed.To), encodePotentialRule(si, e.readerIdx[si][actor]), ed.Label, terminal)
			}
			continue
		}
		// Merge: walk the new reader table (sorted by actor, like the old
		// edges); affected readers are recomputed, the rest reuse their old
		// edge if one exists.
		readers := e.cm.stores[si].readers
		oi := 0
		for ri := range readers {
			actor := readers[ri].actor
			if aff[actor] {
				emitPotential(e.cm, ps, si, ri, terminal, sink, sc, nil)
				continue
			}
			for oi < len(old) && old[oi].Label.(*TransitionLabel).Actor < actor {
				oi++
			}
			if oi < len(old) && old[oi].Label.(*TransitionLabel).Actor == actor {
				ed := &old[oi]
				oi++
				sink.Emit(e.prev.StateWords(ed.To), encodePotentialRule(si, ri), ed.Label, terminal)
			}
		}
	}
}
