package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/synth"
	"privascope/internal/testutil"
)

func TestGenerateContextPreCancelled(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.GenerateContext(ctx, casestudy.Surgery())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateContextCancelledMidBFS(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	model := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})

	// Time an uncancelled run so the test is meaningful on any hardware: the
	// cancel must land while the BFS is still exploring.
	start := time.Now()
	if _, err := core.GenerateWithOptionsContext(context.Background(), model,
		core.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 10)
		cancel()
	}()
	p, err := core.GenerateWithOptionsContext(ctx, model, core.Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p != nil {
		t.Fatal("cancelled generation returned a partial model")
	}
}

func TestGenerateContextDeadline(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	model := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := core.GenerateWithOptionsContext(ctx, model, core.Options{Workers: 8})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestGenerateContextBackgroundMatchesGenerate: the context-free API is a
// thin wrapper; both paths must produce identical models.
func TestGenerateContextBackgroundMatchesGenerate(t *testing.T) {
	model := casestudy.Surgery()
	viaContext, err := core.GenerateContext(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Generate(model)
	if err != nil {
		t.Fatal(err)
	}
	if ltsDigest(t, viaContext) != ltsDigest(t, direct) {
		t.Error("GenerateContext(background) and Generate produced different models")
	}
}
