package core

import (
	"context"
	"math/bits"
	"sort"
	"sync/atomic"

	"privascope/internal/explore"
)

// Symmetry-reduced exploration. explore.DetectOrbits proposes groups of
// interchangeable actors from the declared model; buildSymPlan re-verifies
// each group against the compiled gate/effect masks (the ground truth of
// exploration) and precomputes, per orbit member, the packed-state bit ranges
// that hold the member's private state: its has-segment block plus the
// control bits of the services it owns. Swapping two members' blocks is then
// exactly the state permutation induced by swapping the actors.
//
// Generation runs in two phases. Phase 1 explores the QUOTIENT space: every
// successor is canonicalised (member blocks sorted within each orbit), so
// only one representative per orbit of states is ever expanded. Phase 2
// explores the full space again, but expands each state by looking up its
// canonical form in the quotient and replaying the recorded successor rules
// mapped through the block permutation — no gate evaluation, no successor
// enumeration. The replayed rules are re-applied concretely and re-sorted
// into the model's enumeration order, so the final Result is byte-identical
// to a cold full exploration.

// bitRange is a contiguous run of bits of a packedState (bit b lives in word
// b/64 at position b%64).
type bitRange struct {
	start, n int
}

// symMember is one actor of an orbit: its bit ranges (has block, then one
// control range per owned service, in ascending service order) and its flows
// (concatenated over owned services, in enumeration order).
type symMember struct {
	actor    string
	ranges   []bitRange
	flowIdxs []int
	// svcFlowCounts is the per-owned-service flow count, for structural
	// pairing checks.
	svcFlowCounts []int
}

type symOrbit struct {
	members    []symMember
	blockBits  int
	blockWords int
}

// flowRef locates a flow inside the plan: member pos within its orbit.
type flowRef struct {
	orbit, member, pos int
}

type actorRef struct {
	orbit, member int
}

// symPlan is the verified symmetry structure of one compiled model.
type symPlan struct {
	cm     *compiledModel
	orbits []symOrbit
	// flowInfo maps a global flow index to its orbit position; flows of
	// non-orbit actors are absent.
	flowInfo map[int]flowRef
	// actorInfo maps an orbit actor to its position.
	actorInfo map[string]actorRef
	// readerByActor maps, per store, reader actor name to reader index.
	readerByActor []map[string]int
}

// canonScratch is the per-worker canonicalisation scratch: one block buffer
// and permutation slice per orbit.
type canonScratch struct {
	blocks [][]uint64
	perm   [][]int
}

func (p *symPlan) newScratch() *canonScratch {
	sc := &canonScratch{blocks: make([][]uint64, len(p.orbits)), perm: make([][]int, len(p.orbits))}
	for i := range p.orbits {
		o := &p.orbits[i]
		sc.blocks[i] = make([]uint64, len(o.members)*o.blockWords)
		sc.perm[i] = make([]int, len(o.members))
	}
	return sc
}

// buildSymPlan turns detected orbits into a verified plan, or nil when no
// orbit survives verification.
func buildSymPlan(cm *compiledModel, orbitActors [][]string) *symPlan {
	if len(orbitActors) == 0 {
		return nil
	}
	numFields := len(cm.vocab.fields)
	p := &symPlan{
		cm:        cm,
		flowInfo:  make(map[int]flowRef),
		actorInfo: make(map[string]actorRef),
	}
	p.readerByActor = make([]map[string]int, len(cm.stores))
	for si := range cm.stores {
		m := make(map[string]int, len(cm.stores[si].readers))
		for ri := range cm.stores[si].readers {
			m[cm.stores[si].readers[ri].actor] = ri
		}
		p.readerByActor[si] = m
	}

	// Which services reference which actors (by flow endpoints).
	svcActors := make([]map[string]bool, len(cm.services))
	for svcIdx := range cm.services {
		refs := make(map[string]bool)
		for _, fi := range cm.services[svcIdx].flowIdxs {
			f := &cm.flows[fi].flow
			refs[f.From] = true
			refs[f.To] = true
		}
		svcActors[svcIdx] = refs
	}

orbitLoop:
	for _, actors := range orbitActors {
		orbit := symOrbit{}
		for _, actor := range actors {
			ai, ok := cm.vocab.actorIndex[actor]
			if !ok {
				continue orbitLoop
			}
			mem := symMember{actor: actor}
			mem.ranges = append(mem.ranges, bitRange{start: ai * 2 * numFields, n: 2 * numFields})
			for svcIdx := range cm.services {
				if !svcActors[svcIdx][actor] {
					continue
				}
				mem.ranges = append(mem.ranges, cm.ctrlRange(svcIdx))
				mem.flowIdxs = append(mem.flowIdxs, cm.services[svcIdx].flowIdxs...)
				mem.svcFlowCounts = append(mem.svcFlowCounts, len(cm.services[svcIdx].flowIdxs))
			}
			orbit.members = append(orbit.members, mem)
		}
		// Structural pairing: every member must expose the same range shape,
		// flow count, and per-service flow counts.
		first := &orbit.members[0]
		for mi := 1; mi < len(orbit.members); mi++ {
			m := &orbit.members[mi]
			if len(m.ranges) != len(first.ranges) || len(m.flowIdxs) != len(first.flowIdxs) ||
				len(m.svcFlowCounts) != len(first.svcFlowCounts) {
				continue orbitLoop
			}
			for j := range m.ranges {
				if m.ranges[j].n != first.ranges[j].n {
					continue orbitLoop
				}
			}
			for j := range m.svcFlowCounts {
				if m.svcFlowCounts[j] != first.svcFlowCounts[j] {
					continue orbitLoop
				}
			}
		}
		for _, r := range first.ranges {
			orbit.blockBits += r.n
		}
		if orbit.blockBits == 0 {
			continue
		}
		orbit.blockWords = (orbit.blockBits + 63) / 64

		oi := len(p.orbits)
		p.orbits = append(p.orbits, orbit)
		if !p.verifyOrbit(oi) {
			p.orbits = p.orbits[:oi]
			continue
		}
		for mi := range orbit.members {
			p.actorInfo[orbit.members[mi].actor] = actorRef{orbit: oi, member: mi}
			for pos, fi := range orbit.members[mi].flowIdxs {
				p.flowInfo[fi] = flowRef{orbit: oi, member: mi, pos: pos}
			}
		}
	}
	if len(p.orbits) == 0 {
		return nil
	}
	return p
}

// ctrlRange returns the control-segment bit range of one service: its 16-bit
// progress counter under OrderSequential, its (contiguous) fired-flow bits
// under OrderDataDriven.
func (cm *compiledModel) ctrlRange(svcIdx int) bitRange {
	c := cm.codec
	if c.ordering == OrderDataDriven {
		flows := cm.services[svcIdx].flowIdxs
		if len(flows) == 0 {
			return bitRange{start: c.ctrlBase * 64, n: 0}
		}
		return bitRange{start: c.ctrlBase*64 + flows[0], n: len(flows)}
	}
	return bitRange{start: (c.ctrlBase+svcIdx/4)*64 + (svcIdx%4)*16, n: 16}
}

// verifyOrbit checks, for every adjacent transposition of the orbit's
// members, that the compiled model maps onto itself: paired flows have
// identical store effects and bit-permuted gate/set masks, every other flow
// is invariant under the transposition, and the two actors' potential-read
// tables correspond. Adjacent transpositions generate the full permutation
// group of the orbit.
func (p *symPlan) verifyOrbit(oi int) bool {
	cm := p.cm
	o := &p.orbits[oi]
	for k := 0; k+1 < len(o.members); k++ {
		a, b := &o.members[k], &o.members[k+1]
		mapBit := func(bit int) int {
			for j := range a.ranges {
				ra, rb := a.ranges[j], b.ranges[j]
				if bit >= ra.start && bit < ra.start+ra.n {
					return rb.start + (bit - ra.start)
				}
				if bit >= rb.start && bit < rb.start+rb.n {
					return ra.start + (bit - rb.start)
				}
			}
			return bit
		}
		pairedFlow := make(map[int]int, 2*len(a.flowIdxs))
		for pos := range a.flowIdxs {
			pairedFlow[a.flowIdxs[pos]] = b.flowIdxs[pos]
			pairedFlow[b.flowIdxs[pos]] = a.flowIdxs[pos]
		}
		for fi := range cm.flows {
			gi, ok := pairedFlow[fi]
			if !ok {
				gi = fi
			}
			f, g := &cm.flows[fi], &cm.flows[gi]
			if f.action != g.action || f.valid != g.valid || f.impossible != g.impossible ||
				f.gateStore != g.gateStore || f.storeIdx != g.storeIdx {
				return false
			}
			if !uint64SlicesEqual(f.gateStoreMask, g.gateStoreMask) ||
				!uint64SlicesEqual(f.storeOr, g.storeOr) ||
				!uint64SlicesEqual(f.storeClear, g.storeClear) {
				return false
			}
			if !masksEqualUnderMap(f.gateHas, g.gateHas, mapBit) ||
				!masksEqualUnderMap(f.setHas, g.setHas, mapBit) {
				return false
			}
		}
		for si := range cm.stores {
			cs := &cm.stores[si]
			ra, okA := p.readerByActor[si][a.actor]
			rb, okB := p.readerByActor[si][b.actor]
			if okA != okB {
				return false
			}
			if !okA {
				continue
			}
			fa, fb := cs.readers[ra].fields, cs.readers[rb].fields
			if len(fa) != len(fb) {
				return false
			}
			for j := range fa {
				if fa[j].name != fb[j].name || fa[j].word != fb[j].word || fa[j].mask != fb[j].mask {
					return false
				}
				ha, hb := fa[j].has, fb[j].has
				if (ha.mask == 0) != (hb.mask == 0) {
					return false
				}
				if ha.mask != 0 && mapBit(bitOfMask(ha)) != bitOfMask(hb) {
					return false
				}
			}
		}
	}
	return true
}

func bitOfMask(wm wordMask) int { return wm.word*64 + bits.TrailingZeros64(wm.mask) }

func uint64SlicesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// masksEqualUnderMap reports whether mapping every bit of a through mapBit
// yields exactly the bit set of b.
func masksEqualUnderMap(a, b []wordMask, mapBit func(int) int) bool {
	var ab, bb []int
	for _, wm := range a {
		m := wm.mask
		for m != 0 {
			ab = append(ab, mapBit(wm.word*64+bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	for _, wm := range b {
		m := wm.mask
		for m != 0 {
			bb = append(bb, wm.word*64+bits.TrailingZeros64(m))
			m &= m - 1
		}
	}
	if len(ab) != len(bb) {
		return false
	}
	sort.Ints(ab)
	sort.Ints(bb)
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// copyBits copies n bits from src starting at srcBit to dst starting at
// dstBit. Ranges must not overlap within one slice.
func copyBits(dst []uint64, dstBit int, src []uint64, srcBit int, n int) {
	for n > 0 {
		chunk := 64 - srcBit%64
		if c := 64 - dstBit%64; c < chunk {
			chunk = c
		}
		if chunk > n {
			chunk = n
		}
		mask := ^uint64(0)
		if chunk < 64 {
			mask = (1 << uint(chunk)) - 1
		}
		b := (src[srcBit/64] >> uint(srcBit%64)) & mask
		dst[dstBit/64] = dst[dstBit/64]&^(mask<<uint(dstBit%64)) | b<<uint(dstBit%64)
		srcBit += chunk
		dstBit += chunk
		n -= chunk
	}
}

// canonicalizeInto writes the canonical form of src into dst (len
// totalWords): within each orbit, member blocks are extracted, stably sorted,
// and written back. sc.perm[orbit][slot] records which original member's
// block landed in each slot — the permutation phase 2 maps rules through.
func (p *symPlan) canonicalizeInto(src, dst []uint64, sc *canonScratch) {
	copy(dst, src)
	for oi := range p.orbits {
		o := &p.orbits[oi]
		bw := o.blockWords
		blocks := sc.blocks[oi]
		perm := sc.perm[oi]
		for mi := range o.members {
			blk := blocks[mi*bw : (mi+1)*bw]
			off := 0
			for _, r := range o.members[mi].ranges {
				copyBits(blk, off, dst, r.start, r.n)
				off += r.n
			}
			perm[mi] = mi
		}
		changed := false
		for i := 1; i < len(perm); i++ {
			for j := i; j > 0 && blockLess(blocks, bw, perm[j], perm[j-1]); j-- {
				perm[j], perm[j-1] = perm[j-1], perm[j]
				changed = true
			}
		}
		if !changed {
			continue
		}
		for slot, mi := range perm {
			if mi == slot {
				continue
			}
			blk := blocks[mi*bw : (mi+1)*bw]
			off := 0
			for _, r := range o.members[slot].ranges {
				copyBits(dst, r.start, blk, off, r.n)
				off += r.n
			}
		}
	}
}

// blockLess orders member blocks lexicographically by their words.
func blockLess(blocks []uint64, bw, i, j int) bool {
	a := blocks[i*bw : (i+1)*bw]
	b := blocks[j*bw : (j+1)*bw]
	for w := range a {
		if a[w] != b[w] {
			return a[w] < b[w]
		}
	}
	return false
}

// mapRule maps a rule recorded against a canonical state into the frame of
// the concrete state whose canonicalisation produced perm: slot j of the
// canonical state holds the block of concrete member perm[j], so a canonical
// rule of member j corresponds to the concrete rule of member perm[j].
func (p *symPlan) mapRule(rule int32, sc *canonScratch) int32 {
	if rule >= 0 {
		if fr, ok := p.flowInfo[int(rule)]; ok {
			perm := sc.perm[fr.orbit]
			return int32(p.orbits[fr.orbit].members[perm[fr.member]].flowIdxs[fr.pos])
		}
		return rule
	}
	si, ri := decodePotentialRule(rule)
	actor := p.cm.stores[si].readers[ri].actor
	if ar, ok := p.actorInfo[actor]; ok {
		perm := sc.perm[ar.orbit]
		mapped := p.orbits[ar.orbit].members[perm[ar.member]].actor
		ri = p.readerByActor[si][mapped]
	}
	return encodePotentialRule(si, ri)
}

// mappedRule is one replayed rule with its enumeration-order sort key.
type mappedRule struct {
	key  int
	rule int32
}

// ruleKey orders rules exactly as expandInto enumerates them: declared flows
// by global flow index (enumeration is service-major, matching the global
// order), then potential reads by (store, reader).
func ruleKey(rule int32) int {
	if rule >= 0 {
		return int(rule)
	}
	si, ri := decodePotentialRule(rule)
	return 1<<30 + si<<16 + ri
}

// quotientExpander explores the quotient space: cold expansion with every
// successor canonicalised.
type quotientExpander struct {
	cm   *compiledModel
	plan *symPlan
	mode PotentialReadMode
}

func (e *quotientExpander) Words() int        { return e.cm.codec.totalWords }
func (e *quotientExpander) Initial() []uint64 { return e.cm.codec.newState() }

func (e *quotientExpander) Expand(ps []uint64, sink *explore.Sink) {
	expandInto(e.cm, ps, sink, scratchOf(sink, e.cm, e.plan), e.mode, e.plan)
}

// symFullExpander explores the full space by replaying the quotient: each
// state is canonicalised, its quotient successors' rules are mapped through
// the block permutation, sorted back into enumeration order, and re-applied
// concretely. States whose canonical form was not expanded in the quotient
// (terminal representatives) fall back to cold expansion.
type symFullExpander struct {
	cm       *compiledModel
	plan     *symPlan
	mode     PotentialReadMode
	quotient *explore.Result
	qIdx     []int32
	cold     atomic.Int64
}

func (e *symFullExpander) Words() int        { return e.cm.codec.totalWords }
func (e *symFullExpander) Initial() []uint64 { return e.cm.codec.newState() }

func (e *symFullExpander) Expand(ps []uint64, sink *explore.Sink) {
	sc := scratchOf(sink, e.cm, e.plan)
	e.plan.canonicalizeInto(ps, sc.canonState, sc.canon)
	qid, ok := e.quotient.Lookup(sc.canonState)
	if !ok || !e.quotient.WasExpanded(qid) {
		e.cold.Add(1)
		expandInto(e.cm, ps, sink, sc, e.mode, nil)
		return
	}
	edges := e.quotient.Edges[e.qIdx[qid]:e.qIdx[qid+1]]
	sc.mapped = sc.mapped[:0]
	for i := range edges {
		rule := e.plan.mapRule(edges[i].Rule, sc.canon)
		sc.mapped = append(sc.mapped, mappedRule{key: ruleKey(rule), rule: rule})
	}
	for i := 1; i < len(sc.mapped); i++ {
		for j := i; j > 0 && sc.mapped[j].key < sc.mapped[j-1].key; j-- {
			sc.mapped[j], sc.mapped[j-1] = sc.mapped[j-1], sc.mapped[j]
		}
	}
	terminal := e.mode == PotentialReadsTerminal
	for _, mr := range sc.mapped {
		if mr.rule >= 0 {
			emitFlow(e.cm, ps, &e.cm.flows[mr.rule], sink, sc, nil)
		} else {
			si, ri := decodePotentialRule(mr.rule)
			emitPotential(e.cm, ps, si, ri, terminal, sink, sc, nil)
		}
	}
}

// runSymmetry generates with symmetry reduction: quotient exploration first,
// then the replayed full exploration. Models without verified symmetry run
// the plain cold path.
func (g *Generator) runSymmetry(ctx context.Context, cm *compiledModel) (*explore.Result, *ExploreReport, error) {
	plan := buildSymPlan(cm, explore.DetectOrbits(cm.model))
	if plan == nil {
		res, err := explore.Run(ctx, g.exploreConfig(), &coldExpander{cm: cm, mode: g.opts.PotentialReads})
		return res, &ExploreReport{Mode: "full"}, err
	}
	q, err := explore.Run(ctx, g.exploreConfig(), &quotientExpander{cm: cm, plan: plan, mode: g.opts.PotentialReads})
	if err != nil {
		return nil, nil, err
	}
	fx := &symFullExpander{cm: cm, plan: plan, mode: g.opts.PotentialReads, quotient: q, qIdx: q.EdgeIndex()}
	res, err := explore.Run(ctx, g.exploreConfig(), fx)
	if err != nil {
		return nil, nil, err
	}
	report := &ExploreReport{
		Mode:            "symmetry",
		CanonicalStates: q.NumStates,
		Orbits:          len(plan.orbits),
		ColdExpanded:    int(fx.cold.Load()),
	}
	for i := range plan.orbits {
		report.OrbitActors += len(plan.orbits[i].members)
	}
	return res, report, nil
}
