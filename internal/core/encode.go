package core

import "encoding/binary"

// packedState is the compact exploration state of the generator: one flat
// vector of uint64 words holding, in order,
//
//   - the "has" bits of the privacy state vector (Vocabulary layout),
//   - one field-occupancy bitmask per datastore (stateCodec field layout),
//   - a control segment: per-service 16-bit progress counters under
//     OrderSequential, or a fired-flow bitset under OrderDataDriven.
//
// Two exploration states are equal exactly when their packed words are equal,
// so the byte image of the words is the canonical fixed-width hash key of the
// state. Compared with the string-built keys the generator used previously,
// a packed state is a single allocation, copies with memmove, and hashes
// without any sorting or formatting.
type packedState []uint64

// clone returns an independent copy of the packed state.
func (ps packedState) clone() packedState {
	out := make(packedState, len(ps))
	copy(out, ps)
	return out
}

// wordMask addresses a group of bits within one word of a packedState (or of
// a StateVector's words). Precompiled gate and apply masks are lists of
// wordMasks merged per word, so firing a flow is a handful of OR/AND-NOT ops.
type wordMask struct {
	word int
	mask uint64
}

// addBit merges a bit position into a per-word-merged mask list.
func addBit(masks []wordMask, bit int) []wordMask {
	word, mask := bit/64, uint64(1)<<uint(bit%64)
	for i := range masks {
		if masks[i].word == word {
			masks[i].mask |= mask
			return masks
		}
	}
	return append(masks, wordMask{word: word, mask: mask})
}

// stateCodec fixes the binary layout of packedState for one (model, flow
// ordering) pair. All offsets are in words.
type stateCodec struct {
	ordering FlowOrdering

	// hasWords is the length of the "has" segment (== Vocabulary.wordsPerVec;
	// the could bits are derived, never stored).
	hasWords int
	// storeWords is the length of each datastore's occupancy bitmask.
	storeWords int
	numStores  int
	// ctrlBase is the word offset of the control segment.
	ctrlBase   int
	totalWords int

	// storeFields is the sorted universe of names a datastore can hold: every
	// model field plus its pseudonymised (_anon) counterpart. The bit of a
	// field inside a store mask is its index here.
	storeFields     []string
	storeFieldIndex map[string]int
}

func newStateCodec(hasWords int, storeFields []string, numStores, numServices, numFlows int, ordering FlowOrdering) *stateCodec {
	c := &stateCodec{
		ordering:        ordering,
		hasWords:        hasWords,
		storeFields:     storeFields,
		storeFieldIndex: make(map[string]int, len(storeFields)),
		numStores:       numStores,
	}
	for i, f := range storeFields {
		c.storeFieldIndex[f] = i
	}
	c.storeWords = (len(storeFields) + 63) / 64
	c.ctrlBase = c.hasWords + numStores*c.storeWords
	ctrlWords := 0
	if ordering == OrderDataDriven {
		ctrlWords = (numFlows + 63) / 64
	} else {
		// Four 16-bit progress counters per word.
		ctrlWords = (numServices + 3) / 4
	}
	c.totalWords = c.ctrlBase + ctrlWords
	return c
}

// newState returns the all-zero packed state: the absolute privacy state with
// empty datastores and no service progress.
func (c *stateCodec) newState() packedState { return make(packedState, c.totalWords) }

// storeBase returns the word offset of the given datastore's mask segment.
func (c *stateCodec) storeBase(storeIdx int) int { return c.hasWords + storeIdx*c.storeWords }

// progress returns the index of the next flow of the given service
// (OrderSequential layout).
func (c *stateCodec) progress(ps packedState, svcIdx int) int {
	shift := uint(svcIdx%4) * 16
	return int(ps[c.ctrlBase+svcIdx/4] >> shift & 0xffff)
}

// bumpProgress advances the given service's progress counter by one.
func (c *stateCodec) bumpProgress(ps packedState, svcIdx int) {
	shift := uint(svcIdx%4) * 16
	ps[c.ctrlBase+svcIdx/4] += 1 << shift
}

// fired reports whether the flow has executed (OrderDataDriven layout).
func (c *stateCodec) fired(ps packedState, flowIdx int) bool {
	return ps[c.ctrlBase+flowIdx/64]&(1<<uint(flowIdx%64)) != 0
}

// setFired marks the flow as executed.
func (c *stateCodec) setFired(ps packedState, flowIdx int) {
	ps[c.ctrlBase+flowIdx/64] |= 1 << uint(flowIdx%64)
}

// keyOf returns the canonical fixed-width key of the state: the little-endian
// byte image of its words. Used to hash states into the sharded visited set.
func (c *stateCodec) keyOf(ps packedState) string {
	buf := make([]byte, len(ps)*8)
	for i, w := range ps {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return string(buf)
}
