package core

import (
	"context"
	"encoding/binary"
	"strconv"
	"sync"

	"privascope/internal/explore"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// assemble materialises the PrivacyLTS payload — state IDs, public vectors,
// decoded store contents, and the transition graph — from a finished
// exploration result. The per-state products are batch-allocated: one slab
// holds every public vector, store contents are decoded once per distinct
// store-segment image and shared between states (the maps are read-only
// through the PrivacyLTS API), and the graph is bulk-built via lts.FromParts.
func assemble(ctx context.Context, p *PrivacyLTS, cm *compiledModel, res *explore.Result, workers int) error {
	n := res.NumStates
	w := res.Words
	hasWords := cm.codec.hasWords

	ids := make([]lts.StateID, n)
	var idBuf []byte
	for i := range ids {
		idBuf = append(idBuf[:0], 's')
		idBuf = strconv.AppendInt(idBuf, int64(i), 10)
		ids[i] = lts.StateID(idBuf)
	}

	vecSlab := make([]uint64, n*hasWords)
	if err := fillVectors(ctx, cm, res, vecSlab, workers); err != nil {
		return err
	}

	p.vectors = make(map[lts.StateID]StateVector, n)
	p.stores = make(map[lts.StateID]map[string]schema.FieldSet, n)
	storeSegLo, storeSegHi := hasWords, cm.codec.ctrlBase
	storeCache := make(map[string]map[string]schema.FieldSet)
	var keyBuf []byte
	for i := 0; i < n; i++ {
		id := ids[i]
		lo, hi := i*hasWords, (i+1)*hasWords
		p.vectors[id] = StateVector{words: vecSlab[lo:hi:hi], vocab: cm.vocab}

		base := i * w
		keyBuf = keyBuf[:0]
		for _, word := range res.States[base+storeSegLo : base+storeSegHi] {
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, word)
		}
		sm, ok := storeCache[string(keyBuf)]
		if !ok {
			sm = cm.decodeStores(res.StateWords(int32(i)))
			storeCache[string(keyBuf)] = sm
		}
		p.stores[id] = sm
	}

	bulk := make([]lts.BulkEdge, len(res.Edges))
	for i := range res.Edges {
		e := &res.Edges[i]
		bulk[i] = lts.BulkEdge{From: e.From, To: e.To, Label: e.Label}
	}
	graph, err := lts.FromParts(ids, 0, bulk)
	if err != nil {
		return err
	}
	p.Graph = graph
	return nil
}

// fillVectors computes every state's public vector into the shared slab,
// splitting the state range across workers (the computation is per-state
// independent). Cancellation is polled every few thousand states.
func fillVectors(ctx context.Context, cm *compiledModel, res *explore.Result, vecSlab []uint64, workers int) error {
	n := res.NumStates
	hasWords := cm.codec.hasWords
	fill := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			cm.publicVectorInto(res.StateWords(int32(i)), vecSlab[i*hasWords:(i+1)*hasWords])
		}
		return nil
	}
	if workers <= 1 || n < 4096 {
		return fill(0, n)
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi) //nolint:errcheck // the join below re-checks ctx
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
