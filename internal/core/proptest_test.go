package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/synth"
	"privascope/internal/testutil"
)

// TestPropWorkerCountDeterminism generalises the fixed-model determinism
// tests of parallel_test.go to the random corpus: for every drawn scenario,
// generation with 2 and 8 workers produces models byte-identical to the
// single-worker reference.
func TestPropWorkerCountDeterminism(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		opts := s.Opts
		opts.Workers = 1
		ref, err := core.GenerateWithOptions(s.Model, opts)
		if err != nil {
			return err
		}
		want := ltsDigest(t, ref)
		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			p, err := core.GenerateWithOptions(s.Model, opts)
			if err != nil {
				return err
			}
			if got := ltsDigest(t, p); got != want {
				t.Fatalf("seed %d: digest with %d workers differs from 1 worker:\n%s\nvs\n%s",
					seed, workers, got, want)
			}
		}
		return nil
	})
}

// TestPropGeneratedModelInvariants runs the structural invariant catalog of
// invariants_test.go over random scenarios: Has implies Could, Has is
// monotone along transitions, the initial state is the absolute privacy
// state with everything reachable from it, and every transition carries a
// complete label.
func TestPropGeneratedModelInvariants(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}

		vec, ok := p.Vector(p.InitialState())
		if !ok || !vec.IsZero() {
			t.Fatalf("seed %d: initial state is not the absolute privacy state", seed)
		}
		unreachable, err := p.Graph.UnreachableStates()
		if err != nil {
			return err
		}
		if len(unreachable) != 0 {
			t.Fatalf("seed %d: unreachable states generated: %v", seed, unreachable)
		}

		for _, id := range p.States() {
			v, ok := p.Vector(id)
			if !ok {
				t.Fatalf("seed %d: state %s has no vector", seed, id)
			}
			for _, actor := range p.Vocab.Actors() {
				for _, field := range p.Vocab.Fields() {
					if v.Has(actor, field) && !v.Could(actor, field) {
						t.Fatalf("seed %d: state %s: has(%s,%s) without could", seed, id, actor, field)
					}
				}
			}
		}

		for _, tr := range p.Graph.Transitions() {
			label := core.LabelOf(tr)
			if label == nil {
				t.Fatalf("seed %d: transition %v has no TransitionLabel", seed, tr)
			}
			if !label.Action.Valid() || label.Actor == "" || len(label.Fields) == 0 {
				t.Fatalf("seed %d: transition %s has an incomplete label", seed, tr)
			}
			from, _ := p.Vector(tr.From)
			to, _ := p.Vector(tr.To)
			for _, actor := range p.Vocab.Actors() {
				for _, field := range p.Vocab.Fields() {
					if from.Has(actor, field) && !to.Has(actor, field) {
						t.Fatalf("seed %d: transition %s loses has(%s, %s)", seed, tr, actor, field)
					}
				}
			}
		}
		return nil
	})
}

// TestPropWarningsMonotoneUnderGrantRemoval is the "removing a permission
// never removes a violation" metamorphic property: dropping a grant from the
// policy can only keep or grow the set of policy-consistency warnings,
// because every warning reports a flow whose actor lacks a permission.
func TestPropWarningsMonotoneUnderGrantRemoval(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		m := synth.RandomModel(rng, synth.RandomModelSpec{Policy: synth.PolicyACL})
		p, err := core.Generate(m)
		if err != nil {
			return err
		}
		before := make(map[string]bool, len(p.Warnings))
		for _, w := range p.Warnings {
			before[w] = true
		}

		grants := m.Policy.(*accesscontrol.ACL).Grants()
		if len(grants) == 0 {
			return nil
		}
		reduced := append([]accesscontrol.Grant(nil), grants...)
		drop := rng.Intn(len(reduced))
		reduced = append(reduced[:drop], reduced[drop+1:]...)

		restricted := *m
		restricted.Policy = accesscontrol.MustACL(reduced...)
		q, err := core.Generate(&restricted)
		if err != nil {
			return err
		}
		after := make(map[string]bool, len(q.Warnings))
		for _, w := range q.Warnings {
			after[w] = true
		}
		for w := range before {
			if !after[w] {
				t.Fatalf("seed %d: dropping grant %d removed warning %q", seed, drop, w)
			}
		}
		return nil
	})
}

// TestPropMinimizedQuotientIsExact: the payload-respecting quotient maps
// every state to a representative with an identical privacy vector and
// identical store contents, never grows the state count, keeps the initial
// state mapped, and carries every original transition as a quotient
// transition with the same label.
func TestPropMinimizedQuotientIsExact(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		q, mapping := p.Minimized()

		if q.Graph.StateCount() > p.Graph.StateCount() {
			t.Fatalf("seed %d: quotient has %d states, original %d",
				seed, q.Graph.StateCount(), p.Graph.StateCount())
		}
		if got, want := q.InitialState(), mapping[p.InitialState()]; got != want {
			t.Fatalf("seed %d: quotient initial state %s, want %s", seed, got, want)
		}

		for _, id := range p.States() {
			rep, ok := mapping[id]
			if !ok {
				t.Fatalf("seed %d: state %s missing from quotient mapping", seed, id)
			}
			origVec, _ := p.Vector(id)
			repVec, ok := q.Vector(rep)
			if !ok || !origVec.Equal(repVec) {
				t.Fatalf("seed %d: state %s merged into %s with a different privacy vector", seed, id, rep)
			}
			for _, d := range p.Model.Datastores {
				origFS := p.StoreContents(id, d.ID)
				repFS := q.StoreContents(rep, d.ID)
				if !origFS.Equal(repFS) {
					t.Fatalf("seed %d: state %s merged into %s with different %s contents",
						seed, id, rep, d.ID)
				}
			}
		}

		type edge struct{ from, to, label string }
		quotientEdges := make(map[edge]bool, q.Graph.TransitionCount())
		for _, tr := range q.Graph.Transitions() {
			quotientEdges[edge{string(tr.From), string(tr.To), tr.Label.LabelString()}] = true
		}
		for _, tr := range p.Graph.Transitions() {
			e := edge{string(mapping[tr.From]), string(mapping[tr.To]), tr.Label.LabelString()}
			if !quotientEdges[e] {
				t.Fatalf("seed %d: original transition %v has no quotient image", seed, tr)
			}
		}
		return nil
	})
}

// TestPropGenerationCancellationIsClean: cancelling generation of a random
// model mid-flight returns the context error (or a complete model, if
// generation won the race) and strands no goroutines.
func TestPropGenerationCancellationIsClean(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := core.GenerateWithOptionsContext(ctx, s.Model, s.Opts)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: cancelled generation returned %v, want context.Canceled or nil", seed, err)
		}
		return nil
	})
}
