package core_test

import (
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/synth"
)

// generatedModels returns a spread of generated privacy LTSs: the two case
// studies and several synthetic models of increasing size, under both flow
// orderings.
func generatedModels(t *testing.T) map[string]*core.PrivacyLTS {
	t.Helper()
	out := make(map[string]*core.PrivacyLTS)
	add := func(name string, p *core.PrivacyLTS, err error) {
		if err != nil {
			t.Fatalf("generate %s: %v", name, err)
		}
		out[name] = p
	}

	surgery := casestudy.Surgery()
	p, err := core.Generate(surgery)
	add("surgery/sequential", p, err)
	p, err = core.GenerateWithOptions(surgery, core.Options{FlowOrdering: core.OrderDataDriven})
	add("surgery/data-driven", p, err)
	p, err = core.GenerateWithOptions(casestudy.Metrics(), core.Options{
		FlowOrdering: core.OrderDataDriven, PotentialReads: core.PotentialReadsFull,
	})
	add("metrics/full-potential", p, err)

	for _, services := range []int{1, 2, 3} {
		model := synth.Model(synth.ModelSpec{Services: services, FieldsPerService: 2, ExtraActors: 1})
		p, err := core.Generate(model)
		add(model.Name, p, err)
	}
	return out
}

// TestInvariantHasImpliesCould: an actor who has identified a field can, by
// definition, identify it — every Has variable must be accompanied by the
// corresponding Could variable in every reachable state.
func TestInvariantHasImpliesCould(t *testing.T) {
	for name, p := range generatedModels(t) {
		for _, id := range p.States() {
			vec, ok := p.Vector(id)
			if !ok {
				t.Fatalf("%s: state %s has no vector", name, id)
			}
			for _, actor := range p.Vocab.Actors() {
				for _, field := range p.Vocab.Fields() {
					if vec.Has(actor, field) && !vec.Could(actor, field) {
						t.Errorf("%s: state %s: has(%s,%s) without could(%s,%s)",
							name, id, actor, field, actor, field)
					}
				}
			}
		}
	}
}

// TestInvariantHasMonotoneAlongTransitions: knowledge cannot be un-learned —
// along every transition, the set of Has variables of the target state is a
// superset of the source state's (deleting data only affects what actors
// could still obtain, not what they already identified).
func TestInvariantHasMonotoneAlongTransitions(t *testing.T) {
	for name, p := range generatedModels(t) {
		for _, tr := range p.Graph.Transitions() {
			from, _ := p.Vector(tr.From)
			to, _ := p.Vector(tr.To)
			for _, actor := range p.Vocab.Actors() {
				for _, field := range p.Vocab.Fields() {
					if from.Has(actor, field) && !to.Has(actor, field) {
						t.Errorf("%s: transition %s loses has(%s, %s)", name, tr, actor, field)
					}
				}
			}
		}
	}
}

// TestInvariantInitialStateIsAbsolute: the initial state is the absolute
// privacy state (no variable true) and every state is reachable from it.
func TestInvariantInitialStateIsAbsolute(t *testing.T) {
	for name, p := range generatedModels(t) {
		vec, ok := p.Vector(p.InitialState())
		if !ok || !vec.IsZero() {
			t.Errorf("%s: initial state is not the absolute privacy state", name)
		}
		unreachable, err := p.Graph.UnreachableStates()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(unreachable) != 0 {
			t.Errorf("%s: unreachable states generated: %v", name, unreachable)
		}
	}
}

// TestInvariantPotentialReadsOnlyAddHasForTheirActor: a potential read by an
// actor changes only that actor's variables, and only Has/Could of the fields
// it reads.
func TestInvariantPotentialReadsOnlyAddHasForTheirActor(t *testing.T) {
	for name, p := range generatedModels(t) {
		for _, tr := range p.PotentialTransitions() {
			label := core.LabelOf(tr)
			readFields := make(map[string]bool, len(label.Fields))
			for _, f := range label.Fields {
				readFields[f] = true
			}
			for _, v := range p.ChangeOf(tr) {
				if v.Actor != label.Actor {
					t.Errorf("%s: potential read %s changed variable %s of another actor", name, tr, v)
				}
				if !readFields[v.Field] {
					t.Errorf("%s: potential read %s changed variable %s outside its field set", name, tr, v)
				}
			}
		}
	}
}

// TestInvariantLabelsAreComplete: every transition carries a TransitionLabel
// with a valid action, a non-empty actor and at least one field.
func TestInvariantLabelsAreComplete(t *testing.T) {
	for name, p := range generatedModels(t) {
		for _, tr := range p.Graph.Transitions() {
			label := core.LabelOf(tr)
			if label == nil {
				t.Fatalf("%s: transition %v has no TransitionLabel", name, tr)
			}
			if !label.Action.Valid() {
				t.Errorf("%s: transition %s has invalid action", name, tr)
			}
			if label.Actor == "" {
				t.Errorf("%s: transition %s has no actor", name, tr)
			}
			if len(label.Fields) == 0 {
				t.Errorf("%s: transition %s has no fields", name, tr)
			}
		}
	}
}

// TestInvariantDeterministicGeneration: generating the same model twice
// yields byte-identical structure (state IDs, transition order, labels).
func TestInvariantDeterministicGeneration(t *testing.T) {
	model := casestudy.Surgery()
	first, err := core.Generate(model)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := core.Generate(model)
		if err != nil {
			t.Fatal(err)
		}
		if first.Graph.StateCount() != again.Graph.StateCount() ||
			first.Graph.TransitionCount() != again.Graph.TransitionCount() {
			t.Fatalf("generation is not deterministic in size")
		}
		a := first.Graph.Transitions()
		b := again.Graph.Transitions()
		for j := range a {
			if a[j].From != b[j].From || a[j].To != b[j].To ||
				a[j].Label.LabelString() != b[j].Label.LabelString() {
				t.Fatalf("generation is not deterministic at transition %d: %v vs %v", j, a[j], b[j])
			}
		}
		if first.DOT(core.DOTOptions{}) != again.DOT(core.DOTOptions{}) {
			t.Fatal("DOT rendering is not deterministic")
		}
	}
}

// TestInvariantSequentialIsSubsetOfDataDriven: every state vector reachable
// under sequential ordering is also reachable under data-driven ordering
// (data-driven only relaxes the gating).
func TestInvariantSequentialIsSubsetOfDataDriven(t *testing.T) {
	model := casestudy.Surgery()
	seq, err := core.GenerateWithOptions(model, core.Options{PotentialReads: core.PotentialReadsOff})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := core.GenerateWithOptions(model, core.Options{
		FlowOrdering: core.OrderDataDriven, PotentialReads: core.PotentialReadsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	ddVectors := make(map[string]bool)
	for _, id := range dd.States() {
		vec, _ := dd.Vector(id)
		ddVectors[vec.Key()] = true
	}
	for _, id := range seq.States() {
		vec, _ := seq.Vector(id)
		if !ddVectors[vec.Key()] {
			t.Errorf("sequential state %s (vector %s) unreachable under data-driven ordering", id, vec)
		}
	}
}
