package core

import (
	"privascope/internal/explore"
)

// Rule tags recorded into explore.Edge.Rule, the expander-defined edge
// provenance the incremental replayer keys on:
//
//   - a declared flow is tagged with its global flow index (>= 0);
//   - a potential read of store si by reader ri (index into the compiled
//     store's sorted reader list) is tagged -(1 + si<<16 + ri).
//
// The reader's actor is additionally recoverable from the edge label, which
// is what replay uses across compilations (reader indices shift when grants
// change; actor names do not).
func encodePotentialRule(si, ri int) int32 { return -int32(1 + si<<16 + ri) }

func decodePotentialRule(rule int32) (si, ri int) {
	v := int(-rule - 1)
	return v >> 16, v & 0xffff
}

// expandScratch is the per-worker scratch of every expander: reusable field
// and key buffers, the potential-read label cache (labels are deduplicated by
// (store, reader, field subset), so steady-state expansion allocates no
// labels), and the symmetry canonicalisation buffers when a plan is active.
type expandScratch struct {
	fields []string
	keyBuf []byte
	labels map[string]*TransitionLabel

	canon      *canonScratch
	canonState []uint64
	mapped     []mappedRule
}

// scratchOf returns the worker's scratch, creating it on first use.
func scratchOf(sink *explore.Sink, cm *compiledModel, plan *symPlan) *expandScratch {
	if sc, ok := sink.Scratch.(*expandScratch); ok {
		return sc
	}
	sc := &expandScratch{labels: make(map[string]*TransitionLabel)}
	if plan != nil {
		sc.canon = plan.newScratch()
		sc.canonState = make([]uint64, cm.codec.totalWords)
	}
	sink.Scratch = sc
	return sc
}

// applyFlowInto applies the flow's effect to next, which must already be a
// copy of the predecessor state.
func applyFlowInto(cm *compiledModel, next packedState, cf *compiledFlow) {
	for _, wm := range cf.setHas {
		next[wm.word] |= wm.mask
	}
	if cf.storeIdx >= 0 {
		base := cm.codec.storeBase(cf.storeIdx)
		if cf.action == ActionDelete {
			for w, m := range cf.storeClear {
				next[base+w] &^= m
			}
		} else {
			for w, m := range cf.storeOr {
				next[base+w] |= m
			}
		}
	}
	if cm.codec.ordering == OrderDataDriven {
		cm.codec.setFired(next, cf.flowIdx)
	} else {
		cm.codec.bumpProgress(next, cf.svcIdx)
	}
}

// emitFlow emits the declared flow's successor of ps to the sink.
func emitFlow(cm *compiledModel, ps packedState, cf *compiledFlow, sink *explore.Sink, sc *expandScratch, plan *symPlan) {
	next := packedState(sink.Copy(ps))
	applyFlowInto(cm, next, cf)
	if plan != nil {
		c := sink.Alloc()
		plan.canonicalizeInto(next, c, sc.canon)
		next = c
	}
	sink.Emit(next, int32(cf.flowIdx), cf.label, false)
}

// emitPotential emits the potential read of store si by reader ri, if the
// reader can learn anything in ps (the store holds a readable field the actor
// has not identified). The label is served from the worker's cache keyed by
// (store, reader, field subset), matching NewTransitionLabel's output
// byte-for-byte.
func emitPotential(cm *compiledModel, ps packedState, si, ri int, terminal bool, sink *explore.Sink, sc *expandScratch, plan *symPlan) {
	cs := &cm.stores[si]
	r := &cs.readers[ri]
	sc.fields = sc.fields[:0]
	sc.keyBuf = append(sc.keyBuf[:0], byte(si), byte(si>>8), byte(ri), byte(ri>>8))
	for fi := range r.fields {
		rf := &r.fields[fi]
		if ps[cs.base+rf.word]&rf.mask == 0 {
			continue // field not in the store
		}
		if rf.has.mask != 0 && ps[rf.has.word]&rf.has.mask != 0 {
			continue // actor already identified it
		}
		sc.fields = append(sc.fields, rf.name)
		sc.keyBuf = append(sc.keyBuf, byte(fi), byte(fi>>8))
	}
	if len(sc.fields) == 0 {
		return
	}
	label, ok := sc.labels[string(sc.keyBuf)]
	if !ok {
		label = NewTransitionLabel(ActionRead, r.actor, sc.fields)
		label.Datastore = cs.id
		label.Potential = true
		sc.labels[string(sc.keyBuf)] = label
	}
	next := packedState(sink.Copy(ps))
	for fi := range r.fields {
		rf := &r.fields[fi]
		if next[cs.base+rf.word]&rf.mask != 0 {
			next[rf.has.word] |= rf.has.mask
		}
	}
	if plan != nil {
		c := sink.Alloc()
		plan.canonicalizeInto(next, c, sc.canon)
		next = c
	}
	sink.Emit(next, encodePotentialRule(si, ri), label, terminal)
}

// expandInto enumerates every successor of ps into the sink in the
// deterministic order of the original in-core BFS: declared flows (services
// in sorted order under OrderSequential, global flow order under
// OrderDataDriven), then potential reads (stores in DatastoreIDs order,
// readers in sorted actor order). With a non-nil plan, every successor is
// canonicalised before being emitted (the quotient exploration of symmetry
// reduction).
func expandInto(cm *compiledModel, ps packedState, sink *explore.Sink, sc *expandScratch, mode PotentialReadMode, plan *symPlan) {
	if cm.codec.ordering == OrderDataDriven {
		for i := range cm.flows {
			cf := &cm.flows[i]
			if cm.codec.fired(ps, cf.flowIdx) || !cm.enabled(cf, ps) {
				continue
			}
			emitFlow(cm, ps, cf, sink, sc, plan)
		}
	} else {
		for svcIdx := range cm.services {
			svc := &cm.services[svcIdx]
			idx := cm.codec.progress(ps, svcIdx)
			if idx >= len(svc.flowIdxs) {
				continue
			}
			cf := &cm.flows[svc.flowIdxs[idx]]
			if !cm.enabled(cf, ps) {
				continue
			}
			emitFlow(cm, ps, cf, sink, sc, plan)
		}
	}

	if mode == PotentialReadsOff {
		return
	}
	terminal := mode == PotentialReadsTerminal
	for si := range cm.stores {
		cs := &cm.stores[si]
		empty := true
		for w := 0; w < cm.codec.storeWords; w++ {
			if ps[cs.base+w] != 0 {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		for ri := range cs.readers {
			emitPotential(cm, ps, si, ri, terminal, sink, sc, plan)
		}
	}
}

// coldExpander is the plain full-exploration expander: every state is
// expanded against the compiled model.
type coldExpander struct {
	cm   *compiledModel
	mode PotentialReadMode
}

func (e *coldExpander) Words() int        { return e.cm.codec.totalWords }
func (e *coldExpander) Initial() []uint64 { return e.cm.codec.newState() }

func (e *coldExpander) Expand(ps []uint64, sink *explore.Sink) {
	expandInto(e.cm, ps, sink, scratchOf(sink, e.cm, nil), e.mode, nil)
}
