// Package core implements the paper's primary contribution: the automatic
// generation of a formal, state-based model of user privacy — a Labelled
// Transition System (LTS) — from a data-flow model of the system and its
// access-control policies (Section II-B).
//
// Each state of the generated LTS carries 2 × |actors| × |fields| Boolean
// state variables: for every (actor, field) pair, whether the actor HAS
// identified the field and whether the actor COULD identify the field. Each
// transition is an action on personal data (collect, create, read, disclose,
// anon, delete) labelled with the fields, the datastore schema involved, the
// actor performing it, and the purpose.
//
// The extraction rules that map data-flow arrows to actions are those of the
// paper:
//
//   - user  -> actor      : collect
//   - actor -> actor      : disclose
//   - actor -> datastore  : create (anon when the store is anonymised,
//     delete when the flow is marked Delete)
//   - datastore -> actor  : read
//
// Flows of different services interleave; within one service flows execute
// either in their declared order or data-driven (Options.FlowOrdering).
// Beyond the flows the developer declared, the generator can also add
// "potential read" transitions: reads that the access-control policy permits
// even though no flow performs them. These are exactly the events the risk
// analysis of Section III-A attaches likelihood and impact to.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"privascope/internal/dataflow"
)

// VarKind distinguishes the two Boolean state variables kept per
// (actor, field) pair.
type VarKind int

// Variable kinds: HasIdentified records that the actor has actually
// identified the field; CouldIdentify records that the actor is in a position
// to identify it (for example because it sits in a datastore the actor may
// read).
const (
	HasIdentified VarKind = iota + 1
	CouldIdentify
)

// String returns "has" or "could".
func (k VarKind) String() string {
	switch k {
	case HasIdentified:
		return "has"
	case CouldIdentify:
		return "could"
	default:
		return "varkind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Variable names one Boolean state variable of a privacy state.
type Variable struct {
	Actor string
	Field string
	Kind  VarKind
}

// String renders the variable, e.g. "could(administrator, diagnosis)".
func (v Variable) String() string {
	return fmt.Sprintf("%s(%s, %s)", v.Kind, v.Actor, v.Field)
}

// Vocabulary fixes the ordering of actors and fields so that state vectors
// from the same model are comparable. It is derived from the data-flow model:
// the actors are the model's actors (excluding the data subject) and the
// fields are the union of every field in any flow or datastore schema.
type Vocabulary struct {
	actors      []string
	fields      []string
	actorIndex  map[string]int
	fieldIndex  map[string]int
	numVars     int
	wordsPerVec int
}

// NewVocabulary builds a vocabulary from explicit actor and field lists. The
// lists are copied and sorted.
func NewVocabulary(actors, fields []string) *Vocabulary {
	v := &Vocabulary{
		actors: append([]string(nil), actors...),
		fields: append([]string(nil), fields...),
	}
	sort.Strings(v.actors)
	sort.Strings(v.fields)
	v.actorIndex = make(map[string]int, len(v.actors))
	for i, a := range v.actors {
		v.actorIndex[a] = i
	}
	v.fieldIndex = make(map[string]int, len(v.fields))
	for i, f := range v.fields {
		v.fieldIndex[f] = i
	}
	v.numVars = 2 * len(v.actors) * len(v.fields)
	v.wordsPerVec = (v.numVars + 63) / 64
	if v.wordsPerVec == 0 {
		v.wordsPerVec = 1
	}
	return v
}

// VocabularyFromModel derives the vocabulary from a data-flow model.
func VocabularyFromModel(m *dataflow.Model) *Vocabulary {
	return NewVocabulary(m.ActorIDs(), m.FieldUniverse())
}

// Actors returns the actors in vocabulary order.
func (v *Vocabulary) Actors() []string { return append([]string(nil), v.actors...) }

// Fields returns the fields in vocabulary order.
func (v *Vocabulary) Fields() []string { return append([]string(nil), v.fields...) }

// NumVariables returns 2 × |actors| × |fields|, the number of Boolean state
// variables of each privacy state (60 for the paper's healthcare example).
func (v *Vocabulary) NumVariables() int { return v.numVars }

// HasActor reports whether the actor is part of the vocabulary.
func (v *Vocabulary) HasActor(actor string) bool {
	_, ok := v.actorIndex[actor]
	return ok
}

// HasField reports whether the field is part of the vocabulary.
func (v *Vocabulary) HasField(field string) bool {
	_, ok := v.fieldIndex[field]
	return ok
}

// index returns the bit position of the variable, or -1 when the actor or
// field is not in the vocabulary.
func (v *Vocabulary) index(actor, field string, kind VarKind) int {
	ai, ok := v.actorIndex[actor]
	if !ok {
		return -1
	}
	fi, ok := v.fieldIndex[field]
	if !ok {
		return -1
	}
	k := 0
	if kind == CouldIdentify {
		k = 1
	}
	return (ai*len(v.fields)+fi)*2 + k
}

// Variable returns the Variable at the given bit position.
func (v *Vocabulary) Variable(bit int) (Variable, bool) {
	if bit < 0 || bit >= v.numVars {
		return Variable{}, false
	}
	kind := HasIdentified
	if bit%2 == 1 {
		kind = CouldIdentify
	}
	pair := bit / 2
	fi := pair % len(v.fields)
	ai := pair / len(v.fields)
	return Variable{Actor: v.actors[ai], Field: v.fields[fi], Kind: kind}, true
}

// NewVector returns an all-false state vector for this vocabulary: the
// "absolute privacy state" the paper measures sensitivity changes against.
func (v *Vocabulary) NewVector() StateVector {
	return StateVector{words: make([]uint64, v.wordsPerVec), vocab: v}
}

// StateVector is the set of Boolean state variables of one privacy state,
// stored as a bitset. Vectors are value types; Clone before mutating shared
// ones.
type StateVector struct {
	words []uint64
	vocab *Vocabulary
}

// Clone returns an independent copy of the vector.
func (s StateVector) Clone() StateVector {
	out := StateVector{words: make([]uint64, len(s.words)), vocab: s.vocab}
	copy(out.words, s.words)
	return out
}

// Set sets the variable for (actor, field, kind) to true. Unknown actors or
// fields are ignored, which lets callers handle fields outside the
// vocabulary (such as another user's data) without special cases.
func (s StateVector) Set(actor, field string, kind VarKind) {
	bit := s.vocab.index(actor, field, kind)
	if bit < 0 {
		return
	}
	s.words[bit/64] |= 1 << uint(bit%64)
}

// Clear sets the variable to false.
func (s StateVector) Clear(actor, field string, kind VarKind) {
	bit := s.vocab.index(actor, field, kind)
	if bit < 0 {
		return
	}
	s.words[bit/64] &^= 1 << uint(bit%64)
}

// Get reports the value of the variable. Unknown actors or fields are false.
func (s StateVector) Get(actor, field string, kind VarKind) bool {
	bit := s.vocab.index(actor, field, kind)
	if bit < 0 {
		return false
	}
	return s.words[bit/64]&(1<<uint(bit%64)) != 0
}

// Has reports whether the actor has identified the field in this state.
func (s StateVector) Has(actor, field string) bool { return s.Get(actor, field, HasIdentified) }

// Could reports whether the actor could identify the field in this state.
func (s StateVector) Could(actor, field string) bool { return s.Get(actor, field, CouldIdentify) }

// IsZero reports whether every variable is false (the absolute privacy
// state).
func (s StateVector) IsZero() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether both vectors have identical variables. Vectors from
// different vocabularies are never equal.
func (s StateVector) Equal(other StateVector) bool {
	if s.vocab != other.vocab || len(s.words) != len(other.words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Key returns a compact canonical string for the vector, used when hashing
// exploration states.
func (s StateVector) Key() string {
	var b strings.Builder
	for _, w := range s.words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// CountTrue returns the number of variables that are true.
func (s StateVector) CountTrue() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// TrueVariables returns every variable that is true, in vocabulary order.
func (s StateVector) TrueVariables() []Variable {
	var out []Variable
	for bit := 0; bit < s.vocab.numVars; bit++ {
		if s.words[bit/64]&(1<<uint(bit%64)) != 0 {
			if v, ok := s.vocab.Variable(bit); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// NewlyTrue returns the variables that are true in s but false in prev: the
// change a transition caused. Both vectors must share a vocabulary.
func (s StateVector) NewlyTrue(prev StateVector) []Variable {
	var out []Variable
	for bit := 0; bit < s.vocab.numVars; bit++ {
		mask := uint64(1) << uint(bit%64)
		if s.words[bit/64]&mask != 0 && (len(prev.words) <= bit/64 || prev.words[bit/64]&mask == 0) {
			if v, ok := s.vocab.Variable(bit); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// String renders the true variables of the vector, e.g.
// "{has(doctor, name), could(nurse, name)}". The absolute privacy state
// renders as "{}".
func (s StateVector) String() string {
	vars := s.TrueVariables()
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
