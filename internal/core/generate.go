package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// FlowOrdering controls how flows within one service are sequenced during
// state-space exploration.
type FlowOrdering int

// Flow orderings. OrderSequential executes each service's flows in their
// declared numeric order (the paper labels every flow arrow with "a numeric
// value indicating the order in which the data flow is executed");
// OrderDataDriven lets any not-yet-executed flow of a service fire as soon as
// its source node holds the required data ("the flows can be executed
// independently, provided the start node has the correct data to flow").
// Services always interleave with each other in both modes.
const (
	OrderSequential FlowOrdering = iota + 1
	OrderDataDriven
)

// PotentialReadMode controls whether the generator adds "potential read"
// transitions: reads permitted by the access-control policy that no declared
// flow performs. They represent the disclosure events risk analysis assesses
// (Section III-A: "the read action ... impacts the likelihood of a disclosure
// of a user's personal data").
type PotentialReadMode int

// Potential-read modes. PotentialReadsOff adds none; PotentialReadsTerminal
// (the default) adds the transitions but does not continue exploration from
// their target states, keeping the model compact; PotentialReadsFull explores
// the targets like any other state.
const (
	PotentialReadsOff PotentialReadMode = iota + 1
	PotentialReadsTerminal
	PotentialReadsFull
)

// DefaultMaxStates bounds exploration so a mis-specified model cannot consume
// unbounded memory; Generate returns ErrStateSpaceTooLarge when it is hit.
const DefaultMaxStates = 250000

// ErrStateSpaceTooLarge is returned when exploration exceeds Options.MaxStates.
var ErrStateSpaceTooLarge = errors.New("core: state space exceeds the configured maximum; simplify the model or raise Options.MaxStates")

// Options configures privacy-LTS generation. The zero value selects the
// defaults (sequential flows, terminal potential reads, DefaultMaxStates, one
// worker per available CPU).
type Options struct {
	FlowOrdering   FlowOrdering
	PotentialReads PotentialReadMode
	// MaxStates caps the number of generated states; zero means
	// DefaultMaxStates.
	MaxStates int
	// Workers is the number of goroutines expanding the BFS frontier in
	// parallel; zero or negative means runtime.GOMAXPROCS(0). The generated
	// LTS — state IDs, transition order, initial state — is byte-identical
	// for every worker count: workers only expand states of one frontier
	// generation concurrently, and their discoveries are merged
	// deterministically in frontier order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.FlowOrdering == 0 {
		o.FlowOrdering = OrderSequential
	}
	if o.PotentialReads == 0 {
		o.PotentialReads = PotentialReadsTerminal
	}
	if o.MaxStates == 0 {
		o.MaxStates = DefaultMaxStates
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// visitedShardCount is the number of shards of the visited set; a power of
// two so the hash maps to a shard with a mask.
const visitedShardCount = 64

// visitedSet is the sharded map of explored state keys. Workers look
// candidate successors up concurrently (read locks on the key's shard) to
// decide whether to precompute per-state data; only the single-threaded merge
// phase inserts. Sharding keeps the per-map load small and the lock windows
// independent.
type visitedSet struct {
	shards [visitedShardCount]visitedShard
}

type visitedShard struct {
	mu sync.RWMutex
	m  map[string]lts.StateID
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[string]lts.StateID)
	}
	return v
}

// shardFor hashes the key (FNV-1a) onto its shard.
func (v *visitedSet) shardFor(key string) *visitedShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &v.shards[h&(visitedShardCount-1)]
}

func (v *visitedSet) lookup(key string) (lts.StateID, bool) {
	s := v.shardFor(key)
	s.mu.RLock()
	id, ok := s.m[key]
	s.mu.RUnlock()
	return id, ok
}

func (v *visitedSet) insert(key string, id lts.StateID) {
	s := v.shardFor(key)
	s.mu.Lock()
	s.m[key] = id
	s.mu.Unlock()
}

// Generator builds privacy LTSs from data-flow models. A single Generator
// may be reused across models.
type Generator struct {
	opts Options
}

// NewGenerator returns a generator with the given options.
func NewGenerator(opts Options) *Generator {
	return &Generator{opts: opts.withDefaults()}
}

// Generate builds the privacy LTS for the model using default options.
func Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	return NewGenerator(Options{}).Generate(m)
}

// GenerateWithOptions builds the privacy LTS using the supplied options.
func GenerateWithOptions(m *dataflow.Model, opts Options) (*PrivacyLTS, error) {
	return NewGenerator(opts).Generate(m)
}

// GenerateContext builds the privacy LTS with default options, honouring
// cancellation and deadlines carried by ctx.
func GenerateContext(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, error) {
	return NewGenerator(Options{}).GenerateContext(ctx, m)
}

// GenerateWithOptionsContext builds the privacy LTS using the supplied
// options, honouring cancellation and deadlines carried by ctx.
func GenerateWithOptionsContext(ctx context.Context, m *dataflow.Model, opts Options) (*PrivacyLTS, error) {
	return NewGenerator(opts).GenerateContext(ctx, m)
}

// Generate builds the privacy LTS for the model. It is GenerateContext with
// a background context: generation runs to completion (or error) without an
// external cancellation point.
func (g *Generator) Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	return g.GenerateContext(context.Background(), m)
}

// GenerateContext builds the privacy LTS for the model.
//
// Exploration is a level-synchronised parallel BFS over a compact binary
// state encoding: the model is compiled once (per-flow gate and effect
// masks, potential-read tables), each frontier generation is expanded by
// Options.Workers goroutines that hash candidate successors into a sharded
// visited set, and the discoveries are merged on one goroutine in frontier
// order, which makes state numbering and transition order deterministic
// regardless of the worker count.
//
// Cancellation is observed at state granularity: every exploration worker
// polls ctx before expanding each frontier state and the merge loop polls it
// between generations, so a cancelled context aborts mid-BFS and returns
// ctx.Err() promptly, with every worker goroutine joined before the call
// returns (none leak).
func (g *Generator) GenerateContext(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, error) {
	if m == nil {
		return nil, errors.New("core: model must not be nil")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid model: %w", err)
	}
	vocab := VocabularyFromModel(m)
	p := &PrivacyLTS{
		Model:   m,
		Vocab:   vocab,
		Graph:   lts.New(),
		vectors: make(map[lts.StateID]StateVector),
		stores:  make(map[lts.StateID]map[string]schema.FieldSet),
	}
	policy := m.Policy
	if policy == nil {
		policy = &accesscontrol.ACL{}
		p.Warnings = append(p.Warnings,
			"model has no access-control policy attached; no 'could identify' variables or potential reads will be derived")
	}
	g.checkPolicyConsistency(m, policy, p)

	// The packed encoding keeps one 16-bit progress counter per service.
	for _, svcID := range m.ServiceIDs() {
		if n := len(m.ServiceFlows(svcID)); n > 0xffff {
			return nil, fmt.Errorf("core: service %q has %d flows; the exploration encoding supports at most %d per service", svcID, n, 0xffff)
		}
	}

	cm := compileModel(m, policy, vocab, g.opts.FlowOrdering)
	visited := newVisitedSet()

	initial := cm.codec.newState()
	initID := lts.StateID("s0")
	visited.insert(cm.codec.keyOf(initial), initID)
	p.Graph.AddState(initID, nil)
	p.Graph.SetInitial(initID)
	p.vectors[initID] = cm.publicVector(initial)
	p.stores[initID] = cm.decodeStores(initial)
	stateCount := 1

	frontier := []packedState{initial}
	frontierIDs := []lts.StateID{initID}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Expansion phase: workers grab frontier states and compute their
		// successor candidates, including (speculatively, for states not yet
		// in the visited set) the public vector and store contents.
		results := make([][]candidate, len(frontier))
		if err := g.expandFrontier(ctx, cm, visited, frontier, results); err != nil {
			return nil, err
		}

		// Merge phase: single-threaded, in frontier order, so registration
		// order — and with it every state ID — is deterministic.
		var nextFrontier []packedState
		var nextIDs []lts.StateID
		for i, cands := range results {
			if stateCount > g.opts.MaxStates {
				return nil, fmt.Errorf("%w (limit %d)", ErrStateSpaceTooLarge, g.opts.MaxStates)
			}
			from := frontierIDs[i]
			for _, c := range cands {
				id := c.knownID
				isNew := false
				if !c.known {
					if existing, ok := visited.lookup(c.key); ok {
						// Discovered earlier in this same generation.
						id = existing
					} else {
						id = lts.StateID("s" + strconv.Itoa(stateCount))
						visited.insert(c.key, id)
						stateCount++
						p.Graph.AddState(id, nil)
						p.vectors[id] = c.vec
						p.stores[id] = c.stores
						isNew = true
					}
				}
				p.Graph.AddTransitionUnchecked(from, id, c.label)
				if isNew && !c.terminal {
					nextFrontier = append(nextFrontier, c.state)
					nextIDs = append(nextIDs, id)
				}
			}
		}
		frontier, frontierIDs = nextFrontier, nextIDs
	}
	return p, nil
}

// expandFrontier distributes the frontier over the worker pool; results[i]
// receives the candidates of frontier[i]. Workers poll ctx before expanding
// each state and the pool is always joined before returning, so cancellation
// is prompt and leaks nothing; the partially-filled results are discarded by
// the caller when an error is returned.
func (g *Generator) expandFrontier(ctx context.Context, cm *compiledModel, visited *visitedSet, frontier []packedState, results [][]candidate) error {
	workers := g.opts.Workers
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 {
		for i, ps := range frontier {
			if i&cancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			results[i] = cm.expand(ps, visited, g.opts.PotentialReads)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frontier) || ctx.Err() != nil {
					return
				}
				results[i] = cm.expand(frontier[i], visited, g.opts.PotentialReads)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// cancelCheckMask spaces out ctx polls on sequential hot loops: checking
// every state would put an atomic load in front of each (cheap) expansion,
// checking every 64th keeps cancellation latency far below a millisecond.
const cancelCheckMask = 63

// deriveAction applies the paper's extraction rules to a flow.
func deriveAction(m *dataflow.Model, f dataflow.Flow) (Action, bool) {
	fromKind, ok := m.NodeKindOf(f.From)
	if !ok {
		return 0, false
	}
	toKind, ok := m.NodeKindOf(f.To)
	if !ok {
		return 0, false
	}
	switch {
	case fromKind == dataflow.NodeUser && toKind == dataflow.NodeActor:
		return ActionCollect, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeActor:
		return ActionDisclose, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeDatastore:
		if f.Delete {
			return ActionDelete, true
		}
		if d, ok := m.Datastore(f.To); ok && d.Anonymised {
			return ActionAnon, true
		}
		return ActionCreate, true
	case fromKind == dataflow.NodeDatastore && toKind == dataflow.NodeActor:
		return ActionRead, true
	default:
		return 0, false
	}
}

// flowLabel builds the transition label for a declared flow.
func flowLabel(f dataflow.Flow, action Action) *TransitionLabel {
	label := NewTransitionLabel(action, "", f.Fields)
	label.Purpose = f.Purpose
	label.Service = f.Service
	label.FlowKey = f.Key()
	switch action {
	case ActionCollect:
		label.Actor = f.To
		label.Counterpart = f.From
	case ActionDisclose:
		label.Actor = f.From
		label.Counterpart = f.To
	case ActionCreate, ActionAnon, ActionDelete:
		label.Actor = f.From
		label.Datastore = f.To
	case ActionRead:
		label.Actor = f.To
		label.Datastore = f.From
	}
	if action == ActionAnon {
		anonNames := make([]string, 0, len(f.Fields))
		for _, field := range f.Fields {
			anonNames = append(anonNames, schema.AnonName(field))
		}
		sort.Strings(anonNames)
		label.Fields = anonNames
	}
	return label
}

// checkPolicyConsistency records a warning for every declared flow whose
// acting actor lacks the permission the flow requires (write for create/anon,
// delete for delete flows, read for read flows). Such flows represent a
// mismatch between the designed behaviour and the access-control policy.
func (g *Generator) checkPolicyConsistency(m *dataflow.Model, policy accesscontrol.Policy, p *PrivacyLTS) {
	for _, f := range m.Flows {
		action, ok := deriveAction(m, f)
		if !ok {
			continue
		}
		var actor, store string
		var perm accesscontrol.Permission
		fields := f.Fields
		switch action {
		case ActionCreate:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
		case ActionAnon:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
			anon := make([]string, 0, len(f.Fields))
			for _, field := range f.Fields {
				anon = append(anon, schema.AnonName(field))
			}
			fields = anon
		case ActionDelete:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionDelete
		case ActionRead:
			actor, store, perm = f.To, f.From, accesscontrol.PermissionRead
		default:
			continue
		}
		for _, field := range fields {
			if !policy.Allows(actor, store, field, perm) {
				p.Warnings = append(p.Warnings, fmt.Sprintf(
					"flow %s: actor %q lacks %s permission on %s.%s required by the declared flow",
					f.Key(), actor, perm, store, field))
			}
		}
	}
}
