package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// FlowOrdering controls how flows within one service are sequenced during
// state-space exploration.
type FlowOrdering int

// Flow orderings. OrderSequential executes each service's flows in their
// declared numeric order (the paper labels every flow arrow with "a numeric
// value indicating the order in which the data flow is executed");
// OrderDataDriven lets any not-yet-executed flow of a service fire as soon as
// its source node holds the required data ("the flows can be executed
// independently, provided the start node has the correct data to flow").
// Services always interleave with each other in both modes.
const (
	OrderSequential FlowOrdering = iota + 1
	OrderDataDriven
)

// PotentialReadMode controls whether the generator adds "potential read"
// transitions: reads permitted by the access-control policy that no declared
// flow performs. They represent the disclosure events risk analysis assesses
// (Section III-A: "the read action ... impacts the likelihood of a disclosure
// of a user's personal data").
type PotentialReadMode int

// Potential-read modes. PotentialReadsOff adds none; PotentialReadsTerminal
// (the default) adds the transitions but does not continue exploration from
// their target states, keeping the model compact; PotentialReadsFull explores
// the targets like any other state.
const (
	PotentialReadsOff PotentialReadMode = iota + 1
	PotentialReadsTerminal
	PotentialReadsFull
)

// DefaultMaxStates bounds exploration so a mis-specified model cannot consume
// unbounded memory; Generate returns ErrStateSpaceTooLarge when it is hit.
const DefaultMaxStates = 250000

// ErrStateSpaceTooLarge is returned when exploration exceeds Options.MaxStates.
var ErrStateSpaceTooLarge = errors.New("core: state space exceeds the configured maximum; simplify the model or raise Options.MaxStates")

// Options configures privacy-LTS generation. The zero value selects the
// defaults (sequential flows, terminal potential reads, DefaultMaxStates).
type Options struct {
	FlowOrdering   FlowOrdering
	PotentialReads PotentialReadMode
	// MaxStates caps the number of generated states; zero means
	// DefaultMaxStates.
	MaxStates int
}

func (o Options) withDefaults() Options {
	if o.FlowOrdering == 0 {
		o.FlowOrdering = OrderSequential
	}
	if o.PotentialReads == 0 {
		o.PotentialReads = PotentialReadsTerminal
	}
	if o.MaxStates == 0 {
		o.MaxStates = DefaultMaxStates
	}
	return o
}

// explState is the exploration key of the generator: the "has" variables set
// so far, the contents of every datastore, and each service's progress.
type explState struct {
	has      StateVector
	stores   map[string]schema.FieldSet
	progress map[string]int  // service -> index of next flow (sequential)
	fired    map[string]bool // flow key -> executed (data-driven)
}

func (e explState) key(ordering FlowOrdering) string {
	var b strings.Builder
	b.WriteString(e.has.Key())
	b.WriteString("|")
	storeIDs := make([]string, 0, len(e.stores))
	for id := range e.stores {
		storeIDs = append(storeIDs, id)
	}
	sort.Strings(storeIDs)
	for _, id := range storeIDs {
		fs := e.stores[id]
		if fs.IsEmpty() {
			continue
		}
		b.WriteString(id)
		b.WriteString("=")
		b.WriteString(strings.Join(fs.Names(), ","))
		b.WriteString(";")
	}
	b.WriteString("|")
	if ordering == OrderSequential {
		svcIDs := make([]string, 0, len(e.progress))
		for id := range e.progress {
			svcIDs = append(svcIDs, id)
		}
		sort.Strings(svcIDs)
		for _, id := range svcIDs {
			fmt.Fprintf(&b, "%s:%d;", id, e.progress[id])
		}
	} else {
		keys := make([]string, 0, len(e.fired))
		for k, v := range e.fired {
			if v {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		b.WriteString(strings.Join(keys, ";"))
	}
	return b.String()
}

func (e explState) clone() explState {
	out := explState{
		has:      e.has.Clone(),
		stores:   make(map[string]schema.FieldSet, len(e.stores)),
		progress: make(map[string]int, len(e.progress)),
		fired:    make(map[string]bool, len(e.fired)),
	}
	for k, v := range e.stores {
		out.stores[k] = v
	}
	for k, v := range e.progress {
		out.progress[k] = v
	}
	for k, v := range e.fired {
		out.fired[k] = v
	}
	return out
}

// Generator builds privacy LTSs from data-flow models. A single Generator
// may be reused across models.
type Generator struct {
	opts Options
}

// NewGenerator returns a generator with the given options.
func NewGenerator(opts Options) *Generator {
	return &Generator{opts: opts.withDefaults()}
}

// Generate builds the privacy LTS for the model using default options.
func Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	return NewGenerator(Options{}).Generate(m)
}

// GenerateWithOptions builds the privacy LTS using the supplied options.
func GenerateWithOptions(m *dataflow.Model, opts Options) (*PrivacyLTS, error) {
	return NewGenerator(opts).Generate(m)
}

// Generate builds the privacy LTS for the model.
func (g *Generator) Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	if m == nil {
		return nil, errors.New("core: model must not be nil")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid model: %w", err)
	}
	vocab := VocabularyFromModel(m)
	p := &PrivacyLTS{
		Model:   m,
		Vocab:   vocab,
		Graph:   lts.New(),
		vectors: make(map[lts.StateID]StateVector),
		stores:  make(map[lts.StateID]map[string]schema.FieldSet),
	}
	policy := m.Policy
	if policy == nil {
		policy = &accesscontrol.ACL{}
		p.Warnings = append(p.Warnings,
			"model has no access-control policy attached; no 'could identify' variables or potential reads will be derived")
	}
	g.checkPolicyConsistency(m, policy, p)

	initial := explState{
		has:      vocab.NewVector(),
		stores:   make(map[string]schema.FieldSet),
		progress: make(map[string]int),
		fired:    make(map[string]bool),
	}

	seen := make(map[string]lts.StateID)
	frozen := make(map[lts.StateID]bool) // potential-read targets not explored further
	var queue []explState
	var queueIDs []lts.StateID

	register := func(e explState) (lts.StateID, bool) {
		k := e.key(g.opts.FlowOrdering)
		if id, ok := seen[k]; ok {
			return id, false
		}
		id := lts.StateID(fmt.Sprintf("s%d", len(seen)))
		seen[k] = id
		vec := g.publicVector(m, policy, e)
		p.Graph.AddState(id, nil)
		p.vectors[id] = vec
		storeCopy := make(map[string]schema.FieldSet, len(e.stores))
		for sid, fs := range e.stores {
			storeCopy[sid] = fs
		}
		p.stores[id] = storeCopy
		return id, true
	}

	initID, _ := register(initial)
	p.Graph.SetInitial(initID)
	queue = append(queue, initial)
	queueIDs = append(queueIDs, initID)

	for len(queue) > 0 {
		cur := queue[0]
		curID := queueIDs[0]
		queue = queue[1:]
		queueIDs = queueIDs[1:]

		if len(seen) > g.opts.MaxStates {
			return nil, fmt.Errorf("%w (limit %d)", ErrStateSpaceTooLarge, g.opts.MaxStates)
		}

		// Declared flows.
		for _, step := range g.enabledFlows(m, cur, p) {
			next := g.applyFlow(m, cur, step)
			nextID, isNew := register(next)
			p.Graph.AddTransition(curID, nextID, g.flowLabel(m, step))
			if isNew && !frozen[nextID] {
				queue = append(queue, next)
				queueIDs = append(queueIDs, nextID)
			}
		}

		// Potential reads permitted by the policy.
		if g.opts.PotentialReads != PotentialReadsOff {
			for _, pr := range g.potentialReads(m, policy, cur) {
				next := g.applyPotentialRead(cur, pr)
				nextID, isNew := register(next)
				label := NewTransitionLabel(ActionRead, pr.actor, pr.fields)
				label.Datastore = pr.store
				label.Potential = true
				p.Graph.AddTransition(curID, nextID, label)
				if isNew {
					if g.opts.PotentialReads == PotentialReadsFull {
						queue = append(queue, next)
						queueIDs = append(queueIDs, nextID)
					} else {
						frozen[nextID] = true
					}
				}
			}
		}
	}
	return p, nil
}

// flowStep pairs a flow with its derived action.
type flowStep struct {
	flow   dataflow.Flow
	action Action
}

// enabledFlows returns the flows that may fire in the exploration state,
// respecting the configured ordering and the data-availability gating rule.
func (g *Generator) enabledFlows(m *dataflow.Model, cur explState, p *PrivacyLTS) []flowStep {
	var out []flowStep
	consider := func(f dataflow.Flow) {
		action, ok := g.deriveAction(m, f)
		if !ok {
			return
		}
		if g.gatingSatisfied(m, cur, f, action) {
			out = append(out, flowStep{flow: f, action: action})
		}
	}
	switch g.opts.FlowOrdering {
	case OrderDataDriven:
		for _, svcID := range m.ServiceIDs() {
			for _, f := range m.ServiceFlows(svcID) {
				if cur.fired[f.Key()] {
					continue
				}
				consider(f)
			}
		}
	default: // OrderSequential
		for _, svcID := range m.ServiceIDs() {
			flows := m.ServiceFlows(svcID)
			idx := cur.progress[svcID]
			if idx >= len(flows) {
				continue
			}
			consider(flows[idx])
		}
	}
	return out
}

// deriveAction applies the paper's extraction rules to a flow.
func (g *Generator) deriveAction(m *dataflow.Model, f dataflow.Flow) (Action, bool) {
	fromKind, ok := m.NodeKindOf(f.From)
	if !ok {
		return 0, false
	}
	toKind, ok := m.NodeKindOf(f.To)
	if !ok {
		return 0, false
	}
	switch {
	case fromKind == dataflow.NodeUser && toKind == dataflow.NodeActor:
		return ActionCollect, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeActor:
		return ActionDisclose, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeDatastore:
		if f.Delete {
			return ActionDelete, true
		}
		if d, ok := m.Datastore(f.To); ok && d.Anonymised {
			return ActionAnon, true
		}
		return ActionCreate, true
	case fromKind == dataflow.NodeDatastore && toKind == dataflow.NodeActor:
		return ActionRead, true
	default:
		return 0, false
	}
}

// gatingSatisfied implements the "start node has the correct data to flow"
// rule: actors must already hold (or author) the fields they send, and
// datastores must contain the fields read from them.
func (g *Generator) gatingSatisfied(m *dataflow.Model, cur explState, f dataflow.Flow, action Action) bool {
	switch action {
	case ActionCollect:
		return true // the data subject always holds their own data
	case ActionDisclose, ActionCreate, ActionAnon:
		authored := f.AuthoredSet()
		for _, field := range f.Fields {
			if authored.Contains(field) {
				continue
			}
			if !cur.has.Has(f.From, field) {
				return false
			}
		}
		return true
	case ActionDelete:
		contents := cur.stores[f.To]
		for _, field := range f.Fields {
			if !contents.Contains(field) {
				return false
			}
		}
		return true
	case ActionRead:
		contents := cur.stores[f.From]
		for _, field := range f.Fields {
			if !contents.Contains(field) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// applyFlow computes the successor exploration state after a flow fires.
func (g *Generator) applyFlow(m *dataflow.Model, cur explState, step flowStep) explState {
	next := cur.clone()
	f := step.flow
	switch step.action {
	case ActionCollect, ActionDisclose:
		for _, field := range f.Fields {
			next.has.Set(f.To, field, HasIdentified)
		}
		if step.action == ActionDisclose {
			for _, field := range f.Authored {
				next.has.Set(f.From, field, HasIdentified)
			}
		}
	case ActionCreate:
		for _, field := range f.Authored {
			next.has.Set(f.From, field, HasIdentified)
		}
		next.stores[f.To] = next.stores[f.To].Union(f.FieldSet())
	case ActionAnon:
		for _, field := range f.Authored {
			next.has.Set(f.From, field, HasIdentified)
		}
		anonNames := make([]string, 0, len(f.Fields))
		for _, field := range f.Fields {
			anonNames = append(anonNames, schema.AnonName(field))
		}
		next.stores[f.To] = next.stores[f.To].Union(schema.NewFieldSet(anonNames...))
	case ActionDelete:
		next.stores[f.To] = next.stores[f.To].Minus(f.FieldSet())
	case ActionRead:
		for _, field := range f.Fields {
			next.has.Set(f.To, field, HasIdentified)
		}
	}
	if g.opts.FlowOrdering == OrderDataDriven {
		next.fired[f.Key()] = true
	} else {
		next.progress[f.Service] = cur.progress[f.Service] + 1
	}
	return next
}

// flowLabel builds the transition label for a declared flow.
func (g *Generator) flowLabel(m *dataflow.Model, step flowStep) *TransitionLabel {
	f := step.flow
	label := NewTransitionLabel(step.action, "", f.Fields)
	label.Purpose = f.Purpose
	label.Service = f.Service
	label.FlowKey = f.Key()
	switch step.action {
	case ActionCollect:
		label.Actor = f.To
		label.Counterpart = f.From
	case ActionDisclose:
		label.Actor = f.From
		label.Counterpart = f.To
	case ActionCreate, ActionAnon, ActionDelete:
		label.Actor = f.From
		label.Datastore = f.To
	case ActionRead:
		label.Actor = f.To
		label.Datastore = f.From
	}
	if step.action == ActionAnon {
		anonNames := make([]string, 0, len(f.Fields))
		for _, field := range f.Fields {
			anonNames = append(anonNames, schema.AnonName(field))
		}
		sort.Strings(anonNames)
		label.Fields = anonNames
	}
	return label
}

// potentialRead describes a read the policy allows but no flow performs.
type potentialRead struct {
	actor  string
	store  string
	fields []string
}

// potentialReads enumerates, for the current state, every (actor, datastore)
// pair where the actor may read fields currently held by the store that the
// actor has not yet identified. One potential read per pair is produced,
// covering all such fields.
func (g *Generator) potentialReads(m *dataflow.Model, policy accesscontrol.Policy, cur explState) []potentialRead {
	var out []potentialRead
	for _, storeID := range m.DatastoreIDs() {
		contents := cur.stores[storeID]
		if contents.IsEmpty() {
			continue
		}
		byActor := make(map[string][]string)
		for _, field := range contents.Names() {
			for _, actor := range policy.ActorsWith(storeID, field, accesscontrol.PermissionRead) {
				if cur.has.Has(actor, field) {
					continue
				}
				byActor[actor] = append(byActor[actor], field)
			}
		}
		actors := make([]string, 0, len(byActor))
		for a := range byActor {
			actors = append(actors, a)
		}
		sort.Strings(actors)
		for _, a := range actors {
			fields := byActor[a]
			sort.Strings(fields)
			out = append(out, potentialRead{actor: a, store: storeID, fields: fields})
		}
	}
	return out
}

// applyPotentialRead computes the state after a potential read: the actor now
// has identified the fields. Service progress is unchanged.
func (g *Generator) applyPotentialRead(cur explState, pr potentialRead) explState {
	next := cur.clone()
	for _, field := range pr.fields {
		next.has.Set(pr.actor, field, HasIdentified)
	}
	return next
}

// publicVector builds the externally-visible privacy state vector: the "has"
// variables accumulated so far plus the derived "could" variables. An actor
// could identify a field when they have already identified it or when some
// datastore currently holds the field and the policy grants them read access
// to it.
func (g *Generator) publicVector(m *dataflow.Model, policy accesscontrol.Policy, e explState) StateVector {
	vec := e.has.Clone()
	for _, actor := range vec.vocab.Actors() {
		for _, field := range vec.vocab.Fields() {
			if vec.Has(actor, field) {
				vec.Set(actor, field, CouldIdentify)
			}
		}
	}
	for storeID, contents := range e.stores {
		for _, field := range contents.Names() {
			for _, actor := range policy.ActorsWith(storeID, field, accesscontrol.PermissionRead) {
				vec.Set(actor, field, CouldIdentify)
			}
		}
	}
	return vec
}

// checkPolicyConsistency records a warning for every declared flow whose
// acting actor lacks the permission the flow requires (write for create/anon,
// delete for delete flows, read for read flows). Such flows represent a
// mismatch between the designed behaviour and the access-control policy.
func (g *Generator) checkPolicyConsistency(m *dataflow.Model, policy accesscontrol.Policy, p *PrivacyLTS) {
	for _, f := range m.Flows {
		action, ok := g.deriveAction(m, f)
		if !ok {
			continue
		}
		var actor, store string
		var perm accesscontrol.Permission
		fields := f.Fields
		switch action {
		case ActionCreate:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
		case ActionAnon:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
			anon := make([]string, 0, len(f.Fields))
			for _, field := range f.Fields {
				anon = append(anon, schema.AnonName(field))
			}
			fields = anon
		case ActionDelete:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionDelete
		case ActionRead:
			actor, store, perm = f.To, f.From, accesscontrol.PermissionRead
		default:
			continue
		}
		for _, field := range fields {
			if !policy.Allows(actor, store, field, perm) {
				p.Warnings = append(p.Warnings, fmt.Sprintf(
					"flow %s: actor %q lacks %s permission on %s.%s required by the declared flow",
					f.Key(), actor, perm, store, field))
			}
		}
	}
}
