package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/explore"
	"privascope/internal/schema"
)

// FlowOrdering controls how flows within one service are sequenced during
// state-space exploration.
type FlowOrdering int

// Flow orderings. OrderSequential executes each service's flows in their
// declared numeric order (the paper labels every flow arrow with "a numeric
// value indicating the order in which the data flow is executed");
// OrderDataDriven lets any not-yet-executed flow of a service fire as soon as
// its source node holds the required data ("the flows can be executed
// independently, provided the start node has the correct data to flow").
// Services always interleave with each other in both modes.
const (
	OrderSequential FlowOrdering = iota + 1
	OrderDataDriven
)

// PotentialReadMode controls whether the generator adds "potential read"
// transitions: reads permitted by the access-control policy that no declared
// flow performs. They represent the disclosure events risk analysis assesses
// (Section III-A: "the read action ... impacts the likelihood of a disclosure
// of a user's personal data").
type PotentialReadMode int

// Potential-read modes. PotentialReadsOff adds none; PotentialReadsTerminal
// (the default) adds the transitions but does not continue exploration from
// their target states, keeping the model compact; PotentialReadsFull explores
// the targets like any other state.
const (
	PotentialReadsOff PotentialReadMode = iota + 1
	PotentialReadsTerminal
	PotentialReadsFull
)

// DefaultMaxStates bounds exploration so a mis-specified model cannot consume
// unbounded memory; Generate returns ErrStateSpaceTooLarge when it is hit.
const DefaultMaxStates = 250000

// ErrStateSpaceTooLarge is returned when exploration exceeds Options.MaxStates.
var ErrStateSpaceTooLarge = errors.New("core: state space exceeds the configured maximum; simplify the model or raise Options.MaxStates")

// Options configures privacy-LTS generation. The zero value selects the
// defaults (sequential flows, terminal potential reads, DefaultMaxStates, one
// worker per available CPU).
type Options struct {
	FlowOrdering   FlowOrdering
	PotentialReads PotentialReadMode
	// MaxStates caps the number of generated states; zero means
	// DefaultMaxStates.
	MaxStates int
	// Workers is the number of goroutines expanding the BFS frontier in
	// parallel; zero or negative means runtime.GOMAXPROCS(0). The generated
	// LTS — state IDs, transition order, initial state — is byte-identical
	// for every worker count: workers only expand states of one frontier
	// generation concurrently, and their discoveries are merged
	// deterministically in frontier order.
	Workers int
	// Explore selects the exploration strategy (see internal/explore); the
	// zero value is plain full exploration. Every strategy produces the same
	// PrivacyLTS byte for byte — the knobs only change how much work it takes.
	Explore ExploreOptions
}

// ExploreOptions are the exploration-strategy knobs of Options.
type ExploreOptions struct {
	// Symmetry enables symmetry reduction: actors that are exact structural
	// replicas of each other (same flow shapes, same policy grants) are
	// detected, the state space is first explored modulo permutations of each
	// replica group, and the full LTS is then regenerated from that quotient.
	// When the model has no provable symmetry the option is a no-op.
	Symmetry bool
}

// ExploreReport describes how a generation run explored the state space; it
// is diagnostic output, not part of the LTS.
type ExploreReport struct {
	// Mode is "full", "symmetry", or "replay" (incremental regeneration).
	Mode string
	// States is the number of states of the generated LTS; StatesExplored is
	// the number of state expansions the final pass performed.
	States         int
	StatesExplored int

	// Symmetry-mode fields: the quotient size and the orbit structure.
	CanonicalStates int
	Orbits          int
	OrbitActors     int

	// Replay-mode fields: how many states could not reuse the previous run's
	// successors and fell back to cold expansion, and what the model delta
	// looked like.
	ColdExpanded    int
	Fallback        bool
	FallbackReason  string
	DeltaKind       string
	AffectedReaders int
}

func (o Options) withDefaults() Options {
	if o.FlowOrdering == 0 {
		o.FlowOrdering = OrderSequential
	}
	if o.PotentialReads == 0 {
		o.PotentialReads = PotentialReadsTerminal
	}
	if o.MaxStates == 0 {
		o.MaxStates = DefaultMaxStates
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Generator builds privacy LTSs from data-flow models. A single Generator
// may be reused across models.
type Generator struct {
	opts Options
}

// NewGenerator returns a generator with the given options.
func NewGenerator(opts Options) *Generator {
	return &Generator{opts: opts.withDefaults()}
}

// Generate builds the privacy LTS for the model using default options.
func Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	return NewGenerator(Options{}).Generate(m)
}

// GenerateWithOptions builds the privacy LTS using the supplied options.
func GenerateWithOptions(m *dataflow.Model, opts Options) (*PrivacyLTS, error) {
	return NewGenerator(opts).Generate(m)
}

// GenerateContext builds the privacy LTS with default options, honouring
// cancellation and deadlines carried by ctx.
func GenerateContext(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, error) {
	return NewGenerator(Options{}).GenerateContext(ctx, m)
}

// GenerateWithOptionsContext builds the privacy LTS using the supplied
// options, honouring cancellation and deadlines carried by ctx.
func GenerateWithOptionsContext(ctx context.Context, m *dataflow.Model, opts Options) (*PrivacyLTS, error) {
	return NewGenerator(opts).GenerateContext(ctx, m)
}

// Generate builds the privacy LTS for the model. It is GenerateContext with
// a background context: generation runs to completion (or error) without an
// external cancellation point.
func (g *Generator) Generate(m *dataflow.Model) (*PrivacyLTS, error) {
	return g.GenerateContext(context.Background(), m)
}

// GenerateContext builds the privacy LTS for the model.
//
// Exploration is delegated to the internal/explore driver: a
// level-synchronised parallel BFS over a compact binary state encoding. The
// model is compiled once (per-flow gate and effect masks, potential-read
// tables), each frontier generation is expanded by Options.Workers goroutines
// into per-worker arenas, and the discoveries are merged on one goroutine in
// frontier order, which makes state numbering and transition order
// deterministic regardless of the worker count — and regardless of the
// exploration strategy selected by Options.Explore.
//
// Cancellation is observed at state granularity: every exploration worker
// polls ctx before expanding each frontier state and the merge loop polls it
// between generations, so a cancelled context aborts mid-BFS and returns
// ctx.Err() promptly, with every worker goroutine joined before the call
// returns (none leak).
func (g *Generator) GenerateContext(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, error) {
	p, _, _, err := g.generate(ctx, m)
	return p, err
}

// GenerateTracedContext is GenerateContext, additionally returning the
// exploration trace (the input of incremental regeneration, see
// RegenerateContext) and a report describing how the state space was
// explored.
func (g *Generator) GenerateTracedContext(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, *explore.Result, *ExploreReport, error) {
	return g.generate(ctx, m)
}

// prepared carries the outcome of the shared generation preamble: the
// validated model compiled against its vocabulary, and the PrivacyLTS shell
// with the policy warnings already recorded.
type prepared struct {
	p  *PrivacyLTS
	cm *compiledModel
}

// prepare runs the generation preamble shared by full generation and
// incremental regeneration: validation, vocabulary construction, policy
// warnings, the encoding-limit check, and model compilation. Every path
// produces identical warnings and errors for the same model.
func (g *Generator) prepare(m *dataflow.Model) (*prepared, error) {
	if m == nil {
		return nil, errors.New("core: model must not be nil")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid model: %w", err)
	}
	vocab := VocabularyFromModel(m)
	p := &PrivacyLTS{Model: m, Vocab: vocab}
	policy := m.Policy
	if policy == nil {
		policy = &accesscontrol.ACL{}
		p.Warnings = append(p.Warnings,
			"model has no access-control policy attached; no 'could identify' variables or potential reads will be derived")
	}
	g.checkPolicyConsistency(m, policy, p)

	// The packed encoding keeps one 16-bit progress counter per service.
	for _, svcID := range m.ServiceIDs() {
		if n := len(m.ServiceFlows(svcID)); n > 0xffff {
			return nil, fmt.Errorf("core: service %q has %d flows; the exploration encoding supports at most %d per service", svcID, n, 0xffff)
		}
	}
	return &prepared{p: p, cm: compileModel(m, policy, vocab, g.opts.FlowOrdering)}, nil
}

// exploreConfig is the driver configuration implied by the options.
func (g *Generator) exploreConfig() explore.Config {
	return explore.Config{Workers: g.opts.Workers, MaxStates: g.opts.MaxStates}
}

// wrapExploreErr maps driver errors onto the package's public errors.
func (g *Generator) wrapExploreErr(err error) error {
	if errors.Is(err, explore.ErrStateLimit) {
		return fmt.Errorf("%w (limit %d)", ErrStateSpaceTooLarge, g.opts.MaxStates)
	}
	return err
}

func (g *Generator) generate(ctx context.Context, m *dataflow.Model) (*PrivacyLTS, *explore.Result, *ExploreReport, error) {
	pre, err := g.prepare(m)
	if err != nil {
		return nil, nil, nil, err
	}
	var (
		res    *explore.Result
		report *ExploreReport
	)
	if g.opts.Explore.Symmetry {
		res, report, err = g.runSymmetry(ctx, pre.cm)
	} else {
		res, err = explore.Run(ctx, g.exploreConfig(), &coldExpander{cm: pre.cm, mode: g.opts.PotentialReads})
	}
	if err != nil {
		return nil, nil, nil, g.wrapExploreErr(err)
	}
	if report == nil {
		report = &ExploreReport{Mode: "full"}
	}
	report.States = res.NumStates
	report.StatesExplored = res.Explored
	if err := assemble(ctx, pre.p, pre.cm, res, g.opts.Workers); err != nil {
		return nil, nil, nil, err
	}
	return pre.p, res, report, nil
}

// deriveAction applies the paper's extraction rules to a flow.
func deriveAction(m *dataflow.Model, f dataflow.Flow) (Action, bool) {
	fromKind, ok := m.NodeKindOf(f.From)
	if !ok {
		return 0, false
	}
	toKind, ok := m.NodeKindOf(f.To)
	if !ok {
		return 0, false
	}
	switch {
	case fromKind == dataflow.NodeUser && toKind == dataflow.NodeActor:
		return ActionCollect, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeActor:
		return ActionDisclose, true
	case fromKind == dataflow.NodeActor && toKind == dataflow.NodeDatastore:
		if f.Delete {
			return ActionDelete, true
		}
		if d, ok := m.Datastore(f.To); ok && d.Anonymised {
			return ActionAnon, true
		}
		return ActionCreate, true
	case fromKind == dataflow.NodeDatastore && toKind == dataflow.NodeActor:
		return ActionRead, true
	default:
		return 0, false
	}
}

// flowLabel builds the transition label for a declared flow.
func flowLabel(f dataflow.Flow, action Action) *TransitionLabel {
	label := NewTransitionLabel(action, "", f.Fields)
	label.Purpose = f.Purpose
	label.Service = f.Service
	label.FlowKey = f.Key()
	switch action {
	case ActionCollect:
		label.Actor = f.To
		label.Counterpart = f.From
	case ActionDisclose:
		label.Actor = f.From
		label.Counterpart = f.To
	case ActionCreate, ActionAnon, ActionDelete:
		label.Actor = f.From
		label.Datastore = f.To
	case ActionRead:
		label.Actor = f.To
		label.Datastore = f.From
	}
	if action == ActionAnon {
		anonNames := make([]string, 0, len(f.Fields))
		for _, field := range f.Fields {
			anonNames = append(anonNames, schema.AnonName(field))
		}
		sort.Strings(anonNames)
		label.Fields = anonNames
	}
	return label
}

// checkPolicyConsistency records a warning for every declared flow whose
// acting actor lacks the permission the flow requires (write for create/anon,
// delete for delete flows, read for read flows). Such flows represent a
// mismatch between the designed behaviour and the access-control policy.
func (g *Generator) checkPolicyConsistency(m *dataflow.Model, policy accesscontrol.Policy, p *PrivacyLTS) {
	for _, f := range m.Flows {
		action, ok := deriveAction(m, f)
		if !ok {
			continue
		}
		var actor, store string
		var perm accesscontrol.Permission
		fields := f.Fields
		switch action {
		case ActionCreate:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
		case ActionAnon:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionWrite
			anon := make([]string, 0, len(f.Fields))
			for _, field := range f.Fields {
				anon = append(anon, schema.AnonName(field))
			}
			fields = anon
		case ActionDelete:
			actor, store, perm = f.From, f.To, accesscontrol.PermissionDelete
		case ActionRead:
			actor, store, perm = f.To, f.From, accesscontrol.PermissionRead
		default:
			continue
		}
		for _, field := range fields {
			if !policy.Allows(actor, store, field, perm) {
				p.Warnings = append(p.Warnings, fmt.Sprintf(
					"flow %s: actor %q lacks %s permission on %s.%s required by the declared flow",
					f.Key(), actor, perm, store, field))
			}
		}
	}
}
