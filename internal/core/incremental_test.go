package core_test

import (
	"context"
	"testing"
	"time"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/synth"
)

// regenCase runs one cold traced generation of before, regenerates with the
// mutated after-model, and cross-checks the replay against a cold generation
// of the same after-model.
func regenCase(t *testing.T, opts core.Options, before, after *dataflow.Model) (*core.PrivacyLTS, *core.ExploreReport) {
	t.Helper()
	gen := core.NewGenerator(opts)
	ctx := context.Background()
	prev, trace, _, err := gen.GenerateTracedContext(ctx, before)
	if err != nil {
		t.Fatalf("cold generate (before): %v", err)
	}
	got, _, report, err := gen.RegenerateContext(ctx, prev, trace, after)
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	cold, err := core.GenerateWithOptions(after, opts)
	if err != nil {
		t.Fatalf("cold generate (after): %v", err)
	}
	if gd, cd := ltsDigest(t, got), ltsDigest(t, cold); gd != cd {
		t.Fatalf("regenerated digest %s != cold digest %s (mode=%q fallback=%v reason=%q)",
			gd, cd, report.Mode, report.Fallback, report.FallbackReason)
	}
	return got, report
}

// TestRegeneratePolicyDelta: revoking one reader's access is a pure policy
// delta — regeneration must replay the previous trace (no fallback, no cold
// expansions: the state space can only shrink) and still match a cold
// generation of the changed model byte for byte.
func TestRegeneratePolicyDelta(t *testing.T) {
	for _, mode := range []core.PotentialReadMode{core.PotentialReadsOff, core.PotentialReadsTerminal, core.PotentialReadsFull} {
		for _, workers := range []int{1, 4} {
			before := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
			after := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
			after.Policy = after.Policy.(*accesscontrol.ACL).WithoutActor("auditor", "shared")

			opts := core.Options{PotentialReads: mode, Workers: workers}
			_, report := regenCase(t, opts, before, after)
			if report.Mode != "replay" || report.Fallback {
				t.Fatalf("mode=%v workers=%d: report.Mode=%q Fallback=%v, want replay without fallback",
					mode, workers, report.Mode, report.Fallback)
			}
			if report.DeltaKind != "policy" {
				t.Fatalf("DeltaKind = %q, want policy", report.DeltaKind)
			}
			if report.AffectedReaders != 1 {
				t.Fatalf("AffectedReaders = %d, want 1 (auditor on shared)", report.AffectedReaders)
			}
			// A revocation cannot create states the previous run never saw, so
			// every expansion must be served from the trace. This is the
			// structural form of the "replay does a small fraction of the cold
			// work" acceptance criterion.
			if report.ColdExpanded != 0 {
				t.Fatalf("ColdExpanded = %d, want 0 for a pure revocation", report.ColdExpanded)
			}
		}
	}
}

// TestRegenerateGrantDelta: granting access can grow the state space under
// full potential reads; the new region is expanded cold, everything else is
// replayed, and the result still matches a cold generation.
func TestRegenerateGrantDelta(t *testing.T) {
	before := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	before.Policy = before.Policy.(*accesscontrol.ACL).WithoutActor("auditor", "shared")
	after := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})

	opts := core.Options{PotentialReads: core.PotentialReadsFull, Workers: 2}
	_, report := regenCase(t, opts, before, after)
	if report.Mode != "replay" || report.DeltaKind != "policy" {
		t.Fatalf("report mode=%q kind=%q, want replay/policy", report.Mode, report.DeltaKind)
	}
}

// TestRegenerateMetadataDelta: a purpose relabel never touches the state
// space; replay reuses every expansion while the labels come from the new
// compilation, so the output matches a cold generation of the relabelled
// model (not the old one).
func TestRegenerateMetadataDelta(t *testing.T) {
	before := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	after := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	after.Flows[0].Purpose = "relabelled-collect"

	opts := core.Options{PotentialReads: core.PotentialReadsTerminal, Workers: 1}
	lts, report := regenCase(t, opts, before, after)
	if report.Mode != "replay" || report.DeltaKind != "metadata" {
		t.Fatalf("report mode=%q kind=%q, want replay/metadata", report.Mode, report.DeltaKind)
	}
	if report.ColdExpanded != 0 {
		t.Fatalf("ColdExpanded = %d, want 0 for a metadata-only delta", report.ColdExpanded)
	}
	if report.StatesExplored != 0 {
		t.Fatalf("StatesExplored = %d, want 0 (a metadata delta reuses the trace without exploring)",
			report.StatesExplored)
	}
	found := false
	for _, tr := range lts.Graph.Transitions() {
		if l, ok := tr.Label.(*core.TransitionLabel); ok && l.Purpose == "relabelled-collect" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("replayed LTS does not carry the relabelled purpose")
	}
}

// TestRegenerateUnsafeDeltaFallsBack: structural changes — here a new actor —
// cannot be proven replay-safe, so regeneration must fall back to a full cold
// run and say why.
func TestRegenerateUnsafeDeltaFallsBack(t *testing.T) {
	before := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	after := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	after.Actors = append(after.Actors, dataflow.Actor{ID: "zz-extra", Name: "Extra"})

	opts := core.Options{PotentialReads: core.PotentialReadsTerminal, Workers: 1}
	_, report := regenCase(t, opts, before, after)
	if report.Mode != "full" || !report.Fallback {
		t.Fatalf("report mode=%q fallback=%v, want full fallback", report.Mode, report.Fallback)
	}
	if report.DeltaKind != "unsafe" || report.FallbackReason == "" {
		t.Fatalf("report kind=%q reason=%q, want unsafe with a reason", report.DeltaKind, report.FallbackReason)
	}
}

// TestRegenerateWallClock: the acceptance bound of incremental regeneration —
// re-running after a metadata-only edit of a 15625-state model must cost a
// small fraction of the cold generation. The structural guarantee
// (StatesExplored == 0, nothing re-explored) is asserted exactly; the
// wall-clock ratio is asserted at 50% to stay robust under CI noise — the
// measured ratio is ~10% (see BenchmarkExploreIncremental).
func TestRegenerateWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 15625-state model several times")
	}
	before := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	after := synth.Model(synth.ModelSpec{Services: 5, FieldsPerService: 3})
	after.Flows[0].Purpose = "relabelled"

	gen := core.NewGenerator(core.Options{Workers: 1})
	ctx := context.Background()
	prev, trace, _, err := gen.GenerateTracedContext(ctx, before)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, _, err := gen.GenerateTracedContext(ctx, after); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	_, _, report, err := gen.RegenerateContext(ctx, prev, trace, after)
	if err != nil {
		t.Fatal(err)
	}
	replay := time.Since(start)
	if report.Fallback || report.StatesExplored != 0 {
		t.Fatalf("report fallback=%v explored=%d, want a no-exploration replay",
			report.Fallback, report.StatesExplored)
	}
	if ratio := float64(replay) / float64(cold); ratio > 0.5 {
		t.Fatalf("replay took %v = %.0f%% of the %v cold generation, want well under 50%%",
			replay, ratio*100, cold)
	}
	t.Logf("cold = %v, replay = %v (%.1f%%)", cold, replay, float64(replay)/float64(cold)*100)
}

// TestRegenerateWithoutSeed: nil previous generation regenerates cold.
func TestRegenerateWithoutSeed(t *testing.T) {
	m := synth.SymmetricModel(synth.SymmetricSpec{Replicas: 3})
	gen := core.NewGenerator(core.Options{})
	got, _, report, err := gen.RegenerateContext(context.Background(), nil, nil, m)
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	if report.Mode != "full" || !report.Fallback {
		t.Fatalf("report mode=%q fallback=%v, want full fallback", report.Mode, report.Fallback)
	}
	cold, err := core.GenerateWithOptions(m, core.Options{})
	if err != nil {
		t.Fatalf("cold generate: %v", err)
	}
	if gd, cd := ltsDigest(t, got), ltsDigest(t, cold); gd != cd {
		t.Fatalf("fallback digest %s != cold digest %s", gd, cd)
	}
}
