package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// digestOf serialises the complete generated model (state IDs and variables,
// per-state store contents, transition order and labels) so two generation
// runs can be compared byte for byte.
func digestOf(t *testing.T, p *PrivacyLTS) string {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data) + "\n" + p.DOT(DOTOptions{VerboseStates: true})
}

func TestWorkersDefault(t *testing.T) {
	opts := Options{}.withDefaults()
	if opts.Workers < 1 {
		t.Errorf("default Workers = %d, want >= 1", opts.Workers)
	}
	if got := (Options{Workers: -3}).withDefaults().Workers; got < 1 {
		t.Errorf("negative Workers defaulted to %d, want >= 1", got)
	}
}

// TestPackedStateCodec checks the binary layout primitives the exploration
// engine relies on: progress counters and fired bits round trip, and the key
// of a state changes with every segment.
func TestPackedStateCodec(t *testing.T) {
	codec := newStateCodec(2, []string{"a", "b", "c"}, 2, 3, 5, OrderSequential)
	ps := codec.newState()
	if got := len(ps); got != codec.totalWords {
		t.Fatalf("state has %d words, want %d", got, codec.totalWords)
	}
	for svc := 0; svc < 3; svc++ {
		if codec.progress(ps, svc) != 0 {
			t.Errorf("initial progress of service %d not zero", svc)
		}
	}
	codec.bumpProgress(ps, 1)
	codec.bumpProgress(ps, 1)
	codec.bumpProgress(ps, 2)
	if codec.progress(ps, 0) != 0 || codec.progress(ps, 1) != 2 || codec.progress(ps, 2) != 1 {
		t.Errorf("progress = %d/%d/%d, want 0/2/1",
			codec.progress(ps, 0), codec.progress(ps, 1), codec.progress(ps, 2))
	}

	dd := newStateCodec(2, []string{"a", "b", "c"}, 2, 3, 5, OrderDataDriven)
	ds := dd.newState()
	for f := 0; f < 5; f++ {
		if dd.fired(ds, f) {
			t.Errorf("flow %d initially fired", f)
		}
	}
	dd.setFired(ds, 3)
	if !dd.fired(ds, 3) || dd.fired(ds, 2) {
		t.Error("setFired misbehaves")
	}

	key := codec.keyOf(ps)
	if len(key) != codec.totalWords*8 {
		t.Errorf("key length = %d, want %d", len(key), codec.totalWords*8)
	}
	other := ps.clone()
	other[codec.storeBase(1)] |= 1
	if codec.keyOf(other) == key {
		t.Error("store segment change must change the key")
	}
	if !strings.HasPrefix(codec.keyOf(ps.clone()), key) {
		t.Error("clone must encode identically")
	}
}

// TestGenerateWorkersDeterministic: the clinic model generated with 1, 2, 4
// and 8 workers yields byte-identical output under every combination of flow
// ordering and potential-read mode.
func TestGenerateWorkersDeterministic(t *testing.T) {
	model := clinicModel(t)
	for _, ordering := range []FlowOrdering{OrderSequential, OrderDataDriven} {
		for _, mode := range []PotentialReadMode{PotentialReadsOff, PotentialReadsTerminal, PotentialReadsFull} {
			base, err := GenerateWithOptions(model, Options{
				FlowOrdering: ordering, PotentialReads: mode, Workers: 1,
			})
			if err != nil {
				t.Fatalf("ordering=%v mode=%v: %v", ordering, mode, err)
			}
			want := digestOf(t, base)
			for _, workers := range []int{2, 4, 8} {
				p, err := GenerateWithOptions(model, Options{
					FlowOrdering: ordering, PotentialReads: mode, Workers: workers,
				})
				if err != nil {
					t.Fatalf("ordering=%v mode=%v workers=%d: %v", ordering, mode, workers, err)
				}
				if got := digestOf(t, p); got != want {
					t.Errorf("ordering=%v mode=%v: workers=%d output differs from workers=1",
						ordering, mode, workers)
				}
			}
		}
	}
}

// TestGenerateMaxStatesParallel: the state cap fires identically under
// parallel expansion.
func TestGenerateMaxStatesParallel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := GenerateWithOptions(clinicModel(t), Options{MaxStates: 2, Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "state space") {
			t.Errorf("workers=%d: expected state-space error, got %v", workers, err)
		}
	}
}
