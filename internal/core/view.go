package core

import (
	"context"
	"math/bits"
	"strings"

	"privascope/internal/lts"
)

// CompiledView is the analysis-side compilation of a PrivacyLTS: the CSR
// graph (lts.Compiled) plus everything the disclosure analyses would
// otherwise re-derive per transition per profile, resolved once per model —
// the TransitionLabel of every edge (no type assertions on the hot path) and
// the profile-independent state-vector delta of every edge as dense
// (actor index, field index, kind) triples, so an analysis never touches the
// string-keyed vector maps or allocates Variable slices while walking the
// model.
//
// A CompiledView is immutable and shared: PrivacyLTS.Compiled builds it at
// most once per model (single-flighted), and the Engine's fingerprint-keyed
// model cache means every Assess/Analyze/AssessPopulation/Monitor call on the
// same model shares one view.
type CompiledView struct {
	// Graph is the CSR compilation of the privacy LTS.
	Graph *lts.Compiled

	labels    []*TransitionLabel // per edge; nil for foreign label types
	fieldsCSV []string           // per edge; the label's fields joined with ", "
	changes   [][]EdgeChange     // per edge; the variables the edge newly sets
	actors    []string           // vocabulary order (sorted)
	fields    []string
}

// EdgeChange is one state variable a transition newly sets, with the actor
// and field resolved to vocabulary indices (ascending index order equals the
// vocabulary's sorted name order).
type EdgeChange struct {
	Actor int32
	Field int32
	Kind  VarKind
}

// Label returns the TransitionLabel of the edge (nil when the transition
// carries a foreign label type).
func (v *CompiledView) Label(e int32) *TransitionLabel { return v.labels[e] }

// FieldsJoined returns the edge label's field list joined with ", " (empty
// for foreign labels), resolved once per model so per-finding report
// rendering never re-joins it.
func (v *CompiledView) FieldsJoined(e int32) string { return v.fieldsCSV[e] }

// Changes returns the state variables the edge newly sets relative to its
// source state, in vocabulary bit order. The slice is shared and must not be
// modified.
func (v *CompiledView) Changes(e int32) []EdgeChange { return v.changes[e] }

// Actors returns the vocabulary's actors in sorted order. The slice is shared
// and must not be modified.
func (v *CompiledView) Actors() []string { return v.actors }

// Fields returns the vocabulary's fields in sorted order. The slice is shared
// and must not be modified.
func (v *CompiledView) Fields() []string { return v.fields }

// Compiled returns the compiled analysis view of the privacy LTS, building it
// at most once for the model's lifetime: concurrent first callers are
// single-flighted onto one compilation and every later caller shares the
// result.
//
// The view is pinned forever: a PrivacyLTS is immutable once generated (the
// same invariant the identity-keyed risk.AssessmentCache already relies on),
// so mutating p.Graph after the first analysis is unsupported and would
// leave this view — like any previously cached assessment — stale.
func (p *PrivacyLTS) Compiled() *CompiledView {
	v, _ := p.compiled.Do(context.Background(), struct{}{},
		func(context.Context) (*CompiledView, error) {
			return newCompiledView(p), nil
		})
	return v
}

// newCompiledView resolves the per-edge labels and vector deltas of the
// model.
func newCompiledView(p *PrivacyLTS) *CompiledView {
	c := p.Graph.Compiled()
	m := c.NumEdges()
	v := &CompiledView{
		Graph:     c,
		labels:    make([]*TransitionLabel, m),
		fieldsCSV: make([]string, m),
		changes:   make([][]EdgeChange, m),
		actors:    p.Vocab.actors,
		fields:    p.Vocab.fields,
	}
	// Labels are shared across edges (one per declared flow), so joined field
	// lists are memoised per label pointer.
	joined := make(map[*TransitionLabel]string)
	// Dense state -> vector, so the per-edge delta never hits the map.
	vecs := make([]StateVector, c.NumStates())
	for i := range vecs {
		vecs[i] = p.vectors[c.StateAt(int32(i))]
	}
	numFields := len(v.fields)
	for e := 0; e < m; e++ {
		tr := c.TransitionAt(int32(e))
		if label, ok := tr.Label.(*TransitionLabel); ok {
			v.labels[e] = label
			csv, ok := joined[label]
			if !ok {
				csv = strings.Join(label.Fields, ", ")
				joined[label] = csv
			}
			v.fieldsCSV[e] = csv
		}
		// Matching ChangeOf: an edge whose source or target has no vector
		// contributes no change (a zero StateVector marks a missing map
		// entry).
		to, from := vecs[c.To(int32(e))], vecs[c.From(int32(e))]
		if to.vocab != nil && from.vocab != nil {
			v.changes[e] = edgeChanges(to, from, numFields)
		}
	}
	return v
}

// edgeChanges extracts the newly-true variables of to relative to from as
// dense index triples, in vocabulary bit order (matching
// StateVector.NewlyTrue). Both vectors must be present (non-zero).
func edgeChanges(to, from StateVector, numFields int) []EdgeChange {
	if numFields == 0 {
		return nil
	}
	var out []EdgeChange
	for w := range to.words {
		diff := to.words[w]
		if w < len(from.words) {
			diff &^= from.words[w]
		}
		for diff != 0 {
			bit := w*64 + bits.TrailingZeros64(diff)
			diff &= diff - 1
			if bit >= to.vocab.numVars {
				break
			}
			kind := HasIdentified
			if bit&1 == 1 {
				kind = CouldIdentify
			}
			pair := bit >> 1
			out = append(out, EdgeChange{
				Actor: int32(pair / numFields),
				Field: int32(pair % numFields),
				Kind:  kind,
			})
		}
	}
	return out
}
