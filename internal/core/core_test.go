package core

import (
	"encoding/json"
	"strings"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// clinicModel builds a compact two-service model exercised by the tests in
// this package: a care service (collect -> create -> read) and a research
// service (read -> anon -> read), with an administrator who has maintenance
// read access to the EHR but takes part in no flow.
func clinicModel(t testing.TB) *dataflow.Model {
	t.Helper()
	ehrSchema := schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
		schema.Field{Name: "treatment", Category: schema.CategorySensitive},
	)
	anonSchema := schema.MustSchema("anon_ehr",
		schema.Field{Name: "diagnosis_anon", Category: schema.CategorySensitive, Pseudonymised: true},
	)
	acl := accesscontrol.MustACL(
		accesscontrol.Grant{Actor: "doctor", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}},
		accesscontrol.Grant{Actor: "nurse", Datastore: "ehr", Fields: []string{"name", "treatment"},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
		accesscontrol.Grant{Actor: "admin", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}, Reason: "maintenance"},
		accesscontrol.Grant{Actor: "analyst", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
		accesscontrol.Grant{Actor: "doctor", Datastore: "anon_ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionWrite}},
	)

	b := dataflow.NewBuilder("clinic", dataflow.Actor{ID: "patient", Name: "Patient"})
	b.AddActors(
		dataflow.Actor{ID: "doctor", Name: "Doctor"},
		dataflow.Actor{ID: "nurse", Name: "Nurse"},
		dataflow.Actor{ID: "admin", Name: "Administrator"},
		dataflow.Actor{ID: "analyst", Name: "Analyst"},
	)
	b.AddDatastore(schema.Datastore{ID: "ehr", Name: "EHR", Schema: ehrSchema})
	b.AddDatastore(schema.Datastore{ID: "anon_ehr", Name: "Anonymised EHR", Schema: anonSchema, Anonymised: true})
	b.AddService(dataflow.Service{ID: "care", Name: "Care Service"})
	b.AddService(dataflow.Service{ID: "research", Name: "Research Service"})

	b.Flow("care", "patient", "doctor", []string{"name", "diagnosis"}, "consultation")
	b.AuthoredFlow("care", "doctor", "ehr", []string{"name", "diagnosis", "treatment"}, []string{"treatment"}, "record")
	b.Flow("care", "ehr", "nurse", []string{"name", "treatment"}, "administer treatment")

	b.Flow("research", "doctor", "anon_ehr", []string{"diagnosis"}, "anonymise")
	b.Flow("research", "anon_ehr", "analyst", []string{"diagnosis_anon"}, "analysis")

	b.WithPolicy(acl)
	return b.MustBuild()
}

func generateClinic(t testing.TB, opts Options) *PrivacyLTS {
	t.Helper()
	p, err := GenerateWithOptions(clinicModel(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p
}

func TestVarKindString(t *testing.T) {
	if HasIdentified.String() != "has" || CouldIdentify.String() != "could" {
		t.Error("VarKind.String() wrong")
	}
	if got := VarKind(5).String(); got != "varkind(5)" {
		t.Errorf("VarKind(5).String() = %q", got)
	}
}

func TestVariableString(t *testing.T) {
	v := Variable{Actor: "admin", Field: "diagnosis", Kind: CouldIdentify}
	if got := v.String(); got != "could(admin, diagnosis)" {
		t.Errorf("Variable.String() = %q", got)
	}
}

func TestVocabularyIndexing(t *testing.T) {
	v := NewVocabulary([]string{"b", "a"}, []string{"y", "x"})
	if got := v.NumVariables(); got != 8 {
		t.Errorf("NumVariables() = %d, want 8", got)
	}
	if !v.HasActor("a") || v.HasActor("zz") {
		t.Error("HasActor misbehaves")
	}
	if !v.HasField("x") || v.HasField("zz") {
		t.Error("HasField misbehaves")
	}
	// Every (actor, field, kind) combination maps to a unique bit that round
	// trips through Variable().
	seen := make(map[int]bool)
	for _, actor := range v.Actors() {
		for _, field := range v.Fields() {
			for _, kind := range []VarKind{HasIdentified, CouldIdentify} {
				bit := v.index(actor, field, kind)
				if bit < 0 || bit >= v.NumVariables() {
					t.Fatalf("index(%s,%s,%s) = %d out of range", actor, field, kind, bit)
				}
				if seen[bit] {
					t.Fatalf("bit %d assigned twice", bit)
				}
				seen[bit] = true
				back, ok := v.Variable(bit)
				if !ok || back.Actor != actor || back.Field != field || back.Kind != kind {
					t.Fatalf("Variable(%d) = %+v, want (%s,%s,%s)", bit, back, actor, field, kind)
				}
			}
		}
	}
	if _, ok := v.Variable(-1); ok {
		t.Error("Variable(-1) should fail")
	}
	if _, ok := v.Variable(v.NumVariables()); ok {
		t.Error("Variable(out of range) should fail")
	}
}

func TestVocabularyPaperStateVariableCount(t *testing.T) {
	// The paper's example: 5 actors and 6 fields give 2*5*6 = 60 state
	// variables (Section II-B).
	v := NewVocabulary(
		[]string{"receptionist", "doctor", "nurse", "administrator", "researcher"},
		[]string{"name", "dob", "appointment", "medical_issues", "diagnosis", "treatment"},
	)
	if got := v.NumVariables(); got != 60 {
		t.Errorf("NumVariables() = %d, want 60", got)
	}
}

func TestStateVectorBasics(t *testing.T) {
	v := NewVocabulary([]string{"a1", "a2"}, []string{"f1", "f2"})
	vec := v.NewVector()
	if !vec.IsZero() {
		t.Error("new vector should be the absolute privacy state")
	}
	vec.Set("a1", "f1", HasIdentified)
	vec.Set("a2", "f2", CouldIdentify)
	if !vec.Has("a1", "f1") || vec.Has("a1", "f2") {
		t.Error("Has misbehaves")
	}
	if !vec.Could("a2", "f2") || vec.Could("a1", "f1") {
		t.Error("Could misbehaves")
	}
	if vec.CountTrue() != 2 {
		t.Errorf("CountTrue() = %d", vec.CountTrue())
	}
	vec.Clear("a1", "f1", HasIdentified)
	if vec.Has("a1", "f1") {
		t.Error("Clear did not clear")
	}
	// Unknown actors/fields are ignored.
	vec.Set("ghost", "f1", HasIdentified)
	if vec.CountTrue() != 1 {
		t.Error("setting unknown actor should be a no-op")
	}
	if vec.Get("ghost", "f1", HasIdentified) {
		t.Error("unknown actor should read false")
	}
}

func TestStateVectorCloneEqualKey(t *testing.T) {
	v := NewVocabulary([]string{"a"}, []string{"f", "g"})
	vec := v.NewVector()
	vec.Set("a", "f", HasIdentified)
	clone := vec.Clone()
	if !vec.Equal(clone) {
		t.Error("clone should equal original")
	}
	clone.Set("a", "g", HasIdentified)
	if vec.Equal(clone) {
		t.Error("mutating the clone must not affect the original")
	}
	if vec.Key() == clone.Key() {
		t.Error("different vectors must have different keys")
	}
	other := NewVocabulary([]string{"a"}, []string{"f", "g"}).NewVector()
	other.Set("a", "f", HasIdentified)
	if vec.Equal(other) {
		t.Error("vectors from different vocabularies must not compare equal")
	}
}

func TestStateVectorNewlyTrueAndString(t *testing.T) {
	v := NewVocabulary([]string{"a"}, []string{"f", "g"})
	before := v.NewVector()
	before.Set("a", "f", HasIdentified)
	after := before.Clone()
	after.Set("a", "g", CouldIdentify)
	newly := after.NewlyTrue(before)
	if len(newly) != 1 || newly[0].Field != "g" || newly[0].Kind != CouldIdentify {
		t.Errorf("NewlyTrue = %v", newly)
	}
	if got := v.NewVector().String(); got != "{}" {
		t.Errorf("zero vector String() = %q", got)
	}
	if !strings.Contains(after.String(), "has(a, f)") {
		t.Errorf("String() = %q", after.String())
	}
}

func TestActionParsing(t *testing.T) {
	for _, a := range []Action{ActionCollect, ActionCreate, ActionRead, ActionDisclose, ActionAnon, ActionDelete} {
		if !a.Valid() {
			t.Errorf("%v should be valid", a)
		}
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if Action(0).Valid() {
		t.Error("zero action should be invalid")
	}
	if _, err := ParseAction("explode"); err == nil {
		t.Error("ParseAction(explode) should fail")
	}
	if got := Action(42).String(); got != "action(42)" {
		t.Errorf("Action(42).String() = %q", got)
	}
}

func TestTransitionLabelString(t *testing.T) {
	label := NewTransitionLabel(ActionRead, "nurse", []string{"treatment", "name"})
	label.Datastore = "ehr"
	label.Purpose = "administer treatment"
	want := "read(name, treatment) by nurse on ehr [administer treatment]"
	if got := label.LabelString(); got != want {
		t.Errorf("LabelString() = %q, want %q", got, want)
	}
	pot := NewTransitionLabel(ActionRead, "admin", []string{"diagnosis"})
	pot.Datastore = "ehr"
	pot.Potential = true
	if got := pot.LabelString(); got != "?read(diagnosis) by admin on ehr" {
		t.Errorf("potential LabelString() = %q", got)
	}
}

func TestLabelOf(t *testing.T) {
	label := NewTransitionLabel(ActionCollect, "doctor", []string{"name"})
	tr := lts.Transition{From: "s0", To: "s1", Label: label}
	if LabelOf(tr) != label {
		t.Error("LabelOf should return the original label")
	}
	other := lts.Transition{From: "s0", To: "s1", Label: lts.StringLabel("x")}
	if LabelOf(other) != nil {
		t.Error("LabelOf on foreign label should return nil")
	}
}

func TestGenerateNilAndInvalidModel(t *testing.T) {
	if _, err := Generate(nil); err == nil {
		t.Error("Generate(nil) should fail")
	}
	bad := &dataflow.Model{Name: "x"}
	if _, err := Generate(bad); err == nil {
		t.Error("Generate(invalid) should fail")
	}
}

func TestGenerateClinicSequential(t *testing.T) {
	p := generateClinic(t, Options{})
	stats := p.Stats()
	if stats.States == 0 || stats.Transitions == 0 {
		t.Fatalf("empty LTS: %+v", stats)
	}
	// 5 actors excluding the patient? The clinic has 4 actors and 4 fields
	// (name, diagnosis, treatment, diagnosis_anon) -> 32 state variables.
	if stats.StateVariables != 2*4*4 {
		t.Errorf("StateVariables = %d, want 32", stats.StateVariables)
	}
	// The initial state is the absolute privacy state.
	initVec, ok := p.Vector(p.InitialState())
	if !ok || !initVec.IsZero() {
		t.Errorf("initial vector = %v, ok=%v", initVec, ok)
	}
	// No warnings: the declared flows all match the policy.
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
	// Every state is reachable.
	unreach, err := p.Graph.UnreachableStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(unreach) != 0 {
		t.Errorf("unreachable states: %v", unreach)
	}
}

func TestGenerateExtractionRules(t *testing.T) {
	p := generateClinic(t, Options{PotentialReads: PotentialReadsOff})
	actions := make(map[Action]int)
	for _, tr := range p.Graph.Transitions() {
		label := LabelOf(tr)
		if label == nil {
			t.Fatalf("transition %v has no TransitionLabel", tr)
		}
		actions[label.Action]++
		switch label.Action {
		case ActionCollect:
			if label.Actor != "doctor" {
				t.Errorf("collect actor = %q", label.Actor)
			}
		case ActionAnon:
			if label.Datastore != "anon_ehr" {
				t.Errorf("anon datastore = %q", label.Datastore)
			}
			// anon transitions carry the pseudonymised field names.
			if label.Fields[0] != "diagnosis_anon" {
				t.Errorf("anon fields = %v", label.Fields)
			}
		}
	}
	for _, a := range []Action{ActionCollect, ActionCreate, ActionRead, ActionAnon} {
		if actions[a] == 0 {
			t.Errorf("no %s transition generated", a)
		}
	}
	if actions[ActionDisclose] != 0 {
		t.Errorf("unexpected disclose transitions: %d", actions[ActionDisclose])
	}
}

func TestGenerateStateVariableSemantics(t *testing.T) {
	p := generateClinic(t, Options{PotentialReads: PotentialReadsOff})

	// After the care service completes, the nurse must have identified the
	// treatment field, and the administrator could identify the diagnosis
	// (maintenance read access to the EHR) without having identified it.
	finals := p.FindStates(func(v StateVector) bool {
		return v.Has("nurse", "treatment")
	})
	if len(finals) == 0 {
		t.Fatal("no state where the nurse has identified the treatment")
	}
	for _, id := range finals {
		if !p.Could(id, "admin", "diagnosis") {
			t.Errorf("state %s: admin should COULD-identify diagnosis via EHR access", id)
		}
		if p.Has(id, "admin", "diagnosis") {
			t.Errorf("state %s: admin must not HAVE identified diagnosis (no flow reads it)", id)
		}
		if !p.Has(id, "doctor", "diagnosis") {
			t.Errorf("state %s: doctor should have identified diagnosis", id)
		}
	}

	// The nurse can never identify the diagnosis anywhere in the model: the
	// policy only grants them name and treatment.
	ok, counter, err := p.Graph.Always(func(id lts.StateID) bool {
		return !p.Could(id, "nurse", "diagnosis")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("nurse could identify diagnosis; counter-example:\n%s", counter)
	}
}

func TestGeneratePotentialReads(t *testing.T) {
	p := generateClinic(t, Options{PotentialReads: PotentialReadsTerminal})
	potentials := p.PotentialTransitions()
	if len(potentials) == 0 {
		t.Fatal("expected potential read transitions")
	}
	var adminRead bool
	for _, tr := range potentials {
		label := LabelOf(tr)
		if label.Action != ActionRead || !label.Potential {
			t.Errorf("potential transition with unexpected label %q", label.LabelString())
		}
		if label.Actor == "admin" && label.Datastore == "ehr" {
			adminRead = true
			// Taking the potential read flips the admin's HAS variables.
			for _, f := range label.Fields {
				if !p.Has(tr.To, "admin", f) {
					t.Errorf("after potential read, admin should have %s", f)
				}
				if p.Has(tr.From, "admin", f) {
					t.Errorf("before potential read, admin should not have %s", f)
				}
			}
		}
	}
	if !adminRead {
		t.Error("no potential read by the administrator on the EHR was generated")
	}

	// With potential reads off, none are generated.
	off := generateClinic(t, Options{PotentialReads: PotentialReadsOff})
	if n := len(off.PotentialTransitions()); n != 0 {
		t.Errorf("PotentialReadsOff still produced %d potential transitions", n)
	}

	// Terminal mode produces no outgoing declared transitions from
	// potential-read targets beyond what full mode would also have; full mode
	// explores at least as many states.
	full := generateClinic(t, Options{PotentialReads: PotentialReadsFull})
	if full.Stats().States < p.Stats().States {
		t.Errorf("full exploration has fewer states (%d) than terminal (%d)",
			full.Stats().States, p.Stats().States)
	}
}

func TestGenerateDataDrivenOrdering(t *testing.T) {
	seq := generateClinic(t, Options{FlowOrdering: OrderSequential, PotentialReads: PotentialReadsOff})
	dd := generateClinic(t, Options{FlowOrdering: OrderDataDriven, PotentialReads: PotentialReadsOff})
	// Data-driven ordering allows at least as many interleavings.
	if dd.Stats().States < seq.Stats().States {
		t.Errorf("data-driven states (%d) < sequential states (%d)", dd.Stats().States, seq.Stats().States)
	}
	// Both reach a state where the analyst has the anonymised diagnosis.
	for name, p := range map[string]*PrivacyLTS{"sequential": seq, "data-driven": dd} {
		states := p.FindStates(func(v StateVector) bool { return v.Has("analyst", "diagnosis_anon") })
		if len(states) == 0 {
			t.Errorf("%s: analyst never receives the anonymised diagnosis", name)
		}
	}
}

func TestGenerateDeleteFlow(t *testing.T) {
	// Extend the clinic with an erasure service: the admin deletes the
	// diagnosis from the EHR.
	m := clinicModel(t)
	m.Services = append(m.Services, dataflow.Service{ID: "erasure", Name: "Erasure Service"})
	m.Flows = append(m.Flows, dataflow.Flow{
		Service: "erasure", Order: 1, From: "admin", To: "ehr",
		Fields: []string{"diagnosis"}, Purpose: "right to be forgotten", Delete: true,
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := GenerateWithOptions(m, Options{PotentialReads: PotentialReadsOff})
	if err != nil {
		t.Fatal(err)
	}
	// Find a delete transition and check the store no longer holds the field
	// afterwards, and that the admin's COULD variable is gone.
	var found bool
	for _, tr := range p.Graph.Transitions() {
		label := LabelOf(tr)
		if label.Action != ActionDelete {
			continue
		}
		found = true
		if p.StoreContents(tr.To, "ehr").Contains("diagnosis") {
			t.Error("diagnosis still in EHR after delete")
		}
		if !p.StoreContents(tr.From, "ehr").Contains("diagnosis") {
			t.Error("diagnosis not in EHR before delete")
		}
		if p.Could(tr.To, "admin", "diagnosis") {
			t.Error("admin could still identify diagnosis after deletion")
		}
	}
	if !found {
		t.Fatal("no delete transition generated")
	}
	// The generator warns because the admin lacks the delete permission.
	var warned bool
	for _, w := range p.Warnings {
		if strings.Contains(w, "delete permission") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected a policy-consistency warning, got %v", p.Warnings)
	}
}

func TestGenerateMaxStates(t *testing.T) {
	_, err := GenerateWithOptions(clinicModel(t), Options{MaxStates: 2})
	if err == nil || !strings.Contains(err.Error(), "state space") {
		t.Errorf("expected state-space error, got %v", err)
	}
}

func TestPrivacyLTSQueries(t *testing.T) {
	p := generateClinic(t, Options{PotentialReads: PotentialReadsOff})
	finals := p.FindStates(func(v StateVector) bool { return v.Has("nurse", "treatment") })
	if len(finals) == 0 {
		t.Fatal("no final care state")
	}
	id := finals[0]
	who := p.ActorsWhoCould(id, "diagnosis")
	if len(who) == 0 {
		t.Fatal("ActorsWhoCould returned nothing")
	}
	wantSet := map[string]bool{"admin": true, "doctor": true}
	for _, a := range who {
		if !wantSet[a] {
			t.Errorf("unexpected actor %q could identify diagnosis", a)
		}
	}
	have := p.ActorsWhoHave(id, "diagnosis")
	if len(have) != 1 || have[0] != "doctor" {
		t.Errorf("ActorsWhoHave(diagnosis) = %v", have)
	}
	// ChangeOf on the first transition out of the initial state.
	out := p.Graph.Outgoing(p.InitialState())
	if len(out) == 0 {
		t.Fatal("no transitions from the initial state")
	}
	change := p.ChangeOf(out[0])
	if len(change) == 0 {
		t.Error("first transition should change some state variables")
	}
	// Vector of an unknown state.
	if _, ok := p.Vector("ghost"); ok {
		t.Error("Vector(ghost) should fail")
	}
	if p.Has("ghost", "doctor", "name") || p.Could("ghost", "doctor", "name") {
		t.Error("queries on unknown states should be false")
	}
	if p.ActorsWhoCould("ghost", "name") != nil {
		t.Error("ActorsWhoCould on unknown state should be nil")
	}
}

func TestPrivacyLTSDOT(t *testing.T) {
	p := generateClinic(t, Options{})
	out := p.DOT(DOTOptions{Name: "clinic_lts"})
	if !strings.Contains(out, "digraph clinic_lts {") {
		t.Error("missing graph header")
	}
	if !strings.Contains(out, `style="dashed"`) {
		t.Error("potential reads should render dashed")
	}
	verbose := p.DOT(DOTOptions{VerboseStates: true, HighlightStates: map[lts.StateID]string{"s1": "lightpink"}})
	if !strings.Contains(verbose, "has(") {
		t.Error("verbose states should list variables")
	}
	if !strings.Contains(verbose, `fillcolor="lightpink"`) {
		t.Error("highlighted state not coloured")
	}
}

func TestPrivacyLTSMarshalJSON(t *testing.T) {
	p := generateClinic(t, Options{})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	for _, key := range []string{"model", "initial", "actors", "fields", "states", "transitions"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("JSON missing key %q", key)
		}
	}
}

func TestDeclaredVsPotentialPartition(t *testing.T) {
	p := generateClinic(t, Options{})
	total := p.Graph.TransitionCount()
	if got := len(p.DeclaredTransitions()) + len(p.PotentialTransitions()); got != total {
		t.Errorf("declared+potential = %d, want %d", got, total)
	}
}
