package accesscontrol

import (
	"reflect"
	"testing"
	"testing/quick"
)

func readWrite() []Permission { return []Permission{PermissionRead, PermissionWrite} }

func sampleACL(t *testing.T) *ACL {
	t.Helper()
	acl, err := NewACL(
		Grant{Actor: "doctor", Datastore: "ehr", Fields: []string{AllFields}, Permissions: readWrite()},
		Grant{Actor: "nurse", Datastore: "ehr", Fields: []string{"name", "treatment"}, Permissions: []Permission{PermissionRead}},
		Grant{Actor: "administrator", Datastore: "ehr", Fields: []string{AllFields},
			Permissions: []Permission{PermissionRead, PermissionDelete}, Reason: "system maintenance"},
	)
	if err != nil {
		t.Fatalf("NewACL: %v", err)
	}
	return acl
}

func TestPermissionString(t *testing.T) {
	tests := []struct {
		p    Permission
		want string
	}{
		{PermissionRead, "read"},
		{PermissionWrite, "write"},
		{PermissionDelete, "delete"},
		{Permission(0), "permission(0)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestParsePermission(t *testing.T) {
	for _, p := range []Permission{PermissionRead, PermissionWrite, PermissionDelete} {
		got, err := ParsePermission(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePermission(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePermission("execute"); err == nil {
		t.Error("ParsePermission(execute) should fail")
	}
}

func TestGrantValidate(t *testing.T) {
	tests := []struct {
		name    string
		grant   Grant
		wantErr bool
	}{
		{"valid", Grant{Actor: "a", Datastore: "d", Fields: []string{"f"}, Permissions: []Permission{PermissionRead}}, false},
		{"empty actor", Grant{Datastore: "d", Fields: []string{"f"}, Permissions: []Permission{PermissionRead}}, true},
		{"empty datastore", Grant{Actor: "a", Fields: []string{"f"}, Permissions: []Permission{PermissionRead}}, true},
		{"no fields", Grant{Actor: "a", Datastore: "d", Permissions: []Permission{PermissionRead}}, true},
		{"no permissions", Grant{Actor: "a", Datastore: "d", Fields: []string{"f"}}, true},
		{"invalid permission", Grant{Actor: "a", Datastore: "d", Fields: []string{"f"}, Permissions: []Permission{Permission(9)}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.grant.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestACLAllows(t *testing.T) {
	acl := sampleACL(t)
	tests := []struct {
		actor, field string
		perm         Permission
		want         bool
	}{
		{"doctor", "diagnosis", PermissionRead, true},
		{"doctor", "diagnosis", PermissionWrite, true},
		{"doctor", "diagnosis", PermissionDelete, false},
		{"nurse", "treatment", PermissionRead, true},
		{"nurse", "diagnosis", PermissionRead, false},
		{"nurse", "treatment", PermissionWrite, false},
		{"administrator", "diagnosis", PermissionRead, true},
		{"administrator", "diagnosis", PermissionDelete, true},
		{"researcher", "diagnosis", PermissionRead, false},
	}
	for _, tt := range tests {
		if got := acl.Allows(tt.actor, "ehr", tt.field, tt.perm); got != tt.want {
			t.Errorf("Allows(%s, ehr, %s, %s) = %v, want %v", tt.actor, tt.field, tt.perm, got, tt.want)
		}
	}
	// Unknown datastore always denied.
	if acl.Allows("doctor", "unknown", "diagnosis", PermissionRead) {
		t.Error("access to unknown datastore allowed")
	}
}

func TestACLExplain(t *testing.T) {
	acl := sampleACL(t)
	d := acl.Explain("administrator", "ehr", "diagnosis", PermissionRead)
	if !d.Allowed {
		t.Fatal("expected allowed")
	}
	if d.Reason == "" {
		t.Error("allowed decision should carry a reason")
	}
	deny := acl.Explain("researcher", "ehr", "diagnosis", PermissionRead)
	if deny.Allowed || deny.Reason == "" {
		t.Errorf("deny decision = %+v", deny)
	}
}

func TestACLActorsWith(t *testing.T) {
	acl := sampleACL(t)
	got := acl.ActorsWith("ehr", "diagnosis", PermissionRead)
	want := []string{"administrator", "doctor"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ActorsWith(ehr, diagnosis, read) = %v, want %v", got, want)
	}
	got = acl.ActorsWith("ehr", "treatment", PermissionRead)
	want = []string{"administrator", "doctor", "nurse"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ActorsWith(ehr, treatment, read) = %v, want %v", got, want)
	}
	if got := acl.ActorsWith("ehr", "name", PermissionWrite); !reflect.DeepEqual(got, []string{"doctor"}) {
		t.Errorf("ActorsWith(ehr, name, write) = %v", got)
	}
}

func TestACLActors(t *testing.T) {
	acl := sampleACL(t)
	want := []string{"administrator", "doctor", "nurse"}
	if got := acl.Actors(); !reflect.DeepEqual(got, want) {
		t.Errorf("Actors() = %v, want %v", got, want)
	}
}

func TestACLWithoutActor(t *testing.T) {
	acl := sampleACL(t)
	mitigated := acl.WithoutActor("administrator", "ehr")
	if mitigated.Allows("administrator", "ehr", "diagnosis", PermissionRead) {
		t.Error("administrator should lose read access after WithoutActor")
	}
	if !mitigated.Allows("doctor", "ehr", "diagnosis", PermissionRead) {
		t.Error("doctor access should be preserved")
	}
	// Original is untouched.
	if !acl.Allows("administrator", "ehr", "diagnosis", PermissionRead) {
		t.Error("WithoutActor mutated the original policy")
	}
}

func TestACLRestrict(t *testing.T) {
	acl := sampleACL(t)
	restricted := acl.Restrict("administrator", "ehr", []string{"name"})
	if restricted.Allows("administrator", "ehr", "diagnosis", PermissionRead) {
		t.Error("restricted administrator should not read diagnosis")
	}
	if !restricted.Allows("administrator", "ehr", "name", PermissionRead) {
		t.Error("restricted administrator should still read name")
	}
	if !restricted.Allows("doctor", "ehr", "diagnosis", PermissionWrite) {
		t.Error("other actors must be unaffected by Restrict")
	}

	// Restricting to an empty field list removes the grants entirely.
	none := acl.Restrict("administrator", "ehr", nil)
	if len(none.ActorsWith("ehr", "name", PermissionRead)) != 2 {
		t.Errorf("ActorsWith after empty restrict = %v", none.ActorsWith("ehr", "name", PermissionRead))
	}
}

func TestACLGrantsIsCopy(t *testing.T) {
	acl := sampleACL(t)
	grants := acl.Grants()
	grants[0].Actor = "mallory"
	if acl.Grants()[0].Actor == "mallory" {
		t.Error("Grants() must return a copy")
	}
}

func TestACLAddCopiesSlices(t *testing.T) {
	fields := []string{"name"}
	perms := []Permission{PermissionRead}
	acl, err := NewACL(Grant{Actor: "a", Datastore: "d", Fields: fields, Permissions: perms})
	if err != nil {
		t.Fatal(err)
	}
	fields[0] = "diagnosis"
	perms[0] = PermissionDelete
	if acl.Allows("a", "d", "diagnosis", PermissionRead) {
		t.Error("ACL must copy the grant's field slice at the boundary")
	}
	if !acl.Allows("a", "d", "name", PermissionRead) {
		t.Error("original grant lost after caller mutation")
	}
}

func TestRBAC(t *testing.T) {
	r := NewRBAC()
	if err := r.AddRole(Role{Name: "clinician", Grants: []Grant{
		{Actor: "ignored", Datastore: "ehr", Fields: []string{AllFields}, Permissions: readWrite()},
	}}); err != nil {
		t.Fatalf("AddRole: %v", err)
	}
	if err := r.AddRole(Role{Name: "support", Grants: []Grant{
		{Actor: "ignored", Datastore: "appointments", Fields: []string{"name", "appointment"}, Permissions: []Permission{PermissionRead}},
	}}); err != nil {
		t.Fatalf("AddRole: %v", err)
	}
	if err := r.Assign("doctor", "clinician"); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if err := r.Assign("receptionist", "support"); err != nil {
		t.Fatalf("Assign: %v", err)
	}

	if !r.Allows("doctor", "ehr", "diagnosis", PermissionWrite) {
		t.Error("doctor should write ehr via clinician role")
	}
	if r.Allows("receptionist", "ehr", "diagnosis", PermissionRead) {
		t.Error("receptionist must not read ehr")
	}
	if !r.Allows("receptionist", "appointments", "name", PermissionRead) {
		t.Error("receptionist should read appointments.name")
	}
	if got := r.ActorsWith("ehr", "diagnosis", PermissionRead); !reflect.DeepEqual(got, []string{"doctor"}) {
		t.Errorf("ActorsWith = %v", got)
	}
	if got := r.RolesOf("doctor"); !reflect.DeepEqual(got, []string{"clinician"}) {
		t.Errorf("RolesOf(doctor) = %v", got)
	}
	if got := r.Actors(); !reflect.DeepEqual(got, []string{"doctor", "receptionist"}) {
		t.Errorf("Actors() = %v", got)
	}
	d := r.Explain("doctor", "ehr", "diagnosis", PermissionRead)
	if !d.Allowed || d.Reason == "" {
		t.Errorf("Explain = %+v", d)
	}
}

func TestRBACErrors(t *testing.T) {
	r := NewRBAC()
	if err := r.AddRole(Role{Name: ""}); err == nil {
		t.Error("empty role name accepted")
	}
	if err := r.AddRole(Role{Name: "x", Grants: []Grant{{Datastore: "", Fields: []string{"f"}, Permissions: []Permission{PermissionRead}}}}); err == nil {
		t.Error("invalid role grant accepted")
	}
	if err := r.Assign("a", "missing"); err == nil {
		t.Error("assignment to unregistered role accepted")
	}
	if err := r.AddRole(Role{Name: "dup", Grants: []Grant{{Datastore: "d", Fields: []string{"f"}, Permissions: []Permission{PermissionRead}}}}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRole(Role{Name: "dup"}); err == nil {
		t.Error("duplicate role accepted")
	}
	if err := r.Assign(" ", "dup"); err == nil {
		t.Error("empty actor accepted")
	}
	// Duplicate assignment is a no-op, not an error.
	if err := r.Assign("a", "dup"); err != nil {
		t.Fatal(err)
	}
	if err := r.Assign("a", "dup"); err != nil {
		t.Errorf("repeated Assign returned error: %v", err)
	}
	if got := r.RolesOf("a"); len(got) != 1 {
		t.Errorf("RolesOf after duplicate assign = %v", got)
	}
}

func TestComposite(t *testing.T) {
	acl := MustACL(Grant{Actor: "researcher", Datastore: "anon_ehr", Fields: []string{AllFields}, Permissions: []Permission{PermissionRead}})
	rbac := NewRBAC()
	if err := rbac.AddRole(Role{Name: "clinician", Grants: []Grant{
		{Datastore: "ehr", Fields: []string{AllFields}, Permissions: readWrite()},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := rbac.Assign("doctor", "clinician"); err != nil {
		t.Fatal(err)
	}
	c := NewComposite(acl, rbac)

	if !c.Allows("researcher", "anon_ehr", "weight_anon", PermissionRead) {
		t.Error("composite should allow via ACL member")
	}
	if !c.Allows("doctor", "ehr", "diagnosis", PermissionWrite) {
		t.Error("composite should allow via RBAC member")
	}
	if c.Allows("researcher", "ehr", "diagnosis", PermissionRead) {
		t.Error("composite must deny when no member allows")
	}
	if d := c.Explain("doctor", "ehr", "diagnosis", PermissionRead); !d.Allowed {
		t.Errorf("Explain = %+v", d)
	}
	if d := c.Explain("researcher", "ehr", "diagnosis", PermissionRead); d.Allowed {
		t.Errorf("Explain should deny, got %+v", d)
	}
	if got := c.ActorsWith("ehr", "diagnosis", PermissionRead); !reflect.DeepEqual(got, []string{"doctor"}) {
		t.Errorf("ActorsWith = %v", got)
	}
}

func TestDiff(t *testing.T) {
	before := sampleACL(t)
	after := before.WithoutActor("administrator", "ehr")
	scope := Scope{
		Actors:     []string{"administrator", "doctor", "nurse"},
		Datastores: map[string][]string{"ehr": {"name", "diagnosis", "treatment"}},
	}
	changes := Diff(before, after, scope)
	if len(changes) == 0 {
		t.Fatal("expected at least one change")
	}
	for _, c := range changes {
		if c.Actor != "administrator" {
			t.Errorf("unexpected change for actor %q: %s", c.Actor, c)
		}
		if !c.Before || c.After {
			t.Errorf("expected allowed->denied, got %s", c)
		}
	}
	// administrator had read+delete on 3 fields = 6 changes.
	if len(changes) != 6 {
		t.Errorf("len(changes) = %d, want 6", len(changes))
	}
	if got := changes[0].String(); got == "" {
		t.Error("AccessChange.String() empty")
	}
	// Identical policies produce no diff.
	if d := Diff(before, before, scope); len(d) != 0 {
		t.Errorf("Diff(p, p) = %v, want empty", d)
	}
}

func TestACLAllowsConsistentWithActorsWith(t *testing.T) {
	// Property: for random grants, every actor returned by ActorsWith is
	// allowed, and allowed actors appear in ActorsWith.
	actors := []string{"a", "b", "c"}
	stores := []string{"s1", "s2"}
	fields := []string{"f1", "f2", "f3"}
	f := func(seed uint32) bool {
		acl := &ACL{}
		n := int(seed%5) + 1
		x := seed
		next := func(m int) int {
			x = x*1664525 + 1013904223
			return int(x) % m
		}
		for i := 0; i < n; i++ {
			g := Grant{
				Actor:       actors[next(len(actors))],
				Datastore:   stores[next(len(stores))],
				Fields:      []string{fields[next(len(fields))]},
				Permissions: []Permission{PermissionRead},
			}
			if err := acl.Add(g); err != nil {
				return false
			}
		}
		for _, ds := range stores {
			for _, field := range fields {
				with := acl.ActorsWith(ds, field, PermissionRead)
				inSet := make(map[string]bool)
				for _, a := range with {
					inSet[a] = true
					if !acl.Allows(a, ds, field, PermissionRead) {
						return false
					}
				}
				for _, a := range actors {
					if acl.Allows(a, ds, field, PermissionRead) && !inSet[a] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
