// Package accesscontrol provides the access-control substrate required by the
// paper's modelling framework (Section II-A): for every datastore, a
// description of "which actors have access to that data".
//
// Two enforcement technologies are supported behind a single Policy
// interface, matching the paper's assumption of "traditional access control
// lists and role-based access control":
//
//   - ACL: explicit (actor, datastore, field, permission) grants.
//   - RBAC: permissions attached to roles, with actors assigned to roles.
//
// Policies answer field-level questions ("may the Administrator read the
// diagnosis field of the EHR store?") because the paper assumes "datastore
// interfaces that support querying and display of individual fields".
package accesscontrol

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Permission is the kind of access being requested on a datastore field.
type Permission int

// Permissions. They begin at one so the zero value is invalid and cannot be
// granted by accident.
const (
	PermissionRead Permission = iota + 1
	PermissionWrite
	PermissionDelete
)

var permissionNames = map[Permission]string{
	PermissionRead:   "read",
	PermissionWrite:  "write",
	PermissionDelete: "delete",
}

// String returns the lower-case name of the permission.
func (p Permission) String() string {
	if s, ok := permissionNames[p]; ok {
		return s
	}
	return fmt.Sprintf("permission(%d)", int(p))
}

// Valid reports whether p is a defined permission.
func (p Permission) Valid() bool {
	_, ok := permissionNames[p]
	return ok
}

// ParsePermission converts a permission name back into a Permission.
func ParsePermission(s string) (Permission, error) {
	for p, name := range permissionNames {
		if name == strings.ToLower(strings.TrimSpace(s)) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("accesscontrol: unknown permission %q", s)
}

// AllFields is the wildcard used in grants to mean "every field of the
// datastore's schema".
const AllFields = "*"

// Decision is the result of a policy check, including the grant that allowed
// it so analysis output can explain *why* an actor has access.
type Decision struct {
	// Allowed reports whether the access is permitted.
	Allowed bool
	// Reason is a human-readable explanation of the decision.
	Reason string
}

// Policy is the interface implemented by every access-control mechanism.
// Implementations must be safe for concurrent readers once fully built.
type Policy interface {
	// Allows reports whether the actor may exercise the permission on the
	// named field of the datastore.
	Allows(actor, datastore, field string, perm Permission) bool
	// Explain is like Allows but also returns the reasoning, for reports.
	Explain(actor, datastore, field string, perm Permission) Decision
	// ActorsWith returns the sorted set of actors that hold the permission
	// on the named field of the datastore. This drives the "could identify"
	// state variables of the privacy model (Section II-B).
	ActorsWith(datastore, field string, perm Permission) []string
}

// Grant is a single ACL entry: an actor may exercise the listed permissions
// on the listed fields of a datastore. Fields may be the AllFields wildcard.
type Grant struct {
	Actor       string       `json:"actor"`
	Datastore   string       `json:"datastore"`
	Fields      []string     `json:"fields"`
	Permissions []Permission `json:"permissions"`
	// Reason documents why the grant exists (e.g. "system maintenance");
	// it is surfaced in risk reports.
	Reason string `json:"reason,omitempty"`
}

// Validate checks the grant for empty identifiers and invalid permissions.
func (g Grant) Validate() error {
	if strings.TrimSpace(g.Actor) == "" {
		return errors.New("accesscontrol: grant actor must not be empty")
	}
	if strings.TrimSpace(g.Datastore) == "" {
		return fmt.Errorf("accesscontrol: grant for actor %q has empty datastore", g.Actor)
	}
	if len(g.Fields) == 0 {
		return fmt.Errorf("accesscontrol: grant for actor %q on %q lists no fields", g.Actor, g.Datastore)
	}
	if len(g.Permissions) == 0 {
		return fmt.Errorf("accesscontrol: grant for actor %q on %q lists no permissions", g.Actor, g.Datastore)
	}
	for _, p := range g.Permissions {
		if !p.Valid() {
			return fmt.Errorf("accesscontrol: grant for actor %q on %q has invalid permission %d", g.Actor, g.Datastore, int(p))
		}
	}
	return nil
}

func (g Grant) covers(field string) bool {
	for _, f := range g.Fields {
		if f == AllFields || f == field {
			return true
		}
	}
	return false
}

func (g Grant) hasPermission(perm Permission) bool {
	for _, p := range g.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

// ACL is an access-control-list policy: a flat list of grants.
// The zero value is an empty (deny-everything) policy.
type ACL struct {
	grants []Grant
	actors map[string]bool
}

// NewACL builds an ACL from the given grants, validating each.
func NewACL(grants ...Grant) (*ACL, error) {
	a := &ACL{actors: make(map[string]bool)}
	for _, g := range grants {
		if err := a.Add(g); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustACL is like NewACL but panics on error; for fixtures and tests.
func MustACL(grants ...Grant) *ACL {
	a, err := NewACL(grants...)
	if err != nil {
		panic(err)
	}
	return a
}

// Add appends a grant to the policy.
func (a *ACL) Add(g Grant) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if a.actors == nil {
		a.actors = make(map[string]bool)
	}
	g.Fields = append([]string(nil), g.Fields...)
	g.Permissions = append([]Permission(nil), g.Permissions...)
	a.grants = append(a.grants, g)
	a.actors[g.Actor] = true
	return nil
}

// Grants returns a copy of the grants in the policy.
func (a *ACL) Grants() []Grant {
	out := make([]Grant, len(a.grants))
	copy(out, a.grants)
	return out
}

// Actors returns the sorted set of actors that appear in any grant.
func (a *ACL) Actors() []string {
	out := make([]string, 0, len(a.actors))
	for actor := range a.actors {
		out = append(out, actor)
	}
	sort.Strings(out)
	return out
}

// Allows implements Policy. Unlike Explain it never formats a reason, so
// bulk callers (policy diffs, compilation) stay allocation-free.
func (a *ACL) Allows(actor, datastore, field string, perm Permission) bool {
	for i := range a.grants {
		g := &a.grants[i]
		if g.Actor == actor && g.Datastore == datastore && g.covers(field) && g.hasPermission(perm) {
			return true
		}
	}
	return false
}

// Explain implements Policy.
func (a *ACL) Explain(actor, datastore, field string, perm Permission) Decision {
	for _, g := range a.grants {
		if g.Actor != actor || g.Datastore != datastore {
			continue
		}
		if g.covers(field) && g.hasPermission(perm) {
			reason := g.Reason
			if reason == "" {
				reason = "explicit grant"
			}
			return Decision{Allowed: true, Reason: fmt.Sprintf("%s: %s may %s %s.%s",
				reason, actor, perm, datastore, field)}
		}
	}
	return Decision{Allowed: false, Reason: fmt.Sprintf("no grant allows %s to %s %s.%s",
		actor, perm, datastore, field)}
}

// ActorsWith implements Policy.
func (a *ACL) ActorsWith(datastore, field string, perm Permission) []string {
	set := make(map[string]bool)
	for _, g := range a.grants {
		if g.Datastore == datastore && g.covers(field) && g.hasPermission(perm) {
			set[g.Actor] = true
		}
	}
	return sortedSet(set)
}

// WithoutActor returns a copy of the ACL with every grant for the given actor
// on the given datastore removed. It is the mitigation primitive used in case
// study IV-A ("The access policies were changed accordingly").
func (a *ACL) WithoutActor(actor, datastore string) *ACL {
	out := &ACL{actors: make(map[string]bool)}
	for _, g := range a.grants {
		if g.Actor == actor && g.Datastore == datastore {
			continue
		}
		// Add re-validates and re-copies; errors are impossible for grants
		// that were already accepted.
		_ = out.Add(g)
	}
	return out
}

// Restrict returns a copy of the ACL where the actor's grants on the
// datastore are narrowed to only the listed fields. Grants that end up with
// no fields are dropped.
func (a *ACL) Restrict(actor, datastore string, fields []string) *ACL {
	allowed := make(map[string]bool, len(fields))
	for _, f := range fields {
		allowed[f] = true
	}
	out := &ACL{actors: make(map[string]bool)}
	for _, g := range a.grants {
		if g.Actor != actor || g.Datastore != datastore {
			_ = out.Add(g)
			continue
		}
		var kept []string
		for _, f := range g.Fields {
			if f == AllFields {
				// A wildcard grant is replaced by the explicit allowed list.
				kept = append([]string(nil), fields...)
				break
			}
			if allowed[f] {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			continue
		}
		ng := g
		ng.Fields = kept
		_ = out.Add(ng)
	}
	return out
}

var _ Policy = (*ACL)(nil)

// Role is a named bundle of grants used by RBAC policies. The Actor field of
// the embedded grants is ignored; the role name stands in for it.
type Role struct {
	Name   string  `json:"name"`
	Grants []Grant `json:"grants"`
}

// RBAC is a role-based access-control policy: roles hold grants and actors
// are assigned to roles. The zero value denies everything.
type RBAC struct {
	roles       map[string]Role
	assignments map[string][]string // actor -> role names
}

// NewRBAC returns an empty RBAC policy.
func NewRBAC() *RBAC {
	return &RBAC{
		roles:       make(map[string]Role),
		assignments: make(map[string][]string),
	}
}

// AddRole registers a role. Re-registering a role name is an error.
func (r *RBAC) AddRole(role Role) error {
	if strings.TrimSpace(role.Name) == "" {
		return errors.New("accesscontrol: role name must not be empty")
	}
	if _, ok := r.roles[role.Name]; ok {
		return fmt.Errorf("accesscontrol: role %q already registered", role.Name)
	}
	for i, g := range role.Grants {
		g.Actor = role.Name
		if err := g.Validate(); err != nil {
			return fmt.Errorf("role %q grant %d: %w", role.Name, i, err)
		}
		role.Grants[i] = g
	}
	r.roles[role.Name] = role
	return nil
}

// Assign adds the actor to the named role.
func (r *RBAC) Assign(actor, roleName string) error {
	if strings.TrimSpace(actor) == "" {
		return errors.New("accesscontrol: actor must not be empty")
	}
	if _, ok := r.roles[roleName]; !ok {
		return fmt.Errorf("accesscontrol: role %q is not registered", roleName)
	}
	for _, existing := range r.assignments[actor] {
		if existing == roleName {
			return nil
		}
	}
	r.assignments[actor] = append(r.assignments[actor], roleName)
	return nil
}

// Roles returns a deep copy of the registered roles, sorted by name: the
// grant structs and their Fields/Permissions slices are all copied, so
// callers cannot mutate the policy through the result.
func (r *RBAC) Roles() []Role {
	out := make([]Role, 0, len(r.roles))
	for _, role := range r.roles {
		copied := role
		copied.Grants = make([]Grant, len(role.Grants))
		for i, g := range role.Grants {
			g.Fields = append([]string(nil), g.Fields...)
			g.Permissions = append([]Permission(nil), g.Permissions...)
			copied.Grants[i] = g
		}
		out = append(out, copied)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RolesOf returns the sorted role names assigned to the actor.
func (r *RBAC) RolesOf(actor string) []string {
	out := append([]string(nil), r.assignments[actor]...)
	sort.Strings(out)
	return out
}

// Actors returns the sorted set of actors with at least one role.
func (r *RBAC) Actors() []string {
	set := make(map[string]bool, len(r.assignments))
	for a := range r.assignments {
		set[a] = true
	}
	return sortedSet(set)
}

// Allows implements Policy.
func (r *RBAC) Allows(actor, datastore, field string, perm Permission) bool {
	for _, roleName := range r.assignments[actor] {
		for _, g := range r.roles[roleName].Grants {
			if g.Datastore == datastore && g.covers(field) && g.hasPermission(perm) {
				return true
			}
		}
	}
	return false
}

// Explain implements Policy.
func (r *RBAC) Explain(actor, datastore, field string, perm Permission) Decision {
	for _, roleName := range r.assignments[actor] {
		role := r.roles[roleName]
		for _, g := range role.Grants {
			if g.Datastore == datastore && g.covers(field) && g.hasPermission(perm) {
				return Decision{Allowed: true, Reason: fmt.Sprintf("role %q allows %s to %s %s.%s",
					roleName, actor, perm, datastore, field)}
			}
		}
	}
	return Decision{Allowed: false, Reason: fmt.Sprintf("no role of %s allows %s on %s.%s",
		actor, perm, datastore, field)}
}

// ActorsWith implements Policy.
func (r *RBAC) ActorsWith(datastore, field string, perm Permission) []string {
	set := make(map[string]bool)
	for actor, roleNames := range r.assignments {
		for _, roleName := range roleNames {
			role := r.roles[roleName]
			for _, g := range role.Grants {
				if g.Datastore == datastore && g.covers(field) && g.hasPermission(perm) {
					set[actor] = true
				}
			}
		}
	}
	return sortedSet(set)
}

var _ Policy = (*RBAC)(nil)

// Composite combines several policies; access is allowed if any member allows
// it. It lets a model mix an ACL for one datastore with RBAC for another.
type Composite struct {
	policies []Policy
}

// NewComposite builds a composite from the given member policies.
func NewComposite(policies ...Policy) *Composite {
	return &Composite{policies: append([]Policy(nil), policies...)}
}

// Policies returns a copy of the member policies, in evaluation order.
func (c *Composite) Policies() []Policy {
	return append([]Policy(nil), c.policies...)
}

// Allows implements Policy.
func (c *Composite) Allows(actor, datastore, field string, perm Permission) bool {
	for _, p := range c.policies {
		if p.Allows(actor, datastore, field, perm) {
			return true
		}
	}
	return false
}

// Explain implements Policy.
func (c *Composite) Explain(actor, datastore, field string, perm Permission) Decision {
	for _, p := range c.policies {
		if d := p.Explain(actor, datastore, field, perm); d.Allowed {
			return d
		}
	}
	return Decision{Allowed: false, Reason: fmt.Sprintf("no member policy allows %s to %s %s.%s",
		actor, perm, datastore, field)}
}

// ActorsWith implements Policy.
func (c *Composite) ActorsWith(datastore, field string, perm Permission) []string {
	set := make(map[string]bool)
	for _, p := range c.policies {
		for _, a := range p.ActorsWith(datastore, field, perm) {
			set[a] = true
		}
	}
	return sortedSet(set)
}

var _ Policy = (*Composite)(nil)

// AccessChange describes one difference between two policies for a given
// scope of datastores, fields and actors.
type AccessChange struct {
	Actor     string
	Datastore string
	Field     string
	Perm      Permission
	// Before and After report whether the access was allowed under the old
	// and new policy respectively.
	Before bool
	After  bool
}

// String renders the change for reports, e.g.
// "administrator read ehr.diagnosis: allowed -> denied".
func (c AccessChange) String() string {
	return fmt.Sprintf("%s %s %s.%s: %s -> %s",
		c.Actor, c.Perm, c.Datastore, c.Field, allowWord(c.Before), allowWord(c.After))
}

func allowWord(b bool) string {
	if b {
		return "allowed"
	}
	return "denied"
}

// Scope enumerates the actors, datastores and fields over which two policies
// should be compared.
type Scope struct {
	Actors     []string
	Datastores map[string][]string // datastore -> field names
}

// Diff compares two policies over the given scope and returns the accesses
// whose outcome changed, sorted deterministically. It is used to explain the
// effect of a mitigation ("the access policies were changed accordingly and
// the risk level was reduced", Section IV-A).
func Diff(before, after Policy, scope Scope) []AccessChange {
	var changes []AccessChange
	stores := make([]string, 0, len(scope.Datastores))
	for ds := range scope.Datastores {
		stores = append(stores, ds)
	}
	sort.Strings(stores)
	actors := append([]string(nil), scope.Actors...)
	sort.Strings(actors)
	perms := []Permission{PermissionRead, PermissionWrite, PermissionDelete}
	for _, ds := range stores {
		fields := append([]string(nil), scope.Datastores[ds]...)
		sort.Strings(fields)
		for _, field := range fields {
			for _, actor := range actors {
				for _, perm := range perms {
					b := before.Allows(actor, ds, field, perm)
					a := after.Allows(actor, ds, field, perm)
					if b != a {
						changes = append(changes, AccessChange{
							Actor: actor, Datastore: ds, Field: field, Perm: perm,
							Before: b, After: a,
						})
					}
				}
			}
		}
	}
	return changes
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
