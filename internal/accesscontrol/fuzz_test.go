package accesscontrol

import (
	"strings"
	"testing"
)

// FuzzPolicyConstruction builds a policy from arbitrary grant material and
// checks the cross-implementation contract: a grant is accepted by NewACL
// exactly when it validates, and for every accepted grant the three Policy
// implementations — the ACL itself, an RBAC policy holding the same grant in
// a single role, and a Composite wrapping the ACL — answer every
// (field, permission) query identically, with Explain and ActorsWith
// consistent with Allows.
func FuzzPolicyConstruction(f *testing.F) {
	f.Add("doctor", "ehr", "name,diagnosis", "read,write", "address")
	f.Add("admin", "ehr", "*", "read", "diagnosis")
	f.Add("", "ehr", "name", "read", "name")
	f.Add("a", "d", "f", "not-a-permission", "f")
	f.Add(" spaced actor ", "d", "f,", "delete", "")
	f.Fuzz(func(t *testing.T, actor, datastore, fieldList, permList, probe string) {
		fields := strings.Split(fieldList, ",")
		var perms []Permission
		for _, s := range strings.Split(permList, ",") {
			if p, err := ParsePermission(s); err == nil {
				perms = append(perms, p)
			}
		}
		grant := Grant{Actor: actor, Datastore: datastore, Fields: fields, Permissions: perms}

		acl, err := NewACL(grant)
		if (err == nil) != (grant.Validate() == nil) {
			t.Fatalf("NewACL error %v disagrees with Grant.Validate error %v", err, grant.Validate())
		}
		if err != nil {
			return
		}

		rbac := NewRBAC()
		if err := rbac.AddRole(Role{Name: "fuzz-role", Grants: []Grant{grant}}); err != nil {
			t.Fatalf("RBAC rejected a grant the ACL accepted: %v", err)
		}
		if err := rbac.Assign(actor, "fuzz-role"); err != nil {
			t.Fatalf("assigning a valid actor failed: %v", err)
		}
		composite := NewComposite(acl)

		queryFields := append(append([]string{}, fields...), probe, "unrelated-field")
		for _, field := range queryFields {
			for _, perm := range []Permission{PermissionRead, PermissionWrite, PermissionDelete} {
				want := acl.Allows(actor, datastore, field, perm)
				if got := rbac.Allows(actor, datastore, field, perm); got != want {
					t.Fatalf("RBAC.Allows(%q,%q,%q,%s)=%v, ACL says %v",
						actor, datastore, field, perm, got, want)
				}
				if got := composite.Allows(actor, datastore, field, perm); got != want {
					t.Fatalf("Composite.Allows(%q,%q,%q,%s)=%v, ACL says %v",
						actor, datastore, field, perm, got, want)
				}
				if d := acl.Explain(actor, datastore, field, perm); d.Allowed != want {
					t.Fatalf("Explain(%q,%q,%q,%s).Allowed=%v disagrees with Allows=%v",
						actor, datastore, field, perm, d.Allowed, want)
				}
				holders := acl.ActorsWith(datastore, field, perm)
				held := false
				for _, h := range holders {
					if h == actor {
						held = true
					}
				}
				if held != want {
					t.Fatalf("ActorsWith(%q,%q,%s)=%v lists actor %q: %v, Allows says %v",
						datastore, field, perm, holders, actor, held, want)
				}
			}
		}
	})
}
