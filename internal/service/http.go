package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Header names used by the datastore HTTP protocol.
const (
	// HeaderActor carries the identity of the acting actor. The substrate
	// deliberately trusts this header: authentication is out of scope for
	// the privacy model, which is concerned with what authenticated actors
	// may do.
	HeaderActor = "X-Privascope-Actor"
	// HeaderPurpose carries the purpose of the operation.
	HeaderPurpose = "X-Privascope-Purpose"
)

// putRequest is the JSON body of a PUT /records/{user} request.
type putRequest struct {
	Values map[string]string `json:"values"`
}

// getResponse is the JSON body of a GET /records/{user} response.
type getResponse struct {
	Values map[string]string `json:"values"`
}

// errorResponse is the JSON body of error responses.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP handler exposing the datastore:
//
//	PUT    /records/{user}            write fields (JSON body {"values": {...}})
//	GET    /records/{user}?fields=a,b read fields
//	DELETE /records/{user}?fields=a,b delete fields (all when omitted)
//	GET    /meta                      datastore definition
//
// The acting actor and purpose are carried in the HeaderActor and
// HeaderPurpose headers.
func (d *Datastore) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.def)
	})
	mux.HandleFunc("/records/", func(w http.ResponseWriter, r *http.Request) {
		userID := strings.TrimPrefix(r.URL.Path, "/records/")
		if userID == "" || strings.Contains(userID, "/") {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "user ID missing or malformed"})
			return
		}
		actor := r.Header.Get(HeaderActor)
		if actor == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing " + HeaderActor + " header"})
			return
		}
		purpose := r.Header.Get(HeaderPurpose)
		switch r.Method {
		case http.MethodPut:
			var req putRequest
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
				return
			}
			if len(req.Values) == 0 {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no values provided"})
				return
			}
			if err := d.Put(actor, userID, purpose, req.Values); err != nil {
				writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			fields := splitFields(r.URL.Query().Get("fields"))
			if len(fields) == 0 {
				fields = d.def.Schema.FieldNames()
			}
			values, err := d.Get(actor, userID, purpose, fields)
			if err != nil {
				writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, getResponse{Values: values})
		case http.MethodDelete:
			fields := splitFields(r.URL.Query().Get("fields"))
			if err := d.Delete(actor, userID, purpose, fields); err != nil {
				writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		}
	})
	return mux
}

func splitFields(raw string) []string {
	if strings.TrimSpace(raw) == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrDenied):
		return http.StatusForbidden
	case errors.Is(err, ErrUnknownField):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// Server wraps a Datastore in an HTTP server listening on a local port.
type Server struct {
	store    *Datastore
	server   *http.Server
	listener net.Listener
	done     chan struct{}
	err      error
}

// StartServer starts serving the datastore on the given address
// ("127.0.0.1:0" picks a free port). Stop must be called to release the
// listener.
func StartServer(store *Datastore, addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listening on %s: %w", addr, err)
	}
	s := &Server{
		store:    store,
		listener: listener,
		server:   &http.Server{Handler: store.Handler(), ReadHeaderTimeout: 5 * time.Second},
		done:     make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.server.Serve(listener); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}

// URL returns the base URL of the running server.
func (s *Server) URL() string { return "http://" + s.listener.Addr().String() }

// Store returns the served datastore.
func (s *Server) Store() *Datastore { return s.store }

// Stop shuts the server down and waits for the serve loop to exit.
func (s *Server) Stop(ctx context.Context) error {
	err := s.server.Shutdown(ctx)
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}

// Client is a typed HTTP client for a datastore server, bound to one actor.
type Client struct {
	// BaseURL is the server's base URL, e.g. "http://127.0.0.1:4121".
	BaseURL string
	// Actor is the acting actor sent with every request.
	Actor string
	// HTTPClient may be overridden; http.DefaultClient is used when nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path, purpose string, query string, body any) (*http.Response, error) {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("service: encoding request: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	url := c.BaseURL + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		return nil, fmt.Errorf("service: building request: %w", err)
	}
	req.Header.Set(HeaderActor, c.Actor)
	if purpose != "" {
		req.Header.Set(HeaderPurpose, purpose)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.httpClient().Do(req)
}

func decodeError(resp *http.Response) error {
	var er errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	msg := er.Error
	if msg == "" {
		msg = resp.Status
	}
	if resp.StatusCode == http.StatusForbidden {
		return fmt.Errorf("%w: %s", ErrDenied, msg)
	}
	return fmt.Errorf("service: request failed (%d): %s", resp.StatusCode, msg)
}

// Put writes field values for a user.
func (c *Client) Put(ctx context.Context, userID, purpose string, values map[string]string) error {
	resp, err := c.do(ctx, http.MethodPut, "/records/"+userID, purpose, "", putRequest{Values: values})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}

// Get reads the requested fields of a user's record.
func (c *Client) Get(ctx context.Context, userID, purpose string, fields []string) (map[string]string, error) {
	query := ""
	if len(fields) > 0 {
		query = "fields=" + strings.Join(fields, ",")
	}
	resp, err := c.do(ctx, http.MethodGet, "/records/"+userID, purpose, query, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out getResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("service: decoding response: %w", err)
	}
	return out.Values, nil
}

// Delete removes the given fields (all when empty) of a user's record.
func (c *Client) Delete(ctx context.Context, userID, purpose string, fields []string) error {
	query := ""
	if len(fields) > 0 {
		query = "fields=" + strings.Join(fields, ",")
	}
	resp, err := c.do(ctx, http.MethodDelete, "/records/"+userID, purpose, query, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}
