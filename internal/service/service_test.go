package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"privascope/internal/accesscontrol"
	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/schema"
	"privascope/internal/service"
)

func ehrDatastore(t testing.TB, log *service.Log) *service.Datastore {
	t.Helper()
	def := schema.Datastore{ID: "ehr", Name: "EHR", Schema: schema.MustSchema("ehr",
		schema.Field{Name: "name", Category: schema.CategoryIdentifier},
		schema.Field{Name: "diagnosis", Category: schema.CategorySensitive},
		schema.Field{Name: "treatment", Category: schema.CategorySensitive},
	)}
	policy := accesscontrol.MustACL(
		accesscontrol.Grant{Actor: "doctor", Datastore: "ehr", Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete}},
		accesscontrol.Grant{Actor: "nurse", Datastore: "ehr", Fields: []string{"name", "treatment"},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}},
	)
	store, err := service.NewDatastore(def, policy, log)
	if err != nil {
		t.Fatalf("NewDatastore: %v", err)
	}
	return store
}

func TestLogAppendAndSubscribe(t *testing.T) {
	log := service.NewLog()
	base := time.Date(2026, 6, 15, 10, 0, 0, 0, time.UTC)
	log.SetClock(func() time.Time { return base })

	ch, cancel := log.Subscribe(4)
	defer cancel()

	ev := log.Append(service.Event{Actor: "doctor", Action: core.ActionCreate, UserID: "alice", Fields: []string{"name"}})
	if ev.Seq != 1 || !ev.Time.Equal(base) {
		t.Errorf("appended event = %+v", ev)
	}
	log.Append(service.Event{Actor: "nurse", Action: core.ActionRead, UserID: "alice", Fields: []string{"treatment"}})
	if log.Len() != 2 {
		t.Errorf("Len() = %d", log.Len())
	}
	events := log.Events()
	if len(events) != 2 || events[1].Seq != 2 {
		t.Errorf("Events() = %+v", events)
	}
	// Subscriber sees both events.
	got := []service.Event{<-ch, <-ch}
	if got[0].Actor != "doctor" || got[1].Actor != "nurse" {
		t.Errorf("subscription order wrong: %+v", got)
	}
	// Cancel closes the channel and later events are not delivered.
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel should be closed after cancel")
	}
	log.Append(service.Event{Actor: "doctor", Action: core.ActionRead, UserID: "alice", Fields: []string{"name"}})
	if log.Len() != 3 {
		t.Error("append after cancel should still be recorded")
	}
}

func TestNextBatch(t *testing.T) {
	ch := make(chan service.Event, 8)
	for i := 0; i < 5; i++ {
		ch <- service.Event{Seq: int64(i + 1)}
	}
	// Blocks for the first event, then drains without blocking up to max.
	batch := service.NextBatch(ch, 3)
	if len(batch) != 3 || batch[0].Seq != 1 || batch[2].Seq != 3 {
		t.Fatalf("NextBatch = %+v, want events 1..3", batch)
	}
	// Remaining events, fewer than max: returns what is pending.
	batch = service.NextBatch(ch, 10)
	if len(batch) != 2 || batch[0].Seq != 4 {
		t.Fatalf("NextBatch = %+v, want events 4..5", batch)
	}
	// max <= 0 selects a sane default instead of panicking.
	ch <- service.Event{Seq: 6}
	if batch = service.NextBatch(ch, 0); len(batch) != 1 || batch[0].Seq != 6 {
		t.Fatalf("NextBatch(max=0) = %+v", batch)
	}
	// Closed and drained: nil.
	close(ch)
	if batch = service.NextBatch(ch, 4); batch != nil {
		t.Fatalf("NextBatch on closed channel = %+v, want nil", batch)
	}
	// Closing mid-drain returns the partial batch.
	ch2 := make(chan service.Event, 2)
	ch2 <- service.Event{Seq: 1}
	close(ch2)
	if batch = service.NextBatch(ch2, 8); len(batch) != 1 {
		t.Fatalf("NextBatch on closing channel = %+v, want the one event", batch)
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	log := service.NewLog()
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				log.Append(service.Event{Actor: "a", Action: core.ActionRead, UserID: "u", Fields: []string{"f"}})
			}
		}()
	}
	wg.Wait()
	if log.Len() != writers*perWriter {
		t.Fatalf("Len() = %d, want %d", log.Len(), writers*perWriter)
	}
	seen := make(map[int64]bool)
	for _, ev := range log.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence number %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestDatastorePutGetDelete(t *testing.T) {
	log := service.NewLog()
	store := ehrDatastore(t, log)

	if err := store.Put("doctor", "alice", "record", map[string]string{"name": "Alice", "diagnosis": "flu"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	values, err := store.Get("doctor", "alice", "review", []string{"name", "diagnosis"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if values["diagnosis"] != "flu" {
		t.Errorf("Get values = %v", values)
	}
	if got := store.Users(); !reflect.DeepEqual(got, []string{"alice"}) {
		t.Errorf("Users() = %v", got)
	}
	if got := store.FieldsOf("alice"); !reflect.DeepEqual(got, []string{"diagnosis", "name"}) {
		t.Errorf("FieldsOf(alice) = %v", got)
	}
	if err := store.Delete("doctor", "alice", "erasure", []string{"diagnosis"}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := store.FieldsOf("alice"); !reflect.DeepEqual(got, []string{"name"}) {
		t.Errorf("FieldsOf after delete = %v", got)
	}
	// Event log recorded create, read and delete.
	actions := make(map[core.Action]int)
	for _, ev := range log.Events() {
		actions[ev.Action]++
		if ev.Denied {
			t.Errorf("unexpected denied event: %+v", ev)
		}
	}
	if actions[core.ActionCreate] != 1 || actions[core.ActionRead] != 1 || actions[core.ActionDelete] != 1 {
		t.Errorf("event actions = %v", actions)
	}
}

func TestDatastoreAccessControl(t *testing.T) {
	log := service.NewLog()
	store := ehrDatastore(t, log)
	if err := store.Put("doctor", "alice", "record", map[string]string{"diagnosis": "flu", "treatment": "rest", "name": "Alice"}); err != nil {
		t.Fatal(err)
	}

	// The nurse may read name and treatment but not the diagnosis.
	if _, err := store.Get("nurse", "alice", "care", []string{"name", "treatment"}); err != nil {
		t.Errorf("nurse read of permitted fields failed: %v", err)
	}
	_, err := store.Get("nurse", "alice", "care", []string{"diagnosis"})
	if !errors.Is(err, service.ErrDenied) {
		t.Errorf("nurse diagnosis read error = %v, want ErrDenied", err)
	}
	// The nurse may not write at all.
	if err := store.Put("nurse", "alice", "care", map[string]string{"treatment": "new"}); !errors.Is(err, service.ErrDenied) {
		t.Errorf("nurse write error = %v, want ErrDenied", err)
	}
	// Unknown fields are rejected before the policy is consulted.
	if _, err := store.Get("doctor", "alice", "care", []string{"ghost"}); !errors.Is(err, service.ErrUnknownField) {
		t.Errorf("unknown field error = %v, want ErrUnknownField", err)
	}
	// Denied operations are still audited.
	var denied int
	for _, ev := range log.Events() {
		if ev.Denied {
			denied++
		}
	}
	if denied != 2 {
		t.Errorf("denied events = %d, want 2", denied)
	}
}

func TestDatastoreAnonActionAndValidation(t *testing.T) {
	def := schema.Datastore{ID: "anon", Name: "Anon", Anonymised: true, Schema: schema.MustSchema("anon",
		schema.Field{Name: "weight_anon", Category: schema.CategorySensitive, Pseudonymised: true})}
	policy := accesscontrol.MustACL(accesscontrol.Grant{Actor: "dm", Datastore: "anon",
		Fields: []string{accesscontrol.AllFields}, Permissions: []accesscontrol.Permission{accesscontrol.PermissionWrite}})
	log := service.NewLog()
	store, err := service.NewDatastore(def, policy, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("dm", "alice", "study", map[string]string{"weight_anon": "100-110"}); err != nil {
		t.Fatal(err)
	}
	if got := log.Events()[0].Action; got != core.ActionAnon {
		t.Errorf("anonymised store write recorded as %v, want anon", got)
	}

	if _, err := service.NewDatastore(def, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := service.NewDatastore(schema.Datastore{ID: ""}, policy, nil); err == nil {
		t.Error("invalid definition accepted")
	}
}

func TestHTTPHandler(t *testing.T) {
	log := service.NewLog()
	store := ehrDatastore(t, log)
	server := httptest.NewServer(store.Handler())
	defer server.Close()
	ctx := context.Background()

	doctor := &service.Client{BaseURL: server.URL, Actor: "doctor"}
	nurse := &service.Client{BaseURL: server.URL, Actor: "nurse"}

	if err := doctor.Put(ctx, "alice", "record consultation", map[string]string{"name": "Alice", "diagnosis": "flu", "treatment": "rest"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	values, err := nurse.Get(ctx, "alice", "administer treatment", []string{"name", "treatment"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if values["treatment"] != "rest" {
		t.Errorf("values = %v", values)
	}
	// Forbidden read maps to ErrDenied.
	if _, err := nurse.Get(ctx, "alice", "curiosity", []string{"diagnosis"}); !errors.Is(err, service.ErrDenied) {
		t.Errorf("error = %v, want ErrDenied", err)
	}
	// Delete then read back.
	if err := doctor.Delete(ctx, "alice", "erasure", []string{"diagnosis"}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	values, err = doctor.Get(ctx, "alice", "review", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := values["diagnosis"]; ok {
		t.Error("diagnosis should be gone after delete")
	}

	// Protocol errors.
	resp, err := http.Get(server.URL + "/records/alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing actor header status = %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, server.URL+"/records/alice", strings.NewReader("{}"))
	req.Header.Set(service.HeaderActor, "doctor")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(server.URL + "/meta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /meta status = %d", resp.StatusCode)
	}
	// The audit log saw the whole session.
	if log.Len() == 0 {
		t.Error("event log is empty after HTTP traffic")
	}
}

func TestStartServerAndStop(t *testing.T) {
	store := ehrDatastore(t, service.NewLog())
	server, err := service.StartServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	client := &service.Client{BaseURL: server.URL(), Actor: "doctor"}
	if err := client.Put(context.Background(), "bob", "record", map[string]string{"name": "Bob"}); err != nil {
		t.Fatalf("Put over real listener: %v", err)
	}
	if server.Store() != store {
		t.Error("Store() should return the served datastore")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := server.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// After Stop the port no longer accepts requests.
	if err := client.Put(context.Background(), "bob", "record", map[string]string{"name": "Bob"}); err == nil {
		t.Error("request after Stop should fail")
	}
}

func TestClusterRunsSurgeryModel(t *testing.T) {
	cluster, err := service.StartCluster(casestudy.Surgery())
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = cluster.Stop(ctx)
	}()

	if got := len(cluster.Datastores()); got != 3 {
		t.Errorf("cluster datastores = %d, want 3", got)
	}
	ctx := context.Background()
	doctor, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorDoctor)
	if err != nil {
		t.Fatal(err)
	}
	if err := doctor.Put(ctx, "patient-1", "record consultation", map[string]string{
		casestudy.FieldName:      "Alice Example",
		casestudy.FieldDiagnosis: "bronchitis",
	}); err != nil {
		t.Fatalf("doctor Put: %v", err)
	}
	nurse, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorNurse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nurse.Get(ctx, "patient-1", "administer treatment", []string{casestudy.FieldName}); err != nil {
		t.Fatalf("nurse Get: %v", err)
	}
	// The researcher cannot read the raw EHR.
	researcher, err := cluster.Client(casestudy.StoreEHR, casestudy.ActorResearcher)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := researcher.Get(ctx, "patient-1", "curiosity", []string{casestudy.FieldDiagnosis}); !errors.Is(err, service.ErrDenied) {
		t.Errorf("researcher EHR read error = %v, want ErrDenied", err)
	}
	if cluster.Log().Len() < 3 {
		t.Errorf("cluster log has %d events, want >= 3", cluster.Log().Len())
	}
	if _, err := cluster.Client("ghost", "doctor"); err == nil {
		t.Error("client for unknown datastore accepted")
	}
	if _, err := cluster.URL("ghost"); err == nil {
		t.Error("URL for unknown datastore accepted")
	}
	if _, err := cluster.Datastore("ghost"); err == nil {
		t.Error("Datastore for unknown datastore accepted")
	}

	// Error cases for StartCluster.
	if _, err := service.StartCluster(nil); err == nil {
		t.Error("nil model accepted")
	}
	noPolicy := casestudy.Surgery()
	noPolicy.Policy = nil
	if _, err := service.StartCluster(noPolicy); err == nil {
		t.Error("model without policy accepted")
	}
}
