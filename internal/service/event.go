// Package service is the distributed data-service substrate: in-memory
// field-level datastores with access-control enforcement, HTTP servers and
// clients exposing them, and an append-only event log of every operation on
// personal data.
//
// The paper targets "distributed data services" and proposes to "monitor the
// privacy risks during the lifetime of the service". This package provides
// the running system for that claim: datastore servers emit events for every
// create/read/delete, and package runtime replays those events onto the
// generated privacy LTS to track each user's privacy state and re-evaluate
// risk live.
package service

import (
	"sync"
	"time"

	"privascope/internal/core"
)

// Event records one operation on a user's personal data performed against a
// datastore or between actors.
type Event struct {
	// Seq is the position of the event in its log, starting at 1.
	Seq int64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Actor performed the operation.
	Actor string `json:"actor"`
	// Action is the kind of operation (collect, create, read, disclose,
	// anon, delete).
	Action core.Action `json:"action"`
	// Datastore is the datastore involved, if any.
	Datastore string `json:"datastore,omitempty"`
	// Service and Purpose describe why the operation happened, if known.
	Service string `json:"service,omitempty"`
	Purpose string `json:"purpose,omitempty"`
	// UserID identifies the data subject whose data was touched.
	UserID string `json:"user_id"`
	// Fields are the personal-data fields involved.
	Fields []string `json:"fields"`
	// Denied marks operations the access-control policy refused; they are
	// logged for audit but had no effect.
	Denied bool `json:"denied,omitempty"`
}

// Log is an append-only, thread-safe event log with subscription support.
// The zero value is ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
	nextID int64
	subs   map[int]chan Event
	subSeq int
	clock  func() time.Time
}

// NewLog returns an empty event log.
func NewLog() *Log {
	return &Log{subs: make(map[int]chan Event), clock: time.Now}
}

// SetClock overrides the time source; intended for tests.
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// Append assigns a sequence number and timestamp to the event, stores it and
// delivers it to subscribers. Subscribers with full buffers miss the event
// rather than blocking the writer.
func (l *Log) Append(ev Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	ev.Seq = l.nextID
	if l.clock != nil {
		ev.Time = l.clock()
	} else {
		ev.Time = time.Now()
	}
	ev.Fields = append([]string(nil), ev.Fields...)
	l.events = append(l.events, ev)
	for _, ch := range l.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	return ev
}

// Events returns a copy of all recorded events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// NextBatch collects the next batch of events from a subscription channel:
// it blocks until at least one event is available (or the channel is
// closed), then drains up to max-1 further events without blocking. A nil
// return means the channel is closed and drained. Consumers that process
// events in bulk — such as the runtime monitor's WatchBatched — use it to
// absorb bursts in one pass instead of one channel receive per event.
func NextBatch(events <-chan Event, max int) []Event {
	if max <= 0 {
		max = 64
	}
	ev, ok := <-events
	if !ok {
		return nil
	}
	batch := make([]Event, 1, max)
	batch[0] = ev
	for len(batch) < max {
		select {
		case ev, ok := <-events:
			if !ok {
				return batch
			}
			batch = append(batch, ev)
		default:
			return batch
		}
	}
	return batch
}

// Subscribe returns a channel receiving future events and a cancel function
// that must be called to release the subscription. The buffer bounds how many
// undelivered events may be pending before new ones are dropped for this
// subscriber.
func (l *Log) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.subs == nil {
		l.subs = make(map[int]chan Event)
	}
	id := l.subSeq
	l.subSeq++
	ch := make(chan Event, buffer)
	l.subs[id] = ch
	cancel := func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if existing, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(existing)
		}
	}
	return ch, cancel
}
