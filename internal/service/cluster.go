package service

import (
	"context"
	"errors"
	"fmt"

	"privascope/internal/dataflow"
)

// Cluster runs one datastore server per datastore of a data-flow model,
// sharing a single event log — the smallest deployment of the "distributed
// data services" the model describes. It is used by the runtime-monitoring
// example and the integration tests.
type Cluster struct {
	model   *dataflow.Model
	log     *Log
	servers map[string]*Server
}

// StartCluster starts a server for every datastore of the model on ephemeral
// local ports. The model must have an access-control policy attached.
func StartCluster(model *dataflow.Model) (*Cluster, error) {
	if model == nil {
		return nil, errors.New("service: model must not be nil")
	}
	if model.Policy == nil {
		return nil, errors.New("service: model has no access-control policy attached")
	}
	c := &Cluster{model: model, log: NewLog(), servers: make(map[string]*Server)}
	for _, def := range model.Datastores {
		store, err := NewDatastore(def, model.Policy, c.log)
		if err != nil {
			c.stopAll()
			return nil, err
		}
		server, err := StartServer(store, "127.0.0.1:0")
		if err != nil {
			c.stopAll()
			return nil, err
		}
		c.servers[def.ID] = server
	}
	return c, nil
}

func (c *Cluster) stopAll() {
	for _, s := range c.servers {
		_ = s.Stop(context.Background())
	}
}

// Stop shuts down every server in the cluster.
func (c *Cluster) Stop(ctx context.Context) error {
	var firstErr error
	for _, s := range c.servers {
		if err := s.Stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Log returns the cluster-wide event log.
func (c *Cluster) Log() *Log { return c.log }

// URL returns the base URL of the named datastore's server.
func (c *Cluster) URL(datastoreID string) (string, error) {
	s, ok := c.servers[datastoreID]
	if !ok {
		return "", fmt.Errorf("service: no server for datastore %q", datastoreID)
	}
	return s.URL(), nil
}

// Client returns a client for the named datastore bound to the given actor.
func (c *Cluster) Client(datastoreID, actor string) (*Client, error) {
	url, err := c.URL(datastoreID)
	if err != nil {
		return nil, err
	}
	return &Client{BaseURL: url, Actor: actor}, nil
}

// Datastore returns the in-process datastore behind the named server, for
// inspection in tests and examples.
func (c *Cluster) Datastore(datastoreID string) (*Datastore, error) {
	s, ok := c.servers[datastoreID]
	if !ok {
		return nil, fmt.Errorf("service: no server for datastore %q", datastoreID)
	}
	return s.Store(), nil
}

// Datastores returns the IDs of the datastores served by the cluster.
func (c *Cluster) Datastores() []string {
	out := make([]string, 0, len(c.servers))
	for id := range c.servers {
		out = append(out, id)
	}
	return out
}
