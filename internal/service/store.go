package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"privascope/internal/accesscontrol"
	"privascope/internal/core"
	"privascope/internal/schema"
)

// ErrDenied is returned when the access-control policy refuses an operation.
var ErrDenied = errors.New("service: access denied")

// ErrUnknownField is returned when an operation references a field the
// datastore's schema does not declare.
var ErrUnknownField = errors.New("service: field not in datastore schema")

// Datastore is an in-memory, field-level store of personal data for one
// datastore of the model, enforcing the access-control policy on every
// operation and emitting an event for each one. It is safe for concurrent
// use.
type Datastore struct {
	def    schema.Datastore
	policy accesscontrol.Policy
	log    *Log

	mu      sync.RWMutex
	records map[string]map[string]string // user -> field -> value
}

// NewDatastore creates a datastore service for the given definition, policy
// and event log. A nil log disables event emission.
func NewDatastore(def schema.Datastore, policy accesscontrol.Policy, log *Log) (*Datastore, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("service: datastore requires an access-control policy")
	}
	return &Datastore{
		def:     def,
		policy:  policy,
		log:     log,
		records: make(map[string]map[string]string),
	}, nil
}

// Definition returns the datastore's schema definition.
func (d *Datastore) Definition() schema.Datastore { return d.def }

// emit appends an event if a log is attached.
func (d *Datastore) emit(ev Event) {
	if d.log != nil {
		d.log.Append(ev)
	}
}

func (d *Datastore) checkFields(fields []string) error {
	for _, f := range fields {
		if !d.def.Schema.Contains(f) {
			return fmt.Errorf("%w: %q in datastore %q", ErrUnknownField, f, d.def.ID)
		}
	}
	return nil
}

func (d *Datastore) checkAccess(actor string, fields []string, perm accesscontrol.Permission) error {
	for _, f := range fields {
		if !d.policy.Allows(actor, d.def.ID, f, perm) {
			return fmt.Errorf("%w: %s may not %s %s.%s", ErrDenied, actor, perm, d.def.ID, f)
		}
	}
	return nil
}

// Put writes field values for a user. The actor needs write permission on
// every field. The action recorded is "create" ("anon" for anonymised
// stores).
func (d *Datastore) Put(actor, userID, purpose string, values map[string]string) error {
	fields := sortedKeys(values)
	if err := d.checkFields(fields); err != nil {
		return err
	}
	action := core.ActionCreate
	if d.def.Anonymised {
		action = core.ActionAnon
	}
	if err := d.checkAccess(actor, fields, accesscontrol.PermissionWrite); err != nil {
		d.emit(Event{Actor: actor, Action: action, Datastore: d.def.ID, UserID: userID,
			Fields: fields, Purpose: purpose, Denied: true})
		return err
	}
	d.mu.Lock()
	if d.records[userID] == nil {
		d.records[userID] = make(map[string]string, len(values))
	}
	for f, v := range values {
		d.records[userID][f] = v
	}
	d.mu.Unlock()
	d.emit(Event{Actor: actor, Action: action, Datastore: d.def.ID, UserID: userID,
		Fields: fields, Purpose: purpose})
	return nil
}

// Get reads the requested fields of a user's record. The actor needs read
// permission on every requested field; the datastore supports field-level
// queries as the paper assumes.
func (d *Datastore) Get(actor, userID, purpose string, fields []string) (map[string]string, error) {
	fields = append([]string(nil), fields...)
	sort.Strings(fields)
	if err := d.checkFields(fields); err != nil {
		return nil, err
	}
	if err := d.checkAccess(actor, fields, accesscontrol.PermissionRead); err != nil {
		d.emit(Event{Actor: actor, Action: core.ActionRead, Datastore: d.def.ID, UserID: userID,
			Fields: fields, Purpose: purpose, Denied: true})
		return nil, err
	}
	d.mu.RLock()
	record := d.records[userID]
	out := make(map[string]string, len(fields))
	for _, f := range fields {
		if v, ok := record[f]; ok {
			out[f] = v
		}
	}
	d.mu.RUnlock()
	d.emit(Event{Actor: actor, Action: core.ActionRead, Datastore: d.def.ID, UserID: userID,
		Fields: fields, Purpose: purpose})
	return out, nil
}

// Delete removes the given fields from a user's record (all fields when the
// list is empty). The actor needs delete permission.
func (d *Datastore) Delete(actor, userID, purpose string, fields []string) error {
	if len(fields) == 0 {
		fields = d.def.Schema.FieldNames()
	}
	fields = append([]string(nil), fields...)
	sort.Strings(fields)
	if err := d.checkFields(fields); err != nil {
		return err
	}
	if err := d.checkAccess(actor, fields, accesscontrol.PermissionDelete); err != nil {
		d.emit(Event{Actor: actor, Action: core.ActionDelete, Datastore: d.def.ID, UserID: userID,
			Fields: fields, Purpose: purpose, Denied: true})
		return err
	}
	d.mu.Lock()
	if record, ok := d.records[userID]; ok {
		for _, f := range fields {
			delete(record, f)
		}
		if len(record) == 0 {
			delete(d.records, userID)
		}
	}
	d.mu.Unlock()
	d.emit(Event{Actor: actor, Action: core.ActionDelete, Datastore: d.def.ID, UserID: userID,
		Fields: fields, Purpose: purpose})
	return nil
}

// Users returns the IDs of users with at least one stored field, sorted.
func (d *Datastore) Users() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.records))
	for u := range d.records {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// FieldsOf returns the fields currently stored for the user, sorted.
func (d *Datastore) FieldsOf(userID string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	record := d.records[userID]
	out := make([]string, 0, len(record))
	for f := range record {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
