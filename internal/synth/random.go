package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/dataflow"
	"privascope/internal/risk"
	"privascope/internal/schema"
)

// This file is the scenario-fuzzer side of the package: where Model,
// Population and HealthRecords produce one fixed shape per spec, the Random*
// generators draw structure — service/flow/field counts, flow chains, policy
// kind, grant coverage, populations, datasets — from a caller-supplied
// *rand.Rand. Everything is a pure function of the generator state, so a
// scenario is reproducible from the single seed that created the Rand; the
// property-test harness (internal/proptest) relies on exactly that.

// PolicyKind selects the access-control implementation a random model is
// equipped with. Every kind is built from the same grant list, so analyses
// must behave identically across them — a cross-implementation invariant the
// property harness checks.
type PolicyKind int

// Policy kinds drawable by RandomModel.
const (
	// PolicyACL attaches the grants as a flat access-control list.
	PolicyACL PolicyKind = iota + 1
	// PolicyRBAC wraps each actor's grants into a role the actor is
	// assigned to.
	PolicyRBAC
	// PolicyComposite splits the grants between an ACL member and an RBAC
	// member of an accesscontrol.Composite.
	PolicyComposite
)

// String returns the kind's name for scenario descriptions.
func (k PolicyKind) String() string {
	switch k {
	case PolicyACL:
		return "acl"
	case PolicyRBAC:
		return "rbac"
	case PolicyComposite:
		return "composite"
	}
	return fmt.Sprintf("policykind(%d)", int(k))
}

// RandomModelSpec bounds the structure RandomModel may draw. The zero value
// selects defaults small enough that privacy-LTS generation of any drawn
// model stays in the low-millisecond range — the property harness generates
// hundreds of them per `go test` run.
type RandomModelSpec struct {
	// MaxServices bounds the number of services; default 3 (at least 1 is
	// always drawn).
	MaxServices int
	// MaxFieldsPerService bounds the personal-data fields per service;
	// default 3 (at least 1).
	MaxFieldsPerService int
	// MaxExtraActors bounds the flow-less actors added to enlarge the
	// state-variable space; default 2 (may be 0).
	MaxExtraActors int
	// DropGrantProbability is the chance each flow-required grant is left
	// out of the policy, producing policy-consistency warnings; default 0.1.
	// Use a negative value for "never drop".
	DropGrantProbability float64
	// ExtraReadProbability is the chance each (non-flow actor, datastore)
	// pair receives a read grant no declared flow needs, producing the
	// potential-read transitions risk analysis assesses; default 0.5. Use a
	// negative value for "never".
	ExtraReadProbability float64
	// Policy forces a policy kind; zero draws one at random.
	Policy PolicyKind
}

func (s RandomModelSpec) withDefaults() RandomModelSpec {
	if s.MaxServices <= 0 {
		s.MaxServices = 3
	}
	if s.MaxFieldsPerService <= 0 {
		s.MaxFieldsPerService = 3
	}
	if s.MaxExtraActors < 0 {
		s.MaxExtraActors = 0
	} else if s.MaxExtraActors == 0 {
		s.MaxExtraActors = 2
	}
	if s.DropGrantProbability == 0 {
		s.DropGrantProbability = 0.1
	}
	if s.ExtraReadProbability == 0 {
		s.ExtraReadProbability = 0.5
	}
	return s
}

// RandomModel draws a valid data-flow model: 1..MaxServices services, each
// with a random flow chain over a random field set (collect and store always;
// read, disclose, anonymise into a dedicated anonymised store, and delete
// each drawn independently), a random set of extra actors, and a random
// ACL/RBAC/Composite policy assembled from the flows' required grants (each
// dropped with DropGrantProbability) plus random extra read grants. The
// result always passes dataflow.Validate; structure, names and policy are a
// pure function of rng.
func RandomModel(rng *rand.Rand, spec RandomModelSpec) *dataflow.Model {
	spec = spec.withDefaults()
	services := 1 + rng.Intn(spec.MaxServices)
	kind := spec.Policy
	if kind == 0 {
		kind = PolicyKind(1 + rng.Intn(3))
	}

	b := dataflow.NewBuilder(
		fmt.Sprintf("fuzz-%dsvc-%s", services, kind),
		dataflow.Actor{ID: "subject", Name: "Data Subject"})

	extraActors := rng.Intn(spec.MaxExtraActors + 1)
	var bystanders []string
	for e := 0; e < extraActors; e++ {
		id := fmt.Sprintf("extra%d", e)
		b.AddActor(dataflow.Actor{ID: id, Name: fmt.Sprintf("Extra Actor %d", e)})
		bystanders = append(bystanders, id)
	}
	maintenance := "maintenance"
	b.AddActor(dataflow.Actor{ID: maintenance, Name: "Maintenance Operator"})
	bystanders = append(bystanders, maintenance)

	var required []accesscontrol.Grant // grants the declared flows need
	var stores []string
	for s := 0; s < services; s++ {
		svcID := fmt.Sprintf("service%d", s)
		collector := fmt.Sprintf("collector%d", s)
		storeID := fmt.Sprintf("store%d", s)
		b.AddService(dataflow.Service{ID: svcID, Name: svcID})
		b.AddActor(dataflow.Actor{ID: collector, Name: collector})

		nfields := 1 + rng.Intn(spec.MaxFieldsPerService)
		fields := make([]schema.Field, nfields)
		names := make([]string, nfields)
		for f := 0; f < nfields; f++ {
			name := fmt.Sprintf("field_%d_%d", s, f)
			category := schema.CategoryStandard
			switch {
			case f == 0:
				category = schema.CategoryIdentifier
			case f == nfields-1:
				category = schema.CategorySensitive
			case rng.Intn(2) == 0:
				category = schema.CategoryQuasiIdentifier
			}
			fields[f] = schema.Field{Name: name, Category: category}
			names[f] = name
		}
		b.AddDatastore(schema.Datastore{ID: storeID, Name: storeID,
			Schema: schema.Schema{Name: storeID, Fields: fields}})
		stores = append(stores, storeID)

		// The flow chain: collect and store always exist; each later stage
		// carries a non-empty subset of what its upstream stage handled, so
		// the chain is well-formed under both flow orderings.
		b.Flow(svcID, "subject", collector, names, "collect")
		b.Flow(svcID, collector, storeID, names, "store")
		required = append(required, accesscontrol.Grant{
			Actor: collector, Datastore: storeID, Fields: []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}})

		readFields := names
		if rng.Float64() < 0.7 {
			processor := fmt.Sprintf("processor%d", s)
			b.AddActor(dataflow.Actor{ID: processor, Name: processor})
			readFields = subset(rng, names)
			b.Flow(svcID, storeID, processor, readFields, "process")
			required = append(required, accesscontrol.Grant{
				Actor: processor, Datastore: storeID, Fields: readFields,
				Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}})

			if rng.Float64() < 0.5 {
				recipient := fmt.Sprintf("recipient%d", s)
				b.AddActor(dataflow.Actor{ID: recipient, Name: recipient})
				b.Flow(svcID, processor, recipient, subset(rng, readFields), "report")
			}
			if rng.Float64() < 0.3 {
				anonID := fmt.Sprintf("anonstore%d", s)
				anonFields := subset(rng, readFields)
				anonSchema := schema.Schema{Name: anonID}
				for _, f := range anonFields {
					anonSchema.Fields = append(anonSchema.Fields,
						schema.Field{Name: schema.AnonName(f), Category: schema.CategoryStandard})
				}
				b.AddDatastore(schema.Datastore{ID: anonID, Name: anonID,
					Schema: anonSchema, Anonymised: true})
				stores = append(stores, anonID)
				b.Flow(svcID, processor, anonID, anonFields, "pseudonymise")
				anonNames := make([]string, len(anonFields))
				for i, f := range anonFields {
					anonNames[i] = schema.AnonName(f)
				}
				required = append(required, accesscontrol.Grant{
					Actor: processor, Datastore: anonID, Fields: anonNames,
					Permissions: []accesscontrol.Permission{accesscontrol.PermissionWrite}})
			}
		}
		if rng.Float64() < 0.3 {
			b.AddFlow(dataflow.Flow{Service: svcID, From: collector, To: storeID,
				Fields: names, Purpose: "erase", Delete: true})
			required = append(required, accesscontrol.Grant{
				Actor: collector, Datastore: storeID, Fields: names,
				Permissions: []accesscontrol.Permission{accesscontrol.PermissionDelete}})
		}
	}

	grants := make([]accesscontrol.Grant, 0, len(required))
	for _, g := range required {
		if rng.Float64() < spec.DropGrantProbability {
			continue
		}
		grants = append(grants, g)
	}
	for _, actor := range bystanders {
		for _, storeID := range stores {
			if rng.Float64() < spec.ExtraReadProbability {
				grants = append(grants, accesscontrol.Grant{
					Actor: actor, Datastore: storeID,
					Fields:      []string{accesscontrol.AllFields},
					Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead},
					Reason:      "background access"})
			}
		}
	}

	b.WithPolicy(PolicyFromGrants(kind, grants))
	return b.MustBuild()
}

// subset draws a non-empty subset of names, preserving their order. The draw
// consumes exactly one rng value per element plus one reserve pick, keeping
// the generator's value stream — and therefore every downstream draw —
// deterministic per seed.
func subset(rng *rand.Rand, names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if rng.Intn(2) == 0 {
			out = append(out, n)
		}
	}
	reserve := names[rng.Intn(len(names))]
	if len(out) == 0 {
		out = append(out, reserve)
	}
	return out
}

// PolicyFromGrants assembles an access-control policy of the given kind from
// one grant list. All three kinds answer every Allows/Explain/ActorsWith
// query identically for the same grants — RBAC roles are named after the
// granted actor and the actor is assigned to exactly that role, and the
// composite splits the list across an ACL and an RBAC member.
func PolicyFromGrants(kind PolicyKind, grants []accesscontrol.Grant) accesscontrol.Policy {
	switch kind {
	case PolicyRBAC:
		return rbacFromGrants(grants)
	case PolicyComposite:
		var aclPart, rbacPart []accesscontrol.Grant
		for i, g := range grants {
			if i%2 == 0 {
				aclPart = append(aclPart, g)
			} else {
				rbacPart = append(rbacPart, g)
			}
		}
		return accesscontrol.NewComposite(accesscontrol.MustACL(aclPart...), rbacFromGrants(rbacPart))
	default:
		return accesscontrol.MustACL(grants...)
	}
}

// rbacFromGrants builds an RBAC policy with one role per granted actor.
func rbacFromGrants(grants []accesscontrol.Grant) *accesscontrol.RBAC {
	byActor := make(map[string][]accesscontrol.Grant)
	var actors []string
	for _, g := range grants {
		if _, seen := byActor[g.Actor]; !seen {
			actors = append(actors, g.Actor)
		}
		byActor[g.Actor] = append(byActor[g.Actor], g)
	}
	sort.Strings(actors)
	r := accesscontrol.NewRBAC()
	for _, actor := range actors {
		roleName := "role:" + actor
		if err := r.AddRole(accesscontrol.Role{Name: roleName, Grants: byActor[actor]}); err != nil {
			panic(err)
		}
		if err := r.Assign(actor, roleName); err != nil {
			panic(err)
		}
	}
	return r
}

// RandomPopulation draws a user population for the model: a random user
// count in [1, maxUsers], a random consent probability and the model's
// sensitive fields biased high, all derived from rng.
func RandomPopulation(rng *rand.Rand, m *dataflow.Model, maxUsers int) []risk.UserProfile {
	if maxUsers <= 0 {
		maxUsers = 8
	}
	return Population(m, PopulationOptions{
		Users:              1 + rng.Intn(maxUsers),
		Seed:               rng.Int63(),
		ConsentProbability: 0.3 + rng.Float64()*0.6,
		SensitiveFields:    SensitiveFieldsOf(m),
	})
}

// RandomTable draws a health-record-style dataset with a random row count in
// [2, maxRows] and integer-valued quasi-identifier columns drawn from
// deliberately small ranges, so equivalence classes of every size occur. It
// returns the table and its quasi-identifier column names.
func RandomTable(rng *rand.Rand, maxRows int) (*anonymize.Table, []string) {
	if maxRows < 2 {
		maxRows = 64
	}
	rows := 2 + rng.Intn(maxRows-1)
	// Small ranges make class collisions (and k-anonymity successes) likely;
	// ranges themselves are drawn so tables differ in class structure.
	ageRange := 2 + rng.Intn(20)
	zipRange := 1 + rng.Intn(6)
	conditions := []string{"none", "asthma", "diabetes", "hypertension"}
	t := anonymize.MustTable(
		anonymize.Column{Name: "age", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "zip", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "condition", Role: anonymize.RoleSensitive},
	)
	for i := 0; i < rows; i++ {
		t.MustAddRow(
			anonymize.Num(float64(20+rng.Intn(ageRange))),
			anonymize.Num(float64(1000+rng.Intn(zipRange))),
			anonymize.Cat(conditions[rng.Intn(len(conditions))]),
		)
	}
	return t, []string{"age", "zip"}
}
