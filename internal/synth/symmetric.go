package synth

import (
	"fmt"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/schema"
)

// SymmetricSpec configures SymmetricModel.
type SymmetricSpec struct {
	// Replicas is the number of interchangeable worker actors; default 4.
	Replicas int
	// Fields is the number of fields the shared store holds; default 2.
	Fields int
}

// SymmetricModel generates a model with deliberate actor symmetry: Replicas
// worker actors, each with its own service of identical shape (collect from
// the subject, write to the shared store, read back), identical grants on the
// one shared store, plus a singleton auditor with read-only access. The
// replicas form one orbit of size Replicas for symmetry-reduced exploration
// (explore.DetectOrbits); the auditor and the subject stay fixed.
func SymmetricModel(spec SymmetricSpec) *dataflow.Model {
	replicas := spec.Replicas
	if replicas <= 0 {
		replicas = 4
	}
	numFields := spec.Fields
	if numFields <= 0 {
		numFields = 2
	}

	b := dataflow.NewBuilder(fmt.Sprintf("symmetric-%d-replicas", replicas),
		dataflow.Actor{ID: "subject", Name: "Data Subject"})

	fields := make([]schema.Field, numFields)
	fieldNames := make([]string, numFields)
	for f := 0; f < numFields; f++ {
		name := fmt.Sprintf("field_%d", f)
		category := schema.CategoryStandard
		if f == 0 {
			category = schema.CategoryIdentifier
		} else if f == numFields-1 {
			category = schema.CategorySensitive
		}
		fields[f] = schema.Field{Name: name, Category: category}
		fieldNames[f] = name
	}
	const storeID = "shared"
	b.AddDatastore(schema.Datastore{ID: storeID, Name: storeID, Schema: schema.Schema{Name: storeID, Fields: fields}})

	acl := &accesscontrol.ACL{}
	auditor := dataflow.Actor{ID: "auditor", Name: "Auditor"}
	b.AddActor(auditor)
	mustGrant(acl, accesscontrol.Grant{Actor: auditor.ID, Datastore: storeID,
		Fields:      []string{accesscontrol.AllFields},
		Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead},
		Reason:      "audit"})

	for i := 0; i < replicas; i++ {
		replica := fmt.Sprintf("replica%d", i)
		svcID := fmt.Sprintf("svc%d", i)
		b.AddActor(dataflow.Actor{ID: replica, Name: replica})
		b.AddService(dataflow.Service{ID: svcID, Name: svcID})
		b.Flow(svcID, "subject", replica, fieldNames, "collect")
		b.Flow(svcID, replica, storeID, fieldNames, "store")
		b.Flow(svcID, storeID, replica, fieldNames, "process")
		mustGrant(acl, accesscontrol.Grant{Actor: replica, Datastore: storeID,
			Fields:      []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}})
	}

	b.WithPolicy(acl)
	return b.MustBuild()
}
