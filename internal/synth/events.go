package synth

import (
	"math/rand"

	"privascope/internal/core"
	"privascope/internal/service"
)

// RandomEventStream draws a runtime event stream from a privacy LTS: each
// user's events are mostly a random walk along the model's transitions
// (events the monitor will match), mixed with unmodelled operations and
// occasional denied operations, and the per-user streams are interleaved
// round-robin so every partitioning of the stream — monitor shard layouts,
// cluster node assignments — sees the same per-user order. Like everything
// in this package it is a pure function of the generator state, which is
// what lets the property harness replay a failing stream from its seed.
func RandomEventStream(rng *rand.Rand, p *core.PrivacyLTS, users []string, perUser int) []service.Event {
	streams := make([][]service.Event, len(users))
	for u, id := range users {
		cursor := p.InitialState()
		for len(streams[u]) < perUser {
			outs := p.Graph.Outgoing(cursor)
			switch {
			case len(outs) > 0 && rng.Float64() < 0.8:
				tr := outs[rng.Intn(len(outs))]
				label := core.LabelOf(tr)
				streams[u] = append(streams[u], service.Event{
					Actor: label.Actor, Action: label.Action, Datastore: label.Datastore,
					Service: label.Service, Purpose: label.Purpose,
					UserID: id, Fields: label.FieldSet(),
				})
				cursor = tr.To
			default:
				// Noise: an operation the model does not declare, sometimes
				// denied by the policy before it took effect.
				actor := p.Vocab.Actors()[rng.Intn(len(p.Vocab.Actors()))]
				field := p.Vocab.Fields()[rng.Intn(len(p.Vocab.Fields()))]
				store := ""
				if n := len(p.Model.Datastores); n > 0 {
					store = p.Model.Datastores[rng.Intn(n)].ID
				}
				streams[u] = append(streams[u], service.Event{
					Actor: actor, Action: core.ActionRead, Datastore: store,
					UserID: id, Fields: []string{field}, Denied: rng.Intn(4) == 0,
				})
			}
		}
	}
	var out []service.Event
	for i := 0; i < perUser; i++ {
		for u := range users {
			out = append(out, streams[u][i])
		}
	}
	return out
}

// WalkScripts precomputes, per user, one maximal matched-event walk from the
// model's initial state (first outgoing transition at every step, so the
// script is deterministic). Benchmarks replay these scripts instead of
// drawing events inside the timed region; the privacy LTS is a DAG, so each
// script is finite and a replay needs the user's cursor reset between
// generations.
func WalkScripts(p *core.PrivacyLTS, users []string) [][]service.Event {
	scripts := make([][]service.Event, len(users))
	for u, id := range users {
		cursor := p.InitialState()
		for {
			outs := p.Graph.Outgoing(cursor)
			if len(outs) == 0 {
				break
			}
			tr := outs[0]
			label := core.LabelOf(tr)
			scripts[u] = append(scripts[u], service.Event{
				Actor: label.Actor, Action: label.Action, Datastore: label.Datastore,
				Service: label.Service, Purpose: label.Purpose,
				UserID: id, Fields: label.FieldSet(),
			})
			cursor = tr.To
		}
	}
	return scripts
}
