// Package synth generates deterministic synthetic inputs for design-time
// analysis, examples and benchmarks: health-record datasets, user
// populations with privacy preferences, and whole data-flow models of
// configurable size.
//
// The paper's method expects simulated data and simulated users during the
// development phase ("The process can be executed with running users of the
// system, or with simulated users in the development phase"; "simulated data
// can be used at design time"). This package is that simulation substrate;
// everything it produces is a pure function of the seed, so experiments are
// reproducible.
package synth

import (
	"fmt"
	"math/rand"

	"privascope/internal/accesscontrol"
	"privascope/internal/anonymize"
	"privascope/internal/dataflow"
	"privascope/internal/risk"
	"privascope/internal/schema"
)

// HealthRecordsOptions configures the synthetic health-record generator.
type HealthRecordsOptions struct {
	// Rows is the number of records; default 100.
	Rows int
	// Seed seeds the deterministic generator.
	Seed int64
}

// HealthRecords generates a synthetic physical-attributes dataset with age,
// height and weight columns (the shape of the paper's Table I) plus a
// categorical condition column usable as an l-diversity sensitive attribute.
func HealthRecords(opts HealthRecordsOptions) *anonymize.Table {
	rows := opts.Rows
	if rows <= 0 {
		rows = 100
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	conditions := []string{"none", "asthma", "diabetes", "hypertension", "arthritis"}
	t := anonymize.MustTable(
		anonymize.Column{Name: "age", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "height", Role: anonymize.RoleQuasiIdentifier, Unit: "cm"},
		anonymize.Column{Name: "weight", Role: anonymize.RoleSensitive, Unit: "kg"},
		anonymize.Column{Name: "condition", Role: anonymize.RoleSensitive},
	)
	for i := 0; i < rows; i++ {
		age := 18 + rng.Intn(70)
		height := 150 + rng.Intn(50)
		// Weight loosely correlates with height so the dataset has realistic
		// structure for the value-risk analysis.
		weight := float64(height-100) + rng.NormFloat64()*12
		if weight < 40 {
			weight = 40
		}
		condition := conditions[rng.Intn(len(conditions))]
		t.MustAddRow(
			anonymize.Num(float64(age)),
			anonymize.Num(float64(height)),
			anonymize.Num(float64(int(weight))),
			anonymize.Cat(condition),
		)
	}
	return t
}

// PopulationOptions configures the synthetic user-population generator.
type PopulationOptions struct {
	// Users is the number of profiles; default 50.
	Users int
	// Seed seeds the deterministic generator.
	Seed int64
	// ConsentProbability is the probability a user consents to each service;
	// default 0.7.
	ConsentProbability float64
	// SensitiveFields lists fields that receive elevated sensitivities; the
	// rest use the default.
	SensitiveFields []string
}

// Population generates user profiles for the given model: each user consents
// to a random subset of the model's services and draws per-field
// sensitivities, with the listed sensitive fields biased towards high values.
func Population(m *dataflow.Model, opts PopulationOptions) []risk.UserProfile {
	users := opts.Users
	if users <= 0 {
		users = 50
	}
	consentP := opts.ConsentProbability
	if consentP <= 0 || consentP > 1 {
		consentP = 0.7
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sensitive := make(map[string]bool, len(opts.SensitiveFields))
	for _, f := range opts.SensitiveFields {
		sensitive[f] = true
	}
	services := m.ServiceIDs()
	fields := m.FieldUniverse()

	out := make([]risk.UserProfile, 0, users)
	for i := 0; i < users; i++ {
		profile := risk.UserProfile{
			ID:                 fmt.Sprintf("user-%04d", i),
			Sensitivities:      make(map[string]float64, len(fields)),
			DefaultSensitivity: 0.1,
		}
		for _, svc := range services {
			if rng.Float64() < consentP {
				profile.ConsentedServices = append(profile.ConsentedServices, svc)
			}
		}
		for _, f := range fields {
			if sensitive[f] {
				profile.Sensitivities[f] = 0.7 + rng.Float64()*0.3
			} else {
				profile.Sensitivities[f] = rng.Float64() * 0.5
			}
		}
		out = append(out, profile)
	}
	return out
}

// ModelSpec describes the size of a synthetic data-flow model. The generated
// system has Services independent services; each service collects a subset
// of the fields from the user, stores them, has a second actor read them,
// and discloses them to a third actor, so every extraction rule of the paper
// is exercised. One extra "maintenance" actor holds read access to every
// store without taking part in any flow, which produces the potential-read
// transitions the risk analysis assesses.
type ModelSpec struct {
	// Services is the number of services; default 2.
	Services int
	// FieldsPerService is how many fields each service handles; default 3.
	FieldsPerService int
	// ExtraActors adds actors beyond the three per service and the
	// maintenance actor, enlarging the state-variable space without adding
	// flows.
	ExtraActors int
	// Seed seeds field naming only; the structure is deterministic.
	Seed int64
}

// Model generates a synthetic data-flow model with the given spec, including
// its access-control policy.
func Model(spec ModelSpec) *dataflow.Model {
	services := spec.Services
	if services <= 0 {
		services = 2
	}
	fieldsPerService := spec.FieldsPerService
	if fieldsPerService <= 0 {
		fieldsPerService = 3
	}

	b := dataflow.NewBuilder(fmt.Sprintf("synthetic-%d-services", services),
		dataflow.Actor{ID: "subject", Name: "Data Subject"})

	acl := &accesscontrol.ACL{}
	maintenance := dataflow.Actor{ID: "maintenance", Name: "Maintenance Operator"}
	b.AddActor(maintenance)

	for e := 0; e < spec.ExtraActors; e++ {
		b.AddActor(dataflow.Actor{ID: fmt.Sprintf("extra%d", e), Name: fmt.Sprintf("Extra Actor %d", e)})
	}

	for s := 0; s < services; s++ {
		svcID := fmt.Sprintf("service%d", s)
		collector := fmt.Sprintf("collector%d", s)
		processor := fmt.Sprintf("processor%d", s)
		recipient := fmt.Sprintf("recipient%d", s)
		storeID := fmt.Sprintf("store%d", s)

		fields := make([]schema.Field, fieldsPerService)
		fieldNames := make([]string, fieldsPerService)
		for f := 0; f < fieldsPerService; f++ {
			name := fmt.Sprintf("field_%d_%d", s, f)
			category := schema.CategoryStandard
			if f == 0 {
				category = schema.CategoryIdentifier
			} else if f == fieldsPerService-1 {
				category = schema.CategorySensitive
			}
			fields[f] = schema.Field{Name: name, Category: category}
			fieldNames[f] = name
		}

		b.AddActors(
			dataflow.Actor{ID: collector, Name: collector},
			dataflow.Actor{ID: processor, Name: processor},
			dataflow.Actor{ID: recipient, Name: recipient},
		)
		b.AddDatastore(schema.Datastore{ID: storeID, Name: storeID, Schema: schema.Schema{Name: storeID, Fields: fields}})
		b.AddService(dataflow.Service{ID: svcID, Name: svcID})

		b.Flow(svcID, "subject", collector, fieldNames, "collect")
		b.Flow(svcID, collector, storeID, fieldNames, "store")
		b.Flow(svcID, storeID, processor, fieldNames, "process")
		b.Flow(svcID, processor, recipient, fieldNames, "report")

		mustGrant(acl, accesscontrol.Grant{Actor: collector, Datastore: storeID,
			Fields:      []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionWrite}})
		mustGrant(acl, accesscontrol.Grant{Actor: processor, Datastore: storeID,
			Fields:      []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead}})
		mustGrant(acl, accesscontrol.Grant{Actor: maintenance.ID, Datastore: storeID,
			Fields:      []string{accesscontrol.AllFields},
			Permissions: []accesscontrol.Permission{accesscontrol.PermissionRead, accesscontrol.PermissionDelete},
			Reason:      "system maintenance"})
	}

	b.WithPolicy(acl)
	return b.MustBuild()
}

// mustGrant adds a grant whose construction cannot fail for the generator's
// fixed shapes.
func mustGrant(acl *accesscontrol.ACL, g accesscontrol.Grant) {
	if err := acl.Add(g); err != nil {
		panic(err)
	}
}

// SensitiveFieldsOf returns the generated sensitive field names of a
// synthetic model, convenient when building populations for it.
func SensitiveFieldsOf(m *dataflow.Model) []string {
	var out []string
	for _, d := range m.Datastores {
		for _, f := range d.Schema.Fields {
			if f.Category == schema.CategorySensitive {
				out = append(out, f.Name)
			}
		}
	}
	return out
}
