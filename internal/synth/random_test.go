package synth_test

import (
	"math/rand"
	"strings"
	"testing"

	"privascope/internal/accesscontrol"
	"privascope/internal/dataflow"
	"privascope/internal/proptest"
	"privascope/internal/synth"
)

// TestPropRandomModelValidates: every drawn model passes dataflow.Validate
// (MustBuild would panic otherwise) and carries a policy.
func TestPropRandomModelValidates(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		m := synth.RandomModel(rng, synth.RandomModelSpec{})
		if err := m.Validate(); err != nil {
			return err
		}
		return nil
	})
}

// TestPropRandomModelIsDeterministic: the generator is a pure function of the
// seed — two independent draws from the same seed fingerprint identically.
func TestPropRandomModelIsDeterministic(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		fp := func(s int64) string {
			m := synth.RandomModel(rand.New(rand.NewSource(s)), synth.RandomModelSpec{})
			f, err := dataflow.Fingerprint(m)
			if err != nil {
				t.Fatalf("fingerprint: %v", err)
			}
			return f
		}
		if a, b := fp(seed), fp(seed); a != b {
			t.Fatalf("same seed, different models: %s vs %s", a, b)
		}
		return nil
	})
}

func TestRandomModelCoversAllPolicyKinds(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64 && len(seen) < 3; i++ {
		m := synth.RandomModel(rand.New(rand.NewSource(int64(i))), synth.RandomModelSpec{})
		for _, kind := range []string{"acl", "rbac", "composite"} {
			if strings.HasSuffix(m.Name, kind) {
				seen[kind] = true
			}
		}
	}
	if len(seen) < 3 {
		t.Fatalf("64 draws covered only policy kinds %v, want all three", seen)
	}
}

// TestPropPolicyKindsAnswerIdentically is the cross-implementation invariant:
// ACL, RBAC and Composite built from the same grants must answer every
// (actor, datastore, field, permission) query identically.
func TestPropPolicyKindsAnswerIdentically(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		forced := synth.PolicyACL
		m := synth.RandomModel(rng, synth.RandomModelSpec{Policy: forced})
		grants := m.Policy.(*accesscontrol.ACL).Grants()

		acl := synth.PolicyFromGrants(synth.PolicyACL, grants)
		rbac := synth.PolicyFromGrants(synth.PolicyRBAC, grants)
		comp := synth.PolicyFromGrants(synth.PolicyComposite, grants)

		perms := []accesscontrol.Permission{
			accesscontrol.PermissionRead, accesscontrol.PermissionWrite, accesscontrol.PermissionDelete}
		for _, a := range m.Actors {
			for _, d := range m.Datastores {
				for _, f := range d.Schema.Fields {
					for _, p := range perms {
						want := acl.Allows(a.ID, d.ID, f.Name, p)
						if got := rbac.Allows(a.ID, d.ID, f.Name, p); got != want {
							t.Fatalf("seed %d: RBAC answers %v for (%s,%s,%s,%s), ACL answers %v",
								seed, got, a.ID, d.ID, f.Name, p, want)
						}
						if got := comp.Allows(a.ID, d.ID, f.Name, p); got != want {
							t.Fatalf("seed %d: Composite answers %v for (%s,%s,%s,%s), ACL answers %v",
								seed, got, a.ID, d.ID, f.Name, p, want)
						}
					}
				}
			}
		}
		return nil
	})
}

func TestPropRandomPopulationIsWellFormed(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		m := synth.RandomModel(rng, synth.RandomModelSpec{})
		profiles := synth.RandomPopulation(rng, m, 8)
		if len(profiles) == 0 || len(profiles) > 8 {
			t.Fatalf("seed %d: population size %d outside [1,8]", seed, len(profiles))
		}
		return nil
	})
}

func TestPropRandomTableIsWellFormed(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		tab, qis := synth.RandomTable(rng, 64)
		if got := tab.NumRows(); got < 2 || got > 65 {
			t.Fatalf("seed %d: table has %d rows, want within [2,65]", seed, got)
		}
		if len(qis) == 0 {
			t.Fatalf("seed %d: no quasi-identifier columns", seed)
		}
		for _, qi := range qis {
			if _, ok := tab.ColumnIndex(qi); !ok {
				t.Fatalf("seed %d: quasi-identifier column %q missing from table", seed, qi)
			}
		}
		return nil
	})
}
