package synth

import (
	"reflect"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/core"
	"privascope/internal/risk"
)

func TestHealthRecordsDeterministic(t *testing.T) {
	a := HealthRecords(HealthRecordsOptions{Rows: 40, Seed: 7})
	b := HealthRecords(HealthRecordsOptions{Rows: 40, Seed: 7})
	if a.NumRows() != 40 || b.NumRows() != 40 {
		t.Fatalf("rows = %d, %d", a.NumRows(), b.NumRows())
	}
	for r := 0; r < a.NumRows(); r++ {
		for _, col := range []string{"age", "height", "weight", "condition"} {
			va, _ := a.Value(r, col)
			vb, _ := b.Value(r, col)
			if va != vb {
				t.Fatalf("row %d column %s differs between equal seeds: %v vs %v", r, col, va, vb)
			}
		}
	}
	c := HealthRecords(HealthRecordsOptions{Rows: 40, Seed: 8})
	same := true
	for r := 0; r < a.NumRows(); r++ {
		va, _ := a.Value(r, "weight")
		vc, _ := c.Value(r, "weight")
		if va != vc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

func TestHealthRecordsPlausibleRanges(t *testing.T) {
	tbl := HealthRecords(HealthRecordsOptions{Rows: 200, Seed: 1})
	for r := 0; r < tbl.NumRows(); r++ {
		age, _ := tbl.Value(r, "age")
		if age.Num < 18 || age.Num > 88 {
			t.Fatalf("row %d age %v out of range", r, age.Num)
		}
		height, _ := tbl.Value(r, "height")
		if height.Num < 150 || height.Num > 200 {
			t.Fatalf("row %d height %v out of range", r, height.Num)
		}
		weight, _ := tbl.Value(r, "weight")
		if weight.Num < 40 || weight.Num > 200 {
			t.Fatalf("row %d weight %v out of range", r, weight.Num)
		}
		condition, _ := tbl.Value(r, "condition")
		if condition.Kind != anonymize.KindCategorical {
			t.Fatalf("row %d condition kind = %v", r, condition.Kind)
		}
	}
	if tbl.NumRows() != 200 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	// Default row count.
	if got := HealthRecords(HealthRecordsOptions{}).NumRows(); got != 100 {
		t.Errorf("default rows = %d, want 100", got)
	}
}

func TestHealthRecordsUsableByAnonymiser(t *testing.T) {
	tbl := HealthRecords(HealthRecordsOptions{Rows: 60, Seed: 3})
	anon, result, err := anonymize.KAnonymize(tbl, []string{"age", "height"}, 5, anonymize.KAnonymizeOptions{
		InitialWidths: map[string]float64{"age": 10, "height": 10},
	})
	if err != nil {
		t.Fatalf("KAnonymize: %v", err)
	}
	ok, err := anonymize.IsKAnonymous(anon, []string{"age", "height"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok && len(result.SuppressedRows) == 0 {
		t.Error("synthetic data could not be 5-anonymised")
	}
}

func TestPopulation(t *testing.T) {
	m := Model(ModelSpec{Services: 2, FieldsPerService: 3})
	profiles := Population(m, PopulationOptions{Users: 25, Seed: 11, SensitiveFields: SensitiveFieldsOf(m)})
	if len(profiles) != 25 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	services := map[string]bool{}
	for _, s := range m.ServiceIDs() {
		services[s] = true
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %s invalid: %v", p.ID, err)
		}
		for _, svc := range p.ConsentedServices {
			if !services[svc] {
				t.Errorf("profile %s consents to unknown service %q", p.ID, svc)
			}
		}
	}
	// Sensitive fields are biased high.
	sensitive := SensitiveFieldsOf(m)
	if len(sensitive) == 0 {
		t.Fatal("synthetic model has no sensitive fields")
	}
	for _, p := range profiles {
		for _, f := range sensitive {
			if p.Sensitivities[f] < 0.7 {
				t.Errorf("profile %s sensitivity of %s = %v, want >= 0.7", p.ID, f, p.Sensitivities[f])
			}
		}
	}
	// Determinism.
	again := Population(m, PopulationOptions{Users: 25, Seed: 11, SensitiveFields: SensitiveFieldsOf(m)})
	if !reflect.DeepEqual(profiles, again) {
		t.Error("population generation is not deterministic")
	}
	// Defaults.
	if got := len(Population(m, PopulationOptions{})); got != 50 {
		t.Errorf("default users = %d, want 50", got)
	}
}

func TestModelSpecDefaultsAndValidity(t *testing.T) {
	m := Model(ModelSpec{})
	if err := m.Validate(); err != nil {
		t.Fatalf("default synthetic model invalid: %v", err)
	}
	stats := m.Stats()
	if stats.Services != 2 {
		t.Errorf("default services = %d", stats.Services)
	}
	if stats.Flows != 8 {
		t.Errorf("default flows = %d, want 8", stats.Flows)
	}
	// 3 actors per service + maintenance = 7.
	if stats.Actors != 7 {
		t.Errorf("default actors = %d, want 7", stats.Actors)
	}
}

func TestModelScalesAndGenerates(t *testing.T) {
	small := Model(ModelSpec{Services: 1, FieldsPerService: 2})
	large := Model(ModelSpec{Services: 4, FieldsPerService: 4, ExtraActors: 3})
	if err := large.Validate(); err != nil {
		t.Fatalf("large synthetic model invalid: %v", err)
	}
	if large.Stats().StateVariables <= small.Stats().StateVariables {
		t.Error("larger spec should produce more state variables")
	}

	pSmall, err := core.Generate(small)
	if err != nil {
		t.Fatalf("Generate(small): %v", err)
	}
	pLarge, err := core.Generate(large)
	if err != nil {
		t.Fatalf("Generate(large): %v", err)
	}
	if len(pSmall.Warnings) != 0 || len(pLarge.Warnings) != 0 {
		t.Errorf("synthetic models should be policy-consistent; warnings: %v %v", pSmall.Warnings, pLarge.Warnings)
	}
	if pLarge.Stats().States <= pSmall.Stats().States {
		t.Errorf("larger model should have more states: %d vs %d",
			pLarge.Stats().States, pSmall.Stats().States)
	}

	// The maintenance actor produces potential reads and is assessable.
	analyzer := risk.MustAnalyzer(risk.Config{})
	profiles := Population(large, PopulationOptions{Users: 3, Seed: 5, SensitiveFields: SensitiveFieldsOf(large)})
	for _, profile := range profiles {
		if _, err := analyzer.Analyze(pLarge, profile); err != nil {
			t.Fatalf("Analyze(%s): %v", profile.ID, err)
		}
	}
}

func TestSensitiveFieldsOf(t *testing.T) {
	m := Model(ModelSpec{Services: 3, FieldsPerService: 3})
	fields := SensitiveFieldsOf(m)
	if len(fields) != 3 {
		t.Errorf("sensitive fields = %v, want one per service", fields)
	}
}
