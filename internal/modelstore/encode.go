package modelstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
)

// Encode serialises a generated privacy model into a version-1 artifact. The
// artifact embeds the model's dataflow.Fingerprint, so models whose policies
// cannot be fingerprinted cannot be persisted (they bypass every cache tier
// anyway). Encoding is deterministic: the same model yields byte-identical
// artifacts.
func Encode(p *core.PrivacyLTS) ([]byte, error) {
	fp, err := dataflow.Fingerprint(p.Model)
	if err != nil {
		return nil, fmt.Errorf("modelstore: model cannot be fingerprinted: %w", err)
	}
	parts := p.Graph.Compiled().Parts()
	n, m := len(parts.States), len(parts.Trs)
	if parts.Initial < 0 {
		return nil, fmt.Errorf("modelstore: model has no initial state")
	}

	in := newInterner()

	// States, in dense order.
	stateRefs := make([]uint32, n)
	for s, id := range parts.States {
		stateRefs[s] = in.ref(string(id))
	}

	// Distinct label pointers in first-occurrence order over the transitions.
	// The interned label string of each pointer comes from the compiled label
	// table — no label is re-rendered during encoding.
	ptrIdx := make(map[*core.TransitionLabel]int32)
	var ptrs []*core.TransitionLabel
	var ptrStrs []string
	edgeLabelPtr := make([]int32, m)
	for e, tr := range parts.Trs {
		switch lbl := tr.Label.(type) {
		case nil:
			edgeLabelPtr[e] = -1
		case *core.TransitionLabel:
			if lbl == nil {
				return nil, fmt.Errorf("modelstore: transition %d carries a typed-nil label", e)
			}
			idx, ok := ptrIdx[lbl]
			if !ok {
				idx = int32(len(ptrs))
				ptrIdx[lbl] = idx
				ptrs = append(ptrs, lbl)
				ptrStrs = append(ptrStrs, parts.LabelStrs[parts.EdgeLabel[e]])
			}
			edgeLabelPtr[e] = idx
		default:
			return nil, fmt.Errorf("modelstore: transition %d carries a foreign label type %T", e, tr.Label)
		}
	}
	numLabels := len(ptrs)

	var labels leBuf
	for _, lbl := range ptrs { // action column
		labels.i32(int32(lbl.Action))
	}
	for _, lbl := range ptrs { // flags column
		var flags uint32
		if lbl.Potential {
			flags |= 1
		}
		labels.u32(flags)
	}
	for i, lbl := range ptrs { // string-ref columns
		labels.u32(in.ref(ptrStrs[i]))
		labels.u32(in.ref(lbl.Actor))
		labels.u32(in.ref(lbl.Datastore))
		labels.u32(in.ref(lbl.Purpose))
		labels.u32(in.ref(lbl.Service))
		labels.u32(in.ref(lbl.FlowKey))
		labels.u32(in.ref(lbl.Counterpart))
	}
	fieldsOff := uint32(0)
	labels.u32(0) // fieldsOff column, one ahead of the refs
	for _, lbl := range ptrs {
		fieldsOff += uint32(len(lbl.Fields))
		labels.u32(fieldsOff)
	}
	for _, lbl := range ptrs { // field refs, concatenated
		for _, f := range lbl.Fields {
			labels.u32(in.ref(f))
		}
	}

	var edges leBuf
	for _, v := range parts.EdgeFrom {
		edges.i32(v)
	}
	for _, v := range parts.EdgeTo {
		edges.i32(v)
	}
	for _, v := range edgeLabelPtr {
		edges.i32(v)
	}

	var csr leBuf
	for _, col := range [][]int32{parts.OutOff, parts.InOff, parts.OutEdges, parts.InEdges} {
		for _, v := range col {
			csr.i32(v)
		}
	}

	wpv := p.Vocab.WordsPerVector()
	var vectors leBuf
	for _, id := range parts.States {
		v, ok := p.Vector(id)
		if !ok {
			return nil, fmt.Errorf("modelstore: state %s has no privacy vector", id)
		}
		words := v.Words()
		if len(words) != wpv {
			return nil, fmt.Errorf("modelstore: state %s vector has %d words, vocabulary needs %d", id, len(words), wpv)
		}
		for _, w := range words {
			vectors.u64(w)
		}
	}

	// Per-state datastore contents: offsets count uint32 record words; each
	// record is (store ref, field count, field refs...). Empty field sets are
	// behaviourally invisible and are skipped, keeping the form canonical.
	var storeOffs, storeRecs leBuf
	recWords := uint32(0)
	storeOffs.u32(0)
	for _, id := range parts.States {
		for _, name := range sortedStoreNames(p, id) {
			fs := p.StoreMap(id)[name]
			names := fs.Names()
			storeRecs.u32(in.ref(name))
			storeRecs.u32(uint32(len(names)))
			for _, f := range names {
				storeRecs.u32(in.ref(f))
			}
			recWords += 2 + uint32(len(names))
		}
		storeOffs.u32(recWords)
	}
	stores := leBuf{b: append(storeOffs.b, storeRecs.b...)}

	var vocab leBuf
	actors, fields := p.Vocab.Actors(), p.Vocab.Fields()
	for _, a := range actors {
		vocab.u32(in.ref(a))
	}
	for _, f := range fields {
		vocab.u32(in.ref(f))
	}
	for _, w := range p.Warnings {
		vocab.u32(in.ref(w))
	}

	// The string table is complete only now; meta depends on its size.
	var strings leBuf
	blobOff := uint32(0)
	strings.u32(0)
	for _, s := range in.all {
		blobOff += uint32(len(s))
		strings.u32(blobOff)
	}
	for _, s := range in.all {
		strings.b = append(strings.b, s...)
	}

	var meta leBuf
	meta.u32(uint32(n))
	meta.u32(uint32(m))
	meta.u32(uint32(numLabels))
	meta.u32(uint32(len(in.all)))
	meta.u32(uint32(wpv))
	meta.u32(uint32(len(actors)))
	meta.u32(uint32(len(fields)))
	meta.u32(uint32(len(p.Warnings)))
	meta.i32(parts.Initial)
	meta.u32(uint32(len(fp)))
	meta.b = append(meta.b, fp...)

	payloads := map[uint32][]byte{
		secMeta:    meta.b,
		secStrings: strings.b,
		secStates:  u32Bytes(stateRefs),
		secLabels:  labels.b,
		secEdges:   edges.b,
		secCSR:     csr.b,
		secVectors: vectors.b,
		secStores:  stores.b,
		secVocab:   vocab.b,
	}
	return assemble(payloads), nil
}

// sortedStoreNames returns the state's datastore names with non-empty
// contents, sorted.
func sortedStoreNames(p *core.PrivacyLTS, id lts.StateID) []string {
	storeMap := p.StoreMap(id)
	names := make([]string, 0, len(storeMap))
	for name, fs := range storeMap {
		if !fs.IsEmpty() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// assemble lays the section payloads out after the header and section table,
// 8-aligned, then patches the file size and checksum.
func assemble(payloads map[uint32][]byte) []byte {
	tableLen := len(requiredSections) * secEntrySize
	off := align8(headerSize + tableLen)
	offsets := make(map[uint32]int, len(requiredSections))
	for _, id := range requiredSections {
		offsets[id] = off
		off = align8(off + len(payloads[id]))
	}
	buf := make([]byte, off)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(requiredSections)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(buf)))
	for i, id := range requiredSections {
		e := buf[headerSize+i*secEntrySize:]
		binary.LittleEndian.PutUint32(e, id)
		binary.LittleEndian.PutUint64(e[8:], uint64(offsets[id]))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(payloads[id])))
		copy(buf[offsets[id]:], payloads[id])
	}
	sum := checksumOf(buf)
	copy(buf[checksumOff:], sum[:])
	return buf
}

// interner assigns dense references to strings in first-use order; reference
// 0 is always the empty string.
type interner struct {
	idx map[string]uint32
	all []string
}

func newInterner() *interner {
	return &interner{idx: map[string]uint32{"": 0}, all: []string{""}}
}

func (in *interner) ref(s string) uint32 {
	if r, ok := in.idx[s]; ok {
		return r
	}
	r := uint32(len(in.all))
	in.idx[s] = r
	in.all = append(in.all, s)
	return r
}

// leBuf appends little-endian scalars to a byte slice.
type leBuf struct{ b []byte }

func (w *leBuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *leBuf) i32(v int32)  { w.u32(uint32(v)) }
func (w *leBuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// u32Bytes renders a uint32 column as little-endian bytes.
func u32Bytes(vs []uint32) []byte {
	var w leBuf
	w.b = make([]byte, 0, 4*len(vs))
	for _, v := range vs {
		w.u32(v)
	}
	return w.b
}
