//go:build linux

package modelstore

import (
	"os"
	"syscall"
)

// mapFile maps the artifact privately (copy-on-write): decoded slices may
// alias the mapping, yet no write through them can ever reach the file.
// Returns ok=false on any failure so the caller falls back to reading.
func mapFile(path string) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() <= 0 || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false
	}
	return data, true
}

// unmapFile releases a mapping that failed to decode (a successfully decoded
// artifact keeps its mapping for the life of the process, since the model
// aliases it).
func unmapFile(data []byte) { _ = syscall.Munmap(data) }
