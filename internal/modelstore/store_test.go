package modelstore_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/modelstore"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/risk"
	"privascope/internal/synth"
)

// fixtureModel returns a deterministic mid-size model and its generated
// privacy LTS.
func fixtureModel(t testing.TB) (*dataflow.Model, *core.PrivacyLTS) {
	t.Helper()
	m := synth.Model(synth.ModelSpec{})
	p, err := core.Generate(m)
	if err != nil {
		t.Fatalf("generate fixture: %v", err)
	}
	return m, p
}

// requireSameModel asserts the decoded model is byte-identical to the
// generated one on every externally observable surface: JSON document, graph
// rendering, stats, and a full risk assessment.
func requireSameModel(t testing.TB, want, got *core.PrivacyLTS, profile risk.UserProfile) {
	t.Helper()
	wantJSON, err := want.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal generated model: %v", err)
	}
	gotJSON, err := got.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal decoded model: %v", err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("decoded model JSON differs from generated")
	}
	if want.Graph.String() != got.Graph.String() {
		t.Fatalf("decoded graph renders differently")
	}
	if want.Stats() != got.Stats() {
		t.Fatalf("decoded stats %+v, want %+v", got.Stats(), want.Stats())
	}
	analyzer, err := risk.NewAnalyzer(risk.Config{})
	if err != nil {
		t.Fatalf("new analyzer: %v", err)
	}
	wantAssess, err := analyzer.Analyze(want, profile)
	if err != nil {
		t.Fatalf("analyze generated model: %v", err)
	}
	gotAssess, err := analyzer.Analyze(got, profile)
	if err != nil {
		t.Fatalf("analyze decoded model: %v", err)
	}
	if !reflect.DeepEqual(wantAssess, gotAssess) {
		t.Fatalf("assessment of decoded model differs from generated")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, p := fixtureModel(t)
	data, err := modelstore.Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	again, err := modelstore.Encode(p)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("encoding is not deterministic")
	}

	decoded, err := modelstore.Decode(data, m)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	requireSameModel(t, p, decoded, synth.Population(m, synth.PopulationOptions{})[0])

	// Re-encoding the decoded model must reproduce the artifact bit for bit:
	// the codec loses nothing the codec itself observes.
	reencoded, err := modelstore.Encode(decoded)
	if err != nil {
		t.Fatalf("Encode decoded model: %v", err)
	}
	if !bytes.Equal(data, reencoded) {
		t.Fatalf("re-encoded artifact differs from the original")
	}

	fp, err := modelstore.Fingerprint(data)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	wantFP, _ := dataflow.Fingerprint(m)
	if fp != wantFP {
		t.Fatalf("artifact fingerprint %s, model fingerprint %s", fp, wantFP)
	}

	// A different model must be refused even though the artifact is intact.
	other := synth.Model(synth.ModelSpec{Services: 3})
	if _, err := modelstore.Decode(data, other); err == nil {
		t.Fatalf("Decode accepted an artifact from a different model")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	m, p := fixtureModel(t)
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	if store.Has(fp) {
		t.Fatalf("empty store claims to have %s", fp)
	}
	if _, err := store.Load(fp, m); !errors.Is(err, modelstore.ErrNotFound) {
		t.Fatalf("Load on empty store: %v, want ErrNotFound", err)
	}
	if err := store.Save(fp, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !store.Has(fp) {
		t.Fatalf("store does not see the saved artifact")
	}
	loaded, err := store.Load(fp, m)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireSameModel(t, p, loaded, synth.Population(m, synth.PopulationOptions{})[0])

	// Path traversal guard: a crafted fingerprint never escapes the registry.
	for _, bad := range []string{"", "../evil", "ABC", "a/b", "a.b"} {
		if _, err := store.Path(bad); err == nil {
			t.Errorf("Path(%q) accepted a non-hex fingerprint", bad)
		}
	}
}

// TestPropModelStoreRoundTrip is the catalog property: on random synth
// models, store→load→assess is byte-identical to generate→assess, via both
// the copying decoder and the registry's zero-copy load.
func TestPropModelStoreRoundTrip(t *testing.T) {
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		fp, err := dataflow.Fingerprint(s.Model)
		if err != nil {
			return err
		}
		data, err := modelstore.Encode(p)
		if err != nil {
			return err
		}
		decoded, err := modelstore.Decode(data, s.Model)
		if err != nil {
			return err
		}
		requireSameModel(t, p, decoded, s.Profiles[0])

		if err := store.Save(fp, p); err != nil {
			return err
		}
		loaded, err := store.Load(fp, s.Model)
		if err != nil {
			return err
		}
		requireSameModel(t, p, loaded, s.Profiles[0])
		return nil
	})
}

// rechecksum re-seals an artifact after a deliberate deep mutation, so the
// decoder's structural validation — not just the checksum — is what rejects
// it.
func rechecksum(t *testing.T, data []byte) []byte {
	t.Helper()
	resealed, err := modelstore.Reseal(data)
	if err != nil {
		t.Fatalf("reseal: %v", err)
	}
	return resealed
}

func TestDecodeRejectsCorruptArtifacts(t *testing.T) {
	m, p := fixtureModel(t)
	valid, err := modelstore.Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// Any single flipped bit anywhere in the artifact must be rejected (the
	// checksum guarantees it), and must never panic.
	step := len(valid)/257 + 1
	for off := 0; off < len(valid); off += step {
		data := append([]byte(nil), valid...)
		data[off] ^= 0x40
		if _, err := modelstore.Decode(data, m); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		}
	}

	// Truncations at every boundary class.
	for _, n := range []int{0, 7, 8, 40, 63, 64, 200, len(valid) / 2, len(valid) - 1} {
		if n >= len(valid) {
			continue
		}
		if _, err := modelstore.Decode(valid[:n], m); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}

	// A version from the future is refused with the dedicated error.
	future := append([]byte(nil), valid...)
	future[8] = 0xFF
	if _, err := modelstore.Decode(rechecksum(t, future), m); !errors.Is(err, modelstore.ErrFutureVersion) {
		t.Fatalf("future version: %v, want ErrFutureVersion", err)
	}

	// Checksum-valid but structurally dishonest artifacts: mutate deep fields
	// and re-seal. Every one must fail structural validation.
	deep := map[string]func([]byte){
		"zeroed section table": func(d []byte) {
			for i := 64; i < 64+9*24; i++ {
				d[i] = 0
			}
		},
		"inflated state count": func(d []byte) {
			d[280]++ // meta section starts at 280; first word is numStates
		},
		"first payload word corrupted": func(d []byte) {
			d[288] ^= 0x11
		},
	}
	for name, mutate := range deep {
		data := append([]byte(nil), valid...)
		mutate(data)
		if _, err := modelstore.Decode(rechecksum(t, data), m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestModelStoreConcurrentSaveLoad hammers one registry entry from writer and
// reader goroutines; under the race detector this doubles as the data-race
// proof for the zero-copy load path. Readers must only ever see a complete
// artifact or a clean miss.
func TestModelStoreConcurrentSaveLoad(t *testing.T) {
	m, p := fixtureModel(t)
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	const writers, readers, iters = 2, 4, 25
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := store.Save(fp, p); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				loaded, err := store.Load(fp, m)
				if errors.Is(err, modelstore.ErrNotFound) {
					continue
				}
				if err != nil {
					errc <- err
					return
				}
				if loaded.Stats() != p.Stats() {
					errc <- errors.New("loaded model has different stats")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent save/load: %v", err)
	}
}

// TestModelStoreCrossProcessRename proves the atomic-rename contract across
// process boundaries: a child process rewrites the artifact in a tight loop
// while this process loads it; no load may ever observe a torn file.
func TestModelStoreCrossProcessRename(t *testing.T) {
	m, p := fixtureModel(t)
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}

	if dir := os.Getenv("PRIVASCOPE_STORE_WRITER_DIR"); dir != "" {
		// Child mode: rewrite the artifact as fast as possible for ~1s.
		store, err := modelstore.Open(dir)
		if err != nil {
			os.Exit(2)
		}
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			if err := store.Save(fp, p); err != nil {
				os.Exit(3)
			}
		}
		os.Exit(0)
	}

	if testing.Short() {
		t.Skip("cross-process test skipped in -short mode")
	}
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestModelStoreCrossProcessRename$", "-test.v=false")
	cmd.Env = append(os.Environ(), "PRIVASCOPE_STORE_WRITER_DIR="+dir)
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start writer process: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	loads := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("writer process failed: %v\n%s", err, out.String())
			}
			if loads == 0 {
				t.Fatalf("reader never observed an artifact")
			}
			return
		default:
		}
		loaded, err := store.Load(fp, m)
		if errors.Is(err, modelstore.ErrNotFound) {
			continue // before the first install
		}
		if err != nil {
			t.Fatalf("load during concurrent rewrite: %v", err)
		}
		if loaded.Stats() != p.Stats() {
			t.Fatalf("load during concurrent rewrite returned a different model")
		}
		loads++
	}
}

// BenchmarkModelStoreLoad compares a cold start's three ways of obtaining the
// compiled model: full generation, decoding a copied artifact, and the
// registry's zero-copy mmap load.
func BenchmarkModelStoreLoad(b *testing.B) {
	m, p := fixtureModel(b)
	data, err := modelstore.Encode(p)
	if err != nil {
		b.Fatalf("Encode: %v", err)
	}
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		b.Fatalf("fingerprint: %v", err)
	}
	store, err := modelstore.Open(b.TempDir())
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	if err := store.Save(fp, p); err != nil {
		b.Fatalf("Save: %v", err)
	}

	b.Run("generate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Generate(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := modelstore.Decode(data, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(fp, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
