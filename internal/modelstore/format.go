// Package modelstore persists compiled privacy models: it serialises a
// generated core.PrivacyLTS — the dense state table, the interned label
// table, the forward and reverse CSR transition layouts, the per-state
// privacy vectors and datastore contents — into a single versioned binary
// artifact keyed by the model's dataflow.Fingerprint, and rebuilds the model
// from the artifact without re-running state-space exploration (and without
// re-rendering a single label string).
//
// The format is canonical and integrity-checked: every multi-byte value is
// little-endian regardless of the writing host, encoding the same model
// twice produces byte-identical artifacts, and a whole-file SHA-256 rejects
// any corruption. Decoding is hardened against untrusted input — a malformed
// or truncated artifact always yields an error, never a panic and never a
// structurally inconsistent model: beyond the checksum, every index, offset
// and CSR bucket is validated before use (see lts.RestoreCompiled), and each
// decoded label is re-rendered and compared against its stored interned
// string.
//
// Artifacts load either by copying (Decode, safe for caller-owned buffers)
// or zero-copy (Store.Load on platforms with mmap): the flat int32/int64
// sections — both CSR layouts, the per-edge arrays and the state-vector
// words — are aliased directly into the mapped file when the host is
// little-endian and the mapping is suitably aligned, falling back to a
// byte-order-converting copy otherwise. The mapping is private
// (copy-on-write), so a stray write through an aliased slice can never
// corrupt the artifact on disk.
//
// On top of the codec, Store is a registry directory: one artifact per
// fingerprint, written atomically (temp file + fsync + rename) so concurrent
// readers — including other processes — never observe a torn artifact.
package modelstore

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// magic identifies a privascope compiled-model artifact; the trailing byte
// leaves room for incompatible rewrites that should not even parse the
// header.
const magic = "PSCMODL\x01"

// FormatVersion is the artifact format written by Encode. Decode rejects
// artifacts written by a newer version with a clear error instead of
// misreading them.
const FormatVersion = 1

const (
	headerSize   = 64 // magic(8) + version(4) + sectionCount(4) + fileSize(8) + checksum(32) + reserved(8)
	checksumOff  = 24
	checksumSize = 32
	secEntrySize = 24 // id(4) + reserved(4) + offset(8) + length(8)
)

// Section identifiers. Every section is 8-byte aligned in the file and must
// appear exactly once.
const (
	secMeta    = 1 // counts, initial state, fingerprint
	secStrings = 2 // interned string table: offsets + blob (entry 0 is "")
	secStates  = 3 // state IDs as string refs, dense order
	secLabels  = 4 // distinct transition labels, column layout
	secEdges   = 5 // per-transition endpoints and label-pointer refs
	secCSR     = 6 // forward + reverse CSR layouts
	secVectors = 7 // flat per-state privacy-vector words
	secStores  = 8 // per-state datastore contents
	secVocab   = 9 // vocabulary actors/fields and generation warnings
)

// requiredSections lists every section id of format version 1, in file
// order.
var requiredSections = []uint32{
	secMeta, secStrings, secStates, secLabels, secEdges, secCSR, secVectors, secStores, secVocab,
}

// hostLittleEndian reports whether the running host stores integers
// little-endian; only then may the flat sections be aliased without
// conversion.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// checksumOf computes the whole-file checksum: SHA-256 over the artifact
// with the checksum field itself zeroed.
func checksumOf(data []byte) [checksumSize]byte {
	h := sha256.New()
	h.Write(data[:checksumOff])
	var zero [checksumSize]byte
	h.Write(zero[:])
	h.Write(data[checksumOff+checksumSize:])
	var out [checksumSize]byte
	h.Sum(out[:0])
	return out
}

// Reseal recomputes the checksum of an artifact-shaped buffer in place and
// returns it. It exists for tests and fuzz corpora that deliberately mutate
// payload bytes and need the decoder's structural validation — not the
// checksum — to be what rejects the result.
func Reseal(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, corruptf("%d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	sum := checksumOf(data)
	copy(data[checksumOff:], sum[:])
	return data, nil
}

// align8 rounds the offset up to the next multiple of 8.
func align8(off int) int { return (off + 7) &^ 7 }

// corruptf builds a decode error; every malformed-artifact path funnels
// through it so callers can rely on the "modelstore:" prefix.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("modelstore: invalid artifact: "+format, args...)
}
