package modelstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/modelstore"
	"privascope/internal/synth"
)

// savedFixtures saves n distinct models into the store, oldest first, and
// returns their fingerprints in save order with strictly increasing mtimes
// (coarse filesystem timestamps would otherwise make LRU order a coin toss).
func savedFixtures(t *testing.T, store *modelstore.Store, n int) ([]string, []*dataflow.Model) {
	t.Helper()
	fps := make([]string, n)
	models := make([]*dataflow.Model, n)
	base := time.Now().Add(-time.Duration(n+1) * time.Hour)
	for i := 0; i < n; i++ {
		m := synth.Model(synth.ModelSpec{Services: 2 + i})
		p, err := core.Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := dataflow.Fingerprint(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(fp, p); err != nil {
			t.Fatal(err)
		}
		path, err := store.Path(fp)
		if err != nil {
			t.Fatal(err)
		}
		mtime := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(path, mtime, mtime); err != nil {
			t.Fatal(err)
		}
		fps[i] = fp
		models[i] = m
	}
	return fps, models
}

func TestPruneEvictsLeastRecentlyUsed(t *testing.T) {
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fps, models := savedFixtures(t, store, 4)

	// Loading the oldest artifact touches it, promoting it past the others.
	if _, err := store.Load(fps[0], models[0]); err != nil {
		t.Fatal(err)
	}
	removed, err := store.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("Prune removed %d artifacts, want 2", removed)
	}
	for i, want := range []bool{true, false, false, true} {
		if got := store.Has(fps[i]); got != want {
			t.Errorf("after prune, Has(%d) = %v, want %v", i, got, want)
		}
	}

	// Pruning below the population is a no-op; negative keep is an error.
	if removed, err := store.Prune(10); err != nil || removed != 0 {
		t.Fatalf("Prune(10) = %d, %v; want 0, nil", removed, err)
	}
	if _, err := store.Prune(-1); err == nil {
		t.Fatal("Prune(-1) succeeded")
	}
}

func TestPruneZeroEvictsEverythingButSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fps, _ := savedFixtures(t, store, 2)
	foreign := filepath.Join(dir, "README.txt")
	tempish := filepath.Join(dir, ".deadbeef.tmp-123")
	for _, p := range []string{foreign, tempish} {
		if err := os.WriteFile(p, []byte("not an artifact"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := store.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(fps) {
		t.Fatalf("Prune(0) removed %d, want %d", removed, len(fps))
	}
	for _, p := range []string{foreign, tempish} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("Prune touched non-artifact %s: %v", p, err)
		}
	}
}

// TestPruneDuringConcurrentLoad hammers Load against a concurrent pruner:
// every Load must either return the intact model or ErrNotFound (the
// cache-miss contract) — never a torn read, decode error or panic.
func TestPruneDuringConcurrentLoad(t *testing.T) {
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := synth.Model(synth.ModelSpec{})
	p, err := core.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := dataflow.Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(fp, p); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			loaded, err := store.Load(fp, m)
			if err != nil {
				if errors.Is(err, modelstore.ErrNotFound) {
					continue // pruned out from under us: the documented miss
				}
				errs <- fmt.Errorf("round %d: Load: %v", i, err)
				return
			}
			if loaded.Graph.StateCount() != p.Graph.StateCount() {
				errs <- fmt.Errorf("round %d: loaded model has %d states, want %d",
					i, loaded.Graph.StateCount(), p.Graph.StateCount())
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := store.Prune(0); err != nil {
				errs <- fmt.Errorf("round %d: Prune: %v", i, err)
				return
			}
			// Reinstall so later Loads have something to race against.
			if err := store.Save(fp, p); err != nil {
				errs <- fmt.Errorf("round %d: Save: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
