package modelstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"privascope/internal/core"
	"privascope/internal/dataflow"
	"privascope/internal/lts"
	"privascope/internal/schema"
)

// ErrFutureVersion is wrapped by Decode when the artifact was written by a
// newer format version than this build understands; the caller should
// regenerate rather than report corruption.
var ErrFutureVersion = fmt.Errorf("modelstore: artifact format version is newer than this build")

// Decode rebuilds a privacy model from an artifact, verifying it end to end:
// the header, the whole-file checksum, every section bound, every index and
// offset, both CSR layouts, and — via dataflow.Fingerprint — that the
// artifact really was built from the supplied data-flow model. Malformed
// input of any kind yields an error, never a panic. The data is copied; the
// caller keeps ownership of the buffer. (Store.Load uses the zero-copy
// variant over a private file mapping instead.)
func Decode(data []byte, model *dataflow.Model) (*core.PrivacyLTS, error) {
	return decode(data, model, false)
}

// Fingerprint verifies an artifact's framing and checksum and returns the
// embedded model fingerprint, without rebuilding the model.
func Fingerprint(data []byte) (string, error) {
	secs, err := parseSections(data)
	if err != nil {
		return "", err
	}
	mt, err := parseMeta(secs[secMeta], len(data))
	if err != nil {
		return "", err
	}
	return mt.fingerprint, nil
}

type meta struct {
	numStates, numEdges, numLabels, numStrings int
	wordsPerVec, numActors, numFields          int
	numWarnings                                int
	initial                                    int32
	fingerprint                                string
}

// decode is the shared implementation. With zeroCopy set, flat int32/int64
// sections alias the data (the caller guarantees the buffer outlives the
// model — Store.Load never unmaps a successfully decoded artifact); otherwise
// everything is copied out.
func decode(data []byte, model *dataflow.Model, zeroCopy bool) (*core.PrivacyLTS, error) {
	secs, err := parseSections(data)
	if err != nil {
		return nil, err
	}
	mt, err := parseMeta(secs[secMeta], len(data))
	if err != nil {
		return nil, err
	}

	// Cheapest honest check first: is this artifact even for this model?
	fp, err := dataflow.Fingerprint(model)
	if err != nil {
		return nil, fmt.Errorf("modelstore: model cannot be fingerprinted: %w", err)
	}
	if fp != mt.fingerprint {
		return nil, fmt.Errorf("modelstore: artifact was built from a different model (fingerprint %.12s… vs %.12s…)", mt.fingerprint, fp)
	}
	if mt.numStates < 1 {
		return nil, corruptf("no states")
	}
	if mt.initial < 0 || int(mt.initial) >= mt.numStates {
		return nil, corruptf("initial state %d out of range [0, %d)", mt.initial, mt.numStates)
	}

	strs, err := parseStrings(secs[secStrings], mt.numStrings)
	if err != nil {
		return nil, err
	}
	ref := func(r uint32) (string, error) {
		if int64(r) >= int64(len(strs)) {
			return "", corruptf("string reference %d out of range [0, %d)", r, len(strs))
		}
		return strs[r], nil
	}

	// States.
	sr := &reader{name: "states", b: secs[secStates]}
	stateRefs, err := sr.u32s(mt.numStates)
	if err != nil {
		return nil, err
	}
	if err := sr.done(); err != nil {
		return nil, err
	}
	stateIDs := make([]lts.StateID, mt.numStates)
	for s, r := range stateRefs {
		id, err := ref(r)
		if err != nil {
			return nil, err
		}
		stateIDs[s] = lts.StateID(id)
	}

	// Labels. Each decoded label is re-rendered once and compared against its
	// stored interned string, so a checksum-valid but dishonest artifact is
	// rejected rather than silently analysed.
	labels, err := parseLabels(secs[secLabels], mt.numLabels, ref)
	if err != nil {
		return nil, err
	}

	// Edges.
	er := &reader{name: "edges", b: secs[secEdges], alias: zeroCopy}
	edgeFrom, err1 := er.i32s(mt.numEdges)
	edgeTo, err2 := er.i32s(mt.numEdges)
	edgeLabelPtr, err3 := er.i32s(mt.numEdges)
	if err := firstErr(err1, err2, err3, er.done()); err != nil {
		return nil, err
	}
	for e := 0; e < mt.numEdges; e++ {
		if edgeFrom[e] < 0 || int(edgeFrom[e]) >= mt.numStates || edgeTo[e] < 0 || int(edgeTo[e]) >= mt.numStates {
			return nil, corruptf("transition %d endpoints (%d, %d) out of range [0, %d)", e, edgeFrom[e], edgeTo[e], mt.numStates)
		}
		if edgeLabelPtr[e] < -1 || int(edgeLabelPtr[e]) >= mt.numLabels {
			return nil, corruptf("transition %d label pointer %d out of range [-1, %d)", e, edgeLabelPtr[e], mt.numLabels)
		}
	}

	// CSR layouts (fully validated by lts.RestoreCompiled below).
	cr := &reader{name: "csr", b: secs[secCSR], alias: zeroCopy}
	outOff, err1 := cr.i32s(mt.numStates + 1)
	inOff, err2 := cr.i32s(mt.numStates + 1)
	outEdges, err3 := cr.i32s(mt.numEdges)
	inEdges, err4 := cr.i32s(mt.numEdges)
	if err := firstErr(err1, err2, err3, err4, cr.done()); err != nil {
		return nil, err
	}

	// Vectors.
	vr := &reader{name: "vectors", b: secs[secVectors], alias: zeroCopy}
	vecWords, err := vr.u64s(mt.numStates * mt.wordsPerVec)
	if err := firstErr(err, vr.done()); err != nil {
		return nil, err
	}

	// Stores.
	tr := &reader{name: "stores", b: secs[secStores]}
	storeOff, err := tr.u32s(mt.numStates + 1)
	if err != nil {
		return nil, err
	}
	if len(tr.b[tr.off:])%4 != 0 {
		return nil, corruptf("stores section has %d trailing bytes", len(tr.b[tr.off:])%4)
	}
	recs, err := tr.u32s((len(tr.b) - tr.off) / 4)
	if err := firstErr(err, tr.done()); err != nil {
		return nil, err
	}

	// Vocabulary and warnings.
	wr := &reader{name: "vocab", b: secs[secVocab]}
	actorRefs, err1 := wr.u32s(mt.numActors)
	fieldRefs, err2 := wr.u32s(mt.numFields)
	warnRefs, err3 := wr.u32s(mt.numWarnings)
	if err := firstErr(err1, err2, err3, wr.done()); err != nil {
		return nil, err
	}
	vocab := core.VocabularyFromModel(model)
	if err := matchVocab(vocab, actorRefs, fieldRefs, mt.wordsPerVec, ref); err != nil {
		return nil, err
	}
	var warnings []string
	for _, r := range warnRefs {
		w, err := ref(r)
		if err != nil {
			return nil, err
		}
		warnings = append(warnings, w)
	}

	// Derive the interned label table exactly as Compile would have: first
	// occurrence over the transitions, keyed by label-string content, with the
	// first Label value encountered per string. Per-pointer memos keep the
	// content map to one lookup per distinct pointer.
	edgeLabel := make([]int32, mt.numEdges)
	strIdx := make(map[string]int32, mt.numLabels+1)
	ptrLid := make([]int32, mt.numLabels)
	for i := range ptrLid {
		ptrLid[i] = -1
	}
	nilLid := int32(-1)
	var labelVals []lts.Label
	var labelStrs []string
	intern := func(s string, val lts.Label) int32 {
		if lid, ok := strIdx[s]; ok {
			return lid
		}
		lid := int32(len(labelStrs))
		strIdx[s] = lid
		labelStrs = append(labelStrs, s)
		labelVals = append(labelVals, val)
		return lid
	}
	trs := make([]lts.Transition, mt.numEdges)
	for e := 0; e < mt.numEdges; e++ {
		var iface lts.Label
		if ptr := edgeLabelPtr[e]; ptr < 0 {
			if nilLid < 0 {
				nilLid = intern("", nil)
			}
			edgeLabel[e] = nilLid
		} else {
			if ptrLid[ptr] < 0 {
				ptrLid[ptr] = intern(labels[ptr].str, labels[ptr].label)
			}
			edgeLabel[e] = ptrLid[ptr]
			iface = labels[ptr].label
		}
		trs[e] = lts.Transition{From: stateIDs[edgeFrom[e]], To: stateIDs[edgeTo[e]], Label: iface}
	}

	compiled, err := lts.RestoreCompiled(lts.CompiledParts{
		States:    stateIDs,
		Initial:   mt.initial,
		Trs:       trs,
		Labels:    labelVals,
		LabelStrs: labelStrs,
		EdgeLabel: edgeLabel,
		EdgeFrom:  edgeFrom,
		EdgeTo:    edgeTo,
		OutOff:    outOff,
		OutEdges:  outEdges,
		InOff:     inOff,
		InEdges:   inEdges,
	})
	if err != nil {
		return nil, corruptf("%v", err)
	}
	graph := lts.RestoreLTS(compiled)

	vectors := make(map[lts.StateID]core.StateVector, mt.numStates)
	for s, id := range stateIDs {
		v, err := vocab.VectorFromWords(vecWords[s*mt.wordsPerVec : (s+1)*mt.wordsPerVec : (s+1)*mt.wordsPerVec])
		if err != nil {
			return nil, corruptf("%v", err)
		}
		vectors[id] = v
	}

	stores, err := parseStores(storeOff, recs, stateIDs, ref)
	if err != nil {
		return nil, err
	}

	return core.RestorePrivacyLTS(model, vocab, graph, warnings, vectors, stores), nil
}

// parseSections validates the header, checksum and section table and returns
// the payload of each section.
func parseSections(data []byte) (map[uint32][]byte, error) {
	if len(data) < headerSize {
		return nil, corruptf("%d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, corruptf("bad magic")
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version > FormatVersion {
		return nil, fmt.Errorf("%w (artifact v%d, build understands v%d)", ErrFutureVersion, version, FormatVersion)
	}
	if version != FormatVersion {
		return nil, corruptf("unknown format version %d", version)
	}
	if size := binary.LittleEndian.Uint64(data[16:]); size != uint64(len(data)) {
		return nil, corruptf("header says %d bytes, artifact has %d", size, len(data))
	}
	if sum := checksumOf(data); string(sum[:]) != string(data[checksumOff:checksumOff+checksumSize]) {
		return nil, corruptf("checksum mismatch")
	}
	count := binary.LittleEndian.Uint32(data[12:])
	if int(count) != len(requiredSections) {
		return nil, corruptf("%d sections, format v1 has %d", count, len(requiredSections))
	}
	tableEnd := headerSize + len(requiredSections)*secEntrySize
	if len(data) < tableEnd {
		return nil, corruptf("section table truncated")
	}
	payloadStart := uint64(align8(tableEnd))
	secs := make(map[uint32][]byte, len(requiredSections))
	for i := 0; i < len(requiredSections); i++ {
		e := data[headerSize+i*secEntrySize:]
		id := binary.LittleEndian.Uint32(e)
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if _, dup := secs[id]; dup {
			return nil, corruptf("duplicate section %d", id)
		}
		if off%8 != 0 || off < payloadStart || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, corruptf("section %d spans [%d, %d+%d) outside the artifact", id, off, off, length)
		}
		secs[id] = data[off : off+length : off+length]
	}
	for _, id := range requiredSections {
		if _, ok := secs[id]; !ok {
			return nil, corruptf("missing section %d", id)
		}
	}
	return secs, nil
}

// parseMeta reads the counts, initial state and fingerprint. Every count is
// sanity-bounded by the file size, which caps all later size arithmetic.
func parseMeta(sec []byte, fileSize int) (meta, error) {
	const fixed = 10 * 4
	if len(sec) < fixed {
		return meta{}, corruptf("meta section has %d bytes, want at least %d", len(sec), fixed)
	}
	u := func(i int) int { return int(binary.LittleEndian.Uint32(sec[i*4:])) }
	mt := meta{
		numStates:   u(0),
		numEdges:    u(1),
		numLabels:   u(2),
		numStrings:  u(3),
		wordsPerVec: u(4),
		numActors:   u(5),
		numFields:   u(6),
		numWarnings: u(7),
		initial:     int32(binary.LittleEndian.Uint32(sec[8*4:])),
	}
	for _, c := range []int{mt.numStates, mt.numEdges, mt.numLabels, mt.numStrings, mt.wordsPerVec, mt.numActors, mt.numFields, mt.numWarnings} {
		if c > fileSize || c > math.MaxInt32 {
			return meta{}, corruptf("meta count %d exceeds the %d-byte artifact", c, fileSize)
		}
	}
	fpLen := u(9)
	if fpLen != len(sec)-fixed {
		return meta{}, corruptf("fingerprint length %d does not match the meta section", fpLen)
	}
	mt.fingerprint = string(sec[fixed : fixed+fpLen])
	if mt.wordsPerVec < 1 {
		return meta{}, corruptf("wordsPerVec %d, want at least 1", mt.wordsPerVec)
	}
	return mt, nil
}

// parseStrings materialises the interned string table: count+1 offsets
// followed by the concatenated blob. Entry 0 must be the empty string.
func parseStrings(sec []byte, count int) ([]string, error) {
	r := &reader{name: "strings", b: sec}
	offs, err := r.u32s(count + 1)
	if err != nil {
		return nil, err
	}
	blob := sec[r.off:]
	if count < 1 || offs[0] != 0 {
		return nil, corruptf("string table must start with the empty string")
	}
	if uint64(offs[count]) != uint64(len(blob)) {
		return nil, corruptf("string blob has %d bytes, offsets claim %d", len(blob), offs[count])
	}
	// Validate the whole offset array before materialising anything: pairwise
	// monotonicity alone would slice with a spiked upper bound before reaching
	// the entry where the sequence decreases again.
	for i := 0; i < count; i++ {
		if offs[i] > offs[i+1] {
			return nil, corruptf("string offsets decrease at entry %d", i)
		}
		if uint64(offs[i+1]) > uint64(len(blob)) {
			return nil, corruptf("string offset %d exceeds the %d-byte blob at entry %d", offs[i+1], len(blob), i)
		}
	}
	strs := make([]string, count)
	for i := 0; i < count; i++ {
		strs[i] = string(blob[offs[i]:offs[i+1]])
	}
	if strs[0] != "" {
		return nil, corruptf("string table must start with the empty string")
	}
	return strs, nil
}

// decodedLabel pairs a rebuilt label with its verified interned rendering.
type decodedLabel struct {
	label *core.TransitionLabel
	str   string
}

// parseLabels rebuilds the distinct transition labels from the column layout
// and verifies each against its stored rendering.
func parseLabels(sec []byte, count int, ref func(uint32) (string, error)) ([]decodedLabel, error) {
	r := &reader{name: "labels", b: sec}
	action, err := r.i32s(count)
	if err != nil {
		return nil, err
	}
	flags, err := r.u32s(count)
	if err != nil {
		return nil, err
	}
	strRefs, err := r.u32s(7 * count)
	if err != nil {
		return nil, err
	}
	fieldsOff, err := r.u32s(count + 1)
	if err != nil {
		return nil, err
	}
	if fieldsOff[0] != 0 {
		return nil, corruptf("label field offsets must start at 0")
	}
	for i := 0; i < count; i++ {
		if fieldsOff[i] > fieldsOff[i+1] {
			return nil, corruptf("label field offsets decrease at label %d", i)
		}
	}
	fieldRefs, err := r.u32s(int(fieldsOff[count]))
	if err := firstErr(err, r.done()); err != nil {
		return nil, err
	}

	out := make([]decodedLabel, count)
	for i := 0; i < count; i++ {
		if !core.Action(action[i]).Valid() {
			return nil, corruptf("label %d has invalid action %d", i, action[i])
		}
		if flags[i]&^1 != 0 {
			return nil, corruptf("label %d has unknown flags %#x", i, flags[i])
		}
		cols := strRefs[i*7 : (i+1)*7]
		var vals [7]string
		for c, sr := range cols {
			v, err := ref(sr)
			if err != nil {
				return nil, err
			}
			vals[c] = v
		}
		lbl := &core.TransitionLabel{
			Action:      core.Action(action[i]),
			Actor:       vals[1],
			Datastore:   vals[2],
			Purpose:     vals[3],
			Service:     vals[4],
			FlowKey:     vals[5],
			Potential:   flags[i]&1 != 0,
			Counterpart: vals[6],
		}
		for _, fr := range fieldRefs[fieldsOff[i]:fieldsOff[i+1]] {
			f, err := ref(fr)
			if err != nil {
				return nil, err
			}
			if n := len(lbl.Fields); n > 0 && f < lbl.Fields[n-1] {
				return nil, corruptf("label %d fields are not sorted", i)
			}
			lbl.Fields = append(lbl.Fields, f)
		}
		if got := lbl.LabelString(); got != vals[0] {
			return nil, corruptf("label %d renders %q, artifact claims %q", i, got, vals[0])
		}
		out[i] = decodedLabel{label: lbl, str: vals[0]}
	}
	return out, nil
}

// parseStores rebuilds the per-state datastore contents from the offset/
// record layout, rejecting windows that do not parse exactly.
func parseStores(storeOff, recs []uint32, stateIDs []lts.StateID, ref func(uint32) (string, error)) (map[lts.StateID]map[string]schema.FieldSet, error) {
	n := len(stateIDs)
	if storeOff[0] != 0 || uint64(storeOff[n]) != uint64(len(recs)) {
		return nil, corruptf("store offsets span [%d, %d], records have %d words", storeOff[0], storeOff[n], len(recs))
	}
	// Validate every window bound before touching the records: an intermediate
	// offset spike would otherwise drive the record cursor past len(recs) before
	// the pairwise decrease is reached.
	for s := 0; s < n; s++ {
		if storeOff[s] > storeOff[s+1] {
			return nil, corruptf("store offsets decrease at state %d", s)
		}
		if uint64(storeOff[s+1]) > uint64(len(recs)) {
			return nil, corruptf("store offset %d of state %d exceeds the %d record words", storeOff[s+1], s, len(recs))
		}
	}
	stores := make(map[lts.StateID]map[string]schema.FieldSet, n)
	for s := 0; s < n; s++ {
		lo, hi := storeOff[s], storeOff[s+1]
		if lo == hi {
			continue
		}
		contents := make(map[string]schema.FieldSet)
		for i := lo; i < hi; {
			if hi-i < 2 {
				return nil, corruptf("store record of state %d truncated", s)
			}
			name, err := ref(recs[i])
			if err != nil {
				return nil, err
			}
			fieldCount := recs[i+1]
			i += 2
			if fieldCount == 0 || fieldCount > hi-i {
				return nil, corruptf("store %q of state %d claims %d fields, window has %d words", name, s, fieldCount, hi-i)
			}
			names := make([]string, fieldCount)
			for k := range names {
				f, err := ref(recs[i+uint32(k)])
				if err != nil {
					return nil, err
				}
				names[k] = f
			}
			i += fieldCount
			if _, dup := contents[name]; dup {
				return nil, corruptf("state %d lists store %q twice", s, name)
			}
			contents[name] = schema.NewFieldSet(names...)
		}
		stores[stateIDs[s]] = contents
	}
	return stores, nil
}

// matchVocab verifies the artifact's stored vocabulary against the one
// derived from the supplied model.
func matchVocab(vocab *core.Vocabulary, actorRefs, fieldRefs []uint32, wordsPerVec int, ref func(uint32) (string, error)) error {
	if wpv := vocab.WordsPerVector(); wpv != wordsPerVec {
		return corruptf("artifact has %d words per vector, model needs %d", wordsPerVec, wpv)
	}
	for _, pair := range []struct {
		name   string
		refs   []uint32
		expect []string
	}{
		{"actor", actorRefs, vocab.Actors()},
		{"field", fieldRefs, vocab.Fields()},
	} {
		if len(pair.refs) != len(pair.expect) {
			return corruptf("artifact has %d %ss, model has %d", len(pair.refs), pair.name, len(pair.expect))
		}
		for i, r := range pair.refs {
			got, err := ref(r)
			if err != nil {
				return err
			}
			if got != pair.expect[i] {
				return corruptf("%s %d is %q in the artifact, %q in the model", pair.name, i, got, pair.expect[i])
			}
		}
	}
	return nil
}

// reader is a bounds-checked cursor over one section. With alias set (the
// mmap path on a little-endian host) the typed readers return slices that
// alias the underlying bytes when alignment allows; otherwise they copy and
// byte-swap via encoding/binary.
type reader struct {
	name  string
	b     []byte
	off   int
	alias bool
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.b)-r.off {
		return nil, corruptf("%s section truncated (need %d bytes at offset %d of %d)", r.name, n, r.off, len(r.b))
	}
	s := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return s, nil
}

func (r *reader) i32s(n int) ([]int32, error) {
	if n > math.MaxInt32 {
		return nil, corruptf("%s section claims %d entries", r.name, n)
	}
	raw, err := r.take(n * 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if r.alias && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

func (r *reader) u32s(n int) ([]uint32, error) {
	vs, err := r.i32s(n)
	if err != nil {
		return nil, err
	}
	return *(*[]uint32)(unsafe.Pointer(&vs)), nil
}

func (r *reader) u64s(n int) ([]uint64, error) {
	if n > math.MaxInt32 {
		return nil, corruptf("%s section claims %d entries", r.name, n)
	}
	raw, err := r.take(n * 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if r.alias && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return corruptf("%s section has %d trailing bytes", r.name, len(r.b)-r.off)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
