package modelstore_test

import (
	"encoding/binary"
	"testing"

	"privascope/internal/modelstore"
)

// sectionRange locates a section's payload offset and length in a v1
// artifact via the section table (the header layout is part of the frozen
// format, so reading it directly here cannot go stale without a version
// bump).
func sectionRange(t *testing.T, data []byte, id uint32) (off, length int) {
	t.Helper()
	const headerSize, entrySize, numSections = 64, 24, 9
	for i := 0; i < numSections; i++ {
		e := data[headerSize+i*entrySize:]
		if binary.LittleEndian.Uint32(e) == id {
			return int(binary.LittleEndian.Uint64(e[8:])), int(binary.LittleEndian.Uint64(e[16:]))
		}
	}
	t.Fatalf("artifact has no section %d", id)
	return 0, 0
}

// TestDecodeRejectsOffsetSpikes covers two checksum-valid malformed shapes
// that once panicked: an offset array whose intermediate entry spikes past
// the section payload still satisfies the first-entry and last-entry checks,
// and pairwise monotonicity alone only notices the decrease after the spiked
// bound has already been used to slice the string blob or index the store
// records. Both must come back as errors.
func TestDecodeRejectsOffsetSpikes(t *testing.T) {
	const secMeta, secStrings, secStores = 1, 2, 8
	m, p := fixtureModel(t)
	valid, err := modelstore.Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	metaOff, _ := sectionRange(t, valid, secMeta)
	numStates := int(binary.LittleEndian.Uint32(valid[metaOff:]))
	numStrings := int(binary.LittleEndian.Uint32(valid[metaOff+3*4:]))

	t.Run("strings", func(t *testing.T) {
		if numStrings < 2 {
			t.Fatalf("fixture has %d strings, need at least 2 for an intermediate spike", numStrings)
		}
		data := append([]byte(nil), valid...)
		off, _ := sectionRange(t, data, secStrings)
		// Spike the second offset: entry 0 still starts at 0 and the final
		// offset still matches the blob length.
		binary.LittleEndian.PutUint32(data[off+4:], 0x7fffffff)
		if _, err := modelstore.Decode(rechecksum(t, data), m); err == nil {
			t.Fatalf("string-offset spike accepted")
		}
	})

	t.Run("stores", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		off, length := sectionRange(t, data, secStores)
		recWords := length/4 - (numStates + 1)
		if numStates < 2 || recWords < 3 {
			t.Fatalf("fixture too small: %d states, %d record words", numStates, recWords)
		}
		// Rewrite the records as one giant well-formed record spanning the
		// whole section, then spike the first state's upper bound past the
		// record count: the window parses cleanly up to the last real word
		// and the overrun read is the very next index.
		recsOff := off + (numStates+1)*4
		binary.LittleEndian.PutUint32(data[recsOff:], 0)                     // store name: ref 0 ("")
		binary.LittleEndian.PutUint32(data[recsOff+4:], uint32(recWords-2)) // field count
		for k := 2; k < recWords; k++ {
			binary.LittleEndian.PutUint32(data[recsOff+k*4:], 0) // field refs: ""
		}
		binary.LittleEndian.PutUint32(data[off+4:], uint32(recWords+8))
		if _, err := modelstore.Decode(rechecksum(t, data), m); err == nil {
			t.Fatalf("store-offset spike accepted")
		}
	})
}
