//go:build !linux

package modelstore

// mapFile is unavailable on this platform; Store.Load falls back to reading
// the artifact into memory (still decoded without copying the flat
// sections).
func mapFile(path string) ([]byte, bool) { return nil, false }

func unmapFile(data []byte) {}
