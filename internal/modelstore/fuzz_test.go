package modelstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"privascope/internal/core"
	"privascope/internal/modelstore"
	"privascope/internal/synth"
)

// corpusSeeds builds the canonical seed inputs: a valid artifact, a
// truncated header, a flipped payload byte (checksum violation), and a
// checksum-valid artifact claiming a future format version.
func corpusSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	p, err := core.Generate(synth.Model(synth.ModelSpec{}))
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	valid, err := modelstore.Encode(p)
	if err != nil {
		tb.Fatalf("encode: %v", err)
	}
	truncated := append([]byte(nil), valid[:40]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	future := append([]byte(nil), valid...)
	future[8] = byte(modelstore.FormatVersion + 1)
	if _, err := modelstore.Reseal(future); err != nil {
		tb.Fatalf("reseal: %v", err)
	}
	return map[string][]byte{
		"valid":            valid,
		"truncated-header": truncated,
		"flipped-checksum": flipped,
		"future-version":   future,
	}
}

// FuzzStoreDecode feeds arbitrary bytes to the artifact decoder. The
// invariant is total: any input either decodes to a model byte-identical to
// the generated one (only a faithful artifact can pass the fingerprint and
// structural checks) or returns an error — never a panic, never a wrong
// model.
func FuzzStoreDecode(f *testing.F) {
	m := synth.Model(synth.ModelSpec{})
	p, err := core.Generate(m)
	if err != nil {
		f.Fatalf("generate: %v", err)
	}
	wantJSON, err := p.MarshalJSON()
	if err != nil {
		f.Fatalf("marshal: %v", err)
	}
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = modelstore.Fingerprint(data) // the shallow probe must not panic either
		decoded, err := modelstore.Decode(data, m)
		if err != nil {
			return
		}
		gotJSON, err := decoded.MarshalJSON()
		if err != nil {
			t.Fatalf("decoded model fails to marshal: %v", err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("decoder accepted an artifact that yields a different model")
		}
	})
}

// TestFuzzCorpusCommitted checks the committed seed corpus stays in sync
// with the format: each file exists in go-fuzz v1 form and its input
// produces the outcome its name promises. Regenerate with
// MODELSTORE_REGEN_CORPUS=1 after a deliberate format change.
func TestFuzzCorpusCommitted(t *testing.T) {
	m := synth.Model(synth.ModelSpec{})
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreDecode")
	seeds := corpusSeeds(t)
	if os.Getenv("MODELSTORE_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus entry %s missing (regenerate with MODELSTORE_REGEN_CORPUS=1): %v", name, err)
		}
		const header = "go test fuzz v1\n[]byte("
		s := string(raw)
		if !strings.HasPrefix(s, header) || !strings.HasSuffix(s, ")\n") {
			t.Fatalf("corpus entry %s is not in go-fuzz v1 form", name)
		}
		data, err := strconv.Unquote(s[len(header) : len(s)-2])
		if err != nil {
			t.Fatalf("corpus entry %s: %v", name, err)
		}
		if !bytes.Equal([]byte(data), want) {
			t.Fatalf("corpus entry %s is stale; regenerate with MODELSTORE_REGEN_CORPUS=1", name)
		}
		_, decErr := modelstore.Decode([]byte(data), m)
		switch name {
		case "valid":
			if decErr != nil {
				t.Fatalf("valid corpus entry rejected: %v", decErr)
			}
		case "future-version":
			if !errors.Is(decErr, modelstore.ErrFutureVersion) {
				t.Fatalf("future-version corpus entry: %v, want ErrFutureVersion", decErr)
			}
		default:
			if decErr == nil {
				t.Fatalf("corrupt corpus entry %s accepted", name)
			}
		}
	}
}
