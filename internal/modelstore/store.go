package modelstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"privascope/internal/core"
	"privascope/internal/dataflow"
)

// ErrNotFound is returned by Store.Load when no artifact exists for the
// fingerprint.
var ErrNotFound = errors.New("modelstore: no artifact for fingerprint")

// artifactExt is the on-disk extension of persisted compiled models.
const artifactExt = ".psm"

// Store is a registry directory holding one artifact per model fingerprint.
// Writes are atomic (temp file in the same directory, fsync, rename), so a
// concurrent reader — in this process or another — sees either the old
// artifact, the new one, or nothing, never a torn file. A Store is safe for
// concurrent use.
type Store struct {
	dir string
}

// Open creates the registry directory if needed and returns a Store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("modelstore: empty registry directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: create registry: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the registry directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the artifact path for a fingerprint. Fingerprints are
// lower-case hex (dataflow.Fingerprint); anything else is rejected so a
// crafted fingerprint can never traverse outside the registry.
func (s *Store) Path(fingerprint string) (string, error) {
	if fingerprint == "" {
		return "", fmt.Errorf("modelstore: empty fingerprint")
	}
	for _, c := range fingerprint {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("modelstore: fingerprint %q is not lower-case hex", fingerprint)
		}
	}
	return filepath.Join(s.dir, fingerprint+artifactExt), nil
}

// Has reports whether an artifact exists for the fingerprint.
func (s *Store) Has(fingerprint string) bool {
	path, err := s.Path(fingerprint)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// Save encodes the model and atomically installs it under its fingerprint,
// replacing any previous artifact. The fingerprint must be the model's own
// (Encode embeds it; Load verifies it).
func (s *Store) Save(fingerprint string, p *core.PrivacyLTS) error {
	path, err := s.Path(fingerprint)
	if err != nil {
		return err
	}
	data, err := Encode(p)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+fingerprint+".tmp-*")
	if err != nil {
		return fmt.Errorf("modelstore: create temp artifact: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("modelstore: write artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("modelstore: sync artifact: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("modelstore: close artifact: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("modelstore: install artifact: %w", err)
	}
	tmp = nil
	return nil
}

// Load rebuilds the model stored under the fingerprint, verifying the
// artifact end to end against the supplied data-flow model. Where the
// platform supports it the artifact is mapped rather than read, and the flat
// sections are decoded zero-copy; the private (copy-on-write) mapping then
// backs the model for the life of the process and is intentionally never
// unmapped — the Go runtime does not track the aliasing slices. A missing
// artifact returns ErrNotFound; a corrupt one returns a decode error (callers
// treat both as a cache miss and regenerate).
func (s *Store) Load(fingerprint string, model *dataflow.Model) (*core.PrivacyLTS, error) {
	path, err := s.Path(fingerprint)
	if err != nil {
		return nil, err
	}
	// Touch the artifact so Prune's recency order reflects use, not just
	// installation. Best-effort: a read-only registry still loads fine.
	_ = os.Chtimes(path, time.Time{}, time.Now())
	if data, ok := mapFile(path); ok {
		p, err := decode(data, model, true)
		if err != nil {
			unmapFile(data)
			return nil, err
		}
		return p, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w %.12s…", ErrNotFound, fingerprint)
		}
		return nil, fmt.Errorf("modelstore: read artifact: %w", err)
	}
	return decode(data, model, true)
}

// Prune evicts artifacts beyond the keep most recently used, oldest first
// (Load touches an artifact's mtime, so recency tracks use). It returns the
// number of artifacts removed. Pruning is safe against concurrent Loads: an
// artifact mapped or read before its unlink keeps working — POSIX keeps the
// data alive until the last reference drops — and a Load racing the unlink
// sees ErrNotFound, which callers already treat as a cache miss. Temp files
// and foreign files in the registry directory are never touched.
func (s *Store) Prune(keep int) (int, error) {
	if keep < 0 {
		return 0, fmt.Errorf("modelstore: negative keep %d", keep)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("modelstore: read registry: %w", err)
	}
	type artifact struct {
		path  string
		mtime time.Time
	}
	var artifacts []artifact
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, artifactExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// Already removed by a concurrent pruner or installer.
			continue
		}
		artifacts = append(artifacts, artifact{path: filepath.Join(s.dir, name), mtime: info.ModTime()})
	}
	if len(artifacts) <= keep {
		return 0, nil
	}
	sort.Slice(artifacts, func(i, j int) bool { return artifacts[i].mtime.Before(artifacts[j].mtime) })
	removed := 0
	for _, a := range artifacts[:len(artifacts)-keep] {
		if err := os.Remove(a.path); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return removed, fmt.Errorf("modelstore: prune %s: %w", filepath.Base(a.path), err)
		}
		removed++
	}
	return removed, nil
}
