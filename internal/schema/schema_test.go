package schema

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestCategoryString(t *testing.T) {
	tests := []struct {
		c    Category
		want string
	}{
		{CategoryStandard, "standard"},
		{CategoryIdentifier, "identifier"},
		{CategoryQuasiIdentifier, "quasi-identifier"},
		{CategorySensitive, "sensitive"},
		{Category(99), "category(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Category(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestParseCategoryRoundTrip(t *testing.T) {
	for _, c := range []Category{CategoryStandard, CategoryIdentifier, CategoryQuasiIdentifier, CategorySensitive} {
		got, err := ParseCategory(c.String())
		if err != nil {
			t.Fatalf("ParseCategory(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseCategory(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseCategory("nonsense"); err == nil {
		t.Error("ParseCategory(nonsense) expected error, got nil")
	}
}

func TestAnonNameHelpers(t *testing.T) {
	if got := AnonName("weight"); got != "weight_anon" {
		t.Errorf("AnonName(weight) = %q", got)
	}
	if got := AnonName("weight_anon"); got != "weight_anon" {
		t.Errorf("AnonName(weight_anon) = %q, want idempotent", got)
	}
	if !IsAnonName("weight_anon") || IsAnonName("weight") {
		t.Error("IsAnonName misclassifies")
	}
	if got := BaseName("weight_anon"); got != "weight" {
		t.Errorf("BaseName(weight_anon) = %q", got)
	}
	if got := BaseName("weight"); got != "weight" {
		t.Errorf("BaseName(weight) = %q", got)
	}
}

func TestFieldAnonField(t *testing.T) {
	f := Field{Name: "diagnosis", Category: CategorySensitive}
	a := f.AnonField()
	if a.Name != "diagnosis_anon" {
		t.Errorf("AnonField().Name = %q", a.Name)
	}
	if !a.Pseudonymised {
		t.Error("AnonField().Pseudonymised = false, want true")
	}
	if a.Category != CategorySensitive {
		t.Errorf("AnonField().Category = %v, want sensitive", a.Category)
	}
}

func TestSchemaValidate(t *testing.T) {
	valid := Schema{Name: "ehr", Fields: []Field{
		{Name: "name", Category: CategoryIdentifier},
		{Name: "diagnosis", Category: CategorySensitive},
	}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}

	tests := []struct {
		name string
		s    Schema
	}{
		{"empty name", Schema{Name: "", Fields: []Field{{Name: "x", Category: CategoryStandard}}}},
		{"empty field name", Schema{Name: "s", Fields: []Field{{Name: " ", Category: CategoryStandard}}}},
		{"duplicate field", Schema{Name: "s", Fields: []Field{
			{Name: "x", Category: CategoryStandard}, {Name: "x", Category: CategoryStandard}}}},
		{"invalid category", Schema{Name: "s", Fields: []Field{{Name: "x", Category: Category(42)}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error")
			}
		})
	}
}

func TestNewSchemaAndLookups(t *testing.T) {
	s, err := NewSchema("appointments",
		Field{Name: "name", Category: CategoryIdentifier},
		Field{Name: "dob", Category: CategoryQuasiIdentifier},
		Field{Name: "appointment", Category: CategoryStandard},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if !s.Contains("dob") {
		t.Error("Contains(dob) = false")
	}
	if s.Contains("missing") {
		t.Error("Contains(missing) = true")
	}
	f, ok := s.Field("name")
	if !ok || f.Category != CategoryIdentifier {
		t.Errorf("Field(name) = %+v, %v", f, ok)
	}
	wantNames := []string{"name", "dob", "appointment"}
	gotNames := s.FieldNames()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("FieldNames() = %v", gotNames)
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Errorf("FieldNames()[%d] = %q, want %q", i, gotNames[i], wantNames[i])
		}
	}
	if qi := s.FieldsByCategory(CategoryQuasiIdentifier); len(qi) != 1 || qi[0] != "dob" {
		t.Errorf("FieldsByCategory(quasi) = %v", qi)
	}
}

func TestMustSchemaPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema with duplicate fields should panic")
		}
	}()
	MustSchema("bad", Field{Name: "x", Category: CategoryStandard}, Field{Name: "x", Category: CategoryStandard})
}

func TestSchemaAnonymised(t *testing.T) {
	s := MustSchema("metrics",
		Field{Name: "age", Category: CategoryQuasiIdentifier},
		Field{Name: "weight", Category: CategorySensitive},
	)
	a := s.Anonymised()
	if a.Name != "metrics_anon" {
		t.Errorf("Anonymised().Name = %q", a.Name)
	}
	for _, f := range a.Fields {
		if !f.Pseudonymised {
			t.Errorf("field %q not marked pseudonymised", f.Name)
		}
		if !IsAnonName(f.Name) {
			t.Errorf("field %q missing anon suffix", f.Name)
		}
	}
	// Idempotent on already-anonymised fields.
	aa := a.Anonymised()
	for i, f := range aa.Fields {
		if f.Name != a.Fields[i].Name {
			t.Errorf("double anonymisation changed field %q -> %q", a.Fields[i].Name, f.Name)
		}
	}
}

func TestDatastoreValidate(t *testing.T) {
	good := Datastore{ID: "ehr", Name: "EHR", Schema: MustSchema("ehr", Field{Name: "x", Category: CategoryStandard})}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid datastore rejected: %v", err)
	}
	bad := Datastore{ID: " ", Schema: good.Schema}
	if err := bad.Validate(); err == nil {
		t.Error("empty datastore ID accepted")
	}
	badSchema := Datastore{ID: "x", Schema: Schema{Name: ""}}
	if err := badSchema.Validate(); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	ehr := Datastore{ID: "ehr", Name: "EHR", Schema: MustSchema("ehr",
		Field{Name: "name", Category: CategoryIdentifier},
		Field{Name: "diagnosis", Category: CategorySensitive},
	)}
	appt := Datastore{ID: "appointments", Name: "Appointments", Schema: MustSchema("appointments",
		Field{Name: "name", Category: CategoryIdentifier},
		Field{Name: "appointment", Category: CategoryStandard},
	)}
	if err := c.AddDatastore(ehr); err != nil {
		t.Fatalf("AddDatastore(ehr): %v", err)
	}
	if err := c.AddDatastore(appt); err != nil {
		t.Fatalf("AddDatastore(appointments): %v", err)
	}
	if err := c.AddDatastore(ehr); err == nil {
		t.Error("duplicate datastore accepted")
	}
	if _, ok := c.Datastore("ehr"); !ok {
		t.Error("Datastore(ehr) not found")
	}
	if _, ok := c.Schema("appointments"); !ok {
		t.Error("Schema(appointments) not auto-registered")
	}
	ids := make([]string, 0)
	for _, d := range c.Datastores() {
		ids = append(ids, d.ID)
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("Datastores() not sorted: %v", ids)
	}
	universe := c.FieldUniverse()
	want := []string{"appointment", "diagnosis", "name"}
	if len(universe) != len(want) {
		t.Fatalf("FieldUniverse() = %v, want %v", universe, want)
	}
	for i := range want {
		if universe[i] != want[i] {
			t.Errorf("FieldUniverse()[%d] = %q, want %q", i, universe[i], want[i])
		}
	}

	if err := c.AddSchema(MustSchema("extra", Field{Name: "z", Category: CategoryStandard})); err != nil {
		t.Fatalf("AddSchema: %v", err)
	}
	if err := c.AddSchema(MustSchema("extra", Field{Name: "z", Category: CategoryStandard})); err == nil {
		t.Error("duplicate schema accepted")
	}
	if got := len(c.Schemas()); got != 3 {
		t.Errorf("len(Schemas()) = %d, want 3", got)
	}
}

func TestFieldSetBasics(t *testing.T) {
	fs := NewFieldSet("b", "a", "a")
	if fs.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", fs.Len())
	}
	if !fs.Contains("a") || fs.Contains("c") {
		t.Error("Contains misbehaves")
	}
	if got := fs.String(); got != "a, b" {
		t.Errorf("String() = %q", got)
	}
	var zero FieldSet
	if !zero.IsEmpty() {
		t.Error("zero FieldSet should be empty")
	}
	if zero.Contains("a") {
		t.Error("zero FieldSet should contain nothing")
	}
}

func TestFieldSetAlgebra(t *testing.T) {
	a := NewFieldSet("x", "y")
	b := NewFieldSet("y", "z")

	union := a.Union(b)
	if got := union.String(); got != "x, y, z" {
		t.Errorf("Union = %q", got)
	}
	inter := a.Intersect(b)
	if got := inter.String(); got != "y" {
		t.Errorf("Intersect = %q", got)
	}
	minus := a.Minus(b)
	if got := minus.String(); got != "x" {
		t.Errorf("Minus = %q", got)
	}
	if !union.ContainsAll(a) || !union.ContainsAll(b) {
		t.Error("union should contain both operands")
	}
	if a.Equal(b) {
		t.Error("distinct sets reported equal")
	}
	if !a.Equal(NewFieldSet("y", "x")) {
		t.Error("equal sets reported unequal")
	}
	// Operands must not be mutated.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("set algebra mutated its operands")
	}
}

func TestFieldSetUnionProperties(t *testing.T) {
	// Property: union is commutative and contains both operands; intersection
	// is a subset of both operands.
	f := func(xs, ys []string) bool {
		a := NewFieldSet(xs...)
		b := NewFieldSet(ys...)
		u1 := a.Union(b)
		u2 := b.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		if !u1.ContainsAll(a) || !u1.ContainsAll(b) {
			return false
		}
		in := a.Intersect(b)
		return a.ContainsAll(in) && b.ContainsAll(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFieldSetMinusProperty(t *testing.T) {
	// Property: (a minus b) is disjoint from b and a subset of a.
	f := func(xs, ys []string) bool {
		a := NewFieldSet(xs...)
		b := NewFieldSet(ys...)
		d := a.Minus(b)
		if !a.ContainsAll(d) {
			return false
		}
		return d.Intersect(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
