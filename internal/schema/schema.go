// Package schema defines the data vocabulary of a privacy-aware system: the
// personal-data fields handled by a service, the data schemas that group
// them, and the datastores that persist them.
//
// The paper (Section II-A) requires that every datastore in a data-flow model
// is described by "the data schema and access control policies associated
// with each datastore". This package provides the schema half of that
// description; package accesscontrol provides the policy half.
//
// Fields carry a Category describing their role in re-identification
// (direct identifier, quasi-identifier, sensitive value, or ordinary data)
// and datastores may be marked as anonymised, in which case they hold
// pseudonymised forms of fields (Section II-B, "Pseudonymisation").
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// AnonSuffix is appended to a field name to form the name of its
// pseudonymised counterpart, e.g. "weight" -> "weight_anon". The paper writes
// these as e.g. "weight_anon" / "f_anon".
const AnonSuffix = "_anon"

// Category classifies a field by its role in identification and disclosure
// risk. The categories follow the standard statistical-disclosure-control
// terminology used by the paper's pseudonymisation analysis (Section III-B).
type Category int

// Field categories. Identifier fields directly identify the data subject;
// quasi-identifier fields identify in combination (age, height, postcode);
// sensitive fields are the values the subject cares about protecting;
// standard fields are everything else.
const (
	CategoryStandard Category = iota + 1
	CategoryIdentifier
	CategoryQuasiIdentifier
	CategorySensitive
)

var categoryNames = map[Category]string{
	CategoryStandard:        "standard",
	CategoryIdentifier:      "identifier",
	CategoryQuasiIdentifier: "quasi-identifier",
	CategorySensitive:       "sensitive",
}

// String returns the lower-case name of the category.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Valid reports whether c is one of the defined categories.
func (c Category) Valid() bool {
	_, ok := categoryNames[c]
	return ok
}

// ParseCategory converts a category name (as produced by String) back to a
// Category value.
func ParseCategory(s string) (Category, error) {
	for c, name := range categoryNames {
		if name == strings.ToLower(strings.TrimSpace(s)) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("schema: unknown field category %q", s)
}

// Field describes a single personal-data field.
type Field struct {
	// Name is the unique (per schema) field name, e.g. "diagnosis".
	Name string `json:"name"`
	// Category classifies the field's identification role.
	Category Category `json:"category"`
	// Description is free-text documentation shown in reports.
	Description string `json:"description,omitempty"`
	// Pseudonymised marks a field that is itself the pseudonymised form of
	// another field (its name normally ends in AnonSuffix).
	Pseudonymised bool `json:"pseudonymised,omitempty"`
}

// AnonField returns the pseudonymised counterpart of f: same category,
// Pseudonymised set, and the AnonSuffix appended to the name.
func (f Field) AnonField() Field {
	return Field{
		Name:          AnonName(f.Name),
		Category:      f.Category,
		Description:   "pseudonymised form of " + f.Name,
		Pseudonymised: true,
	}
}

// AnonName returns the conventional name of the pseudonymised form of the
// named field. If the name already carries the suffix it is returned
// unchanged.
func AnonName(field string) string {
	if IsAnonName(field) {
		return field
	}
	return field + AnonSuffix
}

// IsAnonName reports whether the field name denotes a pseudonymised field.
func IsAnonName(field string) bool { return strings.HasSuffix(field, AnonSuffix) }

// BaseName strips the pseudonymisation suffix from a field name, returning
// the name of the original field. Non-pseudonymised names are returned
// unchanged.
func BaseName(field string) string { return strings.TrimSuffix(field, AnonSuffix) }

// Schema is a named collection of fields, typically describing the record
// layout of one datastore.
type Schema struct {
	// Name identifies the schema, e.g. "ehr".
	Name string `json:"name"`
	// Fields are the fields of the schema, in declaration order.
	Fields []Field `json:"fields"`
}

// NewSchema constructs a schema and validates it.
func NewSchema(name string, fields ...Field) (Schema, error) {
	s := Schema{Name: name, Fields: append([]Field(nil), fields...)}
	if err := s.Validate(); err != nil {
		return Schema{}, err
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically-known schemas in tests and case-study fixtures.
func MustSchema(name string, fields ...Field) Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the schema for an empty name, unnamed fields, duplicate
// field names, and invalid categories.
func (s Schema) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return errors.New("schema: schema name must not be empty")
	}
	seen := make(map[string]bool, len(s.Fields))
	for i, f := range s.Fields {
		if strings.TrimSpace(f.Name) == "" {
			return fmt.Errorf("schema %q: field %d has an empty name", s.Name, i)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema %q: duplicate field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
		if !f.Category.Valid() {
			return fmt.Errorf("schema %q: field %q has invalid category %d", s.Name, f.Name, int(f.Category))
		}
	}
	return nil
}

// Field returns the field with the given name.
func (s Schema) Field(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Contains reports whether the schema declares the named field.
func (s Schema) Contains(name string) bool {
	_, ok := s.Field(name)
	return ok
}

// FieldNames returns the field names in declaration order.
func (s Schema) FieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// FieldsByCategory returns the names of fields with the given category, in
// declaration order.
func (s Schema) FieldsByCategory(c Category) []string {
	var names []string
	for _, f := range s.Fields {
		if f.Category == c {
			names = append(names, f.Name)
		}
	}
	return names
}

// Anonymised returns a schema holding the pseudonymised counterparts of every
// field in s. Fields that are already pseudonymised are carried over
// unchanged. The resulting schema name carries the AnonSuffix.
func (s Schema) Anonymised() Schema {
	out := Schema{Name: AnonName(s.Name)}
	out.Fields = make([]Field, 0, len(s.Fields))
	for _, f := range s.Fields {
		if f.Pseudonymised {
			out.Fields = append(out.Fields, f)
			continue
		}
		out.Fields = append(out.Fields, f.AnonField())
	}
	return out
}

// Datastore describes a persistent store of personal data: an identifier, the
// schema of its records, and whether it holds pseudonymised data.
type Datastore struct {
	// ID identifies the datastore in data-flow models, e.g. "ehr".
	ID string `json:"id"`
	// Name is the human-readable name, e.g. "Electronic Health Records".
	Name string `json:"name"`
	// Schema describes the fields stored.
	Schema Schema `json:"schema"`
	// Anonymised marks a store that holds only pseudonymised data; flows
	// into such a store are modelled as "anon" actions (Section II-B).
	Anonymised bool `json:"anonymised,omitempty"`
}

// Validate checks the datastore identifier and its schema.
func (d Datastore) Validate() error {
	if strings.TrimSpace(d.ID) == "" {
		return errors.New("schema: datastore ID must not be empty")
	}
	if err := d.Schema.Validate(); err != nil {
		return fmt.Errorf("datastore %q: %w", d.ID, err)
	}
	return nil
}

// Catalog is a registry of schemas and datastores, providing lookup by name
// and the global field vocabulary required when generating the privacy model.
type Catalog struct {
	schemas    map[string]Schema
	datastores map[string]Datastore
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		schemas:    make(map[string]Schema),
		datastores: make(map[string]Datastore),
	}
}

// AddSchema registers a schema. Re-registering a name is an error.
func (c *Catalog) AddSchema(s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, ok := c.schemas[s.Name]; ok {
		return fmt.Errorf("schema: schema %q already registered", s.Name)
	}
	c.schemas[s.Name] = s
	return nil
}

// AddDatastore registers a datastore and its schema. Re-registering an ID is
// an error; the schema is registered too if not already present.
func (c *Catalog) AddDatastore(d Datastore) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, ok := c.datastores[d.ID]; ok {
		return fmt.Errorf("schema: datastore %q already registered", d.ID)
	}
	if _, ok := c.schemas[d.Schema.Name]; !ok {
		c.schemas[d.Schema.Name] = d.Schema
	}
	c.datastores[d.ID] = d
	return nil
}

// Schema looks up a registered schema by name.
func (c *Catalog) Schema(name string) (Schema, bool) {
	s, ok := c.schemas[name]
	return s, ok
}

// Datastore looks up a registered datastore by ID.
func (c *Catalog) Datastore(id string) (Datastore, bool) {
	d, ok := c.datastores[id]
	return d, ok
}

// Datastores returns all registered datastores ordered by ID.
func (c *Catalog) Datastores() []Datastore {
	out := make([]Datastore, 0, len(c.datastores))
	for _, d := range c.datastores {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Schemas returns all registered schemas ordered by name.
func (c *Catalog) Schemas() []Schema {
	out := make([]Schema, 0, len(c.schemas))
	for _, s := range c.schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FieldUniverse returns the sorted union of all field names declared by any
// registered schema. This is the field dimension of the privacy state space
// (Section II-B computes 2 * |actors| * |fields| state variables).
func (c *Catalog) FieldUniverse() []string {
	set := make(map[string]bool)
	for _, s := range c.schemas {
		for _, f := range s.Fields {
			set[f.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FieldSet is an immutable-by-convention set of field names with set algebra
// helpers. The zero value is an empty set.
type FieldSet struct {
	members map[string]bool
}

// NewFieldSet builds a set from the given names.
func NewFieldSet(names ...string) FieldSet {
	fs := FieldSet{members: make(map[string]bool, len(names))}
	for _, n := range names {
		fs.members[n] = true
	}
	return fs
}

// Contains reports whether the set holds the field name.
func (fs FieldSet) Contains(name string) bool { return fs.members[name] }

// Len returns the number of members.
func (fs FieldSet) Len() int { return len(fs.members) }

// IsEmpty reports whether the set has no members.
func (fs FieldSet) IsEmpty() bool { return len(fs.members) == 0 }

// Names returns the members in sorted order.
func (fs FieldSet) Names() []string {
	out := make([]string, 0, len(fs.members))
	for n := range fs.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Union returns a new set containing members of both sets.
func (fs FieldSet) Union(other FieldSet) FieldSet {
	out := NewFieldSet(fs.Names()...)
	for n := range other.members {
		out.members[n] = true
	}
	return out
}

// Intersect returns a new set containing members present in both sets.
func (fs FieldSet) Intersect(other FieldSet) FieldSet {
	out := NewFieldSet()
	for n := range fs.members {
		if other.members[n] {
			out.members[n] = true
		}
	}
	return out
}

// Minus returns a new set with other's members removed.
func (fs FieldSet) Minus(other FieldSet) FieldSet {
	out := NewFieldSet()
	for n := range fs.members {
		if !other.members[n] {
			out.members[n] = true
		}
	}
	return out
}

// ContainsAll reports whether every member of other is in fs.
func (fs FieldSet) ContainsAll(other FieldSet) bool {
	for n := range other.members {
		if !fs.members[n] {
			return false
		}
	}
	return true
}

// Equal reports whether both sets have exactly the same members.
func (fs FieldSet) Equal(other FieldSet) bool {
	return fs.Len() == other.Len() && fs.ContainsAll(other)
}

// String renders the set as a comma-separated sorted list, for labels.
func (fs FieldSet) String() string { return strings.Join(fs.Names(), ", ") }
