package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"privascope/internal/risk"
	"privascope/internal/service"
)

// RouterConfig configures the ingest client.
type RouterConfig struct {
	// Nodes maps ring node names to base URLs (required, at least one).
	Nodes map[string]string
	// Replicas is the ring's virtual-node count (0 selects DefaultReplicas).
	Replicas int
	// BatchEvents is the per-node buffer size at which a frame is cut and
	// sent (0 selects DefaultBatchEvents).
	BatchEvents int
	// FlushInterval bounds how long a buffered event may wait before the
	// partial frame is sent anyway (0 selects DefaultFlushInterval).
	FlushInterval time.Duration
	// MaxInFlight bounds the cut frames queued for delivery per node; a full
	// window blocks Send, which is the client half of the backpressure
	// protocol. Delivery itself is one FIFO sender per node regardless of
	// the window, so per-user event order is preserved end to end; a larger
	// window only deepens the queue feeding that sender. Default 1.
	MaxInFlight int
	// MaxRetries bounds delivery attempts per frame sequence, 429 rounds
	// included (0 selects DefaultMaxRetries).
	MaxRetries int
	// HTTPClient overrides the default unencrypted-HTTP/2 client.
	HTTPClient *http.Client
}

const (
	// DefaultBatchEvents is the frame-cut threshold: large enough to
	// amortize the per-request cost over hundreds of events, small enough to
	// stay far below MaxFrameBytes for any realistic event size.
	DefaultBatchEvents = 512
	// DefaultFlushInterval bounds buffered-event latency.
	DefaultFlushInterval = 50 * time.Millisecond
	// DefaultMaxRetries bounds attempts per frame sequence.
	DefaultMaxRetries = 16
)

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	// EventsSent and FramesSent count what reached a node's queue (accepted,
	// after any retries); Rejected429 counts backpressure rounds; Retries
	// counts re-sent frame sequences; Dropped counts frames abandoned after
	// MaxRetries.
	EventsSent  int64
	FramesSent  int64
	Rejected429 int64
	Retries     int64
	Dropped     int64
}

// nodeSender is the per-node half of the router: a buffer the Send path
// appends to, and a single goroutine posting cut frames in FIFO order, so the
// per-user event order the ring guarantees (one user, one node) survives the
// wire.
type nodeSender struct {
	name string
	url  string

	mu  sync.Mutex
	buf []service.Event
	enc frameEncoder

	frames chan []byte // cut frames, FIFO; capacity = MaxInFlight
}

// Router is the cluster's ingest client: it partitions events over the ring,
// buffers per node, cuts binary frames at the batch threshold or flush
// deadline, and honors 429 + Retry-After backpressure.
type Router struct {
	ring    *Ring
	client  *http.Client
	senders map[string]*nodeSender
	cfg     RouterConfig

	pending atomic.Int64 // frames cut but not yet accepted or dropped
	events  atomic.Int64
	frames  atomic.Int64
	rej429  atomic.Int64
	retries atomic.Int64
	dropped atomic.Int64

	errMu    sync.Mutex
	firstErr error

	stopTick  chan struct{}
	tickDone  chan struct{}
	sendersWG sync.WaitGroup
	closeOnce sync.Once
}

// h2cClient is the default transport: unencrypted HTTP/2 (the fleet speaks
// h2c inside the perimeter; one multiplexed connection per node).
func h2cClient() *http.Client {
	var p http.Protocols
	p.SetUnencryptedHTTP2(true)
	return &http.Client{Transport: &http.Transport{Protocols: &p}}
}

// NewRouter builds a router over the configured nodes.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	names := make([]string, 0, len(cfg.Nodes))
	for name, url := range cfg.Nodes {
		if url == "" {
			return nil, fmt.Errorf("cluster: node %q has no URL", name)
		}
		names = append(names, name)
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = DefaultBatchEvents
	}
	if cfg.BatchEvents > MaxFrameEvents {
		cfg.BatchEvents = MaxFrameEvents
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	client := cfg.HTTPClient
	if client == nil {
		client = h2cClient()
	}
	r := &Router{
		ring:     ring,
		client:   client,
		senders:  make(map[string]*nodeSender, len(names)),
		cfg:      cfg,
		stopTick: make(chan struct{}),
		tickDone: make(chan struct{}),
	}
	for name, url := range cfg.Nodes {
		s := &nodeSender{
			name:   name,
			url:    url,
			frames: make(chan []byte, cfg.MaxInFlight),
		}
		r.senders[name] = s
		r.sendersWG.Add(1)
		go r.sendLoop(s)
	}
	go r.tickLoop()
	return r, nil
}

// Ring returns the router's partitioning ring.
func (r *Router) Ring() *Ring { return r.ring }

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		EventsSent:  r.events.Load(),
		FramesSent:  r.frames.Load(),
		Rejected429: r.rej429.Load(),
		Retries:     r.retries.Load(),
		Dropped:     r.dropped.Load(),
	}
}

// Err returns the first delivery error, if any frame sequence was dropped.
func (r *Router) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

func (r *Router) setErr(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
}

// Send routes one event to its owner's buffer, cutting a frame when the
// buffer reaches the batch threshold. It blocks when the owner's in-flight
// window is full — that block is the backpressure propagating to the caller.
func (r *Router) Send(ctx context.Context, ev service.Event) error {
	s := r.senders[r.ring.Owner(ev.UserID)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, ev)
	if len(s.buf) >= r.cfg.BatchEvents {
		return r.cutLocked(ctx, s)
	}
	return nil
}

// SendBatch routes a batch of events.
func (r *Router) SendBatch(ctx context.Context, events []service.Event) error {
	for _, ev := range events {
		if err := r.Send(ctx, ev); err != nil {
			return err
		}
	}
	return nil
}

// cutLocked encodes s.buf as one frame and queues it on the sender, blocking
// while the in-flight window is full. Called with s.mu held; holding it
// through the (possibly blocking) queue insert keeps frame order identical
// to buffer order.
func (r *Router) cutLocked(ctx context.Context, s *nodeSender) error {
	if len(s.buf) == 0 {
		return nil
	}
	frame, err := s.enc.appendFrame(nil, s.buf)
	if err != nil {
		return err
	}
	s.buf = s.buf[:0]
	r.pending.Add(1)
	select {
	case s.frames <- frame:
		return nil
	case <-ctx.Done():
		r.pending.Add(-1)
		return ctx.Err()
	}
}

// tickLoop cuts partial frames at the flush interval so buffered events
// never wait longer than FlushInterval.
func (r *Router) tickLoop() {
	defer close(r.tickDone)
	tick := time.NewTicker(r.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			for _, s := range r.senders {
				s.mu.Lock()
				err := r.cutLocked(context.Background(), s)
				s.mu.Unlock()
				if err != nil {
					r.setErr(err)
				}
			}
		case <-r.stopTick:
			return
		}
	}
}

// sendLoop posts cut frames in order. It drains greedily: every frame
// already queued behind the first is concatenated into the same request body
// (a body is a frame sequence), amortizing the request overhead under load.
func (r *Router) sendLoop(s *nodeSender) {
	defer r.sendersWG.Done()
	for first := range s.frames {
		frames := [][]byte{first}
		events := eventCountOf(first)
	drainMore:
		for {
			select {
			case f, ok := <-s.frames:
				if !ok {
					break drainMore
				}
				frames = append(frames, f)
				events += eventCountOf(f)
			default:
				break drainMore
			}
		}
		if err := r.post(s, frames); err != nil {
			r.setErr(fmt.Errorf("cluster: node %q: %w", s.name, err))
			r.dropped.Add(int64(len(frames)))
		} else {
			r.frames.Add(int64(len(frames)))
			r.events.Add(int64(events))
		}
		r.pending.Add(-int64(len(frames)))
	}
}

// eventCountOf reads the event count out of an encoded frame header.
func eventCountOf(frame []byte) int {
	return int(uint32(frame[12]) | uint32(frame[13])<<8 | uint32(frame[14])<<16 | uint32(frame[15])<<24)
}

// post delivers a frame sequence, honoring 429 + Retry-After: a saturated
// node reports how many frames it accepted, the router sleeps the advised
// delay and resends from there. Non-2xx/429 responses and transport errors
// retry the whole remainder, up to MaxRetries attempts in total.
func (r *Router) post(s *nodeSender, frames [][]byte) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
		}
		resp, err := r.client.Post(s.url+"/ingest", "application/octet-stream", bytes.NewReader(bytes.Join(frames, nil)))
		if err != nil {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return nil
		case http.StatusTooManyRequests:
			r.rej429.Add(1)
			var ir ingestResponse
			if json.Unmarshal(body, &ir) == nil && ir.Accepted > 0 && ir.Accepted <= len(frames) {
				frames = frames[ir.Accepted:]
			}
			if len(frames) == 0 {
				return nil
			}
			time.Sleep(retryAfterOf(resp))
			lastErr = fmt.Errorf("saturated (429) after %d attempts", attempt+1)
		default:
			lastErr = fmt.Errorf("ingest returned %s: %s", resp.Status, bytes.TrimSpace(body))
			time.Sleep(5 * time.Millisecond)
		}
	}
	return lastErr
}

// retryAfterOf parses a 429's Retry-After seconds, with a floor that keeps a
// zero or missing header from turning the retry loop into a hot spin.
func retryAfterOf(resp *http.Response) time.Duration {
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		return min(time.Duration(sec)*time.Second, 5*time.Second)
	}
	return 20 * time.Millisecond
}

// Register sends each profile to its owner node's /register endpoint.
func (r *Router) Register(ctx context.Context, profiles []risk.UserProfile) error {
	byNode := make(map[string][]risk.UserProfile)
	for _, p := range profiles {
		owner := r.ring.Owner(p.ID)
		byNode[owner] = append(byNode[owner], p)
	}
	for name, group := range byNode {
		payload, err := json.Marshal(group)
		if err != nil {
			return fmt.Errorf("cluster: encoding profiles: %w", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.senders[name].url+"/register", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: registering on %q: %w", name, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: registering on %q: %s: %s", name, resp.Status, bytes.TrimSpace(body))
		}
	}
	return nil
}

// Flush cuts every buffered partial frame and waits until all cut frames
// have been accepted or dropped.
func (r *Router) Flush(ctx context.Context) error {
	for _, s := range r.senders {
		s.mu.Lock()
		err := r.cutLocked(ctx, s)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for r.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return r.Err()
}

// Close flushes buffered events, stops the background goroutines and returns
// the first delivery error, if any.
func (r *Router) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.stopTick)
		<-r.tickDone
		err = r.Flush(context.Background())
		for _, s := range r.senders {
			close(s.frames)
		}
		r.sendersWG.Wait()
		// Drop the pooled HTTP/2 connections so node servers can shut down
		// without waiting out their graceful-shutdown poll.
		r.client.CloseIdleConnections()
		if err == nil {
			err = r.Err()
		}
	})
	return err
}
