package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"privascope/internal/risk"
	"privascope/internal/service"
)

// RouterConfig configures the ingest client.
type RouterConfig struct {
	// Nodes maps ring node names to base URLs (required, at least one).
	Nodes map[string]string
	// Replicas is the ring's virtual-node count (0 selects DefaultReplicas).
	Replicas int
	// BatchEvents is the per-node buffer size at which a frame is cut and
	// sent (0 selects DefaultBatchEvents).
	BatchEvents int
	// FlushInterval bounds how long a buffered event may wait before the
	// partial frame is sent anyway (0 selects DefaultFlushInterval).
	FlushInterval time.Duration
	// MaxInFlight bounds the cut frames queued for delivery per node; a full
	// window blocks Send, which is the client half of the backpressure
	// protocol. Delivery itself is one FIFO sender per node regardless of
	// the window, so per-user event order is preserved end to end; a larger
	// window only deepens the queue feeding that sender. Default 1.
	MaxInFlight int
	// MaxRetries bounds delivery attempts per frame sequence, 429 rounds
	// included (0 selects DefaultMaxRetries).
	MaxRetries int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between delivery attempts after a transport error or 5xx: attempt k
	// waits a uniformly jittered duration in [d/2, d] for d =
	// min(BackoffBase<<k, BackoffMax), so a flapping node is probed at a
	// geometrically decreasing rate instead of hammered in a tight loop.
	// Zero selects DefaultBackoffBase / DefaultBackoffMax. 429 responses are
	// excluded: they carry the server's own Retry-After advice.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitterSeed seeds the deterministic jitter source (0 selects a
	// fixed default seed; tests pin schedules by choosing a seed).
	BackoffJitterSeed int64
	// HTTPClient overrides the default unencrypted-HTTP/2 client.
	HTTPClient *http.Client
}

const (
	// DefaultBatchEvents is the frame-cut threshold: large enough to
	// amortize the per-request cost over hundreds of events, small enough to
	// stay far below MaxFrameBytes for any realistic event size.
	DefaultBatchEvents = 512
	// DefaultFlushInterval bounds buffered-event latency.
	DefaultFlushInterval = 50 * time.Millisecond
	// DefaultMaxRetries bounds attempts per frame sequence.
	DefaultMaxRetries = 16
	// DefaultBackoffBase and DefaultBackoffMax bound the retry backoff:
	// 5ms doubling to a 2s ceiling reaches the cap on the 9th retry.
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	// EventsSent and FramesSent count what reached a node's queue (accepted,
	// after any retries); Rejected429 counts backpressure rounds; Retries
	// counts delivery re-attempts (one per retried request).
	EventsSent  int64
	FramesSent  int64
	Rejected429 int64
	Retries     int64
	// Dropped counts frame sequences abandoned after MaxRetries — exactly
	// once per abandoned sequence, however many frames it still carried;
	// DroppedFrames and DroppedEvents count the frames and events those
	// sequences lost.
	Dropped       int64
	DroppedFrames int64
	DroppedEvents int64
	// Epoch is the ring epoch: it starts at 1 and increments on every
	// membership change, so readers can tell which ownership generation the
	// other counters belong to.
	Epoch int64
	// ReroutedEvents counts events re-routed to ring successors when a node
	// was evicted; FailoverSkippedFrames counts parked frames NOT re-routed
	// because the dead node's stream cursor proved them already applied.
	ReroutedEvents        int64
	FailoverSkippedFrames int64
}

// cutFrame is one encoded frame queued on a sender, tagged with its index in
// the sender's stream so the receiving node can deduplicate redeliveries.
type cutFrame struct {
	idx    int64
	data   []byte
	events int
}

// nodeSender is the per-node half of the router: a buffer the Send path
// appends to, and a single goroutine posting cut frames in FIFO order, so the
// per-user event order the ring guarantees (one user, one node) survives the
// wire.
type nodeSender struct {
	name string
	url  string

	mu      sync.Mutex
	buf     []service.Event
	enc     frameEncoder
	nextIdx int64      // next frame index in this sender's stream
	parked  []cutFrame // frames recovered from a dead node, pending re-route

	frames  chan cutFrame // cut frames, FIFO; capacity = MaxInFlight
	pending atomic.Int64  // frames cut for this sender, not yet resolved

	dead     chan struct{} // closed when the node is evicted
	deadOnce sync.Once
}

func (s *nodeSender) markDead() { s.deadOnce.Do(func() { close(s.dead) }) }

func (s *nodeSender) isDead() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

// errSenderDead aborts a delivery attempt when the target was evicted
// mid-retry; the sequence is parked for re-routing, not dropped.
var errSenderDead = errors.New("cluster: sender marked dead")

// Router is the cluster's ingest client: it partitions events over the ring,
// buffers per node, cuts binary frames at the batch threshold or flush
// deadline, and honors 429 + Retry-After backpressure. Membership is live:
// AddNode, RemoveNode and EvictNode rebuild the ring at a new epoch after
// handing per-user monitor state to the new owners, and an evicted node's
// undelivered frames are re-routed to its ring successors — never silently
// dropped.
type Router struct {
	ring   atomic.Pointer[Ring]
	epoch  atomic.Int64
	client *http.Client
	cfg    RouterConfig

	// memberMu is the membership lock: Send/Flush/Register and the flush
	// tick hold it shared; membership changes hold it exclusively, so a
	// change observes a frozen Send plane while state moves.
	memberMu sync.RWMutex
	senders  map[string]*nodeSender

	// streamID prefixes every sender's dedup stream key, so retried requests
	// from this router never collide with another router's streams.
	streamID string

	pending atomic.Int64 // frames cut but not yet accepted, dropped or parked
	events  atomic.Int64
	frames  atomic.Int64
	rej429  atomic.Int64
	retries atomic.Int64

	dropped       atomic.Int64
	droppedFrames atomic.Int64
	droppedEvents atomic.Int64
	rerouted      atomic.Int64
	failoverSkip  atomic.Int64

	// jitter is the deterministic backoff-jitter source; sleepFn is the
	// backoff sleep (swapped for a fake clock in tests).
	jitterMu sync.Mutex
	jitter   *rand.Rand
	sleepFn  func(d time.Duration, interrupt <-chan struct{}) bool

	errMu    sync.Mutex
	firstErr error

	stopTick  chan struct{}
	tickDone  chan struct{}
	closed    chan struct{}
	sendersWG sync.WaitGroup
	closeOnce sync.Once
}

// H2CTransport returns a transport speaking unencrypted HTTP/2 (the fleet's
// wire protocol inside the perimeter). The fault-injection harness wraps it.
func H2CTransport() *http.Transport {
	var p http.Protocols
	p.SetUnencryptedHTTP2(true)
	return &http.Transport{Protocols: &p}
}

// h2cClient is the default client: one multiplexed h2c connection per node.
func h2cClient() *http.Client {
	return &http.Client{Transport: H2CTransport()}
}

// routerSeq distinguishes routers created within one process.
var routerSeq atomic.Int64

// NewRouter builds a router over the configured nodes.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	names := make([]string, 0, len(cfg.Nodes))
	for name, url := range cfg.Nodes {
		if url == "" {
			return nil, fmt.Errorf("cluster: node %q has no URL", name)
		}
		names = append(names, name)
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = DefaultBatchEvents
	}
	if cfg.BatchEvents > MaxFrameEvents {
		cfg.BatchEvents = MaxFrameEvents
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	seed := cfg.BackoffJitterSeed
	if seed == 0 {
		seed = 1
	}
	client := cfg.HTTPClient
	if client == nil {
		client = h2cClient()
	}
	r := &Router{
		client:   client,
		senders:  make(map[string]*nodeSender, len(names)),
		cfg:      cfg,
		streamID: fmt.Sprintf("%d-%d-%d", os.Getpid(), time.Now().UnixNano(), routerSeq.Add(1)),
		jitter:   rand.New(rand.NewSource(seed)),
		stopTick: make(chan struct{}),
		tickDone: make(chan struct{}),
		closed:   make(chan struct{}),
	}
	r.sleepFn = r.timerSleep
	r.ring.Store(ring)
	r.epoch.Store(1)
	for name, url := range cfg.Nodes {
		r.startSender(name, url)
	}
	go r.tickLoop()
	return r, nil
}

// startSender builds and launches the sender for one node. The caller either
// owns the router exclusively (NewRouter) or holds memberMu exclusively.
func (r *Router) startSender(name, url string) *nodeSender {
	s := &nodeSender{
		name:   name,
		url:    url,
		frames: make(chan cutFrame, r.cfg.MaxInFlight),
		dead:   make(chan struct{}),
	}
	r.senders[name] = s
	r.sendersWG.Add(1)
	go r.sendLoop(s)
	return s
}

// Ring returns the router's current partitioning ring.
func (r *Router) Ring() *Ring { return r.ring.Load() }

// Epoch returns the current ring epoch (1 at construction, +1 per membership
// change).
func (r *Router) Epoch() int64 { return r.epoch.Load() }

// streamFor is the dedup stream key of one sender.
func (r *Router) streamFor(node string) string { return r.streamID + "/" + node }

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		EventsSent:            r.events.Load(),
		FramesSent:            r.frames.Load(),
		Rejected429:           r.rej429.Load(),
		Retries:               r.retries.Load(),
		Dropped:               r.dropped.Load(),
		DroppedFrames:         r.droppedFrames.Load(),
		DroppedEvents:         r.droppedEvents.Load(),
		Epoch:                 r.epoch.Load(),
		ReroutedEvents:        r.rerouted.Load(),
		FailoverSkippedFrames: r.failoverSkip.Load(),
	}
}

// Err returns the first delivery error, if any frame sequence was dropped.
func (r *Router) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

func (r *Router) setErr(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
}

// Send routes one event to its owner's buffer, cutting a frame when the
// buffer reaches the batch threshold. It blocks when the owner's in-flight
// window is full — that block is the backpressure propagating to the caller —
// and while a membership change is rebuilding the ring, so an event observed
// before a change lands on the old owner (whose state then moves) and an
// event observed after lands on the new one: re-routed, never dropped.
func (r *Router) Send(ctx context.Context, ev service.Event) error {
	r.memberMu.RLock()
	defer r.memberMu.RUnlock()
	return r.route(ctx, ev)
}

// route is Send under an already-held membership lock (either mode).
func (r *Router) route(ctx context.Context, ev service.Event) error {
	s := r.senders[r.ring.Load().Owner(ev.UserID)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, ev)
	if len(s.buf) >= r.cfg.BatchEvents {
		return r.cutLocked(ctx, s)
	}
	return nil
}

// SendBatch routes a batch of events.
func (r *Router) SendBatch(ctx context.Context, events []service.Event) error {
	for _, ev := range events {
		if err := r.Send(ctx, ev); err != nil {
			return err
		}
	}
	return nil
}

// cutLocked encodes s.buf as one frame and queues it on the sender, blocking
// while the in-flight window is full. Called with s.mu held; holding it
// through the (possibly blocking) queue insert keeps frame order identical
// to buffer order.
func (r *Router) cutLocked(ctx context.Context, s *nodeSender) error {
	if len(s.buf) == 0 {
		return nil
	}
	data, err := s.enc.appendFrame(nil, s.buf)
	if err != nil {
		return err
	}
	f := cutFrame{idx: s.nextIdx, data: data, events: len(s.buf)}
	s.nextIdx++
	s.buf = s.buf[:0]
	r.pending.Add(1)
	s.pending.Add(1)
	select {
	case s.frames <- f:
		return nil
	case <-ctx.Done():
		r.pending.Add(-1)
		s.pending.Add(-1)
		return ctx.Err()
	}
}

// tickLoop cuts partial frames at the flush interval so buffered events
// never wait longer than FlushInterval.
func (r *Router) tickLoop() {
	defer close(r.tickDone)
	tick := time.NewTicker(r.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.memberMu.RLock()
			for _, s := range r.senders {
				if s.isDead() {
					continue
				}
				s.mu.Lock()
				err := r.cutLocked(context.Background(), s)
				s.mu.Unlock()
				if err != nil {
					r.setErr(err)
				}
			}
			r.memberMu.RUnlock()
		case <-r.stopTick:
			return
		}
	}
}

// sendLoop posts cut frames in order. It drains greedily: every frame
// already queued behind the first is concatenated into the same request body
// (a body is a frame sequence), amortizing the request overhead under load.
// When the node has been marked dead, sequences are parked for the eviction
// path to re-route instead of posted or dropped.
func (r *Router) sendLoop(s *nodeSender) {
	defer r.sendersWG.Done()
	for first := range s.frames {
		frames := []cutFrame{first}
	drainMore:
		for {
			select {
			case f, ok := <-s.frames:
				if !ok {
					break drainMore
				}
				frames = append(frames, f)
			default:
				break drainMore
			}
		}
		total := len(frames)
		var rest []cutFrame
		var err error
		if s.isDead() {
			rest = frames
			err = errSenderDead
		} else {
			var accepted, acceptedEvents int
			accepted, acceptedEvents, rest, err = r.post(s, frames)
			r.frames.Add(int64(accepted))
			r.events.Add(int64(acceptedEvents))
		}
		switch {
		case err == nil:
		case errors.Is(err, errSenderDead):
			s.mu.Lock()
			s.parked = append(s.parked, rest...)
			s.mu.Unlock()
		default:
			r.setErr(fmt.Errorf("cluster: node %q: %w", s.name, err))
			r.dropped.Add(1)
			r.droppedFrames.Add(int64(len(rest)))
			for _, f := range rest {
				r.droppedEvents.Add(int64(f.events))
			}
		}
		r.pending.Add(-int64(total))
		s.pending.Add(-int64(total))
	}
}

// post delivers a frame sequence, honoring 429 + Retry-After: a saturated
// node reports how many frames it accepted, the router sleeps the advised
// delay and resends from there, and the accepted prefix survives later
// failures — acceptance is monotonic across retries. Non-2xx/429 responses
// and transport errors retry the remainder after a jittered exponential
// backoff, up to MaxRetries attempts in total. It returns the accepted frame
// and event counts, the unaccepted remainder, and the final error (nil when
// everything was accepted; errSenderDead when the node was evicted
// mid-delivery).
func (r *Router) post(s *nodeSender, frames []cutFrame) (acceptedFrames, acceptedEvents int, rest []cutFrame, err error) {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		if s.isDead() {
			return acceptedFrames, acceptedEvents, frames, errSenderDead
		}
		if attempt > 0 {
			r.retries.Add(1)
		}
		body := make([]byte, 0, r.sequenceSize(frames))
		for _, f := range frames {
			body = append(body, f.data...)
		}
		req, reqErr := http.NewRequest(http.MethodPost, s.url+"/ingest", bytes.NewReader(body))
		if reqErr != nil {
			return acceptedFrames, acceptedEvents, frames, reqErr
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(HeaderStream, r.streamFor(s.name))
		req.Header.Set(HeaderFrameBase, strconv.FormatInt(frames[0].idx, 10))
		resp, postErr := r.client.Do(req)
		if postErr != nil {
			lastErr = postErr
			if !r.backoffSleep(attempt, s.dead) {
				return acceptedFrames, acceptedEvents, frames, errSenderDead
			}
			continue
		}
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			for _, f := range frames {
				acceptedEvents += f.events
			}
			return acceptedFrames + len(frames), acceptedEvents, nil, nil
		case http.StatusTooManyRequests:
			r.rej429.Add(1)
			var ir ingestResponse
			if json.Unmarshal(respBody, &ir) == nil && ir.Accepted > 0 && ir.Accepted <= len(frames) {
				acceptedFrames += ir.Accepted
				for _, f := range frames[:ir.Accepted] {
					acceptedEvents += f.events
				}
				frames = frames[ir.Accepted:]
			}
			if len(frames) == 0 {
				return acceptedFrames, acceptedEvents, nil, nil
			}
			lastErr = fmt.Errorf("saturated (429) after %d attempts", attempt+1)
			if !r.sleep(retryAfterOf(resp), s.dead) {
				return acceptedFrames, acceptedEvents, frames, errSenderDead
			}
		default:
			lastErr = fmt.Errorf("ingest returned %s: %s", resp.Status, bytes.TrimSpace(respBody))
			if !r.backoffSleep(attempt, s.dead) {
				return acceptedFrames, acceptedEvents, frames, errSenderDead
			}
		}
	}
	return acceptedFrames, acceptedEvents, frames, lastErr
}

// retryAfterOf parses a 429's Retry-After seconds, with a floor that keeps a
// zero or missing header from turning the retry loop into a hot spin.
func retryAfterOf(resp *http.Response) time.Duration {
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		return min(time.Duration(sec)*time.Second, 5*time.Second)
	}
	return 20 * time.Millisecond
}

// sequenceSize sums the encoded bytes of a frame sequence.
func (r *Router) sequenceSize(frames []cutFrame) int {
	n := 0
	for _, f := range frames {
		n += len(f.data)
	}
	return n
}

// backoff computes the jittered exponential delay after failed attempt k
// (0-based): uniformly drawn from [d/2, d] for d = min(base<<k, max). The
// jitter source is seeded (BackoffJitterSeed), so a test can pin the exact
// schedule.
func (r *Router) backoff(attempt int) time.Duration {
	d := r.cfg.BackoffBase
	for i := 0; i < attempt && d < r.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > r.cfg.BackoffMax {
		d = r.cfg.BackoffMax
	}
	r.jitterMu.Lock()
	j := time.Duration(r.jitter.Int63n(int64(d/2) + 1))
	r.jitterMu.Unlock()
	return d/2 + j
}

// backoffSleep sleeps the backoff for the attempt; it returns false when the
// sleep was interrupted by the sender dying or the router closing.
func (r *Router) backoffSleep(attempt int, dead <-chan struct{}) bool {
	return r.sleepFn(r.backoff(attempt), dead)
}

// sleep waits d via the router's sleep function (a fake clock in tests).
func (r *Router) sleep(d time.Duration, dead <-chan struct{}) bool {
	return r.sleepFn(d, dead)
}

// timerSleep is the production sleep: interruptible by eviction of the
// target node and by router close, so a retry loop never outlives either.
func (r *Router) timerSleep(d time.Duration, dead <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-dead:
		return false
	case <-r.closed:
		// Closing flushes first, so an interrupt here only short-circuits
		// attempts that already failed once.
		return true
	}
}

// Register sends each profile to its owner node's /register endpoint.
func (r *Router) Register(ctx context.Context, profiles []risk.UserProfile) error {
	r.memberMu.RLock()
	defer r.memberMu.RUnlock()
	byNode := make(map[string][]risk.UserProfile)
	ring := r.ring.Load()
	for _, p := range profiles {
		owner := ring.Owner(p.ID)
		byNode[owner] = append(byNode[owner], p)
	}
	for name, group := range byNode {
		payload, err := json.Marshal(group)
		if err != nil {
			return fmt.Errorf("cluster: encoding profiles: %w", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.senders[name].url+"/register", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: registering on %q: %w", name, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: registering on %q: %s: %s", name, resp.Status, bytes.TrimSpace(body))
		}
	}
	return nil
}

// Flush cuts every buffered partial frame and waits until all cut frames
// have been accepted or dropped.
func (r *Router) Flush(ctx context.Context) error {
	r.memberMu.RLock()
	defer r.memberMu.RUnlock()
	if err := r.flushSealed(ctx, ""); err != nil {
		return err
	}
	return r.Err()
}

// flushSealed cuts and settles every live sender except skip. The caller
// holds memberMu in either mode.
func (r *Router) flushSealed(ctx context.Context, skip string) error {
	for name, s := range r.senders {
		if name == skip || s.isDead() {
			continue
		}
		s.mu.Lock()
		err := r.cutLocked(ctx, s)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for r.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// Close flushes buffered events, stops the background goroutines and returns
// the first delivery error, if any.
func (r *Router) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.stopTick)
		<-r.tickDone
		err = r.Flush(context.Background())
		close(r.closed)
		r.memberMu.Lock()
		for _, s := range r.senders {
			close(s.frames)
		}
		r.memberMu.Unlock()
		r.sendersWG.Wait()
		// Drop the pooled HTTP/2 connections so node servers can shut down
		// without waiting out their graceful-shutdown poll.
		r.client.CloseIdleConnections()
		if err == nil {
			err = r.Err()
		}
	})
	return err
}
