package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// corpusSeeds builds the committed fuzz seed inputs: one valid frame and the
// interesting hostile shapes (truncation, future version, adversarial length
// prefix) that the decoder's validation paths must survive.
func corpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	valid, err := EncodeFrame(frameTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	futureVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(futureVersion[4:], FrameVersion+1)
	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[8:], MaxFrameBytes+1)
	return map[string][]byte{
		"valid":            valid,
		"truncated-header": valid[:11],
		"truncated-events": valid[:len(valid)-5],
		"future-version":   futureVersion,
		"oversized-length": oversized,
	}
}

// FuzzFrameDecode hammers the ingest wire decoder with arbitrary bytes: it
// must never panic, and any frame it does accept must re-encode and
// re-decode to the same events (the decoder's output is inside the codec's
// round-trip fixpoint).
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeFrame(data)
		if err != nil {
			if events != nil {
				t.Fatalf("decode returned both events and error %v", err)
			}
			return
		}
		reencoded, err := EncodeFrame(events)
		if err != nil {
			t.Fatalf("re-encoding accepted events failed: %v", err)
		}
		again, err := DecodeFrame(reencoded)
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("decode/encode/decode is not a fixpoint:\nfirst  %+v\nsecond %+v", events, again)
		}
	})
}

// TestFuzzCorpusCommitted checks the committed seed corpus stays in sync
// with the wire format: each file exists in go-fuzz v1 form and its input
// produces the outcome its name promises. Regenerate with
// CLUSTER_REGEN_CORPUS=1 after a deliberate format change.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	seeds := corpusSeeds(t)
	if os.Getenv("CLUSTER_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus entry %s missing (regenerate with CLUSTER_REGEN_CORPUS=1): %v", name, err)
		}
		const header = "go test fuzz v1\n[]byte("
		s := string(raw)
		if !strings.HasPrefix(s, header) || !strings.HasSuffix(s, ")\n") {
			t.Fatalf("corpus entry %s is not in go-fuzz v1 form", name)
		}
		data, err := strconv.Unquote(s[len(header) : len(s)-2])
		if err != nil {
			t.Fatalf("corpus entry %s: %v", name, err)
		}
		if !bytes.Equal([]byte(data), want) {
			t.Fatalf("corpus entry %s is stale; regenerate with CLUSTER_REGEN_CORPUS=1", name)
		}
		_, decErr := DecodeFrame([]byte(data))
		switch name {
		case "valid":
			if decErr != nil {
				t.Fatalf("valid corpus entry rejected: %v", decErr)
			}
		case "future-version":
			if !errors.Is(decErr, ErrFrameVersion) {
				t.Fatalf("future-version corpus entry: %v, want ErrFrameVersion", decErr)
			}
		default:
			if decErr == nil {
				t.Fatalf("corrupt corpus entry %s accepted", name)
			}
		}
	}
}
