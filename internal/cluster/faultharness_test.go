package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"privascope/internal/cluster/fault"
	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/runtime"
	"privascope/internal/synth"
)

// faultSchedule is the golden harness's mixed schedule: drops, resets,
// delays, injected 503s, lost responses, and one short partition window per
// host — confined to /ingest so the management plane (register, handoff)
// stays out of the per-host ordinal sequence.
func faultSchedule(seed int64) fault.Config {
	return fault.Config{
		Seed:         seed,
		Drop:         0.06,
		Reset:        0.03,
		Status:       0.06,
		ResponseDrop: 0.05,
		Delay:        0.08,
		DelayMin:     100 * time.Microsecond,
		DelayMax:     time.Millisecond,
		Partitions:   []fault.Partition{{From: 4, To: 7}},
		Paths:        []string{"/ingest"},
	}
}

// faultRouterConfig pairs the schedule with a retry budget that outlasts any
// plausible consecutive-failure run (the partition window is 3 ordinals; the
// independent per-request fault probability is ~0.28), so no frame sequence
// is ever abandoned and the no-loss comparison below is meaningful.
func faultRouterConfig(seed int64, transport http.RoundTripper) RouterConfig {
	return RouterConfig{
		BatchEvents:       4,
		MaxRetries:        40,
		BackoffBase:       100 * time.Microsecond,
		BackoffMax:        2 * time.Millisecond,
		BackoffJitterSeed: seed,
		HTTPClient:        &http.Client{Transport: transport},
	}
}

// TestClusterFaultDeterminismGolden is the fault-tolerance acceptance
// harness: under a seeded fault schedule, with a node joining and another
// crashing mid-stream, a 1-, 2- and 4-node cluster each produce exactly the
// alert set and per-user cursors of one uninterrupted single-process monitor
// — zero accepted events lost, zero double-applied, reproducible from the
// printed seed (override with CLUSTER_FAULT_SEED).
func TestClusterFaultDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP servers and injects delays")
	}
	seed := int64(20260808)
	if env := os.Getenv("CLUSTER_FAULT_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CLUSTER_FAULT_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("fault schedule seed %d (rerun with CLUSTER_FAULT_SEED=%d)", seed, seed)

	p := surgeryModel(t)
	profiles := membershipProfiles(16)
	users := make([]string, len(profiles))
	for i, pr := range profiles {
		users[i] = pr.ID
	}
	stream := synth.RandomEventStream(rand.New(rand.NewSource(seed)), p, users, 20)
	direct := directMonitor(t, profiles, stream)

	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			injector := fault.New(H2CTransport(), faultSchedule(seed))
			c, err := StartLocal(p, nodes, NodeConfig{}, faultRouterConfig(seed, injector))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop(context.Background())
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if err := c.Router.Register(ctx, profiles); err != nil {
				t.Fatal(err)
			}
			victim := c.Nodes[0].Name()

			q := len(stream) / 4
			if err := c.Router.SendBatch(ctx, stream[:q]); err != nil {
				t.Fatal(err)
			}
			if _, err := c.AddNode(ctx); err != nil {
				t.Fatal(err)
			}
			if err := c.Router.SendBatch(ctx, stream[q:2*q]); err != nil {
				t.Fatal(err)
			}
			// Crash the victim with the third quarter unflushed: its server
			// stops mid-delivery, the router parks what it could not deliver,
			// and the eviction re-routes it under the new ring.
			if err := c.Router.SendBatch(ctx, stream[2*q:3*q]); err != nil {
				t.Fatal(err)
			}
			for i, n := range c.Nodes {
				if n.Name() == victim {
					stopCtx, stopCancel := context.WithTimeout(ctx, 10*time.Second)
					if err := c.Servers[i].Stop(stopCtx); err != nil {
						t.Fatal(err)
					}
					stopCancel()
				}
			}
			if err := c.EvictNode(ctx, victim); err != nil {
				t.Fatal(err)
			}
			if err := c.Router.SendBatch(ctx, stream[3*q:]); err != nil {
				t.Fatal(err)
			}

			requireClusterMatchesDirect(t, c, direct, users)

			rstats := c.Router.Stats()
			if rstats.Dropped != 0 {
				t.Fatalf("router abandoned %d sequences under faults: %+v", rstats.Dropped, rstats)
			}
			if want := int64(1 + 2); rstats.Epoch != want {
				t.Fatalf("epoch = %d after join+eviction, want %d", rstats.Epoch, want)
			}
			istats := injector.Stats()
			if istats.Requests == 0 || istats.Dropped+istats.Statuses+istats.Resets+istats.Partitioned == 0 {
				t.Fatalf("fault injector was idle: %+v", istats)
			}
			var deduped int64
			for _, n := range append(append([]*Node(nil), c.Nodes...), c.retired...) {
				deduped += n.Stats().DedupedFrames
			}
			t.Logf("nodes=%d: injector %+v; router retries=%d rerouted=%d failover-skipped=%d; deduped frames=%d",
				nodes, istats, rstats.Retries, rstats.ReroutedEvents, rstats.FailoverSkippedFrames, deduped)
			if istats.ResponseDrops > 0 && deduped == 0 && rstats.FailoverSkippedFrames == 0 {
				t.Errorf("%d responses were dropped but nothing was deduplicated or cursor-skipped: lost-ack retries were double-applied?", istats.ResponseDrops)
			}
		})
	}
}

// TestClusterFaultDeterminismProperty randomizes what the golden harness
// pins: random scenarios, node counts, fault rates and a random membership
// change (join, leave, or crash+evict) mid-stream — the cluster must still
// match the direct monitor exactly. Rides the CI property soak via
// PROP_PACKAGES.
func TestClusterFaultDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP servers per round")
	}
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		users := make([]string, len(s.Profiles))
		for i, profile := range s.Profiles {
			users[i] = profile.ID
		}
		perUser := 1 + (48+len(users)-1)/len(users)
		stream := synth.RandomEventStream(rng, p, users, perUser)

		direct, err := runtime.NewMonitor(p, runtime.Config{})
		if err != nil {
			return err
		}
		for _, profile := range s.Profiles {
			if err := direct.RegisterUser(profile); err != nil {
				return err
			}
		}
		direct.IngestBatch(stream)

		cfg := faultSchedule(seed)
		cfg.Drop = rng.Float64() * 0.1
		cfg.Reset = rng.Float64() * 0.05
		cfg.Status = rng.Float64() * 0.1
		cfg.ResponseDrop = rng.Float64() * 0.08
		cfg.Delay = rng.Float64() * 0.1
		injector := fault.New(H2CTransport(), cfg)
		nodes := 1 + rng.Intn(3)
		c, err := StartLocal(p, nodes, NodeConfig{}, faultRouterConfig(seed, injector))
		if err != nil {
			return err
		}
		defer c.Stop(context.Background())
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := c.Router.Register(ctx, s.Profiles); err != nil {
			return err
		}
		half := len(stream) / 2
		if err := c.Router.SendBatch(ctx, stream[:half]); err != nil {
			return err
		}

		switch op := rng.Intn(3); {
		case op == 0:
			if _, err := c.AddNode(ctx); err != nil {
				return fmt.Errorf("join: %w", err)
			}
		case op == 1 && len(c.Nodes) > 1:
			if err := c.RemoveNode(ctx, c.Nodes[rng.Intn(len(c.Nodes))].Name()); err != nil {
				return fmt.Errorf("leave: %w", err)
			}
		case op == 2 && len(c.Nodes) > 1:
			victim := c.Nodes[rng.Intn(len(c.Nodes))].Name()
			for i, n := range c.Nodes {
				if n.Name() == victim {
					stopCtx, stopCancel := context.WithTimeout(ctx, 10*time.Second)
					err := c.Servers[i].Stop(stopCtx)
					stopCancel()
					if err != nil {
						return err
					}
				}
			}
			if err := c.EvictNode(ctx, victim); err != nil {
				return fmt.Errorf("evict: %w", err)
			}
		}
		if err := c.Router.SendBatch(ctx, stream[half:]); err != nil {
			return err
		}
		if err := c.Quiesce(ctx); err != nil {
			return err
		}

		if got, want := sortedComparable(c.Alerts()), sortedComparable(direct.Alerts()); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("seed %d: merged alerts differ under faults:\n got %d: %+v\nwant %d: %+v",
				seed, len(got), got, len(want), want)
		}
		ring := c.Router.Ring()
		byName := make(map[string]*Node, len(c.Nodes))
		for _, n := range c.Nodes {
			byName[n.Name()] = n
		}
		for _, id := range users {
			owner, ok := byName[ring.Owner(id)]
			if !ok {
				return fmt.Errorf("seed %d: user %q owned by dead node %q", seed, id, ring.Owner(id))
			}
			got, ok1 := owner.Monitor().ExportUser(id)
			want, ok2 := direct.ExportUser(id)
			if !ok1 || !ok2 || !reflect.DeepEqual(got, want) {
				return fmt.Errorf("seed %d: user %q snapshot differs: cluster %+v (%v), direct %+v (%v)",
					seed, id, got, ok1, want, ok2)
			}
		}
		if stats := c.Router.Stats(); stats.Dropped != 0 {
			return fmt.Errorf("seed %d: router abandoned %d sequences", seed, stats.Dropped)
		}
		return nil
	})
}
