package cluster

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics renders the node's counters in the Prometheus text
// exposition format (hand-rolled on the stdlib: the format is plain text and
// a client dependency for a fleet-internal scrape endpoint is not worth it).
// Counter names follow the prometheus conventions: _total suffix on
// monotonic counters, plain gauges for instantaneous values, the node name as
// a label so a fleet-wide scrape aggregates with sum by ().
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := n.Stats()
	var b strings.Builder
	label := fmt.Sprintf("{node=%q}", n.name)
	metric := func(name, help, typ string, value int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s%s %d\n", name, help, name, typ, name, label, value)
	}
	metric("privascope_node_events_total", "Events accepted by the ingest endpoint.", "counter", s.Events)
	metric("privascope_node_frames_total", "Event frames accepted by the ingest endpoint.", "counter", s.Frames)
	metric("privascope_node_rejected_events_total", "Events rejected with 429 by admission control.", "counter", s.Rejected)
	metric("privascope_node_decode_errors_total", "Malformed frames rejected with 400.", "counter", s.DecodeErrors)
	metric("privascope_node_deduped_frames_total", "Retried frames skipped by stream-offset deduplication.", "counter", s.DedupedFrames)
	metric("privascope_node_queue_depth", "Accepted events not yet applied to the monitor.", "gauge", s.QueueDepth)
	metric("privascope_node_queue_limit", "Admission bound on queued events.", "gauge", s.QueueLimit)
	metric("privascope_node_handoff_in_users_total", "User snapshots imported through /handoff.", "counter", s.HandoffInUsers)
	metric("privascope_node_handoff_out_users_total", "User snapshots exported off this node by membership changes.", "counter", s.HandoffOutUsers)
	metric("privascope_node_failover_in_users_total", "Imported snapshots whose previous owner was evicted as dead.", "counter", s.FailoverInUsers)
	ready := int64(0)
	if s.Ready {
		ready = 1
	}
	metric("privascope_node_ready", "Readiness: 0 while draining or receiving a handoff.", "gauge", ready)
	metric("privascope_node_ingested_events_total", "Events applied to the monitor.", "counter", int64(s.Ingest.Events))
	metric("privascope_node_matched_events_total", "Applied events that advanced a model cursor.", "counter", int64(s.Ingest.Matched))
	metric("privascope_node_unregistered_events_total", "Applied events naming an unregistered user.", "counter", int64(s.Ingest.Unregistered))
	fmt.Fprintf(&b, "# HELP privascope_node_alerts_total Alerts raised, by kind.\n# TYPE privascope_node_alerts_total counter\n")
	for _, kv := range []struct {
		kind string
		v    int
	}{
		{"risk", s.Ingest.RiskAlerts},
		{"unmodelled-behaviour", s.Ingest.Unmodelled},
		{"denied-operation", s.Ingest.Denied},
	} {
		fmt.Fprintf(&b, "privascope_node_alerts_total{node=%q,kind=%q} %d\n", n.name, kv.kind, kv.v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
