package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingRejectsBadNodeLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("NewRing with an empty name succeeded")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("NewRing with a duplicate name succeeded")
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if owner := r.Owner(fmt.Sprintf("user-%d", i)); owner != "only" {
			t.Fatalf("user-%d owned by %q in a single-node ring", i, owner)
		}
	}
}

func TestRingHashMatchesMonitorStripeHash(t *testing.T) {
	// HashUserID must stay the FNV-1a the monitor stripes by; pin a few
	// reference values so a drift in either copy fails loudly.
	want := map[string]uint32{
		"":          2166136261,
		"patient-1": 1816774696,
	}
	for in, out := range want {
		if got := HashUserID(in); got != out {
			t.Errorf("HashUserID(%q) = %d, want %d", in, got, out)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const users = 40000
	for i := 0; i < users; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / users
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %q owns %.1f%% of users; the ring is badly unbalanced: %v",
				n, 100*share, counts)
		}
	}
}

func TestRingWithAndWithoutNode(t *testing.T) {
	r, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := r.WithNode("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.Size(); got != 3 {
		t.Fatalf("grown ring has %d nodes, want 3", got)
	}
	if _, err := r.WithNode("a"); err == nil {
		t.Fatal("adding a duplicate node succeeded")
	}
	shrunk, err := grown.WithoutNode("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := shrunk.Size(); got != 2 {
		t.Fatalf("shrunk ring has %d nodes, want 2", got)
	}
	if _, err := r.WithoutNode("zzz"); err == nil {
		t.Fatal("removing an absent node succeeded")
	}
	// Round-tripping through add+remove restores the exact assignment.
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("user-%d", i)
		if r.Owner(id) != shrunk.Owner(id) {
			t.Fatalf("user %q moved from %q to %q across an add+remove round trip",
				id, r.Owner(id), shrunk.Owner(id))
		}
	}
}
