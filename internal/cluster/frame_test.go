package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"privascope/internal/core"
	"privascope/internal/service"
)

// frameTestEvents covers the codec's surface: interning (repeated strings),
// the empty string, zero and non-zero times, denied flags, no-field and
// multi-field events.
func frameTestEvents() []service.Event {
	return []service.Event{
		{
			Seq: 1, Time: time.Unix(0, 1712345678901234567).UTC(),
			Actor: "doctor", Action: core.ActionRead, Datastore: "ehr",
			Service: "medical", Purpose: "treatment",
			UserID: "patient-1", Fields: []string{"diagnosis", "treatment"},
		},
		{
			Seq: 2, Actor: "nurse", Action: core.ActionRead, Datastore: "ehr",
			UserID: "patient-1", Fields: []string{"diagnosis"}, Denied: true,
		},
		{
			Seq: -7, Actor: "receptionist", Action: core.ActionCollect,
			UserID: "patient-2", Fields: []string{"name"},
		},
		{
			Seq: 0, Actor: "doctor", Action: core.ActionDelete, Datastore: "ehr",
			UserID: "patient-1",
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	events := frameTestEvents()
	frame, err := EncodeFrame(events)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", decoded, events)
	}
}

func TestFrameEncodingIsCanonical(t *testing.T) {
	a, err := EncodeFrame(frameTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeFrame(frameTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding the same batch twice produced different bytes")
	}
	// A reused encoder (the Router path) must produce the same canonical
	// bytes as a fresh one.
	var enc frameEncoder
	if _, err := enc.appendFrame(nil, frameTestEvents()[:1]); err != nil {
		t.Fatal(err)
	}
	c, err := enc.appendFrame(nil, frameTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("a reused encoder produced different bytes than a fresh one")
	}
}

func TestFrameEncodeRejects(t *testing.T) {
	if _, err := EncodeFrame(nil); err == nil {
		t.Error("encoding an empty batch succeeded")
	}
	if _, err := EncodeFrame([]service.Event{{UserID: "u", Action: core.Action(99)}}); err == nil {
		t.Error("encoding an invalid action succeeded")
	}
}

// corrupt returns a copy of frame with the byte at off overwritten.
func corrupt(frame []byte, off int, b byte) []byte {
	c := append([]byte(nil), frame...)
	c[off] = b
	return c
}

func TestFrameDecodeRejectsMalformed(t *testing.T) {
	frame, err := EncodeFrame(frameTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"short header":    frame[:8],
		"bad magic":       corrupt(frame, 0, 'X'),
		"truncated":       frame[:len(frame)-3],
		"trailing bytes":  append(append([]byte(nil), frame...), 0),
		"reserved set":    corrupt(frame, 6, 1),
		"zero events":     corrupt(frame, 12, 0),
		"bad action":      nil, // filled below
		"bad denied flag": nil,
		"spiked offset":   nil,
	}
	// Oversized declared length.
	over := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(over[8:], MaxFrameBytes+1)
	cases["oversized length"] = over
	// Find the first event's action byte: locate it by corrupting through
	// the decoder — cheaper to rebuild the frame with a known layout.
	small, err := EncodeFrame([]service.Event{{UserID: "u", Actor: "a", Action: core.ActionRead}})
	if err != nil {
		t.Fatal(err)
	}
	// Layout of small: header(16) scount=3 offsets(4×4) blob("ua") events.
	eventOff := frameHeaderSize + 4 + 4*4 + 2
	cases["bad action"] = corrupt(small, eventOff+36, 99)
	cases["bad denied flag"] = corrupt(small, eventOff+37, 2)
	spiked := append([]byte(nil), small...)
	binary.LittleEndian.PutUint32(spiked[frameHeaderSize+4+4:], 1<<30)
	cases["spiked offset"] = spiked

	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		} else if !strings.Contains(err.Error(), "cluster:") {
			t.Errorf("%s: error %q lacks the package prefix", name, err)
		}
	}

	versioned := corrupt(frame, 4, FrameVersion+1)
	if _, err := DecodeFrame(versioned); err == nil || !strings.Contains(err.Error(), "newer format version") {
		t.Errorf("future version: got %v, want ErrFrameVersion", err)
	}
}

func TestFrameReaderStreams(t *testing.T) {
	events := frameTestEvents()
	var body []byte
	var enc frameEncoder
	for i := range events {
		var err error
		body, err = enc.appendFrame(body, events[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(body))
	var got []service.Event
	for {
		batch, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("streamed decode mismatch:\n got %+v\nwant %+v", got, events)
	}

	// A stream cut mid-frame is an unexpected EOF, not a clean end.
	fr = NewFrameReader(bytes.NewReader(body[:len(body)-2]))
	for {
		_, err := fr.Read()
		if err == nil {
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated stream: got %v, want io.ErrUnexpectedEOF", err)
		}
		break
	}
}
