package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"privascope/internal/proptest"
	"privascope/internal/proptest/scenario"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/synth"
)

// randomNodeNames draws 1..6 distinct node names.
func randomNodeNames(rng *rand.Rand) []string {
	n := 1 + rng.Intn(6)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d-%d", rng.Intn(1000), i)
	}
	return names
}

// TestRingPermutationStabilityProperty: the ring is a pure function of the
// node *set* — any permutation of the node list assigns every user to the
// same owner.
func TestRingPermutationStabilityProperty(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		names := randomNodeNames(rng)
		base, err := NewRing(names, 0)
		if err != nil {
			return err
		}
		shuffled := append([]string(nil), names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		permuted, err := NewRing(shuffled, 0)
		if err != nil {
			return err
		}
		for i := 0; i < 500; i++ {
			id := fmt.Sprintf("user-%d-%d", seed, i)
			if a, b := base.Owner(id), permuted.Owner(id); a != b {
				return fmt.Errorf("user %q owned by %q under %v but %q under %v", id, a, names, b, shuffled)
			}
		}
		return nil
	})
}

// TestRingMinimalMovementProperty: when a node joins, users either keep
// their owner or move to the new node — never between old nodes — and the
// moved fraction is on the order of K/N. Symmetrically, when a node leaves,
// only its own users move.
func TestRingMinimalMovementProperty(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		names := randomNodeNames(rng)
		base, err := NewRing(names, 0)
		if err != nil {
			return err
		}
		joined := fmt.Sprintf("joiner-%d", rng.Intn(1000000))
		grown, err := base.WithNode(joined)
		if err != nil {
			return err
		}
		const users = 3000
		moved := 0
		for i := 0; i < users; i++ {
			id := fmt.Sprintf("user-%d-%d", seed, i)
			before, after := base.Owner(id), grown.Owner(id)
			if before != after {
				if after != joined {
					return fmt.Errorf("join of %q moved user %q from %q to %q (neither is the joiner)",
						joined, id, before, after)
				}
				moved++
			}
		}
		// Expected movement is users/(n+1); allow a wide consistent-hashing
		// variance band but catch both rehash-everything (≈ n/(n+1) of all
		// users move) and move-nothing regressions.
		expected := float64(users) / float64(grown.Size())
		if f := float64(moved); f > 3*expected || f < expected/4 {
			return fmt.Errorf("join moved %d of %d users across %d nodes; expected about %.0f",
				moved, users, grown.Size(), expected)
		}
		// Leaving must undo the join exactly: shrink back and every user has
		// their original owner (checked over a fresh sample to avoid shared
		// state with the loop above).
		shrunk, err := grown.WithoutNode(joined)
		if err != nil {
			return err
		}
		for i := 0; i < users; i++ {
			id := fmt.Sprintf("user-%d-%d", seed, i)
			if a, b := base.Owner(id), shrunk.Owner(id); a != b {
				return fmt.Errorf("user %q moved from %q to %q across a join+leave round trip", id, a, b)
			}
		}
		// Leave of an original member (the failover direction): exactly the
		// leaver's users move — everyone else keeps their owner — and the
		// leaver's share is on the order of 1/N.
		if len(names) > 1 {
			leaver := names[rng.Intn(len(names))]
			reduced, err := base.WithoutNode(leaver)
			if err != nil {
				return err
			}
			departed := 0
			for i := 0; i < users; i++ {
				id := fmt.Sprintf("user-%d-%d", seed, i)
				before, after := base.Owner(id), reduced.Owner(id)
				switch {
				case before == leaver:
					if after == leaver {
						return fmt.Errorf("user %q still owned by departed node %q", id, leaver)
					}
					departed++
				case before != after:
					return fmt.Errorf("leave of %q moved user %q from %q to %q (untouched users must keep their owner)",
						leaver, id, before, after)
				}
			}
			expected := float64(users) / float64(base.Size())
			if f := float64(departed); f > 3*expected || f < expected/4 {
				return fmt.Errorf("leave moved %d of %d users across %d nodes; expected about %.0f",
					departed, users, base.Size(), expected)
			}
		}
		return nil
	})
}

// comparableAlert is an Alert minus its unexported cross-shard sequence
// number, which legitimately differs between deployments.
type comparableAlert struct {
	Kind    runtime.AlertKind
	UserID  string
	Event   comparableEvent
	Risk    risk.Level
	Finding risk.Finding
	Message string
}

// comparableEvent is a service.Event with the wall-clock timestamp reduced
// to UnixNano, the resolution the wire format carries.
type comparableEvent struct {
	Seq                                        int64
	TimeNanos                                  int64
	Actor, Datastore, Service, Purpose, UserID string
	Action                                     int
	Fields                                     string
	Denied                                     bool
}

func stripAlerts(alerts []runtime.Alert) []comparableAlert {
	out := make([]comparableAlert, len(alerts))
	for i, a := range alerts {
		var nanos int64
		if !a.Event.Time.IsZero() {
			nanos = a.Event.Time.UnixNano()
		}
		out[i] = comparableAlert{
			Kind: a.Kind, UserID: a.UserID, Risk: a.Risk, Finding: a.Finding, Message: a.Message,
			Event: comparableEvent{
				Seq: a.Event.Seq, TimeNanos: nanos,
				Actor: a.Event.Actor, Datastore: a.Event.Datastore,
				Service: a.Event.Service, Purpose: a.Event.Purpose,
				UserID: a.Event.UserID, Action: int(a.Event.Action),
				Fields: fmt.Sprint(a.Event.Fields), Denied: a.Event.Denied,
			},
		}
	}
	return out
}

// TestClusterSingleNodeEquivalenceProperty is the distribution-independence
// property: for random scenarios and event streams, a cluster of N nodes —
// real HTTP/2 servers, binary frames, consistent-hash routing — produces
// exactly the per-user alerts and cursors of one single-process monitor fed
// the same stream directly. This extends the PR 6 shard-independence
// property across the wire path.
func TestClusterSingleNodeEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP servers per round")
	}
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		s := scenario.Draw(seed)
		p, err := s.Generate()
		if err != nil {
			return err
		}
		users := make([]string, len(s.Profiles))
		for i, profile := range s.Profiles {
			users[i] = profile.ID
		}
		perUser := 1 + (64+len(users)-1)/len(users)
		stream := synth.RandomEventStream(rng, p, users, perUser)

		direct, err := runtime.NewMonitor(p, runtime.Config{})
		if err != nil {
			return err
		}
		for _, profile := range s.Profiles {
			if err := direct.RegisterUser(profile); err != nil {
				return err
			}
		}
		direct.IngestBatch(stream)

		nodes := 1 + rng.Intn(3)
		c, err := StartLocal(p, nodes, NodeConfig{}, RouterConfig{
			// Small frames plus an occasional >1 window exercise the
			// multi-frame path; per-user order survives any window because
			// each user's events ride one sender's FIFO.
			BatchEvents: 8,
			MaxInFlight: 1 + rng.Intn(2),
		})
		if err != nil {
			return err
		}
		defer c.Stop(context.Background())
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := c.Router.Register(ctx, s.Profiles); err != nil {
			return err
		}
		if err := c.Router.SendBatch(ctx, stream); err != nil {
			return err
		}
		if err := c.Quiesce(ctx); err != nil {
			return err
		}

		ring := c.Router.Ring()
		byName := make(map[string]*Node, len(c.Nodes))
		for _, n := range c.Nodes {
			byName[n.Name()] = n
		}
		for _, id := range users {
			owner := byName[ring.Owner(id)].Monitor()
			gotAlerts := stripAlerts(owner.AlertsFor(id))
			wantAlerts := stripAlerts(direct.AlertsFor(id))
			if !reflect.DeepEqual(gotAlerts, wantAlerts) {
				return fmt.Errorf("seed %d: alerts for user %s differ across %d nodes:\ncluster: %+v\ndirect:  %+v",
					seed, id, nodes, gotAlerts, wantAlerts)
			}
			gotCursor, ok1 := owner.CurrentState(id)
			wantCursor, ok2 := direct.CurrentState(id)
			if ok1 != ok2 || gotCursor != wantCursor {
				return fmt.Errorf("seed %d: cursor for user %s: cluster %v (%v), direct %v (%v)",
					seed, id, gotCursor, ok1, wantCursor, ok2)
			}
		}
		var clusterStats runtime.IngestStats
		for _, n := range c.Nodes {
			clusterStats.Merge(n.Stats().Ingest)
		}
		if clusterStats.Events != len(stream) {
			return fmt.Errorf("seed %d: cluster ingested %d of %d events", seed, clusterStats.Events, len(stream))
		}
		return nil
	})
}
