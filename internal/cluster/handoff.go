package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"privascope/internal/lts"
	"privascope/internal/runtime"
)

// The state-handoff wire format: a length-prefixed binary snapshot frame in
// the PSEF idiom (little-endian regardless of host, canonical first-occurrence
// string interning, whole-offset-array validation before any slicing). One
// frame carries the UserSnapshots moving to one node in a membership change;
// a /handoff request body is exactly one frame.
//
//	header (16 bytes):
//	  magic    [4]byte  "PSHO"
//	  version  uint16   HandoffVersion; newer versions are rejected, not guessed
//	  reserved uint16   must be zero
//	  length   uint32   total frame length in bytes, header included
//	  count    uint32   number of user snapshots
//	strings:
//	  scount   uint32   interned string count (entry 0 is always "")
//	  offsets  [scount+1]uint32  monotone offsets into the blob
//	  blob     [...]byte         concatenated string bytes
//	snapshots (count records):
//	  user     uint32   string ref (must not be "")
//	  state    uint32   string ref (the LTS state ID)
//	  applied  uint64   cumulative events applied (must fit int64)
//	  alerts   uint64   cumulative alert cursor (must fit int64)
//	  defsens  float64  profile default sensitivity, in [0,1]
//	  nsvc     uint16   consented-service count
//	  nsens    uint16   explicit-sensitivity count
//	  services [nsvc]uint32            string refs, profile order
//	  sens     [nsens]{uint32,float64} field ref + σ(d), sorted by field name
//
// Sensitivities are a Go map on the profile, so the encoder sorts them by
// field name to keep encoding deterministic: encoding the same snapshot set
// twice is byte-identical, and decode∘encode is a fixpoint — the property
// FuzzHandoffDecode pins. The decoder validates every structural invariant
// (bounds, monotone offsets, sorted unique sensitivity fields, finite values
// in [0,1]) before building a snapshot; semantic validation against the model
// (does the state exist?) is the importing monitor's job.

// HandoffVersion is the wire format written by EncodeHandoff.
const HandoffVersion = 1

// handoffMagic identifies a privascope state-handoff frame.
const handoffMagic = "PSHO"

const (
	handoffHeaderSize = 16
	// snapshotFixedSize is the fixed part of one snapshot record: user(4)
	// state(4) applied(8) alerts(8) defsens(8) nsvc(2) nsens(2).
	snapshotFixedSize = 36
)

// MaxHandoffBytes bounds a single handoff frame, like MaxFrameBytes bounds an
// event frame: an adversarial length prefix can never force a huge
// allocation.
const MaxHandoffBytes = 8 << 20

// MaxHandoffUsers bounds the snapshots per frame; membership changes move
// more users in multiple frames.
const MaxHandoffUsers = 1 << 16

// ErrHandoffVersion marks a structurally plausible handoff frame written by a
// newer format version.
var ErrHandoffVersion = errors.New("cluster: handoff frame written by a newer format version")

// badHandoff builds a handoff decode error.
func badHandoff(format string, args ...any) error {
	return fmt.Errorf("cluster: invalid handoff frame: "+format, args...)
}

// EncodeHandoff encodes the snapshots as one handoff frame.
func EncodeHandoff(snaps []runtime.UserSnapshot) ([]byte, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("cluster: refusing to encode an empty handoff frame")
	}
	if len(snaps) > MaxHandoffUsers {
		return nil, fmt.Errorf("cluster: %d snapshots exceed the %d-user handoff bound", len(snaps), MaxHandoffUsers)
	}
	enc := frameEncoder{intern: make(map[string]uint32, 64)}
	enc.ref("")

	// First pass: validate, intern in canonical first-occurrence order
	// (sensitivity fields sorted — map order must not leak into the bytes)
	// and size the record section.
	sensFields := make([][]string, len(snaps))
	recordsSize := 0
	for i := range snaps {
		s := &snaps[i]
		if s.Profile.ID == "" {
			return nil, fmt.Errorf("cluster: snapshot %d has no user ID", i)
		}
		if s.Applied < 0 || s.Alerts < 0 {
			return nil, fmt.Errorf("cluster: snapshot of user %q has negative cursors (applied %d, alerts %d)",
				s.Profile.ID, s.Applied, s.Alerts)
		}
		if err := s.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: snapshot of user %q: %w", s.Profile.ID, err)
		}
		if len(s.Profile.ConsentedServices) > math.MaxUint16 || len(s.Profile.Sensitivities) > math.MaxUint16 {
			return nil, fmt.Errorf("cluster: snapshot of user %q has too many services or sensitivities", s.Profile.ID)
		}
		enc.ref(s.Profile.ID)
		enc.ref(string(s.State))
		for _, svc := range s.Profile.ConsentedServices {
			enc.ref(svc)
		}
		fields := make([]string, 0, len(s.Profile.Sensitivities))
		for f := range s.Profile.Sensitivities {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			enc.ref(f)
		}
		sensFields[i] = fields
		recordsSize += snapshotFixedSize + 4*len(s.Profile.ConsentedServices) + 12*len(fields)
	}
	blobSize := 0
	for _, s := range enc.strs {
		blobSize += len(s)
	}
	total := handoffHeaderSize + 4 + 4*(len(enc.strs)+1) + blobSize + recordsSize
	if total > MaxHandoffBytes {
		return nil, fmt.Errorf("cluster: handoff frame of %d bytes exceeds the %d-byte bound", total, MaxHandoffBytes)
	}

	b := make([]byte, total)
	copy(b, handoffMagic)
	binary.LittleEndian.PutUint16(b[4:], HandoffVersion)
	binary.LittleEndian.PutUint32(b[8:], uint32(total))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(snaps)))
	p := handoffHeaderSize
	binary.LittleEndian.PutUint32(b[p:], uint32(len(enc.strs)))
	p += 4
	off := uint32(0)
	for _, s := range enc.strs {
		binary.LittleEndian.PutUint32(b[p:], off)
		p += 4
		off += uint32(len(s))
	}
	binary.LittleEndian.PutUint32(b[p:], off)
	p += 4
	for _, s := range enc.strs {
		p += copy(b[p:], s)
	}
	for i := range snaps {
		s := &snaps[i]
		binary.LittleEndian.PutUint32(b[p:], enc.intern[s.Profile.ID])
		binary.LittleEndian.PutUint32(b[p+4:], enc.intern[string(s.State)])
		binary.LittleEndian.PutUint64(b[p+8:], uint64(s.Applied))
		binary.LittleEndian.PutUint64(b[p+16:], uint64(s.Alerts))
		binary.LittleEndian.PutUint64(b[p+24:], math.Float64bits(s.Profile.DefaultSensitivity))
		binary.LittleEndian.PutUint16(b[p+32:], uint16(len(s.Profile.ConsentedServices)))
		binary.LittleEndian.PutUint16(b[p+34:], uint16(len(sensFields[i])))
		p += snapshotFixedSize
		for _, svc := range s.Profile.ConsentedServices {
			binary.LittleEndian.PutUint32(b[p:], enc.intern[svc])
			p += 4
		}
		for _, f := range sensFields[i] {
			binary.LittleEndian.PutUint32(b[p:], enc.intern[f])
			binary.LittleEndian.PutUint64(b[p+4:], math.Float64bits(s.Profile.Sensitivities[f]))
			p += 12
		}
	}
	if p != total {
		return nil, fmt.Errorf("cluster: handoff encoder wrote %d of %d bytes", p, total)
	}
	return b, nil
}

// DecodeHandoff decodes exactly one handoff frame, rejecting trailing bytes.
// Decoded profiles own their storage (nothing aliases the input).
func DecodeHandoff(data []byte) ([]runtime.UserSnapshot, error) {
	if len(data) < handoffHeaderSize {
		return nil, badHandoff("%d bytes is shorter than the %d-byte header", len(data), handoffHeaderSize)
	}
	if string(data[:4]) != handoffMagic {
		return nil, badHandoff("bad magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version != HandoffVersion {
		if version > HandoffVersion {
			return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrHandoffVersion, version, HandoffVersion)
		}
		return nil, badHandoff("version %d", version)
	}
	if reserved := binary.LittleEndian.Uint16(data[6:]); reserved != 0 {
		return nil, badHandoff("reserved field is %#x, want 0", reserved)
	}
	total := int(binary.LittleEndian.Uint32(data[8:]))
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if total > MaxHandoffBytes {
		return nil, badHandoff("declared length %d exceeds the %d-byte bound", total, MaxHandoffBytes)
	}
	if total != len(data) {
		return nil, badHandoff("declared length %d, body is %d bytes", total, len(data))
	}
	if count == 0 || count > MaxHandoffUsers {
		return nil, badHandoff("snapshot count %d outside [1, %d]", count, MaxHandoffUsers)
	}
	b := data
	p := handoffHeaderSize

	// String table: validate the whole offset array before slicing the blob.
	if total-p < 4 {
		return nil, badHandoff("truncated string table")
	}
	scount := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if scount < 1 || scount > total/4 {
		return nil, badHandoff("string count %d", scount)
	}
	if total-p < 4*(scount+1) {
		return nil, badHandoff("truncated string offsets")
	}
	offsets := make([]uint32, scount+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(b[p:])
		p += 4
	}
	blobLen := total - p // upper bound: records still follow
	prev := uint32(0)
	for i, off := range offsets {
		if off < prev || int(off) > blobLen {
			return nil, badHandoff("string offset %d of %d is %d, outside [%d, %d]", i, scount+1, off, prev, blobLen)
		}
		prev = off
	}
	if offsets[0] != 0 || offsets[1] != 0 {
		return nil, badHandoff("string table entry 0 is not the empty string")
	}
	blob := string(b[p : p+int(offsets[scount])])
	p += int(offsets[scount])
	strs := make([]string, scount)
	for i := 0; i < scount; i++ {
		strs[i] = blob[offsets[i]:offsets[i+1]]
	}

	snaps := make([]runtime.UserSnapshot, count)
	str := func(ref uint32, what string, record int) (string, error) {
		if int(ref) >= scount {
			return "", badHandoff("snapshot %d %s ref %d out of range", record, what, ref)
		}
		return strs[ref], nil
	}
	for i := 0; i < count; i++ {
		if total-p < snapshotFixedSize {
			return nil, badHandoff("truncated snapshot %d of %d", i, count)
		}
		s := &snaps[i]
		var err error
		if s.Profile.ID, err = str(binary.LittleEndian.Uint32(b[p:]), "user", i); err != nil {
			return nil, err
		}
		if s.Profile.ID == "" {
			return nil, badHandoff("snapshot %d has an empty user ID", i)
		}
		var state string
		if state, err = str(binary.LittleEndian.Uint32(b[p+4:]), "state", i); err != nil {
			return nil, err
		}
		s.State = lts.StateID(state)
		applied := binary.LittleEndian.Uint64(b[p+8:])
		alerts := binary.LittleEndian.Uint64(b[p+16:])
		if applied > math.MaxInt64 || alerts > math.MaxInt64 {
			return nil, badHandoff("snapshot %d cursors overflow int64", i)
		}
		s.Applied, s.Alerts = int64(applied), int64(alerts)
		defsens := math.Float64frombits(binary.LittleEndian.Uint64(b[p+24:]))
		if !(defsens >= 0 && defsens <= 1) { // rejects NaN too
			return nil, badHandoff("snapshot %d default sensitivity %v outside [0,1]", i, defsens)
		}
		s.Profile.DefaultSensitivity = defsens
		nsvc := int(binary.LittleEndian.Uint16(b[p+32:]))
		nsens := int(binary.LittleEndian.Uint16(b[p+34:]))
		p += snapshotFixedSize
		if total-p < 4*nsvc+12*nsens {
			return nil, badHandoff("truncated service or sensitivity list of snapshot %d", i)
		}
		if nsvc > 0 {
			s.Profile.ConsentedServices = make([]string, nsvc)
			for v := 0; v < nsvc; v++ {
				if s.Profile.ConsentedServices[v], err = str(binary.LittleEndian.Uint32(b[p:]), "service", i); err != nil {
					return nil, err
				}
				p += 4
			}
		}
		if nsens > 0 {
			s.Profile.Sensitivities = make(map[string]float64, nsens)
			prevField := ""
			for v := 0; v < nsens; v++ {
				field, err := str(binary.LittleEndian.Uint32(b[p:]), "sensitivity field", i)
				if err != nil {
					return nil, err
				}
				if v > 0 && field <= prevField {
					return nil, badHandoff("snapshot %d sensitivity fields not sorted unique (%q after %q)", i, field, prevField)
				}
				prevField = field
				value := math.Float64frombits(binary.LittleEndian.Uint64(b[p+4:]))
				if !(value >= 0 && value <= 1) {
					return nil, badHandoff("snapshot %d sensitivity of %q is %v, outside [0,1]", i, field, value)
				}
				s.Profile.Sensitivities[field] = value
				p += 12
			}
		}
	}
	if p != total {
		return nil, badHandoff("%d bytes of padding after the last snapshot", total-p)
	}
	return snaps, nil
}
