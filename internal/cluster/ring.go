package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// HashUserID is the user-ID hash shared by the whole fleet: the same inline
// FNV-1a the monitor uses for its lock stripes (runtime.Monitor), so the ring
// partitions users with the hash the rest of the system already keys on, and
// a one-node ring degenerates to exactly today's single-process behaviour.
func HashUserID(userID string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(userID); i++ {
		h ^= uint32(userID[i])
		h *= prime32
	}
	return h
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint32
	node int32 // index into nodes
}

// Ring is an immutable consistent-hash ring partitioning user IDs across
// named nodes. Each node is placed on the circle at Replicas virtual points
// (hash of "name#replica"), and a user belongs to the first virtual point at
// or after HashUserID(userID), wrapping around. The construction gives the
// two classic guarantees the cluster properties pin down: the assignment is a
// pure function of the node *set* (any permutation of the node list builds
// the same ring), and adding or removing one node only moves the ~K/N users
// whose arc the node owns — every other user keeps its owner.
type Ring struct {
	nodes    []string // sorted, unique
	replicas int
	points   []ringPoint // sorted by (hash, node)
}

// DefaultReplicas is the virtual-node count per node when NewRing is given
// zero: enough points that node arcs even out to a few percent.
const DefaultReplicas = 128

// NewRing builds a ring over the node names (order-insensitive; duplicates
// and empty names are rejected) with the given number of virtual points per
// node (0 selects DefaultReplicas).
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
	}
	r := &Ring{nodes: sorted, replicas: replicas}
	r.points = make([]ringPoint, 0, len(sorted)*replicas)
	for i, n := range sorted {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: HashUserID(n + "#" + strconv.Itoa(v)),
				node: int32(i),
			})
		}
	}
	// Ties between virtual points of different nodes are broken by node
	// order, so the assignment stays deterministic and permutation-stable
	// even on hash collisions.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the ring's node names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size returns the number of nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Replicas returns the virtual-node count per node.
func (r *Ring) Replicas() int { return r.replicas }

// Owner returns the node owning the user ID.
func (r *Ring) Owner(userID string) string {
	return r.nodes[r.ownerIndex(HashUserID(userID))]
}

// ownerIndex finds the node of the first virtual point at or after h,
// wrapping past the top of the circle.
func (r *Ring) ownerIndex(h uint32) int32 {
	points := r.points
	i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	if i == len(points) {
		i = 0
	}
	return points[i].node
}

// WithNode returns a new ring with the node added (same replica count).
func (r *Ring) WithNode(node string) (*Ring, error) {
	return NewRing(append(r.Nodes(), node), r.replicas)
}

// WithoutNode returns a new ring with the node removed.
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	var rest []string
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	if len(rest) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: node %q is not in the ring", node)
	}
	return NewRing(rest, r.replicas)
}
