package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/risk"
	"privascope/internal/service"
)

// surgeryModel generates the healthcare case-study LTS once per test.
func surgeryModel(t testing.TB) *core.PrivacyLTS {
	t.Helper()
	p, err := core.Generate(casestudy.Surgery())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestNode(t testing.TB, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-node"
	}
	n, err := NewNode(surgeryModel(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func mustFrame(t testing.TB, events []service.Event) []byte {
	t.Helper()
	frame, err := EncodeFrame(events)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func postIngest(t testing.TB, n *Node, body []byte) (*httptest.ResponseRecorder, ingestResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, req)
	var ir ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ir); err != nil {
		t.Fatalf("ingest response %q is not JSON: %v", rec.Body.String(), err)
	}
	return rec, ir
}

func TestNodeIngestAppliesEvents(t *testing.T) {
	n := newTestNode(t, NodeConfig{})
	profile := casestudy.PatientProfile()
	if err := n.Monitor().RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	events := casestudy.MedicalServiceEvents(profile.ID)
	rec, ir := postIngest(t, n, mustFrame(t, events))
	if rec.Code != http.StatusAccepted || ir.Accepted != 1 {
		t.Fatalf("ingest: status %d, accepted %d; want 202, 1", rec.Code, ir.Accepted)
	}
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := n.Stats()
	if stats.Events != int64(len(events)) || stats.Ingest.Matched != len(events) {
		t.Fatalf("stats after ingest: %+v, want %d accepted and matched", stats, len(events))
	}
	if _, ok := n.Monitor().CurrentState(profile.ID); !ok {
		t.Fatal("user has no cursor after ingest")
	}
}

func TestNodeIngestRejectsMalformedFrames(t *testing.T) {
	n := newTestNode(t, NodeConfig{})
	rec, _ := postIngest(t, n, []byte("PSEFgarbage-that-is-not-a-frame"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed frame: status %d, want 400", rec.Code)
	}
	if n.Stats().DecodeErrors != 1 {
		t.Fatalf("decode errors = %d, want 1", n.Stats().DecodeErrors)
	}
}

func TestNodeBackpressure429(t *testing.T) {
	// A queue bound below the frame size forces deterministic admission
	// failure regardless of how fast the drain worker runs.
	n := newTestNode(t, NodeConfig{QueueEvents: 4, RetryAfter: 3 * time.Second})
	profile := casestudy.PatientProfile()
	if err := n.Monitor().RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	small := mustFrame(t, casestudy.MedicalServiceEvents(profile.ID)[:2])
	big := mustFrame(t, casestudy.MedicalServiceEvents(profile.ID))
	rec, ir := postIngest(t, n, append(append([]byte(nil), small...), big...))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("oversized second frame: status %d, want 429", rec.Code)
	}
	if ir.Accepted != 1 {
		t.Fatalf("429 reported %d accepted frames, want 1 (the client resumes there)", ir.Accepted)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
	if n.Stats().Rejected != 6 {
		t.Fatalf("rejected events = %d, want 6", n.Stats().Rejected)
	}
}

func TestNodeRegisterAndAlertsEndpoints(t *testing.T) {
	n := newTestNode(t, NodeConfig{})
	payload, err := json.Marshal([]risk.UserProfile{casestudy.PatientProfile()})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/register", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}

	// A denied operation raises an alert that must appear on /alerts.
	events := []service.Event{{
		Actor: casestudy.ActorNurse, Action: core.ActionRead, Datastore: casestudy.StoreEHR,
		UserID: casestudy.PatientProfile().ID, Fields: []string{casestudy.FieldDiagnosis}, Denied: true,
	}}
	if rec, ir := postIngest(t, n, mustFrame(t, events)); rec.Code != http.StatusAccepted || ir.Accepted != 1 {
		t.Fatalf("ingest: status %d accepted %d", rec.Code, ir.Accepted)
	}
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodGet, "/alerts", nil)
	rec = httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, req)
	var alerts []alertJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Kind != "denied-operation" {
		t.Fatalf("alerts = %+v, want one denied-operation", alerts)
	}
}

func TestNodeMetricsAndPprof(t *testing.T) {
	n := newTestNode(t, NodeConfig{})
	profile := casestudy.PatientProfile()
	if err := n.Monitor().RegisterUser(profile); err != nil {
		t.Fatal(err)
	}
	events := casestudy.MedicalServiceEvents(profile.ID)
	if rec, _ := postIngest(t, n, mustFrame(t, events)); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", rec.Code)
	}
	if err := n.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`privascope_node_events_total{node="test-node"} 6`,
		`privascope_node_frames_total{node="test-node"} 1`,
		`privascope_node_matched_events_total{node="test-node"} 6`,
		`privascope_node_queue_depth{node="test-node"} 0`,
		`privascope_node_alerts_total{node="test-node",kind="denied-operation"} 0`,
		"# TYPE privascope_node_events_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec = httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/: status %d", rec.Code)
	}
}
