package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"privascope/internal/runtime"
)

// This file is the live-membership layer: the Router's ring-change primitives
// (join, graceful leave, eviction of a dead node) and the Local cluster's
// orchestration on top of them, which moves per-user monitor state between
// nodes through the /handoff endpoint.
//
// Every change follows the same protocol under the router's exclusive
// membership lock, so the Send plane is frozen while ownership moves:
//
//  1. Seal: flush every live sender (cut partial frames, wait until every cut
//     frame is accepted or dropped). For an eviction the dead node's sender is
//     instead marked dead, and its undelivered frames are parked.
//  2. Handoff: export the moved users' snapshots from their old owners and
//     import them on the new ones (the caller-supplied callback).
//  3. Swap: install the new ring and increment the epoch.
//  4. Re-route (eviction only): decode the dead sender's parked frames, skip
//     the prefix its stream cursor proves already applied, and route the rest
//     to the ring successors — in-flight events are re-routed, never dropped.

// HandoffReason values for the HeaderHandoffReason label.
const (
	ReasonRebalance = "rebalance"
	ReasonFailover  = "failover"
)

// AddNode joins a node to the ring at a new epoch. The handoff callback runs
// after the fleet is sealed and before the ring swap; it receives the old and
// new rings and is responsible for moving the users whose owner changes.
func (r *Router) AddNode(ctx context.Context, name, url string, handoff func(oldRing, newRing *Ring) error) error {
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	if _, ok := r.senders[name]; ok {
		return fmt.Errorf("cluster: node %q already in the ring", name)
	}
	if url == "" {
		return fmt.Errorf("cluster: node %q has no URL", name)
	}
	oldRing := r.ring.Load()
	newRing, err := oldRing.WithNode(name)
	if err != nil {
		return err
	}
	if err := r.flushSealed(ctx, ""); err != nil {
		return err
	}
	if handoff != nil {
		if err := handoff(oldRing, newRing); err != nil {
			return fmt.Errorf("cluster: handoff to %q: %w", name, err)
		}
	}
	r.startSender(name, url)
	r.ring.Store(newRing)
	r.epoch.Add(1)
	return nil
}

// RemoveNode gracefully retires a node: its sender finishes delivering
// everything it owes, the handoff callback moves the node's users to their
// ring successors, and the ring is swapped at a new epoch. The last node
// cannot be removed.
func (r *Router) RemoveNode(ctx context.Context, name string, handoff func(oldRing, newRing *Ring) error) error {
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	s, ok := r.senders[name]
	if !ok {
		return fmt.Errorf("cluster: node %q not in the ring", name)
	}
	oldRing := r.ring.Load()
	newRing, err := oldRing.WithoutNode(name)
	if err != nil {
		return err
	}
	if err := r.flushSealed(ctx, ""); err != nil {
		return err
	}
	if handoff != nil {
		if err := handoff(oldRing, newRing); err != nil {
			return fmt.Errorf("cluster: handoff from %q: %w", name, err)
		}
	}
	delete(r.senders, name)
	close(s.frames)
	r.ring.Store(newRing)
	r.epoch.Add(1)
	return nil
}

// EvictNode removes a dead node from the ring. Its sender is marked dead so
// in-flight delivery attempts abort and park their frames; the handoff
// callback fails the node's users over to their ring successors; and the
// parked frames — minus the prefix the dead node's stream cursor (read via
// the cursor callback) proves it already applied — are re-routed under the
// new ring. Combined with the receiving side's stream-offset deduplication
// this makes eviction lose nothing and duplicate nothing, whatever the crash
// timing.
func (r *Router) EvictNode(ctx context.Context, name string, handoff func(oldRing, newRing *Ring) error, cursor func(stream string) int64) error {
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	s, ok := r.senders[name]
	if !ok {
		return fmt.Errorf("cluster: node %q not in the ring", name)
	}
	oldRing := r.ring.Load()
	newRing, err := oldRing.WithoutNode(name)
	if err != nil {
		return err
	}
	s.markDead()
	if err := r.waitSettled(ctx, s); err != nil {
		return err
	}
	if err := r.flushSealed(ctx, name); err != nil {
		return err
	}
	if handoff != nil {
		if err := handoff(oldRing, newRing); err != nil {
			return fmt.Errorf("cluster: failover from %q: %w", name, err)
		}
	}
	delete(r.senders, name)
	close(s.frames)
	r.ring.Store(newRing)
	r.epoch.Add(1)

	// Re-route what the dead node never applied. Frames below its stream
	// cursor were applied before it died (their responses may have been
	// lost); replaying them would double-count, so they are skipped.
	next := int64(0)
	if cursor != nil {
		next = cursor(r.streamFor(name))
	}
	s.mu.Lock()
	parked := s.parked
	s.parked = nil
	buffered := s.buf
	s.buf = nil
	s.mu.Unlock()
	for _, f := range parked {
		if f.idx < next {
			r.failoverSkip.Add(1)
			continue
		}
		batch, err := NewFrameReader(bytes.NewReader(f.data)).Read()
		if err != nil {
			return fmt.Errorf("cluster: re-decoding parked frame %d: %w", f.idx, err)
		}
		for _, ev := range batch {
			if err := r.route(ctx, ev); err != nil {
				return err
			}
		}
		r.rerouted.Add(int64(len(batch)))
	}
	for _, ev := range buffered {
		if err := r.route(ctx, ev); err != nil {
			return err
		}
	}
	r.rerouted.Add(int64(len(buffered)))
	return nil
}

// waitSettled waits until a dead sender's loop has resolved every queued
// frame (parked them, since the sender is dead).
func (r *Router) waitSettled(ctx context.Context, s *nodeSender) error {
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for s.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// AddNode starts a fresh node + server over the cluster's model and joins it
// to the ring, live: users whose ownership moves are handed off before the
// ring swap, and no in-flight event is dropped. It returns the new node.
func (c *Local) AddNode(ctx context.Context) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.nodeCfg
	cfg.Name = fmt.Sprintf("node%d", c.nextNode)
	node, err := NewNode(c.model, cfg)
	if err != nil {
		return nil, err
	}
	srv, err := StartNodeServer(node, "")
	if err != nil {
		node.Close()
		return nil, err
	}
	c.joining = &joiningNode{name: cfg.Name, url: srv.URL()}
	err = c.Router.AddNode(ctx, cfg.Name, srv.URL(), func(oldRing, newRing *Ring) error {
		return c.rebalanceLocked(ctx, newRing, ReasonRebalance, nil)
	})
	c.joining = nil
	if err != nil {
		_ = srv.Stop(ctx)
		node.Close()
		return nil, err
	}
	c.nextNode++
	c.Nodes = append(c.Nodes, node)
	c.Servers = append(c.Servers, srv)
	return node, nil
}

// RemoveNode gracefully retires the named node: the router finishes its
// deliveries, the node's users are handed off to their ring successors, and
// its server is stopped. The node's monitor is retained so its alert history
// still counts in Alerts.
func (c *Local) RemoveNode(ctx context.Context, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.indexOfLocked(name)
	if i < 0 {
		return fmt.Errorf("cluster: node %q not in the cluster", name)
	}
	node := c.Nodes[i]
	node.BeginDrain()
	err := c.Router.RemoveNode(ctx, name, func(oldRing, newRing *Ring) error {
		return c.rebalanceLocked(ctx, newRing, ReasonRebalance, node)
	})
	if err != nil {
		return err
	}
	c.detachLocked(i)
	if err := c.Servers[i].Stop(ctx); err != nil {
		c.dropServerLocked(i)
		return err
	}
	c.dropServerLocked(i)
	node.Close()
	return nil
}

// EvictNode fails the named node over: the router parks its in-flight
// frames, the node's users move to their ring successors from their last
// snapshot (the node is in-process, so its monitor is still readable even
// when its server is unreachable), and the parked frames the node never
// applied are re-routed. Its alert history is retained.
func (c *Local) EvictNode(ctx context.Context, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.indexOfLocked(name)
	if i < 0 {
		return fmt.Errorf("cluster: node %q not in the cluster", name)
	}
	node := c.Nodes[i]
	err := c.Router.EvictNode(ctx, name,
		func(oldRing, newRing *Ring) error {
			return c.rebalanceLocked(ctx, newRing, ReasonFailover, node)
		},
		node.StreamCursor,
	)
	if err != nil {
		return err
	}
	c.detachLocked(i)
	// The server may already be gone (that is usually why we are here);
	// stopping it again is harmless and its error carries no information.
	stopCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	_ = c.Servers[i].Stop(stopCtx)
	cancel()
	c.dropServerLocked(i)
	node.Close()
	return nil
}

// indexOfLocked finds a live node by name.
func (c *Local) indexOfLocked(name string) int {
	for i, n := range c.Nodes {
		if n.Name() == name {
			return i
		}
	}
	return -1
}

// detachLocked moves Nodes[i] to the retired list (its monitor keeps the
// alert history the fleet already raised).
func (c *Local) detachLocked(i int) {
	c.retired = append(c.retired, c.Nodes[i])
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
}

// dropServerLocked removes Servers[i].
func (c *Local) dropServerLocked(i int) {
	c.Servers = append(c.Servers[:i], c.Servers[i+1:]...)
}

// rebalanceLocked moves every user whose owner under newRing differs from
// the node currently holding them. With only == nil all live nodes are
// scanned (a join pulls users from everywhere); otherwise just that node (a
// leave or failover pushes its whole population out). Sources are quiesced
// first so each exported snapshot reflects every event the node accepted.
func (c *Local) rebalanceLocked(ctx context.Context, newRing *Ring, reason string, only *Node) error {
	sources := c.Nodes
	if only != nil {
		sources = []*Node{only}
	}
	for _, src := range sources {
		if err := src.Quiesce(ctx); err != nil {
			return err
		}
		moved := make(map[string][]runtime.UserSnapshot)
		for _, userID := range src.Monitor().Users() {
			newOwner := newRing.Owner(userID)
			if newOwner == src.Name() {
				continue
			}
			snap, ok := src.Monitor().ExportUser(userID)
			if !ok {
				return fmt.Errorf("cluster: user %q vanished from %q during rebalance", userID, src.Name())
			}
			moved[newOwner] = append(moved[newOwner], snap)
		}
		for owner, snaps := range moved {
			url, err := c.urlOfLocked(owner)
			if err != nil {
				return err
			}
			if err := c.sendHandoff(ctx, url, snaps, reason); err != nil {
				return err
			}
			// Only drop the users from the source once the new owner has
			// them: a failed handoff leaves the cluster exactly as it was.
			for _, snap := range snaps {
				src.Monitor().RemoveUser(snap.Profile.ID)
			}
			src.handoffOut.Add(int64(len(snaps)))
		}
	}
	return nil
}

// urlOfLocked resolves a live node's base URL. A joining node is not yet in
// c.Nodes when its handoff runs, so the router's sender table cannot be the
// source of truth here; the Servers slice is.
func (c *Local) urlOfLocked(name string) (string, error) {
	for i, n := range c.Nodes {
		if n.Name() == name {
			return c.Servers[i].URL(), nil
		}
	}
	if c.joining != nil && c.joining.name == name {
		return c.joining.url, nil
	}
	return "", fmt.Errorf("cluster: no server for node %q", name)
}

// sendHandoff posts one PSHO frame, retrying a few times: imports are
// idempotent, so redelivery after a lost response converges.
func (c *Local) sendHandoff(ctx context.Context, url string, snaps []runtime.UserSnapshot, reason string) error {
	frame, err := EncodeHandoff(snaps)
	if err != nil {
		return err
	}
	var lastErr error
	delay := 10 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/handoff", bytes.NewReader(frame))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(HeaderHandoffReason, reason)
		resp, err := c.Router.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("handoff returned %s: %s", resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode == http.StatusUnprocessableEntity {
			return lastErr // validation failure will not improve on retry
		}
	}
	return lastErr
}
