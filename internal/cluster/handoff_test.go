package cluster

import (
	"encoding/binary"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"privascope/internal/casestudy"
	"privascope/internal/risk"
	"privascope/internal/runtime"
)

func handoffSnaps() []runtime.UserSnapshot {
	p1 := casestudy.PatientProfile()
	p2 := risk.UserProfile{
		ID:                 "user-2",
		ConsentedServices:  []string{"svc-a", "svc-b"},
		Sensitivities:      map[string]float64{"zeta": 0.9, "alpha": 0.1},
		DefaultSensitivity: 0.5,
	}
	return []runtime.UserSnapshot{
		{Profile: p1, State: "s0", Applied: 7, Alerts: 2},
		{Profile: p2, State: "s21", Applied: 0, Alerts: 0},
	}
}

func TestHandoffRoundTrip(t *testing.T) {
	snaps := handoffSnaps()
	frame, err := EncodeHandoff(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandoff(frame)
	if err != nil {
		t.Fatal(err)
	}
	// The codec normalizes empty slices/maps to nil; compare modulo that.
	want := snaps
	for i := range want {
		if len(want[i].Profile.ConsentedServices) == 0 {
			want[i].Profile.ConsentedServices = nil
		}
		if len(want[i].Profile.Sensitivities) == 0 {
			want[i].Profile.Sensitivities = nil
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// Deterministic encoding: same input, identical bytes (the sensitivity
	// map must not leak iteration order).
	for trial := 0; trial < 8; trial++ {
		again, err := EncodeHandoff(handoffSnaps())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(frame) {
			t.Fatal("encoding the same snapshots twice produced different bytes")
		}
	}
}

func TestHandoffDecodeRejects(t *testing.T) {
	good, err := EncodeHandoff(handoffSnaps())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", good[:8]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"old version", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[4:], 0); return b })},
		{"reserved set", mutate(func(b []byte) []byte { b[6] = 1; return b })},
		{"length mismatch", mutate(func(b []byte) []byte { return append(b, 0) })},
		{"declared length short", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], uint32(len(b)-1))
			return b[:len(b)-1+1] // length field lies relative to the body
		})},
		{"zero count", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:], 0); return b })},
		{"huge count", mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:], 1<<20); return b })},
		{"offset out of bounds", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[handoffHeaderSize+4:], 1<<30)
			return b
		})},
		{"nan default sensitivity", mutate(func(b []byte) []byte {
			// The first snapshot record starts right after the string section;
			// find it by re-encoding with a poisoned value instead of byte
			// surgery: NaN at defsens offset of record 0.
			snaps, err := DecodeHandoff(b)
			if err != nil {
				t.Fatal(err)
			}
			_ = snaps
			// Walk: header, scount, offsets, blob — reuse the decoder's
			// arithmetic via the string count field.
			p := handoffHeaderSize
			scount := int(binary.LittleEndian.Uint32(b[p:]))
			p += 4 + 4*(scount+1)
			end := binary.LittleEndian.Uint32(b[p-4:])
			p += int(end)
			binary.LittleEndian.PutUint64(b[p+24:], math.Float64bits(math.NaN()))
			return b
		})},
	}
	for _, tc := range cases {
		if _, err := DecodeHandoff(tc.data); err == nil {
			t.Errorf("%s: decoder accepted a corrupt frame", tc.name)
		}
	}
	if _, err := DecodeHandoff(mutate(func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[4:], HandoffVersion+1)
		return b
	})); !errors.Is(err, ErrHandoffVersion) {
		t.Errorf("newer version: err = %v, want ErrHandoffVersion", err)
	}
	if _, err := EncodeHandoff(nil); err == nil {
		t.Error("encoder accepted an empty snapshot set")
	}
}

// TestHandoffEndpoint drives /handoff over HTTP: a valid frame imports, the
// node counts it, a frame for an unknown state is rejected with 422, and a
// duplicated delivery (retry after a lost response) is idempotent.
func TestHandoffEndpoint(t *testing.T) {
	node := newTestNode(t, NodeConfig{})
	profile := casestudy.PatientProfile()
	snap := runtime.UserSnapshot{Profile: profile, State: surgeryModel(t).InitialState()}
	frame, err := EncodeHandoff([]runtime.UserSnapshot{snap})
	if err != nil {
		t.Fatal(err)
	}
	post := func(body []byte, reason string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/handoff", strings.NewReader(string(body)))
		if reason != "" {
			req.Header.Set(HeaderHandoffReason, reason)
		}
		w := httptest.NewRecorder()
		node.Handler().ServeHTTP(w, req)
		return w
	}
	if w := post(frame, ReasonFailover); w.Code != http.StatusOK {
		t.Fatalf("handoff returned %d: %s", w.Code, w.Body)
	}
	if w := post(frame, ReasonFailover); w.Code != http.StatusOK {
		t.Fatalf("duplicate handoff returned %d: %s", w.Code, w.Body)
	}
	s := node.Stats()
	if s.HandoffInUsers != 2 || s.FailoverInUsers != 2 {
		t.Fatalf("stats = %+v, want 2 handoff-in and 2 failover-in", s)
	}
	if got := node.Monitor().Users(); len(got) != 1 || got[0] != profile.ID {
		t.Fatalf("users after duplicate import = %v", got)
	}
	bad := snap
	bad.State = "no-such-state"
	badFrame, err := EncodeHandoff([]runtime.UserSnapshot{bad})
	if err != nil {
		t.Fatal(err)
	}
	if w := post(badFrame, ""); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown-state handoff returned %d, want 422", w.Code)
	}
	if w := post([]byte("not a frame"), ""); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage handoff returned %d, want 400", w.Code)
	}
}
