package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"privascope/internal/core"
	"privascope/internal/service"
)

// The ingest wire format: a length-prefixed binary event frame, little-endian
// regardless of host (the internal/modelstore convention). One frame carries
// one batch of service.Events; an ingest request body is a stream of frames.
//
//	header (16 bytes):
//	  magic    [4]byte  "PSEF"
//	  version  uint16   FrameVersion; newer versions are rejected, not guessed
//	  reserved uint16   must be zero
//	  length   uint32   total frame length in bytes, header included
//	  count    uint32   number of events
//	strings:
//	  scount   uint32   interned string count (entry 0 is always "")
//	  offsets  [scount+1]uint32  monotone offsets into the blob
//	  blob     [...]byte         concatenated string bytes
//	events (count records):
//	  seq      int64
//	  time     int64   UnixNano; 0 encodes the zero time
//	  actor, datastore, service, purpose, user  uint32  string refs
//	  action   uint8   core.Action (must be valid)
//	  denied   uint8   0 or 1
//	  nfields  uint16
//	  fields   [nfields]uint32   string refs
//
// Strings are interned in canonical first-occurrence order, so encoding the
// same batch twice is byte-identical. The decoder is hardened against
// untrusted input: the whole offset array is validated in one pass before any
// string is sliced (monotone, every bound inside the blob — the offset-spike
// lesson from the modelstore decoder), every string ref is bounds-checked,
// and any malformed frame yields an error, never a panic.

// FrameVersion is the wire format written by EncodeFrame. DecodeFrame rejects
// frames from a newer version with ErrFrameVersion instead of misreading
// them.
const FrameVersion = 1

// frameMagic identifies a privascope event frame.
const frameMagic = "PSEF"

const (
	frameHeaderSize = 16
	// eventFixedSize is the fixed part of one event record: seq(8) time(8)
	// actor(4) datastore(4) service(4) purpose(4) user(4) action(1) denied(1)
	// nfields(2).
	eventFixedSize = 40
)

// MaxFrameBytes bounds a single frame; the decoder rejects anything whose
// declared length exceeds it before reading further, so an adversarial
// length prefix can never force a huge allocation.
const MaxFrameBytes = 8 << 20

// MaxFrameEvents bounds the events per frame.
const MaxFrameEvents = 1 << 16

// ErrFrameVersion marks a structurally plausible frame written by a newer
// format version.
var ErrFrameVersion = errors.New("cluster: frame written by a newer format version")

// badFramef builds a decode error; every malformed-frame path funnels through
// it so callers can rely on the "cluster:" prefix.
func badFramef(format string, args ...any) error {
	return fmt.Errorf("cluster: invalid frame: "+format, args...)
}

// frameEncoder holds the reusable interning state of one frame writer. The
// zero value is ready; a Router keeps one per node so the intern map's
// storage survives across flushes.
type frameEncoder struct {
	intern map[string]uint32
	strs   []string
}

// ref interns a string, returning its table index.
func (e *frameEncoder) ref(s string) uint32 {
	if i, ok := e.intern[s]; ok {
		return i
	}
	i := uint32(len(e.strs))
	e.intern[s] = i
	e.strs = append(e.strs, s)
	return i
}

// appendFrame encodes one frame onto dst.
func (e *frameEncoder) appendFrame(dst []byte, events []service.Event) ([]byte, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("cluster: refusing to encode an empty frame")
	}
	if len(events) > MaxFrameEvents {
		return nil, fmt.Errorf("cluster: %d events exceed the %d-event frame bound", len(events), MaxFrameEvents)
	}
	if e.intern == nil {
		e.intern = make(map[string]uint32, 64)
	} else {
		clear(e.intern)
	}
	e.strs = e.strs[:0]
	e.ref("") // entry 0 is always the empty string

	// First pass: intern in canonical first-occurrence order and size the
	// event section.
	eventsSize := 0
	for i := range events {
		ev := &events[i]
		if len(ev.Fields) > MaxFrameEvents {
			return nil, fmt.Errorf("cluster: event %d has %d fields, exceeding the frame bound", i, len(ev.Fields))
		}
		if !ev.Action.Valid() {
			return nil, fmt.Errorf("cluster: event %d has invalid action %d", i, ev.Action)
		}
		e.ref(ev.Actor)
		e.ref(ev.Datastore)
		e.ref(ev.Service)
		e.ref(ev.Purpose)
		e.ref(ev.UserID)
		for _, f := range ev.Fields {
			e.ref(f)
		}
		eventsSize += eventFixedSize + 4*len(ev.Fields)
	}
	blobSize := 0
	for _, s := range e.strs {
		blobSize += len(s)
	}
	total := frameHeaderSize + 4 + 4*(len(e.strs)+1) + blobSize + eventsSize
	if total > MaxFrameBytes {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds the %d-byte bound", total, MaxFrameBytes)
	}

	base := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[base:]
	copy(b, frameMagic)
	binary.LittleEndian.PutUint16(b[4:], FrameVersion)
	binary.LittleEndian.PutUint32(b[8:], uint32(total))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(events)))
	p := frameHeaderSize
	binary.LittleEndian.PutUint32(b[p:], uint32(len(e.strs)))
	p += 4
	off := uint32(0)
	for _, s := range e.strs {
		binary.LittleEndian.PutUint32(b[p:], off)
		p += 4
		off += uint32(len(s))
	}
	binary.LittleEndian.PutUint32(b[p:], off)
	p += 4
	for _, s := range e.strs {
		p += copy(b[p:], s)
	}
	for i := range events {
		ev := &events[i]
		binary.LittleEndian.PutUint64(b[p:], uint64(ev.Seq))
		p += 8
		var nanos int64
		if !ev.Time.IsZero() {
			nanos = ev.Time.UnixNano()
		}
		binary.LittleEndian.PutUint64(b[p:], uint64(nanos))
		p += 8
		for _, s := range [...]string{ev.Actor, ev.Datastore, ev.Service, ev.Purpose, ev.UserID} {
			binary.LittleEndian.PutUint32(b[p:], e.intern[s])
			p += 4
		}
		b[p] = byte(ev.Action)
		denied := byte(0)
		if ev.Denied {
			denied = 1
		}
		b[p+1] = denied
		binary.LittleEndian.PutUint16(b[p+2:], uint16(len(ev.Fields)))
		p += 4
		for _, f := range ev.Fields {
			binary.LittleEndian.PutUint32(b[p:], e.intern[f])
			p += 4
		}
	}
	if p != total {
		return nil, fmt.Errorf("cluster: frame encoder wrote %d of %d bytes", p, total)
	}
	return dst, nil
}

// EncodeFrame encodes one batch of events as a single frame.
func EncodeFrame(events []service.Event) ([]byte, error) {
	var e frameEncoder
	return e.appendFrame(nil, events)
}

// DecodeFrame decodes exactly one frame, rejecting trailing bytes. Time
// round-trips at UnixNano resolution (the zero time stays zero); decoded
// strings alias one per-frame copy of the blob, so events share storage.
func DecodeFrame(data []byte) ([]service.Event, error) {
	events, n, err := decodeFrame(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, badFramef("%d trailing bytes after the frame", len(data)-n)
	}
	return events, nil
}

// decodeFrame decodes the frame at the head of data, returning the events
// and the frame's total length.
func decodeFrame(data []byte) ([]service.Event, int, error) {
	if len(data) < frameHeaderSize {
		return nil, 0, badFramef("%d bytes is shorter than the %d-byte header", len(data), frameHeaderSize)
	}
	if string(data[:4]) != frameMagic {
		return nil, 0, badFramef("bad magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version != FrameVersion {
		if version > FrameVersion {
			return nil, 0, fmt.Errorf("%w: version %d, this build reads %d", ErrFrameVersion, version, FrameVersion)
		}
		return nil, 0, badFramef("version %d", version)
	}
	if reserved := binary.LittleEndian.Uint16(data[6:]); reserved != 0 {
		return nil, 0, badFramef("reserved field is %#x, want 0", reserved)
	}
	total := int(binary.LittleEndian.Uint32(data[8:]))
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if total > MaxFrameBytes {
		return nil, 0, badFramef("declared length %d exceeds the %d-byte bound", total, MaxFrameBytes)
	}
	if total < frameHeaderSize || total > len(data) {
		return nil, 0, badFramef("declared length %d outside [%d, %d]", total, frameHeaderSize, len(data))
	}
	if count == 0 || count > MaxFrameEvents {
		return nil, 0, badFramef("event count %d outside [1, %d]", count, MaxFrameEvents)
	}
	b := data[:total]
	p := frameHeaderSize

	// String table: validate the whole offset array before slicing the blob.
	if total-p < 4 {
		return nil, 0, badFramef("truncated string table")
	}
	scount := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if scount < 1 || scount > total/4 {
		return nil, 0, badFramef("string count %d", scount)
	}
	if total-p < 4*(scount+1) {
		return nil, 0, badFramef("truncated string offsets")
	}
	offsets := make([]uint32, scount+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(b[p:])
		p += 4
	}
	blobLen := total - p // upper bound: events still follow
	prev := uint32(0)
	for i, off := range offsets {
		if off < prev || int(off) > blobLen {
			return nil, 0, badFramef("string offset %d of %d is %d, outside [%d, %d]", i, scount+1, off, prev, blobLen)
		}
		prev = off
	}
	if offsets[0] != 0 || offsets[1] != 0 {
		return nil, 0, badFramef("string table entry 0 is not the empty string")
	}
	blob := string(b[p : p+int(offsets[scount])])
	p += int(offsets[scount])
	strs := make([]string, scount)
	for i := 0; i < scount; i++ {
		strs[i] = blob[offsets[i]:offsets[i+1]]
	}

	// Events: every string ref bounds-checked against the table.
	events := make([]service.Event, count)
	var fieldArena []string
	for i := 0; i < count; i++ {
		if total-p < eventFixedSize {
			return nil, 0, badFramef("truncated event %d of %d", i, count)
		}
		ev := &events[i]
		ev.Seq = int64(binary.LittleEndian.Uint64(b[p:]))
		if nanos := int64(binary.LittleEndian.Uint64(b[p+8:])); nanos != 0 {
			ev.Time = time.Unix(0, nanos).UTC()
		}
		refs := [5]uint32{}
		for r := range refs {
			refs[r] = binary.LittleEndian.Uint32(b[p+16+4*r:])
			if int(refs[r]) >= scount {
				return nil, 0, badFramef("event %d string ref %d out of range", i, refs[r])
			}
		}
		ev.Actor, ev.Datastore, ev.Service, ev.Purpose, ev.UserID =
			strs[refs[0]], strs[refs[1]], strs[refs[2]], strs[refs[3]], strs[refs[4]]
		action := core.Action(b[p+36])
		if !action.Valid() {
			return nil, 0, badFramef("event %d has invalid action %d", i, action)
		}
		ev.Action = action
		switch b[p+37] {
		case 0:
		case 1:
			ev.Denied = true
		default:
			return nil, 0, badFramef("event %d denied flag is %d", i, b[p+37])
		}
		nfields := int(binary.LittleEndian.Uint16(b[p+38:]))
		p += eventFixedSize
		if total-p < 4*nfields {
			return nil, 0, badFramef("truncated field list of event %d", i)
		}
		if nfields > 0 {
			if cap(fieldArena)-len(fieldArena) < nfields {
				fieldArena = make([]string, 0, max(4*nfields, 1024))
			}
			start := len(fieldArena)
			for f := 0; f < nfields; f++ {
				ref := binary.LittleEndian.Uint32(b[p:])
				p += 4
				if int(ref) >= scount {
					return nil, 0, badFramef("event %d field ref %d out of range", i, ref)
				}
				fieldArena = append(fieldArena, strs[ref])
			}
			ev.Fields = fieldArena[start:len(fieldArena):len(fieldArena)]
		}
	}
	if p != total {
		return nil, 0, badFramef("%d bytes of padding after the last event", total-p)
	}
	return events, total, nil
}

// FrameReader decodes a stream of frames from an io.Reader (an ingest request
// body). The read buffer is reused across frames, but decoded events never
// alias it — the decoder copies the string blob once per frame — so a batch
// may be retained (queued) after the next Read call.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader returns a reader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read decodes the next frame. It returns io.EOF at a clean end of stream;
// a stream truncated mid-frame returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Read() ([]service.Event, error) {
	if cap(fr.buf) < frameHeaderSize {
		fr.buf = make([]byte, frameHeaderSize, 64<<10)
	}
	header := fr.buf[:frameHeaderSize]
	if _, err := io.ReadFull(fr.r, header); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if string(header[:4]) != frameMagic {
		return nil, badFramef("bad magic %q", header[:4])
	}
	total := int(binary.LittleEndian.Uint32(header[8:]))
	if total > MaxFrameBytes {
		return nil, badFramef("declared length %d exceeds the %d-byte bound", total, MaxFrameBytes)
	}
	if total < frameHeaderSize {
		return nil, badFramef("declared length %d is shorter than the header", total)
	}
	if cap(fr.buf) < total {
		fr.buf = make([]byte, total)
	}
	frame := fr.buf[:total]
	copy(frame, header)
	if _, err := io.ReadFull(fr.r, frame[frameHeaderSize:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	events, _, err := decodeFrame(frame)
	return events, err
}
