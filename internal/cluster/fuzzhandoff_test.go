package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// handoffCorpusSeeds builds the committed seed inputs for the handoff
// decoder: a valid frame and the hostile shapes its validation paths must
// survive (truncation, future version, adversarial length prefix, corrupt
// offset array).
func handoffCorpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	valid, err := EncodeHandoff(handoffSnaps())
	if err != nil {
		t.Fatal(err)
	}
	futureVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(futureVersion[4:], HandoffVersion+1)
	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[8:], MaxHandoffBytes+1)
	badOffsets := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badOffsets[handoffHeaderSize+4:], 1<<30)
	return map[string][]byte{
		"valid":             valid,
		"truncated-header":  valid[:11],
		"truncated-records": valid[:len(valid)-5],
		"future-version":    futureVersion,
		"oversized-length":  oversized,
		"corrupt-offsets":   badOffsets,
	}
}

// FuzzHandoffDecode hammers the state-handoff decoder with arbitrary bytes:
// it must never panic, and any snapshot set it accepts must re-encode and
// re-decode to the same snapshots — decode∘encode is a fixpoint, which also
// pins the encoder's determinism (sorted sensitivity fields, canonical
// interning).
func FuzzHandoffDecode(f *testing.F) {
	for _, seed := range handoffCorpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snaps, err := DecodeHandoff(data)
		if err != nil {
			if snaps != nil {
				t.Fatalf("decode returned both snapshots and error %v", err)
			}
			return
		}
		reencoded, err := EncodeHandoff(snaps)
		if err != nil {
			t.Fatalf("re-encoding accepted snapshots failed: %v", err)
		}
		again, err := DecodeHandoff(reencoded)
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(snaps, again) {
			t.Fatalf("decode/encode/decode is not a fixpoint:\nfirst  %+v\nsecond %+v", snaps, again)
		}
	})
}

// TestHandoffFuzzCorpusCommitted keeps the committed handoff seed corpus in
// sync with the wire format, in the FuzzFrameDecode corpus idiom. Regenerate
// with CLUSTER_REGEN_CORPUS=1 after a deliberate format change.
func TestHandoffFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzHandoffDecode")
	seeds := handoffCorpusSeeds(t)
	if os.Getenv("CLUSTER_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus entry %s missing (regenerate with CLUSTER_REGEN_CORPUS=1): %v", name, err)
		}
		const header = "go test fuzz v1\n[]byte("
		s := string(raw)
		if !strings.HasPrefix(s, header) || !strings.HasSuffix(s, ")\n") {
			t.Fatalf("corpus entry %s is not in go-fuzz v1 form", name)
		}
		data, err := strconv.Unquote(s[len(header) : len(s)-2])
		if err != nil {
			t.Fatalf("corpus entry %s: %v", name, err)
		}
		if !bytes.Equal([]byte(data), want) {
			t.Fatalf("corpus entry %s is stale; regenerate with CLUSTER_REGEN_CORPUS=1", name)
		}
		_, decErr := DecodeHandoff([]byte(data))
		switch name {
		case "valid":
			if decErr != nil {
				t.Fatalf("valid corpus entry rejected: %v", decErr)
			}
		case "future-version":
			if !errors.Is(decErr, ErrHandoffVersion) {
				t.Fatalf("future-version corpus entry: %v, want ErrHandoffVersion", decErr)
			}
		default:
			if decErr == nil {
				t.Fatalf("corrupt corpus entry %s accepted", name)
			}
		}
	}
}
