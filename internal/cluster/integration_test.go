package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/core"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/service"
)

// goldenAlertLines are the three alerts of the privaserve healthcare replay
// (cmd/privaserve's golden transcript), formatted as privaserve prints them.
// The cluster must reproduce them exactly — same kinds, same messages — for
// every node count.
var goldenAlertLines = []string{
	`ALERT [denied-operation]: access-control denied read by "nurse" on ehr.[diagnosis]`,
	`ALERT [risk]: medium-risk disclosure event for user "patient-1": non-allowed actor "administrator" may read date_of_birth, diagnosis, medical_issues, name, treatment from datastore "ehr" although no declared flow requires it; most sensitive field "diagnosis" (impact 0.90/high, likelihood 0.15/low) => risk medium`,
	`ALERT [unmodelled-behaviour]: observed read of [diagnosis] by "researcher" on "ehr" has no matching transition from state s21; the design model and the running system disagree`,
}

// goldenTrace is the replay fixture of cmd/privaserve's golden test: the
// consented medical-service run, the administrator's risky read, unmodelled
// researcher behaviour, a denied operation, and one event for an
// unregistered user.
func goldenTrace() []service.Event {
	userID := casestudy.PatientProfile().ID
	return append(casestudy.MedicalServiceEvents(userID),
		service.Event{Actor: casestudy.ActorAdministrator, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorResearcher, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}},
		service.Event{Actor: casestudy.ActorNurse, Action: core.ActionRead, Datastore: casestudy.StoreEHR, UserID: userID,
			Fields: []string{casestudy.FieldDiagnosis}, Denied: true},
		service.Event{Actor: casestudy.ActorReceptionist, Action: core.ActionCollect, UserID: "someone-else",
			Fields: []string{casestudy.FieldName}},
	)
}

// alertLines formats alerts as privaserve prints them, sorted for a
// node-count-independent comparison.
func alertLines(alerts []runtime.Alert) []string {
	lines := make([]string, len(alerts))
	for i, a := range alerts {
		lines[i] = fmt.Sprintf("ALERT [%s]: %s", a.Kind, a.Message)
	}
	sort.Strings(lines)
	return lines
}

// TestClusterGoldenTraceAcrossNodeCounts replays the privaserve golden trace
// through a real 1-, 2- and 4-node cluster — h2c servers, binary frames, the
// consistent-hash router — and requires the merged alert stream to match the
// golden transcript's alerts for every node count.
func TestClusterGoldenTraceAcrossNodeCounts(t *testing.T) {
	p := surgeryModel(t)
	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			c, err := StartLocal(p, nodes, NodeConfig{}, RouterConfig{
				// A small batch threshold exercises multi-frame flushes even
				// on the ten-event trace.
				BatchEvents: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := c.Stop(context.Background()); err != nil {
					t.Errorf("Stop: %v", err)
				}
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := c.Router.Register(ctx, []risk.UserProfile{casestudy.PatientProfile()}); err != nil {
				t.Fatal(err)
			}
			if err := c.Router.SendBatch(ctx, goldenTrace()); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(ctx); err != nil {
				t.Fatal(err)
			}

			got := alertLines(c.Alerts())
			want := append([]string(nil), goldenAlertLines...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("cluster raised %d alerts, want %d:\n%v", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("alert %d:\n got %s\nwant %s", i, got[i], want[i])
				}
			}

			// The unregistered user's event is counted, not silently lost.
			var unregistered, events int
			for _, n := range c.Nodes {
				s := n.Stats()
				unregistered += s.Ingest.Unregistered
				events += s.Ingest.Events
			}
			if unregistered != 1 {
				t.Errorf("unregistered events = %d, want 1", unregistered)
			}
			if events != len(goldenTrace()) {
				t.Errorf("ingested events = %d, want %d", events, len(goldenTrace()))
			}

			// And the fleet's state matches a single-process monitor fed the
			// same trace directly.
			direct, err := runtime.NewMonitor(p, runtime.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := direct.RegisterUser(casestudy.PatientProfile()); err != nil {
				t.Fatal(err)
			}
			direct.IngestBatch(goldenTrace())
			if want := alertLines(direct.Alerts()); !equalStrings(got, want) {
				t.Errorf("cluster alerts differ from the direct monitor:\n got %v\nwant %v", got, want)
			}
			owner := c.Router.Ring().Owner(casestudy.PatientProfile().ID)
			for _, n := range c.Nodes {
				if n.Name() != owner {
					continue
				}
				gotCursor, ok1 := n.Monitor().CurrentState(casestudy.PatientProfile().ID)
				wantCursor, ok2 := direct.CurrentState(casestudy.PatientProfile().ID)
				if !ok1 || !ok2 || gotCursor != wantCursor {
					t.Errorf("owner cursor %v (%v) differs from direct monitor %v (%v)", gotCursor, ok1, wantCursor, ok2)
				}
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterServesHTTP2 pins the transport: the fleet speaks unencrypted
// HTTP/2 between router and nodes, not HTTP/1.1 with a new connection per
// flush.
func TestClusterServesHTTP2(t *testing.T) {
	node := newTestNode(t, NodeConfig{})
	srv, err := StartNodeServer(node, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(context.Background())
	client := h2cClient()
	defer client.CloseIdleConnections()
	resp, err := client.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ProtoMajor != 2 {
		t.Fatalf("healthz served over %s, want HTTP/2", resp.Proto)
	}
}

// TestRouterHonorsRetryAfter drives the router against a server that rejects
// the first ingest attempt with 429 + Retry-After and asserts the frame is
// retried and delivered, with the backpressure visible in the stats.
func TestRouterHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	var delivered atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"accepted":0,"error":"queue full"}`))
			return
		}
		fr := NewFrameReader(r.Body)
		accepted := 0
		for {
			batch, err := fr.Read()
			if err != nil {
				break
			}
			delivered.Add(int64(len(batch)))
			accepted++
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"accepted":` + strconv.Itoa(accepted) + `}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	router, err := NewRouter(RouterConfig{
		Nodes:       map[string]string{"only": srv.URL},
		BatchEvents: 4,
		HTTPClient:  srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	events := casestudy.MedicalServiceEvents("patient-1")
	if err := router.SendBatch(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != int64(len(events)) {
		t.Fatalf("delivered %d events, want %d", got, len(events))
	}
	stats := router.Stats()
	if stats.Rejected429 == 0 || stats.Retries == 0 {
		t.Fatalf("backpressure not visible in stats: %+v", stats)
	}
	if stats.Dropped != 0 {
		t.Fatalf("dropped %d frames", stats.Dropped)
	}
}
