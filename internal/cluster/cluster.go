// Package cluster is the horizontally scalable ingestion layer for the
// runtime monitor: a consistent-hash ring partitions user IDs across nodes
// (internal/runtime's FNV user hash, so one node degenerates to the
// single-process monitor), a Router client streams length-prefixed binary
// event frames to each owner node over unencrypted HTTP/2, and every Node
// applies its partition through Monitor.IngestBatch behind a bounded queue
// with 429 + Retry-After admission control. Because alert content is a pure
// function of each user's event sequence and a user's events all land on one
// node in send order, the union of the fleet's alerts equals the single-node
// monitor's alert set — the distribution-independence property the package's
// tests pin down.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"privascope/internal/core"
	"privascope/internal/runtime"
)

// NodeServer serves one Node over unencrypted HTTP/2 (h2c) with an HTTP/1
// fallback, in the internal/service server idiom.
type NodeServer struct {
	node     *Node
	listener net.Listener
	server   *http.Server
	done     chan struct{}
	err      error
}

// StartNodeServer listens on addr ("" selects a loopback ephemeral port) and
// serves the node.
func StartNodeServer(node *Node, addr string) (*NodeServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	var protocols http.Protocols
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true)
	s := &NodeServer{
		node:     node,
		listener: listener,
		server: &http.Server{
			Handler:           node.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			Protocols:         &protocols,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.server.Serve(listener); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}

// URL returns the server's base URL.
func (s *NodeServer) URL() string { return "http://" + s.listener.Addr().String() }

// Node returns the served node.
func (s *NodeServer) Node() *Node { return s.node }

// Stop shuts the server down and waits for the serve loop to exit.
func (s *NodeServer) Stop(ctx context.Context) error {
	err := s.server.Shutdown(ctx)
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}

// Local is an in-process cluster: n nodes named node0..node{n-1}, each with
// its own monitor and HTTP server, fronted by one Router. It is the
// deployment unit behind `privaserve -cluster N`, the integration tests and
// the ingest benchmark. Membership is live — AddNode, RemoveNode and
// EvictNode change the fleet under traffic — and a Prober (StartProber)
// turns failed liveness probes into evictions.
type Local struct {
	Nodes   []*Node
	Servers []*NodeServer
	Router  *Router

	// mu guards the membership fields (Nodes, Servers, retired, joining,
	// nextNode) against concurrent changes from a Prober.
	mu       sync.Mutex
	model    *core.PrivacyLTS
	nodeCfg  NodeConfig
	nextNode int
	// retired holds removed/evicted nodes: their monitors keep the alert
	// history those nodes raised while they owned their users.
	retired []*Node
	// joining names the node a in-progress AddNode is handing off to, which
	// is not yet in Nodes.
	joining *joiningNode
}

// joiningNode is the name/URL of a node mid-join.
type joiningNode struct {
	name string
	url  string
}

// StartLocal builds and starts an n-node local cluster over the model.
// nodeCfg is the per-node template (Name is assigned here); routerCfg's
// Nodes and Replicas are filled in from the started servers.
func StartLocal(p *core.PrivacyLTS, n int, nodeCfg NodeConfig, routerCfg RouterConfig) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	c := &Local{model: p, nodeCfg: nodeCfg, nextNode: n}
	urls := make(map[string]string, n)
	for i := 0; i < n; i++ {
		cfg := nodeCfg
		cfg.Name = fmt.Sprintf("node%d", i)
		node, err := NewNode(p, cfg)
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		srv, err := StartNodeServer(node, "")
		if err != nil {
			node.Close()
			c.shutdown()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
		urls[cfg.Name] = srv.URL()
	}
	routerCfg.Nodes = urls
	router, err := NewRouter(routerCfg)
	if err != nil {
		c.shutdown()
		return nil, err
	}
	c.Router = router
	return c, nil
}

// Alerts merges every node's alert log. Ordering across nodes is arbitrary
// (each node's own log stays in its observation order); callers needing a
// canonical order sort the result.
func (c *Local) Alerts() []runtime.Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []runtime.Alert
	for _, n := range c.Nodes {
		all = append(all, n.Monitor().Alerts()...)
	}
	for _, n := range c.retired {
		all = append(all, n.Monitor().Alerts()...)
	}
	return all
}

// Quiesce flushes the router and waits until every node has applied every
// accepted event: after it returns, Alerts reflects everything sent.
func (c *Local) Quiesce(ctx context.Context) error {
	if err := c.Router.Flush(ctx); err != nil {
		return err
	}
	c.mu.Lock()
	nodes := append([]*Node(nil), c.Nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if err := n.Quiesce(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Stop closes the router, the servers and the nodes. The first error wins,
// but every component is stopped regardless.
func (c *Local) Stop(ctx context.Context) error {
	var first error
	if c.Router != nil {
		if err := c.Router.Close(); err != nil && first == nil {
			first = err
		}
		c.Router = nil
	}
	if err := c.shutdownCtx(ctx); err != nil && first == nil {
		first = err
	}
	return first
}

func (c *Local) shutdown() { _ = c.shutdownCtx(context.Background()) }

func (c *Local) shutdownCtx(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, s := range c.Servers {
		if err := s.Stop(ctx); err != nil && first == nil {
			first = err
		}
	}
	c.Servers = nil
	for _, n := range c.Nodes {
		n.Close()
	}
	c.Nodes = nil
	for _, n := range c.retired {
		n.Close()
	}
	c.retired = nil
	return first
}
