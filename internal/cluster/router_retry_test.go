package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privascope/internal/casestudy"
)

// fakeClock records the router's backoff sleeps instead of sleeping.
type fakeClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (f *fakeClock) sleep(d time.Duration, _ <-chan struct{}) bool {
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
	return true
}

func (f *fakeClock) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

// TestRouterBackoffSchedule pins the retry backoff under a fake clock: a
// persistently failing node is retried on a jittered exponential schedule —
// each sleep within [d/2, d] for d = min(base<<k, max) — not in a tight
// loop, and the seeded jitter makes the exact schedule reproducible.
func TestRouterBackoffSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	run := func() []time.Duration {
		clock := &fakeClock{}
		router, err := NewRouter(RouterConfig{
			Nodes:             map[string]string{"only": srv.URL},
			BatchEvents:       4,
			MaxRetries:        4,
			BackoffBase:       10 * time.Millisecond,
			BackoffMax:        40 * time.Millisecond,
			BackoffJitterSeed: 99,
			HTTPClient:        srv.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		router.sleepFn = clock.sleep
		if err := router.SendBatch(context.Background(), casestudy.MedicalServiceEvents("u")[:4]); err != nil {
			t.Fatal(err)
		}
		if err := router.Flush(context.Background()); err == nil {
			t.Fatal("Flush returned nil after a dropped sequence")
		}
		stats := router.Stats()
		if stats.Dropped != 1 || stats.Retries != 3 {
			t.Fatalf("stats = %+v, want 1 dropped sequence and 3 retries", stats)
		}
		_ = router.Close()
		return clock.recorded()
	}

	sleeps := run()
	// 4 attempts, a backoff after each failure: 10, 20, 40, 40ms nominal,
	// jittered into [d/2, d].
	want := []time.Duration{10, 20, 40, 40}
	if len(sleeps) != len(want) {
		t.Fatalf("recorded %d sleeps %v, want %d", len(sleeps), sleeps, len(want))
	}
	for i, d := range sleeps {
		nominal := want[i] * time.Millisecond
		if d < nominal/2 || d > nominal {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, d, nominal/2, nominal)
		}
	}
	// Same seed, same schedule: the jitter is deterministic.
	again := run()
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Fatalf("sleep %d differs across same-seed runs: %v vs %v", i, sleeps[i], again[i])
		}
	}
}

// TestRouterStatsPersistent5xx pins the drop accounting: a sequence
// abandoned after MaxRetries counts Dropped exactly once (however many
// frames it carried), with the frames and events in DroppedFrames /
// DroppedEvents, and Retries counting each re-attempt.
func TestRouterStatsPersistent5xx(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	router, err := NewRouter(RouterConfig{
		Nodes:       map[string]string{"only": srv.URL},
		BatchEvents: 2,
		MaxInFlight: 4,
		MaxRetries:  3,
		BackoffBase: time.Microsecond,
		BackoffMax:  2 * time.Microsecond,
		HTTPClient:  srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 events = 2 frames; MaxInFlight 4 lets both queue before the sender
	// picks them up, so they ride one sequence.
	if err := router.SendBatch(context.Background(), casestudy.MedicalServiceEvents("u")[:4]); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(context.Background()); err == nil {
		t.Fatal("Flush returned nil after dropped sequences")
	}
	stats := router.Stats()
	if stats.Dropped == 0 || stats.Dropped+stats.FramesSent > 2 {
		t.Fatalf("stats = %+v: 2 frames in at most 2 sequences, none delivered", stats)
	}
	if stats.DroppedEvents != 4 || stats.DroppedFrames != 2 {
		t.Fatalf("stats = %+v, want all 4 events / 2 frames dropped", stats)
	}
	// Retries is per re-attempt: MaxRetries attempts per sequence, so
	// (MaxRetries-1) retries per dropped sequence.
	if want := stats.Dropped * 2; stats.Retries != want {
		t.Fatalf("Retries = %d, want %d (2 per abandoned sequence)", stats.Retries, want)
	}
	if router.Err() == nil {
		t.Fatal("dropped sequence left Err() nil")
	}
	_ = router.Close()
}

// TestRouter429TrimAcrossRetries pins the partial-accept protocol end to
// end: a mid-sequence 429 with {accepted:k} credits the k frames exactly
// once, the resend starts at frame base+k (visible in the Frame-Base
// header), and the credit survives a later 5xx on the remainder.
func TestRouter429TrimAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var bases []string
	var delivered int
	step := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		bases = append(bases, r.Header.Get(HeaderFrameBase))
		switch step {
		case 0:
			step = 1
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"accepted":1,"error":"queue full"}`))
		case 1:
			step = 2
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			fr := NewFrameReader(r.Body)
			accepted := 0
			for {
				batch, err := fr.Read()
				if err != nil {
					break
				}
				delivered += len(batch)
				accepted++
			}
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"accepted":` + strconv.Itoa(accepted) + `}`))
		}
	}))
	defer srv.Close()

	clock := &fakeClock{}
	router, err := NewRouter(RouterConfig{
		Nodes:       map[string]string{"only": srv.URL},
		BatchEvents: 2,
		MaxInFlight: 4,
		MaxRetries:  8,
		HTTPClient:  srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	router.sleepFn = clock.sleep
	events := casestudy.MedicalServiceEvents("u")[:4] // 2 frames, one sequence
	if err := router.SendBatch(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := router.Stats()
	if stats.FramesSent != 2 || stats.EventsSent != 4 || stats.Dropped != 0 {
		t.Fatalf("stats = %+v, want 2 frames / 4 events sent, none dropped", stats)
	}
	if stats.Rejected429 != 1 || stats.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 rejection and 2 retries", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != 2 {
		t.Fatalf("server applied %d events, want only frame 1's 2 (frame 0 was accepted by the 429)", delivered)
	}
	// Request 0 starts the sequence at frame 0; after {accepted:1} both the
	// 5xx retry and the final delivery resume at frame 1.
	if len(bases) != 3 || bases[0] != "0" || bases[1] != "1" || bases[2] != "1" {
		t.Fatalf("Frame-Base headers = %v, want [0 1 1]", bases)
	}
	_ = router.Close()
}

// TestIngestDedupOnRetry pins the receiver half of exactly-once: redelivering
// an already-applied frame on the same stream is acknowledged but not
// re-applied.
func TestIngestDedupOnRetry(t *testing.T) {
	node := newTestNode(t, NodeConfig{})
	if err := node.Monitor().RegisterUser(casestudy.PatientProfile()); err != nil {
		t.Fatal(err)
	}
	frame := mustFrame(t, casestudy.MedicalServiceEvents(casestudy.PatientProfile().ID)[:3])
	post := func() (int, ingestResponse) {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(frame))
		req.Header.Set(HeaderStream, "s1")
		req.Header.Set(HeaderFrameBase, "0")
		w := httptest.NewRecorder()
		node.Handler().ServeHTTP(w, req)
		var ir ingestResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
			t.Fatalf("ingest response %q is not JSON: %v", w.Body.String(), err)
		}
		return w.Code, ir
	}
	code, ir := post()
	if code != http.StatusAccepted || ir.Accepted != 1 {
		t.Fatalf("first delivery: %d %+v", code, ir)
	}
	code, ir = post()
	if code != http.StatusAccepted || ir.Accepted != 1 {
		t.Fatalf("redelivery: %d %+v, want acknowledged", code, ir)
	}
	if err := node.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := node.Stats()
	if s.Frames != 1 || s.Events != 3 || s.DedupedFrames != 1 {
		t.Fatalf("stats = %+v, want 1 frame / 3 events applied and 1 frame deduped", s)
	}
	if got := node.StreamCursor("s1"); got != 1 {
		t.Fatalf("stream cursor = %d, want 1", got)
	}
	// A different stream is not deduplicated against s1's cursor.
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(frame))
	req.Header.Set(HeaderStream, "s2")
	req.Header.Set(HeaderFrameBase, "0")
	w := httptest.NewRecorder()
	node.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("fresh stream rejected: %d", w.Code)
	}
	if err := node.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := node.Stats(); s.Frames != 2 {
		t.Fatalf("stats = %+v, want the fresh stream's frame applied", s)
	}
	// A malformed Frame-Base is a client bug, not a frame to guess about.
	req = httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(frame))
	req.Header.Set(HeaderStream, "s3")
	req.Header.Set(HeaderFrameBase, "not-a-number")
	w = httptest.NewRecorder()
	node.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad Frame-Base returned %d, want 400", w.Code)
	}
}

// TestReadyzSplitsFromHealthz pins the health split: liveness stays 200
// while readiness answers 503 during a drain and during a handoff import.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	node := newTestNode(t, NodeConfig{})
	get := func(path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		node.Handler().ServeHTTP(w, req)
		return w.Code
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("fresh node /readyz = %d", got)
	}
	node.BeginDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining node /readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("draining node /healthz = %d, want 200: draining is not dead", got)
	}
	node.draining.Store(false)
	node.receiving.Add(1)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("receiving node /readyz = %d, want 503", got)
	}
	node.receiving.Add(-1)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("recovered node /readyz = %d", got)
	}
}
