package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// record is a base transport counting deliveries.
type record struct {
	delivered atomic.Int64
	status    int
}

func (r *record) RoundTrip(req *http.Request) (*http.Response, error) {
	r.delivered.Add(1)
	code := r.status
	if code == 0 {
		code = http.StatusOK
	}
	return &http.Response{
		Status:     http.StatusText(code),
		StatusCode: code,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(req)
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return resp, err
}

// TestScheduleDeterministic pins the injector's core property: the fault
// decision for (seed, host, ordinal) is a pure function — two transports
// with the same seed see identical schedules, a different seed a different
// one.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.2, Reset: 0.1, Status: 0.1, Delay: 0.1,
		DelayMin: time.Microsecond, DelayMax: 2 * time.Microsecond}
	trial := func(cfg Config) []string {
		tr := New(&record{}, cfg)
		var out []string
		for i := 0; i < 200; i++ {
			resp, err := get(t, tr, "http://hostA:1/ingest")
			switch {
			case err != nil:
				out = append(out, "err:"+err.Error())
			default:
				out = append(out, "ok:"+resp.Status)
			}
		}
		return out
	}
	a, b := trial(cfg), trial(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged between same-seed runs: %q vs %q", i, a[i], b[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := trial(cfg2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultKinds drives each rate at 1.0 and checks the observable contract:
// request faults never reach the base transport, response drops always do.
func TestFaultKinds(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		base := &record{}
		tr := New(base, Config{Drop: 1})
		_, err := get(t, tr, "http://h:1/x")
		if !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("err = %v, want ErrInjectedDrop", err)
		}
		if base.delivered.Load() != 0 {
			t.Fatal("dropped request reached the base transport")
		}
	})
	t.Run("reset", func(t *testing.T) {
		base := &record{}
		tr := New(base, Config{Reset: 1})
		_, err := get(t, tr, "http://h:1/x")
		if !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("err = %v, want ErrInjectedReset", err)
		}
		if base.delivered.Load() != 0 {
			t.Fatal("reset request reached the base transport")
		}
	})
	t.Run("status", func(t *testing.T) {
		base := &record{}
		tr := New(base, Config{Status: 1, StatusCode: 503})
		resp, err := get(t, tr, "http://h:1/x")
		if err != nil || resp.StatusCode != 503 {
			t.Fatalf("resp = %v err = %v, want synthesized 503", resp, err)
		}
		if base.delivered.Load() != 0 {
			t.Fatal("status-faulted request reached the base transport")
		}
	})
	t.Run("response-drop", func(t *testing.T) {
		base := &record{}
		tr := New(base, Config{ResponseDrop: 1})
		_, err := get(t, tr, "http://h:1/x")
		if !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("err = %v, want ErrInjectedDrop", err)
		}
		if base.delivered.Load() != 1 {
			t.Fatalf("delivered = %d, want 1: response drops must deliver first", base.delivered.Load())
		}
	})
	t.Run("delay", func(t *testing.T) {
		base := &record{}
		tr := New(base, Config{Delay: 1, DelayMin: time.Microsecond, DelayMax: 2 * time.Microsecond})
		resp, err := get(t, tr, "http://h:1/x")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("resp = %v err = %v, want delayed 200", resp, err)
		}
		if base.delivered.Load() != 1 {
			t.Fatal("delayed request never delivered")
		}
	})
}

// TestPartitionWindow checks that a partition blackholes exactly its ordinal
// window on exactly its host.
func TestPartitionWindow(t *testing.T) {
	base := &record{}
	tr := New(base, Config{Partitions: []Partition{{Host: "a:1", From: 2, To: 4}}})
	for i := 0; i < 6; i++ {
		_, err := get(t, tr, "http://a:1/x")
		inWindow := i >= 2 && i < 4
		if (err != nil) != inWindow {
			t.Fatalf("ordinal %d: err = %v, partition window is [2,4)", i, err)
		}
	}
	if _, err := get(t, tr, "http://b:1/x"); err != nil {
		t.Fatalf("partition of a:1 leaked to b:1: %v", err)
	}
	if got := tr.Stats().Partitioned; got != 2 {
		t.Fatalf("Partitioned = %d, want 2", got)
	}
}

// TestPathsFilter checks that off-path requests bypass faults without
// consuming schedule ordinals.
func TestPathsFilter(t *testing.T) {
	base := &record{}
	tr := New(base, Config{Drop: 1, Paths: []string{"/ingest"}})
	if _, err := get(t, tr, "http://h:1/healthz"); err != nil {
		t.Fatalf("off-path request faulted: %v", err)
	}
	if _, err := get(t, tr, "http://h:1/ingest"); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("on-path request not faulted: %v", err)
	}
	if got := tr.Stats().Requests; got != 1 {
		t.Fatalf("Requests = %d, want 1: off-path traffic must not consume ordinals", got)
	}
}

// TestAgainstRealServer is the end-to-end smoke: a real client through the
// injector against a real server, with a mixed schedule, stays functional —
// non-faulted requests succeed.
func TestAgainstRealServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tr := New(http.DefaultTransport, Config{Seed: 7, Drop: 0.3, Status: 0.2,
		Delay: 0.1, DelayMin: time.Microsecond, DelayMax: 10 * time.Microsecond})
	client := &http.Client{Transport: tr}
	ok := 0
	for i := 0; i < 100; i++ {
		resp, err := client.Get(srv.URL + "/ingest")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			ok++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	s := tr.Stats()
	if ok == 0 || s.Dropped == 0 || s.Statuses == 0 {
		t.Fatalf("mixed schedule degenerate: ok=%d stats=%+v", ok, s)
	}
	if int64(ok) != s.Passed+s.Delayed {
		t.Fatalf("ok=%d but passed+delayed=%d", ok, s.Passed+s.Delayed)
	}
}
