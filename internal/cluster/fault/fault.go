// Package fault is a deterministic fault injector for the cluster's HTTP
// plane: a RoundTripper wrapper that drops, delays, resets, mis-statuses and
// partitions requests according to a seeded splitmix64 schedule. Every
// decision is a pure function of (seed, target host, per-host request
// ordinal), so a single-sender-per-host traffic pattern — which is exactly
// what the cluster Router produces — sees a reproducible fault sequence for
// a given seed, and a failing run can be replayed from the seed alone.
//
// Fault modes split into two families with very different semantics:
//
//   - Request faults (Drop, Reset, Status, Partition) fail the exchange
//     BEFORE the server sees it: nothing was delivered, so the client's
//     retry cannot double-apply anything.
//   - Response faults (ResponseDrop) deliver the request and then lose the
//     answer: the server applied it, the client doesn't know. This is the
//     mode that exercises the receiver's stream-offset deduplication — the
//     retry is a duplicate and must be recognized as one.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Partition makes a target unreachable for a window of its request ordinals
// [From, To): a deterministic stand-in for a network partition, asymmetric by
// construction (only the named host is affected; traffic to everyone else
// flows).
type Partition struct {
	// Host is the target's host:port; empty matches every host.
	Host string
	// From and To bound the affected per-host request ordinals, half-open.
	From, To uint64
}

// Config is a fault schedule. Rates are probabilities in [0, 1], evaluated in
// the order Drop, Reset, Status, ResponseDrop, Delay from one uniform draw
// per request — at most one fault fires per request.
type Config struct {
	// Seed drives the schedule; the zero seed is a valid (and distinct)
	// schedule.
	Seed int64
	// Drop fails the request with a connection error before delivery.
	Drop float64
	// Reset fails the request with a connection-reset error before delivery.
	Reset float64
	// Status answers the request with StatusCode (default 503) without
	// delivering it.
	Status float64
	// StatusCode is the synthesized status (0 selects 503).
	StatusCode int
	// ResponseDrop delivers the request, then discards the response and
	// fails the exchange — the lost-ack case.
	ResponseDrop float64
	// Delay delivers the request after a deterministic delay drawn from
	// [DelayMin, DelayMax] (defaults 1ms..10ms).
	Delay    float64
	DelayMin time.Duration
	DelayMax time.Duration
	// Partitions are unreachability windows, checked before the rates.
	Partitions []Partition
	// Paths restricts faults to these URL paths (exact match); requests to
	// other paths pass through without consuming a schedule ordinal. Empty
	// means every path is eligible. Confining faults to /ingest keeps the
	// management plane (handoff, register, probes) out of the schedule, so
	// the per-host ordinal sequence stays aligned with the router's FIFO
	// sender and the schedule stays reproducible.
	Paths []string
}

// Stats counts injected faults by kind.
type Stats struct {
	Requests      int64
	Dropped       int64
	Resets        int64
	Statuses      int64
	ResponseDrops int64
	Delayed       int64
	Partitioned   int64
	Passed        int64
}

// Transport injects faults per Config in front of a base RoundTripper.
type Transport struct {
	base http.RoundTripper
	cfg  Config

	mu       sync.Mutex
	ordinals map[string]uint64

	requests      atomic.Int64
	dropped       atomic.Int64
	resets        atomic.Int64
	statuses      atomic.Int64
	responseDrops atomic.Int64
	delayed       atomic.Int64
	partitioned   atomic.Int64
	passed        atomic.Int64
}

// ErrInjectedDrop and ErrInjectedReset are the synthetic transport errors,
// distinguishable from real network failures in test assertions.
var (
	ErrInjectedDrop  = errors.New("fault: injected connection drop")
	ErrInjectedReset = errors.New("fault: injected connection reset")
)

// New wraps base (nil selects http.DefaultTransport) with the schedule.
func New(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.StatusCode == 0 {
		cfg.StatusCode = http.StatusServiceUnavailable
	}
	if cfg.DelayMin <= 0 {
		cfg.DelayMin = time.Millisecond
	}
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = 10 * time.Millisecond
	}
	return &Transport{base: base, cfg: cfg, ordinals: make(map[string]uint64)}
}

// Stats snapshots the injector's counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:      t.requests.Load(),
		Dropped:       t.dropped.Load(),
		Resets:        t.resets.Load(),
		Statuses:      t.statuses.Load(),
		ResponseDrops: t.responseDrops.Load(),
		Delayed:       t.delayed.Load(),
		Partitioned:   t.partitioned.Load(),
		Passed:        t.passed.Load(),
	}
}

// splitmix64 is the schedule's mixing function: a full-period permutation
// with excellent avalanche, two multiplies and three xor-shifts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw derives the request's two deterministic uniforms (fault selector,
// delay fraction) from (seed, host, ordinal).
func (t *Transport) draw(host string, ordinal uint64) (float64, float64) {
	h := fnv.New64a()
	_, _ = io.WriteString(h, host)
	x := splitmix64(uint64(t.cfg.Seed) ^ splitmix64(h.Sum64()^splitmix64(ordinal)))
	u1 := float64(x>>11) / (1 << 53)
	u2 := float64(splitmix64(x)>>11) / (1 << 53)
	return u1, u2
}

// eligible reports whether the request's path is subject to faults.
func (t *Transport) eligible(req *http.Request) bool {
	if len(t.cfg.Paths) == 0 {
		return true
	}
	for _, p := range t.cfg.Paths {
		if req.URL.Path == p {
			return true
		}
	}
	return false
}

// RoundTrip applies the schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.eligible(req) {
		return t.base.RoundTrip(req)
	}
	t.requests.Add(1)
	host := req.URL.Host
	t.mu.Lock()
	ordinal := t.ordinals[host]
	t.ordinals[host] = ordinal + 1
	t.mu.Unlock()

	for _, p := range t.cfg.Partitions {
		if (p.Host == "" || p.Host == host) && ordinal >= p.From && ordinal < p.To {
			t.partitioned.Add(1)
			closeBody(req)
			return nil, fmt.Errorf("%w (partition, host %s ordinal %d)", ErrInjectedDrop, host, ordinal)
		}
	}

	u, du := t.draw(host, ordinal)
	switch {
	case u < t.cfg.Drop:
		t.dropped.Add(1)
		closeBody(req)
		return nil, fmt.Errorf("%w (host %s ordinal %d)", ErrInjectedDrop, host, ordinal)
	case u < t.cfg.Drop+t.cfg.Reset:
		t.resets.Add(1)
		closeBody(req)
		return nil, fmt.Errorf("%w (host %s ordinal %d)", ErrInjectedReset, host, ordinal)
	case u < t.cfg.Drop+t.cfg.Reset+t.cfg.Status:
		t.statuses.Add(1)
		closeBody(req)
		return synthesize(req, t.cfg.StatusCode), nil
	case u < t.cfg.Drop+t.cfg.Reset+t.cfg.Status+t.cfg.ResponseDrop:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// Drain the response so the exchange completes server-side, then
		// lose it: the server applied the request, the client sees a failure.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.responseDrops.Add(1)
		return nil, fmt.Errorf("%w (response, host %s ordinal %d)", ErrInjectedDrop, host, ordinal)
	case u < t.cfg.Drop+t.cfg.Reset+t.cfg.Status+t.cfg.ResponseDrop+t.cfg.Delay:
		t.delayed.Add(1)
		span := t.cfg.DelayMax - t.cfg.DelayMin
		time.Sleep(t.cfg.DelayMin + time.Duration(du*float64(span)))
		return t.base.RoundTrip(req)
	default:
		t.passed.Add(1)
		return t.base.RoundTrip(req)
	}
}

// closeBody honors the RoundTripper contract for requests that never reach
// the base transport: the body must be closed even on failure.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// synthesize builds a fault response with the injector's status code.
func synthesize(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("fault: injected %d", code)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        make(http.Header),
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
