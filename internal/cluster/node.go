package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"privascope/internal/core"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/service"
)

// NodeConfig configures one ingest node.
type NodeConfig struct {
	// Name is the node's ring name (required; must match the Router's view).
	Name string
	// Monitor configures the node's runtime monitor.
	Monitor runtime.Config
	// QueueEvents bounds the events buffered between the HTTP handlers and
	// the drain worker; past it the node answers 429. 0 selects
	// DefaultQueueEvents.
	QueueEvents int
	// RetryAfter is the advisory delay sent with 429 responses. 0 selects
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

const (
	// DefaultQueueEvents is the per-node admission bound: enough for a few
	// dozen full frames in flight, small enough that a stalled drain worker
	// pushes back within milliseconds of traffic.
	DefaultQueueEvents = 65536
	// DefaultRetryAfter is the advisory 429 Retry-After.
	DefaultRetryAfter = time.Second
	// nodeQueueBatches is the drain channel's capacity in batches; admission
	// is governed by the event-count bound, this only has to be deep enough
	// to never be the effective limit for reasonably sized frames.
	nodeQueueBatches = 1024
)

// NodeStats is an atomic snapshot of one node's counters.
type NodeStats struct {
	// Frames and Events count what the ingest endpoint accepted; Rejected
	// counts events turned away with 429; DecodeErrors counts malformed
	// frames (400).
	Frames       int64
	Events       int64
	Rejected     int64
	DecodeErrors int64
	// DedupedFrames counts retried frames the stream-offset filter skipped
	// because an earlier delivery already applied them (a response lost to
	// the network, not the client's fault).
	DedupedFrames int64
	// QueueDepth is the number of accepted events not yet applied to the
	// monitor; QueueLimit is the admission bound.
	QueueDepth int64
	QueueLimit int64
	// HandoffInUsers counts user snapshots imported through /handoff;
	// HandoffOutUsers counts snapshots exported off this node by a
	// membership change, split by reason ("rebalance" vs "failover" lives on
	// the importing side's metrics labels).
	HandoffInUsers  int64
	HandoffOutUsers int64
	// FailoverInUsers counts the subset of HandoffInUsers imported because
	// their previous owner was evicted as dead.
	FailoverInUsers int64
	// Ready reports the readiness half of the health split: false while the
	// node is draining or receiving a handoff.
	Ready bool
	// Ingest aggregates the monitor's per-batch IngestStats.
	Ingest runtime.IngestStats
}

// Node is one ingest server of the cluster: it decodes event frames from
// /ingest, queues them through a bounded buffer, and applies them to its own
// runtime.Monitor on a single drain goroutine — one drainer per node keeps
// cross-frame per-user order exactly as the frames arrived, and the monitor's
// own shard fan-out below it provides the parallelism.
type Node struct {
	name       string
	monitor    *runtime.Monitor
	mux        *http.ServeMux
	queue      chan []service.Event
	retryAfter time.Duration
	queueLimit int64

	pending      atomic.Int64 // accepted events not yet applied
	frames       atomic.Int64
	events       atomic.Int64
	rejected     atomic.Int64
	decodeErrors atomic.Int64
	deduped      atomic.Int64
	handoffIn    atomic.Int64
	handoffOut   atomic.Int64
	failoverIn   atomic.Int64

	// draining and receiving drive the readiness half of the health split:
	// /readyz answers 503 while the node is flushing its queue for a
	// shutdown/handoff (draining) or importing snapshots (receiving), so
	// probers and load balancers stop routing to it before its state moves.
	draining  atomic.Bool
	receiving atomic.Int32

	// streams maps a router sender's stream ID to the next expected frame
	// index, so a frame redelivered after a lost response is skipped instead
	// of applied twice (exactly-once ingest on top of at-least-once retries).
	streamsMu sync.Mutex
	streams   map[string]int64

	statsMu sync.Mutex
	ingest  runtime.IngestStats

	stop     chan struct{}
	drained  chan struct{}
	stopOnce sync.Once
}

// NewNode builds a node with its own monitor over the model.
func NewNode(p *core.PrivacyLTS, cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node needs a name")
	}
	monitor, err := runtime.NewMonitor(p, cfg.Monitor)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
	}
	if cfg.QueueEvents <= 0 {
		cfg.QueueEvents = DefaultQueueEvents
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	n := &Node{
		name:       cfg.Name,
		monitor:    monitor,
		queue:      make(chan []service.Event, nodeQueueBatches),
		retryAfter: cfg.RetryAfter,
		queueLimit: int64(cfg.QueueEvents),
		streams:    make(map[string]int64),
		stop:       make(chan struct{}),
		drained:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", n.handleIngest)
	mux.HandleFunc("POST /register", n.handleRegister)
	mux.HandleFunc("POST /handoff", n.handleHandoff)
	mux.HandleFunc("GET /alerts", n.handleAlerts)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /readyz", n.handleReadyz)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	n.mux = mux
	go n.drain()
	return n, nil
}

// Name returns the node's ring name.
func (n *Node) Name() string { return n.name }

// Monitor exposes the node's monitor (management plane: registration in
// tests and benchmarks, alert queries).
func (n *Node) Monitor() *runtime.Monitor { return n.monitor }

// Handler returns the node's HTTP handler.
func (n *Node) Handler() http.Handler { return n.mux }

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats {
	n.statsMu.Lock()
	ingest := n.ingest
	n.statsMu.Unlock()
	return NodeStats{
		Frames:          n.frames.Load(),
		Events:          n.events.Load(),
		Rejected:        n.rejected.Load(),
		DecodeErrors:    n.decodeErrors.Load(),
		DedupedFrames:   n.deduped.Load(),
		QueueDepth:      n.pending.Load(),
		QueueLimit:      n.queueLimit,
		HandoffInUsers:  n.handoffIn.Load(),
		HandoffOutUsers: n.handoffOut.Load(),
		FailoverInUsers: n.failoverIn.Load(),
		Ready:           n.ready(),
		Ingest:          ingest,
	}
}

// ready reports the readiness half of the health split.
func (n *Node) ready() bool {
	return !n.draining.Load() && n.receiving.Load() == 0
}

// drain is the node's single ingestion worker.
func (n *Node) drain() {
	defer close(n.drained)
	for {
		select {
		case batch := <-n.queue:
			stats := n.monitor.IngestBatch(batch)
			n.statsMu.Lock()
			n.ingest.Merge(stats)
			n.statsMu.Unlock()
			n.pending.Add(-int64(len(batch)))
		case <-n.stop:
			// Drain what was admitted before stopping: accepted events must
			// not be dropped.
			for {
				select {
				case batch := <-n.queue:
					stats := n.monitor.IngestBatch(batch)
					n.statsMu.Lock()
					n.ingest.Merge(stats)
					n.statsMu.Unlock()
					n.pending.Add(-int64(len(batch)))
				default:
					return
				}
			}
		}
	}
}

// Quiesce blocks until every accepted event has been applied to the monitor
// (or ctx is done). The router's Flush plus every node's Quiesce is the
// cluster-wide happens-before edge tests rely on. While quiescing the node
// reports not-ready on /readyz: a drain is exactly the moment probers and
// load balancers should stop routing new work here.
func (n *Node) Quiesce(ctx context.Context) error {
	n.draining.Store(true)
	defer n.draining.Store(false)
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for n.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// BeginDrain marks the node as draining for good: /readyz answers 503 from
// here on. A graceful leave calls it before the state handoff so external
// routing backs off while ownership moves; Close implies it.
func (n *Node) BeginDrain() { n.draining.Store(true) }

// Close stops the drain worker after it has applied every accepted batch.
func (n *Node) Close() {
	n.BeginDrain()
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.drained
}

// StreamCursor returns the next frame index the node expects on the stream —
// everything below it has been applied. Membership changes read it off a dead
// node (management plane, in-process) to decide which parked frames still
// need re-routing and which would be duplicates.
func (n *Node) StreamCursor(stream string) int64 {
	n.streamsMu.Lock()
	defer n.streamsMu.Unlock()
	return n.streams[stream]
}

// admit reserves room for a decoded batch, returning false when the node is
// saturated. Reservation is optimistic-add/rollback on the pending counter,
// so concurrent ingest streams cannot jointly overshoot the bound.
func (n *Node) admit(batch []service.Event) bool {
	count := int64(len(batch))
	if n.pending.Add(count) > n.queueLimit {
		n.pending.Add(-count)
		return false
	}
	select {
	case n.queue <- batch:
		return true
	default:
		n.pending.Add(-count)
		return false
	}
}

// ingestResponse is the /ingest reply body.
type ingestResponse struct {
	// Accepted counts the request's frames admitted to the queue; on 429 the
	// client resends from frame Accepted.
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// HeaderStream and HeaderFrameBase are the ingest deduplication headers: a
// router sender tags each request with its stream ID and the index of the
// request's first frame within that stream. Frames below the node's stream
// cursor were already applied by a delivery whose response got lost; the node
// skips them (counting DedupedFrames) but reports them accepted, so the
// client's resume arithmetic is unchanged. Requests without the headers
// bypass deduplication.
const (
	HeaderStream    = "Privascope-Stream"
	HeaderFrameBase = "Privascope-Frame-Base"
)

// handleIngest streams frames out of the request body into the ingest queue.
// The whole body is one frame sequence; the response reports how many frames
// were admitted, so a 429 mid-stream tells the client exactly where to
// resume.
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	stream := r.Header.Get(HeaderStream)
	base := int64(0)
	if stream != "" {
		v, err := strconv.ParseInt(r.Header.Get(HeaderFrameBase), 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "cluster: bad "+HeaderFrameBase+" header", http.StatusBadRequest)
			return
		}
		base = v
	}
	fr := NewFrameReader(r.Body)
	accepted := 0
	for {
		batch, err := fr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			n.decodeErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error()})
			return
		}
		if stream != "" && n.dedupFrame(stream, base+int64(accepted)) {
			n.deduped.Add(1)
			accepted++
			continue
		}
		if !n.admit(batch) {
			n.rejected.Add(int64(len(batch)))
			w.Header().Set("Retry-After", strconv.Itoa(int((n.retryAfter + time.Second - 1) / time.Second)))
			writeJSON(w, http.StatusTooManyRequests, ingestResponse{Accepted: accepted, Error: "ingest queue full"})
			return
		}
		if stream != "" {
			n.advanceStream(stream, base+int64(accepted))
		}
		n.frames.Add(1)
		n.events.Add(int64(len(batch)))
		accepted++
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: accepted})
}

// dedupFrame reports whether the frame at idx was already applied on the
// stream (idx below the cursor).
func (n *Node) dedupFrame(stream string, idx int64) bool {
	n.streamsMu.Lock()
	defer n.streamsMu.Unlock()
	return idx < n.streams[stream]
}

// advanceStream records that the frame at idx was admitted. Frames dropped by
// the client leave gaps; the cursor only ever moves forward.
func (n *Node) advanceStream(stream string, idx int64) {
	n.streamsMu.Lock()
	defer n.streamsMu.Unlock()
	if idx+1 > n.streams[stream] {
		n.streams[stream] = idx + 1
	}
}

// handleRegister registers a JSON array of user profiles with the node's
// monitor. Registration is management-plane: rare, small, human-scale — JSON
// keeps it debuggable, the binary frame format is reserved for the event
// firehose.
func (n *Node) handleRegister(w http.ResponseWriter, r *http.Request) {
	var profiles []risk.UserProfile
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxFrameBytes)).Decode(&profiles); err != nil {
		http.Error(w, "cluster: bad register payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	for i := range profiles {
		if err := n.monitor.RegisterUserContext(r.Context(), profiles[i]); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"registered": len(profiles)})
}

// alertJSON is the wire form of one alert.
type alertJSON struct {
	Kind    string        `json:"kind"`
	UserID  string        `json:"user_id"`
	Message string        `json:"message"`
	Risk    string        `json:"risk,omitempty"`
	Event   service.Event `json:"event"`
}

// handleAlerts returns the node's alert log in observation order.
func (n *Node) handleAlerts(w http.ResponseWriter, r *http.Request) {
	alerts := n.monitor.Alerts()
	out := make([]alertJSON, len(alerts))
	for i, a := range alerts {
		out[i] = alertJSON{
			Kind:    a.Kind.String(),
			UserID:  a.UserID,
			Message: a.Message,
			Event:   a.Event,
		}
		if a.Kind == runtime.AlertRisk {
			out[i].Risk = a.Risk.String()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// HeaderHandoffReason labels a /handoff request with why ownership moved:
// "rebalance" for a planned membership change, "failover" when the previous
// owner was evicted as dead. The importing node counts the two separately.
const HeaderHandoffReason = "Privascope-Handoff-Reason"

// handoffResponse is the /handoff reply body.
type handoffResponse struct {
	Imported int    `json:"imported"`
	Error    string `json:"error,omitempty"`
}

// handleHandoff imports the user snapshots of one PSHO frame into the node's
// monitor. The frame is fully decoded and validated before any user is
// touched; per-user imports are idempotent, so a duplicated delivery (the
// sender retried after a lost response) converges to the same state. While a
// handoff is being received the node reports not-ready.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	n.receiving.Add(1)
	defer n.receiving.Add(-1)
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxHandoffBytes+1))
	if err != nil {
		http.Error(w, "cluster: reading handoff frame: "+err.Error(), http.StatusBadRequest)
		return
	}
	snaps, err := DecodeHandoff(body)
	if err != nil {
		n.decodeErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, handoffResponse{Error: err.Error()})
		return
	}
	failover := r.Header.Get(HeaderHandoffReason) == "failover"
	for i, snap := range snaps {
		if err := n.monitor.ImportUserContext(r.Context(), snap); err != nil {
			// Imports are idempotent, so the sender retries the whole frame;
			// nothing is half-registered from this frame's perspective beyond
			// users already (re)imported, which a retry simply overwrites.
			writeJSON(w, http.StatusUnprocessableEntity, handoffResponse{Imported: i, Error: err.Error()})
			return
		}
		n.handoffIn.Add(1)
		if failover {
			n.failoverIn.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, handoffResponse{Imported: len(snaps)})
}

// handleHealthz is the liveness half of the health split: it answers 200
// whenever the process serves HTTP at all. Eviction decisions key off this —
// a draining node is still alive.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"node":    n.name,
		"pending": n.pending.Load(),
		"ready":   n.ready(),
	})
}

// handleReadyz is the readiness half: 503 while the node is draining for a
// shutdown/handoff or importing a handoff, 200 otherwise. Probers and
// external load balancers route on this; eviction must not.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	if !n.ready() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"node":      n.name,
		"ready":     n.ready(),
		"draining":  n.draining.Load(),
		"receiving": n.receiving.Load() > 0,
		"pending":   n.pending.Load(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
