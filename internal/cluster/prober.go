package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// ProberConfig configures the failure detector.
type ProberConfig struct {
	// Interval between probe rounds (0 selects DefaultProbeInterval).
	Interval time.Duration
	// Timeout bounds one probe request (0 selects the interval).
	Timeout time.Duration
	// Failures is the consecutive-failure threshold at which a node is
	// declared dead and evicted (0 selects DefaultProbeFailures). Keying on
	// consecutive failures keeps one dropped packet from amputating a node.
	Failures int
	// HTTPClient overrides the probe client (its Timeout is ignored; the
	// prober applies its own per-probe deadline).
	HTTPClient *http.Client
	// OnEvict, when set, observes each eviction and its outcome.
	OnEvict func(name string, err error)
}

const (
	// DefaultProbeInterval and DefaultProbeFailures trade detection latency
	// against tolerance for transient stalls: three missed 250ms probes
	// declare a node dead in under a second.
	DefaultProbeInterval = 250 * time.Millisecond
	DefaultProbeFailures = 3
)

// ProberStats is a snapshot of the failure detector's state.
type ProberStats struct {
	// Probes counts probe requests sent; Failures counts the ones that
	// failed (error, timeout, or non-200).
	Probes   int64
	Failures int64
	// Failing maps node name to its current consecutive-failure count
	// (nodes at zero are omitted).
	Failing map[string]int
	// Evicted lists the nodes this prober declared dead, in order.
	Evicted []string
}

// Prober is the cluster's failure detector: it probes every live node's
// /healthz (liveness — a draining node is alive and must not be evicted) at
// a fixed interval and hands nodes that miss the consecutive-failure
// threshold to Local.EvictNode, which fails their users over to ring
// successors from their last snapshot.
type Prober struct {
	c      *Local
	cfg    ProberConfig
	client *http.Client

	mu      sync.Mutex
	fails   map[string]int
	probes  int64
	failed  int64
	evicted []string

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartProber launches a failure detector over the cluster. Stop it before
// stopping the cluster.
func (c *Local) StartProber(cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.Failures <= 0 {
		cfg.Failures = DefaultProbeFailures
	}
	client := cfg.HTTPClient
	if client == nil {
		client = h2cClient()
	}
	p := &Prober{
		c:      c,
		cfg:    cfg,
		client: client,
		fails:  make(map[string]int),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.loop()
	return p
}

// Stop halts the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Stats snapshots the prober's counters.
func (p *Prober) Stats() ProberStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	failing := make(map[string]int, len(p.fails))
	for name, n := range p.fails {
		if n > 0 {
			failing[name] = n
		}
	}
	return ProberStats{
		Probes:   p.probes,
		Failures: p.failed,
		Failing:  failing,
		Evicted:  append([]string(nil), p.evicted...),
	}
}

func (p *Prober) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.round()
		case <-p.stop:
			return
		}
	}
}

// round probes every live node once and evicts the ones that crossed the
// threshold.
func (p *Prober) round() {
	p.c.mu.Lock()
	targets := make(map[string]string, len(p.c.Nodes))
	for i, n := range p.c.Nodes {
		targets[n.Name()] = p.c.Servers[i].URL()
	}
	p.c.mu.Unlock()

	var dead []string
	for name, url := range targets {
		ok := p.probe(url)
		p.mu.Lock()
		p.probes++
		if ok {
			delete(p.fails, name)
		} else {
			p.failed++
			p.fails[name]++
			if p.fails[name] >= p.cfg.Failures {
				dead = append(dead, name)
				delete(p.fails, name)
			}
		}
		p.mu.Unlock()
	}
	for _, name := range dead {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := p.c.EvictNode(ctx, name)
		cancel()
		p.mu.Lock()
		if err == nil {
			p.evicted = append(p.evicted, name)
		}
		p.mu.Unlock()
		if p.cfg.OnEvict != nil {
			p.cfg.OnEvict(name, err)
		}
	}
}

// probe reports whether one liveness check succeeded.
func (p *Prober) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
