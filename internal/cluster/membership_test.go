package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"privascope/internal/casestudy"
	"privascope/internal/risk"
	"privascope/internal/runtime"
	"privascope/internal/service"
	"privascope/internal/synth"
)

// membershipProfiles builds n registered user profiles (clones of the
// case-study patient under distinct IDs, so every consent shape is valid).
func membershipProfiles(n int) []risk.UserProfile {
	profiles := make([]risk.UserProfile, n)
	for i := range profiles {
		p := casestudy.PatientProfile()
		p.ID = fmt.Sprintf("member-user-%d", i)
		profiles[i] = p
	}
	return profiles
}

// directMonitor replays the stream on a single-process monitor: the ground
// truth every membership scenario must reproduce.
func directMonitor(t testing.TB, profiles []risk.UserProfile, stream []service.Event) *runtime.Monitor {
	t.Helper()
	direct, err := runtime.NewMonitor(surgeryModel(t), runtime.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if err := direct.RegisterUser(p); err != nil {
			t.Fatal(err)
		}
	}
	direct.IngestBatch(stream)
	return direct
}

// sortedComparable canonicalizes an alert set for cross-deployment equality.
func sortedComparable(alerts []runtime.Alert) []comparableAlert {
	out := stripAlerts(alerts)
	sort.Slice(out, func(i, j int) bool { return fmt.Sprintf("%+v", out[i]) < fmt.Sprintf("%+v", out[j]) })
	return out
}

// requireClusterMatchesDirect quiesces the cluster and checks the full
// equivalence contract against the direct monitor: merged alert set, and
// per-user cursor accounting (the final owner's snapshot — cumulative
// applied-event and alert counters carried across every handoff — must equal
// the uninterrupted monitor's, which proves no accepted event was lost or
// double-applied anywhere along the way).
func requireClusterMatchesDirect(t *testing.T, c *Local, direct *runtime.Monitor, users []string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := sortedComparable(c.Alerts()), sortedComparable(direct.Alerts()); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged cluster alerts differ from the direct monitor:\n got %d: %+v\nwant %d: %+v",
			len(got), got, len(want), want)
	}
	ring := c.Router.Ring()
	byName := make(map[string]*Node, len(c.Nodes))
	for _, n := range c.Nodes {
		byName[n.Name()] = n
	}
	for _, id := range users {
		owner, ok := byName[ring.Owner(id)]
		if !ok {
			t.Fatalf("user %q owned by %q, which is not a live node", id, ring.Owner(id))
		}
		got, ok1 := owner.Monitor().ExportUser(id)
		want, ok2 := direct.ExportUser(id)
		if !ok1 || !ok2 {
			t.Fatalf("user %q: cluster snapshot ok=%v, direct ok=%v", id, ok1, ok2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("user %q final snapshot differs (cursor accounting):\n got %+v\nwant %+v", id, got, want)
		}
	}
}

// TestClusterLiveJoinRebalances grows a 2-node cluster to 3 mid-stream: the
// join must move the rebalanced users' state, bump the epoch, and leave the
// merged alert set identical to an uninterrupted single monitor.
func TestClusterLiveJoinRebalances(t *testing.T) {
	p := surgeryModel(t)
	profiles := membershipProfiles(12)
	users := make([]string, len(profiles))
	for i, pr := range profiles {
		users[i] = pr.ID
	}
	rng := rand.New(rand.NewSource(7))
	stream := synth.RandomEventStream(rng, p, users, 24)
	direct := directMonitor(t, profiles, stream)

	c, err := StartLocal(p, 2, NodeConfig{}, RouterConfig{BatchEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Router.Register(ctx, profiles); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	if err := c.Router.SendBatch(ctx, stream[:half]); err != nil {
		t.Fatal(err)
	}
	if c.Router.Epoch() != 1 {
		t.Fatalf("epoch = %d before any membership change", c.Router.Epoch())
	}
	node, err := c.AddNode(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Router.Epoch() != 2 {
		t.Fatalf("epoch = %d after join, want 2", c.Router.Epoch())
	}
	if got := len(c.Nodes); got != 3 {
		t.Fatalf("live nodes = %d after join", got)
	}
	if err := c.Router.SendBatch(ctx, stream[half:]); err != nil {
		t.Fatal(err)
	}
	requireClusterMatchesDirect(t, c, direct, users)

	// The joiner owns a nontrivial share of a 12-user population and imported
	// each owned user exactly once.
	ring := c.Router.Ring()
	ownedByJoiner := 0
	for _, id := range users {
		if ring.Owner(id) == node.Name() {
			ownedByJoiner++
		}
	}
	if s := node.Stats(); s.HandoffInUsers != int64(ownedByJoiner) || s.FailoverInUsers != 0 {
		t.Fatalf("joiner stats = %+v, want %d rebalance imports", s, ownedByJoiner)
	}
	var out int64
	for _, n := range c.Nodes {
		out += n.Stats().HandoffOutUsers
	}
	if out != int64(ownedByJoiner) {
		t.Fatalf("fleet handed off %d users, joiner imported %d", out, ownedByJoiner)
	}
}

// TestClusterGracefulLeave shrinks 3 nodes to 2 mid-stream: the leaver's
// users move to ring successors, its alert history still counts, and the
// stream completes as if nothing happened.
func TestClusterGracefulLeave(t *testing.T) {
	p := surgeryModel(t)
	profiles := membershipProfiles(12)
	users := make([]string, len(profiles))
	for i, pr := range profiles {
		users[i] = pr.ID
	}
	rng := rand.New(rand.NewSource(11))
	stream := synth.RandomEventStream(rng, p, users, 24)
	direct := directMonitor(t, profiles, stream)

	c, err := StartLocal(p, 3, NodeConfig{}, RouterConfig{BatchEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Router.Register(ctx, profiles); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	if err := c.Router.SendBatch(ctx, stream[:half]); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(ctx, "node1"); err != nil {
		t.Fatal(err)
	}
	if c.Router.Epoch() != 2 || len(c.Nodes) != 2 {
		t.Fatalf("epoch %d, %d live nodes after leave", c.Router.Epoch(), len(c.Nodes))
	}
	if err := c.RemoveNode(ctx, "node1"); err == nil {
		t.Fatal("removing a removed node succeeded")
	}
	if err := c.Router.SendBatch(ctx, stream[half:]); err != nil {
		t.Fatal(err)
	}
	requireClusterMatchesDirect(t, c, direct, users)
}

// TestClusterEvictFailover crashes a node with frames in flight and evicts
// it: users fail over from their last snapshot, parked frames are re-routed
// with the dead node's stream cursor filtering duplicates, and nothing that
// was accepted anywhere is lost.
func TestClusterEvictFailover(t *testing.T) {
	p := surgeryModel(t)
	profiles := membershipProfiles(12)
	users := make([]string, len(profiles))
	for i, pr := range profiles {
		users[i] = pr.ID
	}
	rng := rand.New(rand.NewSource(13))
	stream := synth.RandomEventStream(rng, p, users, 24)
	direct := directMonitor(t, profiles, stream)

	c, err := StartLocal(p, 3, NodeConfig{}, RouterConfig{
		BatchEvents: 5,
		MaxRetries:  6,
		BackoffBase: 100 * time.Microsecond,
		BackoffMax:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Router.Register(ctx, profiles); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	if err := c.Router.SendBatch(ctx, stream[:half]); err != nil {
		t.Fatal(err)
	}
	// Crash node2: stop its server with the third quarter still in flight,
	// so the router parks undelivered frames and must re-route them.
	victim := "node2"
	q3 := half + (len(stream)-half)/2
	if err := c.Router.SendBatch(ctx, stream[half:q3]); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes {
		if n.Name() == victim {
			stopCtx, stopCancel := context.WithTimeout(ctx, 10*time.Second)
			if err := c.Servers[i].Stop(stopCtx); err != nil {
				t.Fatal(err)
			}
			stopCancel()
		}
	}
	if err := c.EvictNode(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if c.Router.Epoch() != 2 || len(c.Nodes) != 2 {
		t.Fatalf("epoch %d, %d live nodes after eviction", c.Router.Epoch(), len(c.Nodes))
	}
	var failedOver int64
	for _, n := range c.Nodes {
		failedOver += n.Stats().FailoverInUsers
	}
	if failedOver == 0 {
		t.Fatal("eviction imported no snapshots with the failover reason")
	}
	if err := c.Router.SendBatch(ctx, stream[q3:]); err != nil {
		t.Fatal(err)
	}
	requireClusterMatchesDirect(t, c, direct, users)
	if stats := c.Router.Stats(); stats.Dropped != 0 {
		t.Fatalf("router dropped %d sequences during failover: %+v", stats.Dropped, stats)
	}
}

// TestProberEvictsDeadNode wires failure detection end to end: a stopped
// server misses consecutive liveness probes and the prober evicts it; a
// merely draining node is left alone.
func TestProberEvictsDeadNode(t *testing.T) {
	p := surgeryModel(t)
	profiles := membershipProfiles(8)
	users := make([]string, len(profiles))
	for i, pr := range profiles {
		users[i] = pr.ID
	}
	rng := rand.New(rand.NewSource(17))
	stream := synth.RandomEventStream(rng, p, users, 12)
	direct := directMonitor(t, profiles, stream)

	c, err := StartLocal(p, 3, NodeConfig{}, RouterConfig{
		BatchEvents: 5,
		MaxRetries:  6,
		BackoffBase: 100 * time.Microsecond,
		BackoffMax:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Router.Register(ctx, profiles); err != nil {
		t.Fatal(err)
	}
	if err := c.Router.SendBatch(ctx, stream[:len(stream)/2]); err != nil {
		t.Fatal(err)
	}

	evicted := make(chan string, 1)
	prober := c.StartProber(ProberConfig{
		Interval: 5 * time.Millisecond,
		Failures: 3,
		OnEvict: func(name string, err error) {
			if err == nil {
				select {
				case evicted <- name:
				default:
				}
			}
		},
	})
	defer prober.Stop()

	// A draining node is alive: give the prober a few rounds to prove it
	// does not evict one.
	c.Nodes[0].BeginDrain()
	time.Sleep(50 * time.Millisecond)
	c.Nodes[0].draining.Store(false)
	if got := prober.Stats().Evicted; len(got) != 0 {
		t.Fatalf("prober evicted a draining node: %v", got)
	}

	victim := "node1"
	for i, n := range c.Nodes {
		if n.Name() == victim {
			stopCtx, stopCancel := context.WithTimeout(ctx, 10*time.Second)
			if err := c.Servers[i].Stop(stopCtx); err != nil {
				t.Fatal(err)
			}
			stopCancel()
		}
	}
	select {
	case name := <-evicted:
		if name != victim {
			t.Fatalf("prober evicted %q, want %q", name, victim)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("prober never evicted the dead node; stats %+v", prober.Stats())
	}
	if err := c.Router.SendBatch(ctx, stream[len(stream)/2:]); err != nil {
		t.Fatal(err)
	}
	requireClusterMatchesDirect(t, c, direct, users)
	if s := prober.Stats(); s.Probes == 0 || len(s.Evicted) != 1 {
		t.Fatalf("prober stats = %+v", s)
	}
}

// TestClusterMetricsExposeMembership spot-checks the new /metrics series.
func TestClusterMetricsExposeMembership(t *testing.T) {
	node := newTestNode(t, NodeConfig{})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	node.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	for _, series := range []string{
		"privascope_node_deduped_frames_total",
		"privascope_node_handoff_in_users_total",
		"privascope_node_handoff_out_users_total",
		"privascope_node_failover_in_users_total",
		"privascope_node_ready",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %s", series)
		}
	}
}
