package pseudorisk_test

import (
	"math/rand"
	"reflect"
	"testing"

	"privascope/internal/anonymize"
	"privascope/internal/proptest"
	"privascope/internal/pseudorisk"
)

// randomWeightTable draws a pseudonymised health-record table with a numeric
// sensitive column, shaped like the paper's Table I: interval-valued age,
// categorical city, numeric weight.
func randomWeightTable(rng *rand.Rand, maxRows int) *anonymize.Table {
	cities := []string{"North", "South", "East", "West"}
	t := anonymize.MustTable(
		anonymize.Column{Name: "age", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "city", Role: anonymize.RoleQuasiIdentifier},
		anonymize.Column{Name: "weight", Role: anonymize.RoleSensitive},
	)
	rows := 2 + rng.Intn(maxRows-1)
	for i := 0; i < rows; i++ {
		lo := float64(20 + 10*rng.Intn(5))
		t.MustAddRow(
			anonymize.Interval(lo, lo+10),
			anonymize.Cat(cities[rng.Intn(len(cities))]),
			anonymize.Num(float64(45+rng.Intn(60))),
		)
	}
	return t
}

// randomProgression draws a random field-set progression, including
// duplicate spellings of the same canonical scenario (shuffled order, target
// field mixed in), which the evaluator's cache must canonicalise away.
func randomProgression(rng *rand.Rand) [][]string {
	base := [][]string{nil, {"age"}, {"city"}, {"age", "city"}}
	progression := make([][]string, 0, 6)
	for _, fields := range base {
		progression = append(progression, fields)
		if len(fields) > 0 && rng.Intn(2) == 0 {
			shuffled := append([]string(nil), fields...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			progression = append(progression, append(shuffled, "weight"))
		}
	}
	return progression
}

// TestPropEvaluateProgressionWorkerIndependence: the pseudonymisation-risk
// progression over a random table is identical for any worker count and for
// a shared pre-built class index.
func TestPropEvaluateProgressionWorkerIndependence(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		table := randomWeightTable(rng, 64)
		policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.5 + rng.Float64()*0.5}
		progression := randomProgression(rng)

		sequential, err := pseudorisk.NewEvaluatorWithOptions(table, policy,
			pseudorisk.EvaluatorOptions{Workers: 1})
		if err != nil {
			return err
		}
		want, err := sequential.EvaluateProgression(progression)
		if err != nil {
			return err
		}

		for _, workers := range []int{2, 8} {
			e, err := pseudorisk.NewEvaluatorWithOptions(table, policy,
				pseudorisk.EvaluatorOptions{Workers: workers})
			if err != nil {
				return err
			}
			got, err := e.EvaluateProgression(progression)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: progression with %d workers diverges from sequential", seed, workers)
			}
		}

		shared, err := pseudorisk.NewEvaluatorWithOptions(table, policy,
			pseudorisk.EvaluatorOptions{Workers: 4, Index: anonymize.NewClassIndex(table, 2)})
		if err != nil {
			return err
		}
		got, err := shared.EvaluateProgression(progression)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: progression with a shared class index diverges from sequential", seed)
		}
		return nil
	})
}

// TestPropViolationsBoundedByRecords: every scenario's violation count lies
// in [0, rows], and equivalent spellings of the same visible-field set
// produce identical results.
func TestPropViolationsBoundedByRecords(t *testing.T) {
	proptest.Run(t, func(seed int64, rng *rand.Rand) error {
		table := randomWeightTable(rng, 64)
		policy := pseudorisk.Policy{TargetField: "weight", Closeness: 5, Confidence: 0.9}
		e, err := pseudorisk.NewEvaluator(table, policy)
		if err != nil {
			return err
		}
		canonical, err := e.Evaluate([]string{"age", "city"})
		if err != nil {
			return err
		}
		if canonical.Violations < 0 || canonical.Violations > table.NumRows() {
			t.Fatalf("seed %d: %d violations outside [0, %d]", seed, canonical.Violations, table.NumRows())
		}
		respelled, err := e.Evaluate([]string{"city", "weight", "age"})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(canonical, respelled) {
			t.Fatalf("seed %d: respelled scenario diverges:\n%v\nvs\n%v",
				seed, canonical, respelled)
		}
		return nil
	})
}
